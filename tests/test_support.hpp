// bfsim tests -- shared fixtures and builders.
#pragma once

#include <vector>

#include "core/simulation.hpp"
#include "core/types.hpp"
#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace bfsim::test {

/// Build one job; ids are assigned by make_trace.
struct JobSpec {
  sim::Time submit = 0;
  sim::Time runtime = 1;
  int procs = 1;
  sim::Time estimate = 0;  ///< 0 => equals runtime
  int bb = 0;              ///< burst-buffer demand (GB)
};

/// Assemble a simulator-ready trace (sorted, ids = indices).
[[nodiscard]] workload::Trace make_trace(const std::vector<JobSpec>& specs);

/// A small random trace for property tests: `count` jobs on a
/// `procs`-processor machine; runtimes in [1, 2000], widths in
/// [1, procs], bursty Poisson arrivals. When `overestimate` is true,
/// estimates are inflated by a random factor in [1, 10].
[[nodiscard]] workload::Trace random_trace(std::size_t count, int procs,
                                           std::uint64_t seed,
                                           bool overestimate);

/// Assign deterministic random burst-buffer demands in [0, max_bb] to
/// every job of `trace` (for multi-resource tests; procs untouched).
void assign_random_bb(workload::Trace& trace, int max_bb, std::uint64_t seed);

/// Start times of every job, indexed by id.
[[nodiscard]] std::vector<sim::Time> start_times(
    const core::SimulationResult& result);

}  // namespace bfsim::test
