#include "test_support.hpp"

#include <algorithm>

#include "workload/transforms.hpp"

namespace bfsim::test {

workload::Trace make_trace(const std::vector<JobSpec>& specs) {
  workload::Trace trace;
  trace.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    workload::Job job;
    job.submit = spec.submit;
    job.runtime = spec.runtime;
    job.procs = spec.procs;
    job.estimate = spec.estimate == 0 ? spec.runtime : spec.estimate;
    job.bb = spec.bb;
    trace.push_back(job);
  }
  workload::finalize(trace);
  return trace;
}

workload::Trace random_trace(std::size_t count, int procs,
                             std::uint64_t seed, bool overestimate) {
  sim::Rng rng{seed};
  workload::Trace trace;
  trace.reserve(count);
  sim::Time t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    workload::Job job;
    t += static_cast<sim::Time>(rng.exponential(40.0));
    job.submit = t;
    job.runtime = rng.uniform_int(1, 2000);
    job.procs = static_cast<int>(rng.uniform_int(1, procs));
    job.estimate = overestimate
                       ? static_cast<sim::Time>(
                             static_cast<double>(job.runtime) *
                             rng.uniform(1.0, 10.0))
                       : job.runtime;
    job.estimate = std::max(job.estimate, job.runtime);
    trace.push_back(job);
  }
  workload::finalize(trace);
  return trace;
}

void assign_random_bb(workload::Trace& trace, int max_bb,
                      std::uint64_t seed) {
  sim::Rng rng{seed};
  for (workload::Job& job : trace)
    job.bb = static_cast<int>(rng.uniform_int(0, max_bb));
}

std::vector<sim::Time> start_times(const core::SimulationResult& result) {
  std::vector<sim::Time> starts;
  starts.reserve(result.outcomes.size());
  for (const core::JobOutcome& outcome : result.outcomes)
    starts.push_back(outcome.start);
  return starts;
}

}  // namespace bfsim::test
