#include "workload/synthetic.hpp"

#include <gtest/gtest.h>

#include "workload/transforms.hpp"

namespace bfsim::workload {
namespace {

TEST(CategoryMix, CtcPresetMatchesTable2) {
  const CategoryMixParams p = CategoryMixModel::ctc();
  EXPECT_EQ(p.machine_procs, 430);
  EXPECT_NEAR(p.mix[0], 0.4506, 1e-9);
  EXPECT_NEAR(p.mix[1], 0.1184, 1e-9);
  EXPECT_NEAR(p.mix[2], 0.3026, 1e-9);
  EXPECT_NEAR(p.mix[3], 0.1284, 1e-9);
  EXPECT_NEAR(p.mix[0] + p.mix[1] + p.mix[2] + p.mix[3], 1.0, 1e-9);
}

TEST(CategoryMix, SdscPresetMatchesTable3) {
  const CategoryMixParams p = CategoryMixModel::sdsc();
  EXPECT_EQ(p.machine_procs, 128);
  EXPECT_NEAR(p.mix[0] + p.mix[1] + p.mix[2] + p.mix[3], 1.0, 1e-9);
  EXPECT_NEAR(p.mix[0], 0.4724, 1e-9);
  EXPECT_NEAR(p.mix[3], 0.1038, 1e-9);
}

TEST(CategoryMix, GeneratedMixMatchesTargets) {
  for (const auto& params :
       {CategoryMixModel::ctc(), CategoryMixModel::sdsc()}) {
    const CategoryMixModel model{params};
    sim::Rng rng{17};
    const Trace trace = model.generate(20000, rng);
    const auto mix = category_mix(trace, params.thresholds);
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(mix[c], params.mix[c], 0.015)
          << params.name << " category " << c;
  }
}

TEST(CategoryMix, ShapesRespectCategoryBounds) {
  const CategoryMixParams params = CategoryMixModel::ctc();
  const CategoryMixModel model{params};
  sim::Rng rng{18};
  for (int i = 0; i < 5000; ++i) {
    const Job job = model.sample_shape(rng);
    EXPECT_GE(job.runtime, params.min_runtime);
    EXPECT_LE(job.runtime, params.max_runtime);
    EXPECT_GE(job.procs, 1);
    EXPECT_LE(job.procs, params.max_width);
    const auto cat = classify(job, params.thresholds);
    if (cat == Category::ShortNarrow || cat == Category::ShortWide) {
      EXPECT_LE(job.runtime, params.thresholds.long_runtime);
    }
    if (cat == Category::ShortNarrow || cat == Category::LongNarrow) {
      EXPECT_LE(job.procs, params.thresholds.wide_procs);
    }
    EXPECT_EQ(job.estimate, job.runtime);  // estimates applied separately
  }
}

TEST(CategoryMix, WidthsFavorPowersOfTwo) {
  const CategoryMixModel model{CategoryMixModel::sdsc()};
  sim::Rng rng{19};
  int pow2 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const Job job = model.sample_shape(rng);
    if ((job.procs & (job.procs - 1)) == 0) ++pow2;
  }
  EXPECT_GT(static_cast<double>(pow2) / n, 0.6);
}

TEST(CategoryMix, GenerateSortedWithDenseIds) {
  const CategoryMixModel model{CategoryMixModel::sdsc()};
  sim::Rng rng{20};
  const Trace trace = model.generate(500, rng);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_LE(trace[i - 1].submit, trace[i].submit);
    }
  }
}

TEST(CategoryMix, GenerateIsDeterministic) {
  const CategoryMixModel model{CategoryMixModel::ctc()};
  sim::Rng rng1{21};
  sim::Rng rng2{21};
  EXPECT_EQ(model.generate(300, rng1), model.generate(300, rng2));
}

TEST(CategoryMix, MeanInterarrivalRoughlyHonored) {
  CategoryMixParams params = CategoryMixModel::sdsc();
  params.mean_interarrival = 120.0;
  const CategoryMixModel model{params};
  sim::Rng rng{22};
  const Trace trace = model.generate(5000, rng);
  const TraceStats stats = compute_stats(trace, params.machine_procs);
  EXPECT_NEAR(stats.mean_interarrival, 120.0, 10.0);
}

TEST(CategoryMix, DailyCycleProducesNonUniformArrivals) {
  CategoryMixParams params = CategoryMixModel::sdsc();
  params.mean_interarrival = 60.0;
  params.daily_cycle_amplitude = 0.9;
  const CategoryMixModel model{params};
  sim::Rng rng{23};
  const Trace trace = model.generate(20000, rng);
  // Bucket arrivals by hour-of-day; peak and trough should differ by a
  // factor reflecting the amplitude.
  std::array<int, 24> per_hour{};
  for (const Job& job : trace)
    ++per_hour[static_cast<std::size_t>((job.submit % sim::kDay) / 3600)];
  const auto [lo, hi] = std::minmax_element(per_hour.begin(), per_hour.end());
  EXPECT_GT(static_cast<double>(*hi), 1.5 * static_cast<double>(*lo));
}

TEST(CategoryMix, ValidatesParameters) {
  CategoryMixParams bad = CategoryMixModel::ctc();
  bad.mix = {0.5, 0.5, 0.5, 0.5};
  EXPECT_THROW(CategoryMixModel{bad}, std::invalid_argument);
  CategoryMixParams bad2 = CategoryMixModel::ctc();
  bad2.machine_procs = 4;  // narrower than the narrow/wide split
  EXPECT_THROW(CategoryMixModel{bad2}, std::invalid_argument);
  CategoryMixParams bad3 = CategoryMixModel::ctc();
  bad3.min_runtime = 0;
  EXPECT_THROW(CategoryMixModel{bad3}, std::invalid_argument);
  CategoryMixParams bad4 = CategoryMixModel::ctc();
  bad4.max_width = 5000;
  EXPECT_THROW(CategoryMixModel{bad4}, std::invalid_argument);
}

TEST(LublinStyle, ShapesWithinBounds) {
  const LublinStyleParams params{};
  const LublinStyleModel model{params};
  sim::Rng rng{24};
  for (int i = 0; i < 5000; ++i) {
    const Job job = model.sample_shape(rng);
    EXPECT_GE(job.procs, 1);
    EXPECT_LE(job.procs, params.machine_procs);
    EXPECT_GE(job.runtime, 1);
    EXPECT_LE(job.runtime, params.max_runtime);
  }
}

TEST(LublinStyle, SerialFractionRespected) {
  LublinStyleParams params{};
  params.serial_fraction = 0.4;
  const LublinStyleModel model{params};
  sim::Rng rng{25};
  int serial = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (model.sample_shape(rng).procs == 1) ++serial;
  // Serial jobs come from the explicit mass plus pow2-rounding down to 1.
  EXPECT_NEAR(static_cast<double>(serial) / n, 0.4, 0.05);
}

TEST(LublinStyle, RuntimeIsBimodal) {
  const LublinStyleModel model{LublinStyleParams{}};
  sim::Rng rng{26};
  int short_jobs = 0, long_jobs = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Job job = model.sample_shape(rng);
    if (job.runtime <= 3600) ++short_jobs;
    if (job.runtime > 6 * 3600) ++long_jobs;
  }
  EXPECT_GT(short_jobs, n / 4);  // a real short-job body
  EXPECT_GT(long_jobs, n / 20);  // and a real long tail
}

TEST(LublinStyle, GenerateContract) {
  const LublinStyleModel model{LublinStyleParams{}};
  sim::Rng rng{27};
  const Trace trace = model.generate(300, rng);
  ASSERT_EQ(trace.size(), 300u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_LE(trace[i - 1].submit, trace[i].submit);
    }
  }
}

TEST(LublinStyle, ValidatesParameters) {
  LublinStyleParams bad{};
  bad.serial_fraction = 1.5;
  EXPECT_THROW(LublinStyleModel{bad}, std::invalid_argument);
  LublinStyleParams bad2{};
  bad2.machine_procs = 1;
  EXPECT_THROW(LublinStyleModel{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::workload
