#include "workload/filters.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_support.hpp"

namespace bfsim::workload {
namespace {

SwfRecord record(std::int64_t number, std::int64_t submit,
                 std::int64_t user = 1, std::int64_t status = 1) {
  SwfRecord r;
  r.job_number = number;
  r.submit_time = submit;
  r.run_time = 100;
  r.requested_procs = 1;
  r.requested_time = 100;
  r.user_id = user;
  r.status = status;
  return r;
}

TEST(Filters, DropFailedRecordsRemovesFailedAndCancelled) {
  SwfFile file;
  file.records.push_back(record(1, 0, 1, 1));   // completed
  file.records.push_back(record(2, 1, 1, 0));   // failed
  file.records.push_back(record(3, 2, 1, 5));   // cancelled
  file.records.push_back(record(4, 3, 1, -1));  // unknown: keep
  EXPECT_EQ(drop_failed_records(file), 2u);
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[0].job_number, 1);
  EXPECT_EQ(file.records[1].job_number, 4);
}

TEST(Filters, RemoveFlurriesKeepsBurstPrefix) {
  SwfFile file;
  // User 1 submits 6 jobs one second apart: a flurry. Keep the first 3.
  for (int i = 0; i < 6; ++i) file.records.push_back(record(i + 1, i, 1));
  EXPECT_EQ(remove_flurries(file, /*window=*/10, /*max_burst=*/3), 3u);
  ASSERT_EQ(file.records.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(file.records[i].job_number, i + 1);
}

TEST(Filters, RemoveFlurriesResetsAfterQuietGap) {
  SwfFile file;
  // Two bursts of 3 separated by a long gap: both survive a limit of 3.
  for (int i = 0; i < 3; ++i) file.records.push_back(record(i + 1, i, 1));
  for (int i = 0; i < 3; ++i)
    file.records.push_back(record(i + 10, 1000 + i, 1));
  EXPECT_EQ(remove_flurries(file, 10, 3), 0u);
  EXPECT_EQ(file.records.size(), 6u);
}

TEST(Filters, RemoveFlurriesIsPerUser) {
  SwfFile file;
  // Two users interleaved; each stays within its own burst budget.
  for (int i = 0; i < 4; ++i) {
    file.records.push_back(record(2 * i + 1, i, /*user=*/1));
    file.records.push_back(record(2 * i + 2, i, /*user=*/2));
  }
  EXPECT_EQ(remove_flurries(file, 10, 4), 0u);
  EXPECT_EQ(remove_flurries(file, 10, 2), 4u);  // 2 dropped per user
}

TEST(Filters, RemoveFlurriesIgnoresUnknownUsers) {
  SwfFile file;
  for (int i = 0; i < 6; ++i) file.records.push_back(record(i + 1, i, -1));
  EXPECT_EQ(remove_flurries(file, 10, 2), 0u);
}

TEST(Filters, RemoveFlurriesValidatesArguments) {
  SwfFile file;
  EXPECT_THROW((void)remove_flurries(file, 0, 3), std::invalid_argument);
  EXPECT_THROW((void)remove_flurries(file, 10, 0), std::invalid_argument);
}

TEST(Filters, ClampWidths) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 5},
                                  {.submit = 1, .runtime = 10, .procs = 64}});
  EXPECT_EQ(clamp_widths(trace, 16), 1u);
  EXPECT_EQ(trace[0].procs, 5);
  EXPECT_EQ(trace[1].procs, 16);
  EXPECT_THROW((void)clamp_widths(trace, 0), std::invalid_argument);
}

TEST(Filters, CapEstimatesRespectsRuntime) {
  Trace trace = test::make_trace(
      {{.submit = 0, .runtime = 10, .procs = 1, .estimate = 99999},
       {.submit = 1, .runtime = 5000, .procs = 1, .estimate = 6000},
       {.submit = 2, .runtime = 10, .procs = 1, .estimate = 20}});
  EXPECT_EQ(cap_estimates(trace, 1000), 2u);
  EXPECT_EQ(trace[0].estimate, 1000);
  EXPECT_EQ(trace[1].estimate, 5000);  // never below the runtime
  EXPECT_EQ(trace[2].estimate, 20);    // already under the cap
}

TEST(Filters, DropMalformedRenumbers) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1},
                                  {.submit = 1, .runtime = 10, .procs = 1},
                                  {.submit = 2, .runtime = 10, .procs = 1}});
  trace[1].procs = 0;  // corrupt
  EXPECT_EQ(drop_malformed(trace), 1u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].id, 0u);
  EXPECT_EQ(trace[1].id, 1u);
  EXPECT_EQ(trace[1].submit, 2);
}

TEST(Filters, ClampWidthsRejectsNegativeMax) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 4}});
  EXPECT_THROW(clamp_widths(trace, -8), std::invalid_argument);
}

TEST(Filters, CapEstimatesRejectsNonPositiveCap) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  EXPECT_THROW(cap_estimates(trace, 0), std::invalid_argument);
  EXPECT_THROW(cap_estimates(trace, -100), std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::workload
