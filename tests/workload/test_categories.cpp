#include "workload/categories.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace bfsim::workload {
namespace {

Job job_with(sim::Time runtime, int procs, sim::Time estimate = 0) {
  Job j;
  j.runtime = runtime;
  j.procs = procs;
  j.estimate = estimate == 0 ? runtime : estimate;
  return j;
}

TEST(Categories, Table1Boundaries) {
  // Table 1: Short <= 1 h, Narrow <= 8 processors; boundaries inclusive.
  EXPECT_EQ(classify(job_with(3600, 8)), Category::ShortNarrow);
  EXPECT_EQ(classify(job_with(3600, 9)), Category::ShortWide);
  EXPECT_EQ(classify(job_with(3601, 8)), Category::LongNarrow);
  EXPECT_EQ(classify(job_with(3601, 9)), Category::LongWide);
}

TEST(Categories, ExtremeValues) {
  EXPECT_EQ(classify(job_with(1, 1)), Category::ShortNarrow);
  EXPECT_EQ(classify(job_with(7 * 86400, 512)), Category::LongWide);
}

TEST(Categories, CustomThresholds) {
  const CategoryThresholds t{.long_runtime = 600, .wide_procs = 16};
  EXPECT_EQ(classify(job_with(601, 16), t), Category::LongNarrow);
  EXPECT_EQ(classify(job_with(600, 17), t), Category::ShortWide);
}

TEST(Categories, ClassificationUsesRuntimeNotEstimate) {
  // A short job with a huge estimate is still Short: the categorization
  // axes of Table 1 are actual runtime and width.
  EXPECT_EQ(classify(job_with(100, 1, 100000)), Category::ShortNarrow);
}

TEST(Categories, EstimateQualitySplitAtFactorTwo) {
  EXPECT_EQ(classify_estimate(job_with(100, 1, 100)), EstimateQuality::Well);
  EXPECT_EQ(classify_estimate(job_with(100, 1, 200)), EstimateQuality::Well);
  EXPECT_EQ(classify_estimate(job_with(100, 1, 201)), EstimateQuality::Poor);
}

TEST(Categories, Names) {
  EXPECT_EQ(code(Category::ShortNarrow), "SN");
  EXPECT_EQ(code(Category::ShortWide), "SW");
  EXPECT_EQ(code(Category::LongNarrow), "LN");
  EXPECT_EQ(code(Category::LongWide), "LW");
  EXPECT_EQ(to_string(Category::LongNarrow), "Long Narrow");
  EXPECT_EQ(to_string(EstimateQuality::Well), "well estimated");
  EXPECT_EQ(to_string(EstimateQuality::Poor), "poorly estimated");
}

TEST(Categories, CountsAndMixSum) {
  const Trace trace = test::make_trace({
      {.submit = 0, .runtime = 100, .procs = 1},    // SN
      {.submit = 1, .runtime = 100, .procs = 64},   // SW
      {.submit = 2, .runtime = 7200, .procs = 2},   // LN
      {.submit = 3, .runtime = 7200, .procs = 2},   // LN
      {.submit = 4, .runtime = 7200, .procs = 100}, // LW
  });
  const auto counts = category_counts(trace);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::ShortNarrow)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::ShortWide)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::LongNarrow)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(Category::LongWide)], 1u);
  const auto mix = category_mix(trace);
  double total = 0.0;
  for (double m : mix) total += m;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(mix[2], 0.4, 1e-12);
}

TEST(Categories, EmptyTraceMixIsZero) {
  const Trace empty;
  const auto mix = category_mix(empty);
  for (double m : mix) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(Categories, AllCategoriesConstantCoversEnum) {
  EXPECT_EQ(kAllCategories.size(), 4u);
  EXPECT_EQ(kAllCategories[0], Category::ShortNarrow);
  EXPECT_EQ(kAllCategories[3], Category::LongWide);
}

}  // namespace
}  // namespace bfsim::workload
