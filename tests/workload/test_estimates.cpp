#include "workload/estimates.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "test_support.hpp"
#include "workload/categories.hpp"

namespace bfsim::workload {
namespace {

Trace sample_trace(std::size_t n) {
  std::vector<test::JobSpec> specs;
  specs.reserve(n);
  sim::Rng rng{99};
  for (std::size_t i = 0; i < n; ++i)
    specs.push_back({.submit = static_cast<sim::Time>(i),
                     .runtime = rng.uniform_int(1, 20000),
                     .procs = 1});
  return test::make_trace(specs);
}

TEST(Estimates, ExactModelEqualsRuntime) {
  Trace trace = sample_trace(200);
  sim::Rng rng{1};
  apply_estimates(trace, ExactEstimate{}, rng);
  for (const Job& job : trace) EXPECT_EQ(job.estimate, job.runtime);
}

TEST(Estimates, SystematicDoublesRuntime) {
  Trace trace = sample_trace(200);
  sim::Rng rng{1};
  apply_estimates(trace, SystematicOverestimate{2.0}, rng);
  for (const Job& job : trace) EXPECT_EQ(job.estimate, 2 * job.runtime);
}

TEST(Estimates, SystematicFactorOneIsExact) {
  Trace trace = sample_trace(50);
  sim::Rng rng{1};
  apply_estimates(trace, SystematicOverestimate{1.0}, rng);
  for (const Job& job : trace) EXPECT_EQ(job.estimate, job.runtime);
}

TEST(Estimates, SystematicRejectsFactorBelowOne) {
  EXPECT_THROW(SystematicOverestimate{0.5}, std::invalid_argument);
}

TEST(Estimates, SystematicName) {
  EXPECT_EQ(SystematicOverestimate{4.0}.name(), "overestimate-R4");
  EXPECT_EQ(ExactEstimate{}.name(), "exact");
  EXPECT_EQ(ActualEstimateModel{}.name(), "actual");
}

TEST(Estimates, ActualNeverBelowRuntime) {
  Trace trace = sample_trace(2000);
  sim::Rng rng{5};
  apply_estimates(trace, ActualEstimateModel{}, rng);
  for (const Job& job : trace) {
    EXPECT_GE(job.estimate, job.runtime);
    EXPECT_GE(job.estimate, 1);
  }
}

TEST(Estimates, ActualWellEstimatedFractionCalibrated) {
  // Default parameters yield a healthy mix of well (estimate <= 2 x
  // runtime) and poorly estimated jobs -- the paper's Section 5.2 split.
  Trace trace = sample_trace(20000);
  sim::Rng rng{6};
  apply_estimates(trace, ActualEstimateModel{}, rng);
  std::size_t well = 0;
  for (const Job& job : trace)
    if (classify_estimate(job) == EstimateQuality::Well) ++well;
  const double fraction = static_cast<double>(well) / trace.size();
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.75);
}

TEST(Estimates, ActualTailRequestsAreRoundLimits) {
  ActualEstimateParams params;
  params.exact_fraction = 0.0;
  params.mild_fraction = 0.0;  // tail only
  Trace trace = sample_trace(5000);
  sim::Rng rng{16};
  apply_estimates(trace, ActualEstimateModel{params}, rng);
  for (const Job& job : trace) {
    const bool is_limit =
        std::find(params.limits.begin(), params.limits.end(),
                  job.estimate) != params.limits.end();
    EXPECT_TRUE(is_limit || job.estimate == job.runtime)
        << "estimate " << job.estimate;
    EXPECT_GE(job.estimate, job.runtime);
  }
}

TEST(Estimates, ActualTailFallsBackWhenRuntimeExceedsLimits) {
  ActualEstimateParams params;
  params.exact_fraction = 0.0;
  params.mild_fraction = 0.0;
  params.limits = {100, 200};
  const ActualEstimateModel model{params};
  Job job;
  job.runtime = 5000;  // beyond every limit
  sim::Rng rng{17};
  EXPECT_EQ(model.estimate_for(job, rng), 5000);
}

TEST(Estimates, ActualProducesHeavyTail) {
  Trace trace = sample_trace(20000);
  sim::Rng rng{7};
  apply_estimates(trace, ActualEstimateModel{}, rng);
  std::size_t gross = 0;  // estimate > 10 x runtime
  for (const Job& job : trace)
    if (job.estimate > 10 * job.runtime) ++gross;
  EXPECT_GT(gross, trace.size() / 20);  // > 5% grossly overestimated
}

TEST(Estimates, ActualRoundsToMinutesExceptExact) {
  ActualEstimateParams params;
  params.exact_fraction = 0.0;  // force the rounded branches
  Trace trace = sample_trace(500);
  sim::Rng rng{8};
  apply_estimates(trace, ActualEstimateModel{params}, rng);
  for (const Job& job : trace) {
    // Mild estimates round up to whole minutes and tail estimates are
    // round limits; only the beyond-limits fallback equals the runtime.
    EXPECT_TRUE(job.estimate % 60 == 0 || job.estimate == job.runtime)
        << "estimate " << job.estimate << " runtime " << job.runtime;
  }
}

// GCC 12 falsely flags the initializer_list backing array of the
// ActualEstimateParams::limits default member initializer as dangling
// when several default-constructed instances share one TestBody.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdangling-pointer"
#endif

TEST(Estimates, ActualValidatesParameters) {
  ActualEstimateParams bad;
  bad.exact_fraction = 0.8;
  bad.mild_fraction = 0.5;  // sums above 1
  EXPECT_THROW(ActualEstimateModel{bad}, std::invalid_argument);
  ActualEstimateParams bad2;
  bad2.limits = {100, 100};  // not strictly ascending
  EXPECT_THROW(ActualEstimateModel{bad2}, std::invalid_argument);
  ActualEstimateParams bad3;
  bad3.round_to = 0;
  EXPECT_THROW(ActualEstimateModel{bad3}, std::invalid_argument);
  ActualEstimateParams bad4;
  bad4.limits.clear();
  EXPECT_THROW(ActualEstimateModel{bad4}, std::invalid_argument);
}

TEST(Estimates, ApplyIsDeterministicGivenRngState) {
  Trace a = sample_trace(500);
  Trace b = a;
  sim::Rng rng1{123};
  sim::Rng rng2{123};
  apply_estimates(a, ActualEstimateModel{}, rng1);
  apply_estimates(b, ActualEstimateModel{}, rng2);
  EXPECT_EQ(a, b);
}

TEST(Estimates, SystematicRejectsZeroAndNegativeFactors) {
  EXPECT_THROW(SystematicOverestimate{0.0}, std::invalid_argument);
  EXPECT_THROW(SystematicOverestimate{-2.0}, std::invalid_argument);
  EXPECT_NO_THROW(SystematicOverestimate{1.0});  // R = 1 is exact, legal
}

TEST(Estimates, ActualValidatesRemainingEdgeCases) {
  ActualEstimateParams negative_exact;
  negative_exact.exact_fraction = -0.1;
  EXPECT_THROW(ActualEstimateModel{negative_exact}, std::invalid_argument);
  ActualEstimateParams negative_mild;
  negative_mild.mild_fraction = -0.1;
  EXPECT_THROW(ActualEstimateModel{negative_mild}, std::invalid_argument);
  ActualEstimateParams nonpositive_limit;
  nonpositive_limit.limits = {0, 100};
  EXPECT_THROW(ActualEstimateModel{nonpositive_limit}, std::invalid_argument);
  ActualEstimateParams descending_limits;
  descending_limits.limits = {200, 100};
  EXPECT_THROW(ActualEstimateModel{descending_limits}, std::invalid_argument);
  ActualEstimateParams negative_round;
  negative_round.round_to = -60;
  EXPECT_THROW(ActualEstimateModel{negative_round}, std::invalid_argument);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace
}  // namespace bfsim::workload
