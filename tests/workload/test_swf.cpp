#include "workload/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace bfsim::workload {
namespace {

constexpr const char* kSample =
    "; Computer: IBM SP2\n"
    "; Installation: Cornell Theory Center\n"
    "; MaxProcs: 430\n"
    "; MaxJobs: 3\n"
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"
    "2 50 0 3600 16 -1 -1 16 7200 -1 1 13 3 -1 1 -1 -1 -1\n"
    "3 60 5 -1 -1 -1 -1 8 600 -1 5 14 3 -1 1 -1 -1 -1\n";

TEST(Swf, ParsesHeaderFields) {
  std::istringstream in{kSample};
  const SwfFile file = read_swf(in);
  EXPECT_EQ(file.header.computer, "IBM SP2");
  EXPECT_EQ(file.header.installation, "Cornell Theory Center");
  EXPECT_EQ(file.header.max_procs, 430);
  EXPECT_EQ(file.header.max_jobs, 3);
  EXPECT_EQ(file.header.raw_lines.size(), 4u);
}

TEST(Swf, ParsesAllRecordFields) {
  std::istringstream in{kSample};
  const SwfFile file = read_swf(in);
  ASSERT_EQ(file.records.size(), 3u);
  const SwfRecord& r = file.records[0];
  EXPECT_EQ(r.job_number, 1);
  EXPECT_EQ(r.submit_time, 0);
  EXPECT_EQ(r.wait_time, 10);
  EXPECT_EQ(r.run_time, 100);
  EXPECT_EQ(r.used_procs, 4);
  EXPECT_EQ(r.requested_procs, 4);
  EXPECT_EQ(r.requested_time, 200);
  EXPECT_EQ(r.status, 1);
  EXPECT_EQ(r.user_id, 12);
  EXPECT_EQ(r.group_id, 3);
  EXPECT_EQ(r.queue_id, 1);
  EXPECT_EQ(r.think_time, -1);
}

TEST(Swf, RejectsWrongFieldCount) {
  std::istringstream in{"1 2 3\n"};
  EXPECT_THROW((void)read_swf(in), std::runtime_error);
}

TEST(Swf, RejectsNonNumericField) {
  std::istringstream in{
      "1 0 10 abc 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"};
  EXPECT_THROW((void)read_swf(in), std::runtime_error);
}

TEST(Swf, AcceptsFloatInIntegerColumn) {
  // Archive files occasionally carry "123.0" in integer columns.
  std::istringstream in{
      "1 0 10 100.0 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"};
  const SwfFile file = read_swf(in);
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.records[0].run_time, 100);
}

TEST(Swf, SkipsBlankAndCrLfLines) {
  std::istringstream in{
      "\n; comment\r\n"
      "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\r\n\n"};
  const SwfFile file = read_swf(in);
  EXPECT_EQ(file.records.size(), 1u);
}

TEST(Swf, RoundTripPreservesRecords) {
  std::istringstream in{kSample};
  const SwfFile original = read_swf(in);
  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in2{out.str()};
  const SwfFile reparsed = read_swf(in2);
  ASSERT_EQ(reparsed.records.size(), original.records.size());
  for (std::size_t i = 0; i < original.records.size(); ++i)
    EXPECT_EQ(reparsed.records[i], original.records[i]) << "record " << i;
  EXPECT_EQ(reparsed.header.max_procs, original.header.max_procs);
}

TEST(Swf, ToJobsDropsUnstartedByDefault) {
  std::istringstream in{kSample};
  const SwfFile file = read_swf(in);
  const Trace jobs = swf_to_jobs(file);
  // Record 3 has run_time == -1 (cancelled before start): dropped.
  EXPECT_EQ(jobs.size(), 2u);
}

TEST(Swf, ToJobsMapsFields) {
  std::istringstream in{kSample};
  const Trace jobs = swf_to_jobs(read_swf(in));
  ASSERT_GE(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].id, 0u);
  EXPECT_EQ(jobs[0].submit, 0);
  EXPECT_EQ(jobs[0].runtime, 100);
  EXPECT_EQ(jobs[0].estimate, 200);
  EXPECT_EQ(jobs[0].procs, 4);
  EXPECT_EQ(jobs[1].submit, 50);
  EXPECT_EQ(jobs[1].procs, 16);
}

TEST(Swf, ToJobsRaisesEstimateToRuntime) {
  SwfFile file;
  SwfRecord r;
  r.job_number = 1;
  r.submit_time = 0;
  r.run_time = 500;
  r.requested_procs = 2;
  r.requested_time = 100;  // archive logged runtime over the request
  file.records.push_back(r);
  const Trace jobs = swf_to_jobs(file);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].estimate, 500);
}

TEST(Swf, ToJobsEstimateFallsBackToRuntime) {
  SwfFile file;
  SwfRecord r;
  r.job_number = 1;
  r.submit_time = 0;
  r.run_time = 123;
  r.requested_procs = 2;
  r.requested_time = -1;
  file.records.push_back(r);
  const Trace jobs = swf_to_jobs(file);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].estimate, 123);
}

TEST(Swf, ToJobsRebasesSubmitTimes) {
  SwfFile file;
  for (int i = 0; i < 3; ++i) {
    SwfRecord r;
    r.job_number = i + 1;
    r.submit_time = 1000 + i * 10;
    r.run_time = 5;
    r.requested_procs = 1;
    r.requested_time = 5;
    file.records.push_back(r);
  }
  const Trace jobs = swf_to_jobs(file);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].submit, 0);
  EXPECT_EQ(jobs[2].submit, 20);
}

TEST(Swf, ToJobsSortsBySubmit) {
  SwfFile file;
  for (int i = 0; i < 3; ++i) {
    SwfRecord r;
    r.job_number = i + 1;
    r.submit_time = 100 - i * 10;  // descending
    r.run_time = 5;
    r.requested_procs = 1;
    r.requested_time = 5;
    file.records.push_back(r);
  }
  const Trace jobs = swf_to_jobs(file);
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) {
      EXPECT_LE(jobs[i - 1].submit, jobs[i].submit);
    }
  }
}

TEST(Swf, ToJobsUsedProcsFallback) {
  SwfFile file;
  SwfRecord r;
  r.job_number = 1;
  r.submit_time = 0;
  r.run_time = 10;
  r.requested_procs = -1;
  r.used_procs = 7;
  r.requested_time = 10;
  file.records.push_back(r);
  const Trace jobs = swf_to_jobs(file);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].procs, 7);
}

TEST(Swf, JobsToSwfInverse) {
  Trace jobs;
  Job j;
  j.id = 0;
  j.submit = 10;
  j.runtime = 100;
  j.estimate = 300;
  j.procs = 8;
  jobs.push_back(j);
  const SwfFile file = jobs_to_swf(jobs, 128, "test-machine");
  EXPECT_EQ(file.header.max_procs, 128);
  ASSERT_EQ(file.records.size(), 1u);
  const Trace back = swf_to_jobs(file, {.rebase_time = false});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].submit, 10);
  EXPECT_EQ(back[0].runtime, 100);
  EXPECT_EQ(back[0].estimate, 300);
  EXPECT_EQ(back[0].procs, 8);
}

TEST(Swf, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_swf_file("/nonexistent/path.swf"),
               std::runtime_error);
}

// A corrupted archive slice: valid records interleaved with a truncated
// line, stray text, a non-numeric field, and sentinel-riddled records.
constexpr const char* kCorrupted =
    "; Computer: flaky-archive\n"
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"
    "2 50 0 3600 16 -1\n"                                   // truncated
    "this line is not SWF at all\n"                         // stray text
    "3 60 5 abc 8 -1 -1 8 600 -1 1 14 3 -1 1 -1 -1 -1\n"    // bad integer
    "4 70 5 100 -1 -1 -1 -1 600 -1 1 14 3 -1 1 -1 -1 -1\n"  // no processors
    "5 -1 5 100 4 -1 -1 4 600 -1 1 14 3 -1 1 -1 -1 -1\n"    // negative submit
    "6 90 5 100 4 -1 -1 4 600 -1 1 14 3 -1 1 -1 -1 -1\n";

TEST(Swf, StrictModeThrowsOnCorruptedFixture) {
  std::istringstream in{kCorrupted};
  EXPECT_THROW((void)read_swf(in), util::ParseError);
}

TEST(Swf, LenientModeQuarantinesAndCountsPerReason) {
  util::reset_log_limits();
  std::istringstream in{kCorrupted};
  SwfParseReport report;
  const SwfFile file = read_swf(in, {.lenient = true}, &report);
  // Records 1 and 6 survive; the other five lines are quarantined.
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[0].job_number, 1);
  EXPECT_EQ(file.records[1].job_number, 6);
  EXPECT_EQ(report.parsed, 2u);
  EXPECT_EQ(report.quarantined, 5u);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.reasons.at("bad-field-count"), 2u);
  EXPECT_EQ(report.reasons.at("bad-integer-field"), 1u);
  EXPECT_EQ(report.reasons.at("no-processors"), 1u);
  EXPECT_EQ(report.reasons.at("negative-submit"), 1u);
  util::reset_log_limits();
}

// Status-column fixture: one completed (1), one failed (0), one
// cancelled (5), one unknown (-1) record, all otherwise well-formed.
constexpr const char* kStatusMix =
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"
    "2 10 10 100 4 -1 -1 4 200 -1 0 12 3 -1 1 -1 -1 -1\n"
    "3 20 10 100 4 -1 -1 4 200 -1 5 12 3 -1 1 -1 -1 -1\n"
    "4 30 10 100 4 -1 -1 4 200 -1 -1 12 3 -1 1 -1 -1 -1\n";

TEST(Swf, StatusIgnoreModeKeepsEveryRecordButCountsStatuses) {
  std::istringstream in{kStatusMix};
  SwfParseReport report;
  const SwfFile file = read_swf(in, {}, &report);
  ASSERT_EQ(file.records.size(), 4u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.status_completed, 1u);
  EXPECT_EQ(report.status_failed, 1u);
  EXPECT_EQ(report.status_cancelled, 1u);
}

TEST(Swf, StatusQuarantineModeDropsFailedAndCancelledRecords) {
  util::reset_log_limits();
  std::istringstream in{kStatusMix};
  SwfParseReport report;
  const SwfFile file =
      read_swf(in, {.status = SwfStatusMode::kQuarantine}, &report);
  // Completed and unknown-status records survive; a policy filter must
  // not drop records whose status the archive simply failed to log.
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[0].job_number, 1);
  EXPECT_EQ(file.records[1].job_number, 4);
  EXPECT_EQ(report.parsed, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.reasons.at("status-failed"), 1u);
  EXPECT_EQ(report.reasons.at("status-cancelled"), 1u);
  // The tallies still count what was seen, not what was kept.
  EXPECT_EQ(report.status_completed, 1u);
  EXPECT_EQ(report.status_failed, 1u);
  EXPECT_EQ(report.status_cancelled, 1u);
  util::reset_log_limits();
}

TEST(Swf, StatusQuarantineWorksInStrictModeWithoutThrowing) {
  // A non-1 status is well-formed data: strict mode filters it like
  // lenient mode does instead of treating it as corruption.
  util::reset_log_limits();
  std::istringstream in{kStatusMix};
  SwfParseReport report;
  SwfParseOptions options;
  options.lenient = false;
  options.status = SwfStatusMode::kQuarantine;
  EXPECT_NO_THROW({
    const SwfFile file = read_swf(in, options, &report);
    EXPECT_EQ(file.records.size(), 2u);
  });
  util::reset_log_limits();
}

TEST(Swf, LenientModeAgreesWithStrictOnCleanInput) {
  std::istringstream strict_in{kSample};
  std::istringstream lenient_in{kSample};
  const SwfFile strict = read_swf(strict_in);
  SwfParseReport report;
  const SwfFile lenient = read_swf(lenient_in, {.lenient = true}, &report);
  ASSERT_EQ(lenient.records.size(), strict.records.size());
  for (std::size_t i = 0; i < strict.records.size(); ++i)
    EXPECT_EQ(lenient.records[i], strict.records[i]) << "record " << i;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.parsed, 3u);
}

TEST(Swf, LenientQuarantineWarningsAreRateLimited) {
  util::reset_log_limits();
  std::string input;
  for (int i = 0; i < 40; ++i) input += "truncated line\n";
  std::istringstream in{input};
  SwfParseReport report;
  (void)read_swf(in, {.lenient = true}, &report);
  EXPECT_EQ(report.quarantined, 40u);
  // The limiter emitted the first few and silently counted the rest.
  EXPECT_GT(util::log_suppressed("swf-quarantine"), 0u);
  util::reset_log_limits();
}

// Time-bound quarantine: records whose run or requested time exceeds
// SwfParseOptions::max_time. Such values (archive typos, 32-bit
// sentinels leaking through conversion) otherwise flow into profile
// arithmetic as ~kTimeMax-scale durations.
constexpr const char* kExcessive =
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"
    "2 50 0 999999999999 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n"  // run
    "3 60 5 100 4 -1 -1 4 999999999999 -1 1 12 3 -1 1 -1 -1 -1\n"  // req
    "4 70 5 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1\n";

TEST(Swf, StrictModeThrowsOnExcessiveTime) {
  std::istringstream in{kExcessive};
  EXPECT_THROW((void)read_swf(in), util::ParseError);
}

TEST(Swf, LenientModeQuarantinesExcessiveTime) {
  util::reset_log_limits();
  std::istringstream in{kExcessive};
  SwfParseReport report;
  const SwfFile file = read_swf(in, {.lenient = true}, &report);
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[0].job_number, 1);
  EXPECT_EQ(file.records[1].job_number, 4);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.reasons.at("excessive-time"), 2u);
  util::reset_log_limits();
}

TEST(Swf, MaxTimeBoundIsConfigurable) {
  util::reset_log_limits();
  // With a 150s ceiling, every kSample record's requested time (200,
  // 7200, 600) trips the bound even where the run time itself is fine.
  std::istringstream in{kSample};
  SwfParseReport report;
  const SwfFile file =
      read_swf(in, {.lenient = true, .max_time = 150}, &report);
  EXPECT_TRUE(file.records.empty());
  EXPECT_EQ(report.reasons.at("excessive-time"), report.quarantined);
  util::reset_log_limits();
}

TEST(Swf, NonPositiveMaxTimeDisablesTheBound) {
  std::istringstream in{kExcessive};
  const SwfFile file = read_swf(in, {.max_time = 0});  // strict, no bound
  EXPECT_EQ(file.records.size(), 4u);
}

// The 19th (extension) column: burst-buffer demand in GB. Standard
// 18-field archives parse with the sentinel -1; 19-field lines carry
// the demand; both shapes may interleave in one file.
constexpr const char* kBufferSample =
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1 64\n"
    "2 50 0 3600 16 -1 -1 16 7200 -1 1 13 3 -1 1 -1 -1 -1\n"
    "3 60 5 100 8 -1 -1 8 600 -1 1 14 3 -1 1 -1 -1 -1 0\n";

TEST(Swf, Parses19ColumnBurstBuffer) {
  std::istringstream in{kBufferSample};
  const SwfFile file = read_swf(in);
  ASSERT_EQ(file.records.size(), 3u);
  EXPECT_EQ(file.records[0].burst_buffer, 64);
  EXPECT_EQ(file.records[1].burst_buffer, -1);  // absent column: sentinel
  EXPECT_EQ(file.records[2].burst_buffer, 0);   // explicit zero is kept
}

TEST(Swf, ToJobsMapsBurstBuffer) {
  std::istringstream in{kBufferSample};
  const Trace jobs = swf_to_jobs(read_swf(in));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].bb, 64);
  EXPECT_EQ(jobs[1].bb, 0);  // sentinel converts to no demand
  EXPECT_EQ(jobs[2].bb, 0);
}

TEST(Swf, WriteSwfKeeps18ColumnLinesByteExact) {
  // A file with no extension column must write back with no extension
  // column -- procs-only archives round-trip to the same bytes.
  std::istringstream in{kSample};
  const SwfFile file = read_swf(in);
  std::ostringstream out;
  write_swf(out, file);
  std::istringstream lines{out.str()};
  std::string one;
  while (std::getline(lines, one)) {
    if (one.empty() || one[0] == ';') continue;
    std::istringstream fields{one};
    std::string tok;
    int count = 0;
    while (fields >> tok) ++count;
    EXPECT_EQ(count, 18) << one;
  }
}

TEST(Swf, BurstBufferRoundTripsThroughWriteAndJobs) {
  std::istringstream in{kBufferSample};
  const SwfFile original = read_swf(in);
  std::ostringstream out;
  write_swf(out, original);
  std::istringstream in2{out.str()};
  const SwfFile reparsed = read_swf(in2);
  ASSERT_EQ(reparsed.records.size(), 3u);
  EXPECT_EQ(reparsed.records[0].burst_buffer, 64);
  EXPECT_EQ(reparsed.records[1].burst_buffer, -1);
  EXPECT_EQ(reparsed.records[2].burst_buffer, 0);
  Trace jobs;
  Job j;
  j.id = 0;
  j.submit = 10;
  j.runtime = 100;
  j.estimate = 300;
  j.procs = 8;
  j.bb = 32;
  jobs.push_back(j);
  const SwfFile file = jobs_to_swf(jobs, 128, "test-machine");
  ASSERT_EQ(file.records.size(), 1u);
  EXPECT_EQ(file.records[0].burst_buffer, 32);
  const Trace back = swf_to_jobs(file, {.rebase_time = false});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].bb, 32);
}

// Hostile extension columns: sub-sentinel negatives and demands far
// beyond any machine. Both must die in strict mode and quarantine with
// their own reason slug in lenient mode.
constexpr const char* kBufferCorrupted =
    "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1 64\n"
    "2 50 0 3600 4 -1 -1 4 7200 -1 1 13 3 -1 1 -1 -1 -1 -7\n"
    "3 60 5 100 4 -1 -1 4 600 -1 1 14 3 -1 1 -1 -1 -1 999999999999\n"
    "4 70 5 100 4 -1 -1 4 600 -1 1 14 3 -1 1 -1 -1 -1\n";

TEST(Swf, StrictModeThrowsOnNegativeBurstBuffer) {
  std::istringstream in{
      "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1 -7\n"};
  EXPECT_THROW((void)read_swf(in), util::ParseError);
}

TEST(Swf, StrictModeThrowsOnExcessiveBurstBuffer) {
  std::istringstream in{
      "1 0 10 100 4 -1 -1 4 200 -1 1 12 3 -1 1 -1 -1 -1 999999999999\n"};
  EXPECT_THROW((void)read_swf(in), util::ParseError);
}

TEST(Swf, LenientModeQuarantinesHostileBurstBuffers) {
  util::reset_log_limits();
  std::istringstream in{kBufferCorrupted};
  SwfParseReport report;
  const SwfFile file = read_swf(in, {.lenient = true}, &report);
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(file.records[0].job_number, 1);
  EXPECT_EQ(file.records[1].job_number, 4);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.reasons.at("negative-burst-buffer"), 1u);
  EXPECT_EQ(report.reasons.at("excessive-burst-buffer"), 1u);
  util::reset_log_limits();
}

TEST(Swf, MaxBurstBufferBoundIsConfigurable) {
  util::reset_log_limits();
  std::istringstream in{kBufferSample};
  SwfParseReport report;
  const SwfFile file =
      read_swf(in, {.lenient = true, .max_burst_buffer = 32}, &report);
  // Only record 1 (bb=64) trips the tightened bound.
  ASSERT_EQ(file.records.size(), 2u);
  EXPECT_EQ(report.reasons.at("excessive-burst-buffer"), 1u);
  util::reset_log_limits();
}

TEST(Swf, StrictReportStillCountsParsed) {
  std::istringstream in{kSample};
  SwfParseReport report;
  (void)read_swf(in, {.lenient = false}, &report);
  EXPECT_EQ(report.parsed, 3u);
  EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace bfsim::workload
