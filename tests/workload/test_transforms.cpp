#include "workload/transforms.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "test_support.hpp"
#include "workload/synthetic.hpp"

namespace bfsim::workload {
namespace {

TEST(Transforms, FinalizeSortsAndRenumbers) {
  Trace trace;
  for (int i = 0; i < 3; ++i) {
    Job j;
    j.id = 99;
    j.submit = 100 - i * 10;
    j.runtime = 1;
    j.estimate = 1;
    trace.push_back(j);
  }
  finalize(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_LE(trace[i - 1].submit, trace[i].submit);
    }
  }
}

TEST(Transforms, FinalizeIsStableForTies) {
  Trace trace;
  for (int i = 0; i < 4; ++i) {
    Job j;
    j.submit = 50;
    j.runtime = i + 1;  // distinguishes original order
    j.estimate = j.runtime;
    trace.push_back(j);
  }
  finalize(trace);
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(trace[i].runtime, static_cast<sim::Time>(i + 1));
}

TEST(Transforms, RebaseShiftsToZero) {
  Trace trace = test::make_trace({{.submit = 500, .runtime = 10, .procs = 1},
                                  {.submit = 700, .runtime = 10, .procs = 1}});
  rebase(trace);
  EXPECT_EQ(trace[0].submit, 0);
  EXPECT_EQ(trace[1].submit, 200);
}

TEST(Transforms, ScaleInterarrivalHalvesGaps) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1},
                                  {.submit = 100, .runtime = 10, .procs = 1},
                                  {.submit = 300, .runtime = 10, .procs = 1}});
  scale_interarrival(trace, 0.5);
  EXPECT_EQ(trace[0].submit, 0);
  EXPECT_EQ(trace[1].submit, 50);
  EXPECT_EQ(trace[2].submit, 150);
}

TEST(Transforms, ScaleInterarrivalPreservesFirstSubmit) {
  Trace trace = test::make_trace({{.submit = 40, .runtime = 10, .procs = 1},
                                  {.submit = 140, .runtime = 10, .procs = 1}});
  scale_interarrival(trace, 2.0);
  EXPECT_EQ(trace[0].submit, 40);
  EXPECT_EQ(trace[1].submit, 240);
}

TEST(Transforms, ScaleInterarrivalRejectsNonPositive) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 1, .procs = 1},
                                  {.submit = 1, .runtime = 1, .procs = 1}});
  EXPECT_THROW(scale_interarrival(trace, 0.0), std::invalid_argument);
  EXPECT_THROW(scale_interarrival(trace, -1.0), std::invalid_argument);
}

TEST(Transforms, OfferedLoadComputation) {
  // 2 jobs x (100 s x 4 procs) work over a 100 s arrival span on 8 procs:
  // rho = 800 / (8 * 100) = 1.0
  Trace trace =
      test::make_trace({{.submit = 0, .runtime = 100, .procs = 4},
                        {.submit = 100, .runtime = 100, .procs = 4}});
  EXPECT_DOUBLE_EQ(offered_load(trace, 8), 1.0);
  EXPECT_DOUBLE_EQ(offered_load(trace, 16), 0.5);
}

TEST(Transforms, OfferedLoadEdgeCases) {
  Trace empty;
  EXPECT_DOUBLE_EQ(offered_load(empty, 8), 0.0);
  Trace one = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  EXPECT_DOUBLE_EQ(offered_load(one, 8), 0.0);
  Trace same_time =
      test::make_trace({{.submit = 5, .runtime = 10, .procs = 1},
                        {.submit = 5, .runtime = 10, .procs = 1}});
  EXPECT_DOUBLE_EQ(offered_load(same_time, 8), 0.0);  // zero span
}

TEST(Transforms, SetOfferedLoadHitsTarget) {
  const CategoryMixModel model{CategoryMixModel::sdsc()};
  sim::Rng rng{31};
  Trace trace = model.generate(5000, rng);
  for (double rho : {0.5, 0.85, 1.1}) {
    Trace copy = trace;
    set_offered_load(copy, 128, rho);
    EXPECT_NEAR(offered_load(copy, 128), rho, 0.03) << "target " << rho;
  }
}

TEST(Transforms, SetOfferedLoadPreservesShapes) {
  const CategoryMixModel model{CategoryMixModel::sdsc()};
  sim::Rng rng{32};
  Trace trace = model.generate(200, rng);
  Trace scaled = trace;
  set_offered_load(scaled, 128, 0.9);
  ASSERT_EQ(scaled.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(scaled[i].runtime, trace[i].runtime);
    EXPECT_EQ(scaled[i].procs, trace[i].procs);
  }
}

TEST(Transforms, TruncateKeepsPrefix) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 1, .procs = 1},
                                  {.submit = 10, .runtime = 1, .procs = 1},
                                  {.submit = 20, .runtime = 1, .procs = 1}});
  truncate(trace, 2);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[1].submit, 10);
  truncate(trace, 10);  // larger than size: no-op
  EXPECT_EQ(trace.size(), 2u);
}

TEST(Transforms, ComputeStatsBasics) {
  Trace trace =
      test::make_trace({{.submit = 0, .runtime = 100, .procs = 2},
                        {.submit = 100, .runtime = 300, .procs = 4,
                         .estimate = 600}});
  const TraceStats stats = compute_stats(trace, 8);
  EXPECT_EQ(stats.jobs, 2u);
  EXPECT_EQ(stats.span, 100);
  EXPECT_DOUBLE_EQ(stats.mean_runtime, 200.0);
  EXPECT_DOUBLE_EQ(stats.mean_procs, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_interarrival, 100.0);
  EXPECT_DOUBLE_EQ(stats.mean_overestimate, (1.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(stats.offered_load, (200.0 + 1200.0) / (8.0 * 100.0));
}

TEST(Transforms, ComputeStatsEmptyTrace) {
  const Trace empty;
  const TraceStats stats = compute_stats(empty, 8);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_runtime, 0.0);
}

TEST(Transforms, SetOfferedLoadRejectsNonPositiveRho) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  EXPECT_THROW(set_offered_load(trace, 128, 0.0), std::invalid_argument);
  EXPECT_THROW(set_offered_load(trace, 128, -0.5), std::invalid_argument);
}

TEST(Transforms, ApplyCancellationsRejectsBadParameters) {
  Trace trace = test::make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  sim::Rng rng{7};
  EXPECT_THROW(apply_cancellations(trace, -0.1, 100.0, rng),
               std::invalid_argument);
  EXPECT_THROW(apply_cancellations(trace, 1.1, 100.0, rng),
               std::invalid_argument);
  EXPECT_THROW(apply_cancellations(trace, 0.5, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(apply_cancellations(trace, 0.5, -10.0, rng),
               std::invalid_argument);
}

TEST(Transforms, RebaseSurvivesHostileSubmitRange) {
  // Regression for the raw `job.submit -= first` the overflow sweep
  // removed: an SWF carrying one pre-epoch (negative) submit next to a
  // near-kTimeMax submit used to wrap on rebase. It must clamp at
  // kTimeMax instead.
  Trace trace;
  Job early;
  early.submit = -5;
  early.runtime = early.estimate = 1;
  Job late;
  late.submit = sim::kTimeMax - 2;
  late.runtime = late.estimate = 1;
  trace = {early, late};
  rebase(trace);
  EXPECT_EQ(trace[0].submit, 0);
  EXPECT_EQ(trace[1].submit, sim::kTimeMax);  // saturated, not wrapped
}

TEST(Transforms, ComputeStatsSpanSaturatesOnHostileSubmits) {
  Trace trace;
  Job a;
  a.submit = std::numeric_limits<sim::Time>::min() + 1;
  a.runtime = a.estimate = 1;
  Job b;
  b.submit = sim::kTimeMax;
  b.runtime = b.estimate = 1;
  trace = {a, b};
  const TraceStats stats = compute_stats(trace, 8);
  EXPECT_EQ(stats.span, sim::kTimeMax);  // clamped difference
}

TEST(Transforms, ApplyCancellationsClampsDeadlineNearTheFarFuture) {
  Trace trace;
  Job job;
  job.submit = sim::kTimeMax - 1;
  job.runtime = 100;
  job.estimate = 100;
  trace = {job};
  sim::Rng rng{7};
  apply_cancellations(trace, 1.0, 10.0, rng);
  // submit + wait_budget would wrap; the deadline must pin at kTimeMax.
  ASSERT_NE(trace[0].cancel_at, sim::kNoTime);
  EXPECT_EQ(trace[0].cancel_at, sim::kTimeMax);
}

}  // namespace
}  // namespace bfsim::workload
