// Scaled-down versions of the paper's headline results (the full-size
// regenerations live in bench/). These pin the *relationships* the paper
// reports; absolute values are workload-dependent and not asserted.
#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "exp/runner.hpp"
#include "metrics/aggregate.hpp"

namespace bfsim::exp {
namespace {

using core::PriorityPolicy;
using core::SchedulerKind;
using workload::Category;
using workload::EstimateQuality;

constexpr std::size_t kJobs = 3000;
constexpr std::size_t kSeeds = 3;

double mean_slowdown(TraceKind trace, SchedulerKind kind,
                     PriorityPolicy priority,
                     EstimateSpec estimates = {}) {
  Scenario s;
  s.trace = trace;
  s.jobs = kJobs;
  s.load = kHighLoad;
  s.scheduler = kind;
  s.priority = priority;
  s.estimates = estimates;
  s.seed = 1;
  return mean_of(run_replications(s, kSeeds), overall_slowdown);
}

TEST(PaperTrends, Fig1EasySjfAndXfBeatConservative) {
  for (const auto trace : {TraceKind::Ctc, TraceKind::Sdsc}) {
    const double cons =
        mean_slowdown(trace, SchedulerKind::Conservative, PriorityPolicy::Fcfs);
    const double easy_sjf =
        mean_slowdown(trace, SchedulerKind::Easy, PriorityPolicy::Sjf);
    const double easy_xf =
        mean_slowdown(trace, SchedulerKind::Easy, PriorityPolicy::XFactor);
    EXPECT_LT(easy_sjf, cons) << to_string(trace);
    EXPECT_LT(easy_xf, cons) << to_string(trace);
  }
}

TEST(PaperTrends, Section41ConservativeIsPriorityInvariant) {
  const double fcfs = mean_slowdown(TraceKind::Ctc,
                                    SchedulerKind::Conservative,
                                    PriorityPolicy::Fcfs);
  const double sjf = mean_slowdown(TraceKind::Ctc,
                                   SchedulerKind::Conservative,
                                   PriorityPolicy::Sjf);
  const double xf = mean_slowdown(TraceKind::Ctc,
                                  SchedulerKind::Conservative,
                                  PriorityPolicy::XFactor);
  EXPECT_DOUBLE_EQ(fcfs, sjf);
  EXPECT_DOUBLE_EQ(fcfs, xf);
}

TEST(PaperTrends, Fig2LongNarrowBenefitsFromEasy) {
  // LN jobs backfill more easily with a single blocking reservation.
  Scenario s;
  s.trace = TraceKind::Ctc;
  s.jobs = kJobs;
  s.seed = 1;
  s.scheduler = SchedulerKind::Conservative;
  const auto cons = run_replications(s, kSeeds);
  s.scheduler = SchedulerKind::Easy;
  const auto easy = run_replications(s, kSeeds);
  const auto ln = [](const metrics::Metrics& m) {
    return m.category(Category::LongNarrow).slowdown.mean();
  };
  EXPECT_LT(mean_of(easy, ln), mean_of(cons, ln));
}

TEST(PaperTrends, Fig2ShortWideBenefitsFromConservative) {
  // SW jobs rely on the arrival-time guarantee conservative gives them.
  // The effect is a few percent under FCFS, so this comparison needs a
  // larger sample than the other trend tests.
  Scenario s;
  s.trace = TraceKind::Ctc;
  s.jobs = 8000;
  s.seed = 1;
  s.scheduler = SchedulerKind::Conservative;
  const auto cons = run_replications(s, 4);
  s.scheduler = SchedulerKind::Easy;
  const auto easy = run_replications(s, 4);
  const auto sw = [](const metrics::Metrics& m) {
    return m.category(Category::ShortWide).slowdown.mean();
  };
  EXPECT_GT(mean_of(easy, sw), mean_of(cons, sw));
}

TEST(PaperTrends, Table4EasyHasWorseWorstCaseTurnaround) {
  Scenario s;
  s.trace = TraceKind::Ctc;
  s.jobs = kJobs;
  s.seed = 1;
  s.priority = PriorityPolicy::Sjf;
  s.scheduler = SchedulerKind::Conservative;
  const double cons = max_of(run_replications(s, kSeeds), worst_turnaround);
  s.scheduler = SchedulerKind::Easy;
  const double easy = max_of(run_replications(s, kSeeds), worst_turnaround);
  EXPECT_GT(easy, cons);
}

TEST(PaperTrends, Tables56OverestimationImprovesSlowdown) {
  for (const auto kind :
       {SchedulerKind::Conservative, SchedulerKind::Easy}) {
    const double r1 = mean_slowdown(TraceKind::Ctc, kind,
                                    PriorityPolicy::Fcfs,
                                    {EstimateRegime::Systematic, 1.0});
    const double r2 = mean_slowdown(TraceKind::Ctc, kind,
                                    PriorityPolicy::Fcfs,
                                    {EstimateRegime::Systematic, 2.0});
    EXPECT_LT(r2, r1) << to_string(kind);
  }
}

TEST(PaperTrends, Tables56EffectStrongerUnderConservative) {
  const auto improvement = [](SchedulerKind kind) {
    const double r1 = mean_slowdown(TraceKind::Ctc, kind,
                                    PriorityPolicy::Fcfs,
                                    {EstimateRegime::Systematic, 1.0});
    const double r4 = mean_slowdown(TraceKind::Ctc, kind,
                                    PriorityPolicy::Fcfs,
                                    {EstimateRegime::Systematic, 4.0});
    return (r1 - r4) / r1;
  };
  EXPECT_GT(improvement(SchedulerKind::Conservative),
            improvement(SchedulerKind::Easy));
}

TEST(PaperTrends, Fig3ActualEstimatesKeepEasyAhead) {
  // CTC reproduces the paper's Fig. 3 for every priority policy. On the
  // synthetic SDSC mix (21% SW vs. 21% LN per Table 3) EASY-FCFS loses
  // its edge -- the paper itself notes the overall ranking depends on
  // the category mix -- so SDSC is asserted for SJF and XFactor, where
  // the effect is unambiguous. See EXPERIMENTS.md for the discussion.
  const EstimateSpec actual{EstimateRegime::Actual, 1.0};
  for (const auto priority :
       {PriorityPolicy::Fcfs, PriorityPolicy::Sjf, PriorityPolicy::XFactor}) {
    const double cons = mean_slowdown(TraceKind::Ctc,
                                      SchedulerKind::Conservative, priority,
                                      actual);
    const double easy = mean_slowdown(TraceKind::Ctc, SchedulerKind::Easy,
                                      priority, actual);
    EXPECT_LT(easy, cons) << "CTC " << core::to_string(priority);
  }
  for (const auto priority :
       {PriorityPolicy::Sjf, PriorityPolicy::XFactor}) {
    const double cons = mean_slowdown(TraceKind::Sdsc,
                                      SchedulerKind::Conservative, priority,
                                      actual);
    const double easy = mean_slowdown(TraceKind::Sdsc, SchedulerKind::Easy,
                                      priority, actual);
    EXPECT_LT(easy, cons) << "SDSC " << core::to_string(priority);
  }
}

// Fig. 4's paired comparison: the same jobs under exact vs. actual
// estimates, grouped by their actual-estimate quality.
struct PairedGroupMeans {
  double well_exact, well_actual, poor_exact, poor_actual;
};

PairedGroupMeans paired_means(SchedulerKind kind) {
  PairedGroupMeans sums{};
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Scenario actual;
    actual.trace = TraceKind::Ctc;
    actual.jobs = kJobs;
    actual.seed = seed;
    actual.estimates.regime = EstimateRegime::Actual;
    Scenario exact = actual;
    exact.estimates.regime = EstimateRegime::Exact;

    const auto actual_trace = build_workload(actual);
    const auto exact_trace = build_workload(exact);
    const auto labels = metrics::estimate_labels(actual_trace);

    const core::SchedulerConfig config{actual.procs(),
                                       PriorityPolicy::Fcfs};
    const auto options = experiment_metrics_options(kJobs);
    const auto m_actual = metrics::compute_metrics(
        core::run_simulation(actual_trace, kind, config), config.procs,
        options, &labels);
    const auto m_exact = metrics::compute_metrics(
        core::run_simulation(exact_trace, kind, config), config.procs,
        options, &labels);
    sums.well_actual +=
        m_actual.estimate_class(EstimateQuality::Well).slowdown.mean();
    sums.well_exact +=
        m_exact.estimate_class(EstimateQuality::Well).slowdown.mean();
    sums.poor_actual +=
        m_actual.estimate_class(EstimateQuality::Poor).slowdown.mean();
    sums.poor_exact +=
        m_exact.estimate_class(EstimateQuality::Poor).slowdown.mean();
  }
  return sums;
}

TEST(PaperTrends, Fig4WellEstimatedGainPoorlyEstimatedLose) {
  for (const auto kind :
       {SchedulerKind::Conservative, SchedulerKind::Easy}) {
    const PairedGroupMeans g = paired_means(kind);
    EXPECT_LT(g.well_actual, g.well_exact) << to_string(kind);
    EXPECT_GT(g.poor_actual, g.poor_exact) << to_string(kind);
  }
}

}  // namespace
}  // namespace bfsim::exp
