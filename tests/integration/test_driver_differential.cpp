// Differential suite for the engine-unified driver: the production
// run_simulation (event batches, pass skipping, wake-up timers) must
// produce byte-identical schedules to the pre-refactor loop preserved
// in tests/core/reference_driver.hpp, for every scheduler x priority
// policy x estimate regime x cancellation mix. On top of equality, the
// new driver's pass accounting is asserted: on saturated workloads it
// must actually skip cycles (passes strictly below delivered events)
// without changing a single start time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/reference_driver.hpp"
#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/rng.hpp"
#include "test_support.hpp"
#include "workload/transforms.hpp"

namespace bfsim::core {
namespace {

constexpr std::size_t kJobs = 200;

struct DiffCell {
  double factor = 1.0;           ///< estimate = R x runtime
  double cancel_fraction = 0.0;  ///< jobs withdrawn while queued
  double load = exp::kHighLoad;  ///< offered load (arrival density)
  std::uint64_t seed = 1;

  [[nodiscard]] std::string label() const {
    return "R=" + std::to_string(factor) +
           " cancel=" + std::to_string(cancel_fraction) +
           " load=" + std::to_string(load) +
           " seed=" + std::to_string(seed);
  }
};

workload::Trace build_trace(const DiffCell& cell) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = kJobs;
  scenario.load = cell.load;
  scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                        .factor = cell.factor};
  scenario.seed = cell.seed;
  workload::Trace trace = exp::build_workload(scenario);
  if (cell.cancel_fraction > 0.0) {
    sim::Rng rng{cell.seed * 977 + 13};
    workload::apply_cancellations(trace, cell.cancel_fraction,
                                  /*patience=*/2.0, rng);
  }
  return trace;
}

/// Field-by-field schedule equality with a per-job diagnostic.
void expect_identical(const SimulationResult& engine,
                      const SimulationResult& reference) {
  ASSERT_EQ(engine.outcomes.size(), reference.outcomes.size());
  for (std::size_t i = 0; i < engine.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(engine.outcomes[i].start, reference.outcomes[i].start);
    EXPECT_EQ(engine.outcomes[i].end, reference.outcomes[i].end);
    EXPECT_EQ(engine.outcomes[i].killed, reference.outcomes[i].killed);
    EXPECT_EQ(engine.outcomes[i].cancelled, reference.outcomes[i].cancelled);
  }
  EXPECT_EQ(engine.makespan, reference.makespan);
  EXPECT_EQ(engine.events, reference.events);
  EXPECT_EQ(engine.max_queue, reference.max_queue);
}

const SchedulerKind kAllKinds[] = {
    SchedulerKind::Fcfs,         SchedulerKind::Easy,
    SchedulerKind::Conservative, SchedulerKind::KReservation,
    SchedulerKind::Selective,    SchedulerKind::Slack,
};

TEST(DriverDifferential, MatchesReferenceDriverAcrossTheGrid) {
  for (const double factor : {1.0, 2.0, 4.0}) {
    for (const double cancel : {0.0, 0.15}) {
      const DiffCell cell{.factor = factor, .cancel_fraction = cancel};
      SCOPED_TRACE(cell.label());
      const workload::Trace trace = build_trace(cell);
      const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
      for (const SchedulerKind kind : kAllKinds) {
        for (const PriorityPolicy priority : kPaperPolicies) {
          SCOPED_TRACE(to_string(kind) + "-" + to_string(priority));
          const SchedulerConfig config{procs, priority};
          const auto engine_scheduler = make_scheduler(kind, config);
          const SimulationResult engine = run_simulation(
              trace, *engine_scheduler, {.validate = true, .audit = true});
          const auto reference_scheduler = make_scheduler(kind, config);
          const SimulationResult reference =
              test::reference_run(trace, *reference_scheduler);
          expect_identical(engine, reference);
        }
      }
    }
  }
}

TEST(DriverDifferential, IdleHeavyLowLoadExercisesTheFastStartPath) {
  // At a quarter of the saturating load, most submits arrive to an
  // empty queue with capacity free: exactly the O(1) "empty and fits"
  // start path plus the empty-queue skip hooks. The fast path must be
  // invisible -- byte-identical to the reference driver, which has no
  // such path -- across every scheduler, both priority policies, and
  // estimate regimes tight and loose.
  for (const double factor : {1.0, 4.0}) {
    for (const PriorityPolicy priority : kPaperPolicies) {
      const DiffCell cell{.factor = factor, .load = 0.25, .seed = 5};
      SCOPED_TRACE(cell.label() + " " + to_string(priority));
      const workload::Trace trace = build_trace(cell);
      const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
      for (const SchedulerKind kind : kAllKinds) {
        SCOPED_TRACE(to_string(kind));
        const SchedulerConfig config{procs, priority};
        const auto engine_scheduler = make_scheduler(kind, config);
        const SimulationResult engine = run_simulation(
            trace, *engine_scheduler, {.validate = true, .audit = true});
        const auto reference_scheduler = make_scheduler(kind, config);
        const SimulationResult reference =
            test::reference_run(trace, *reference_scheduler);
        expect_identical(engine, reference);
      }
    }
  }
}

TEST(DriverDifferential, SkipsPassesWithoutChangingTheSchedule) {
  // A saturated workload is exactly where skipping matters: deep queues
  // mean most finish/submit batches provably start nothing. The driver
  // must exploit that (passes < events, skips > 0) while the schedule
  // stays equal to the skip-free reference.
  const DiffCell cell{.factor = 4.0, .cancel_fraction = 0.15, .seed = 2};
  const workload::Trace trace = build_trace(cell);
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    const SchedulerConfig config{procs, PriorityPolicy::Fcfs};
    const auto engine_scheduler = make_scheduler(kind, config);
    const SimulationResult engine =
        run_simulation(trace, *engine_scheduler, {.validate = true});
    const auto reference_scheduler = make_scheduler(kind, config);
    const SimulationResult reference =
        test::reference_run(trace, *reference_scheduler);
    expect_identical(engine, reference);
    EXPECT_LT(engine.passes, engine.events);
    EXPECT_GT(engine.passes_skipped, 0u);
    // Every batch either ran a pass or skipped one; the reference ran
    // a pass per batch, and wake-ups can only add batches on top.
    EXPECT_GE(engine.passes + engine.passes_skipped, reference.passes);
    EXPECT_LE(engine.passes + engine.passes_skipped,
              reference.passes + engine.wakeups);
  }
}

TEST(DriverDifferential, XFactorPriorityStaysExactUnderSkipping) {
  // XFactor re-ranks the queue as waits grow, so almost no skip rule is
  // sound from queue state alone; the hooks fall back to "pass whenever
  // jobs wait". This cell pins that conservatism to byte-identical
  // schedules under the time-varying policy for every scheduler.
  const DiffCell cell{.factor = 2.0, .cancel_fraction = 0.1, .seed = 3};
  const workload::Trace trace = build_trace(cell);
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    const SchedulerConfig config{procs, PriorityPolicy::XFactor};
    const auto engine_scheduler = make_scheduler(kind, config);
    const SimulationResult engine = run_simulation(
        trace, *engine_scheduler, {.validate = true, .audit = true});
    const auto reference_scheduler = make_scheduler(kind, config);
    const SimulationResult reference =
        test::reference_run(trace, *reference_scheduler);
    expect_identical(engine, reference);
  }
}

}  // namespace
}  // namespace bfsim::core
