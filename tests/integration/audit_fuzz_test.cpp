// Fuzz-style differential harness: seeded synthetic workloads -- varied
// load, estimate accuracy (R in {1, 2, 4}) and cancellation rate --
// driven through every scheduler with the invariant auditor attached
// and the physical-schedule validator on. Any capacity overflow, broken
// guarantee or stale profile aborts the run at the offending event; on
// top of that, cross-scheduler metric relationships from the paper are
// asserted per cell (FCFS-baseline dominance, Section 4.1 priority
// equivalence under conservative backfill with exact estimates).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/simulation.hpp"
#include "exp/fault.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "util/log.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/report.hpp"
#include "sim/rng.hpp"
#include "test_support.hpp"
#include "workload/transforms.hpp"

namespace bfsim::core {
namespace {

struct FuzzCell {
  exp::TraceKind trace = exp::TraceKind::Ctc;
  double load = exp::kHighLoad;
  double factor = 1.0;           ///< estimate = R x runtime
  double cancel_fraction = 0.0;  ///< jobs withdrawn while queued
  std::uint64_t seed = 1;

  [[nodiscard]] std::string label() const {
    return exp::to_string(trace) + " load=" + std::to_string(load) +
           " R=" + std::to_string(factor) +
           " cancel=" + std::to_string(cancel_fraction) +
           " seed=" + std::to_string(seed);
  }
};

constexpr std::size_t kJobs = 200;

workload::Trace build_fuzz_trace(const FuzzCell& cell) {
  exp::Scenario scenario;
  scenario.trace = cell.trace;
  scenario.jobs = kJobs;
  scenario.load = cell.load;
  scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                        .factor = cell.factor};
  scenario.seed = cell.seed;
  workload::Trace trace = exp::build_workload(scenario);
  if (cell.cancel_fraction > 0.0) {
    sim::Rng rng{cell.seed * 977 + 13};
    workload::apply_cancellations(trace, cell.cancel_fraction,
                                  /*patience=*/2.0, rng);
  }
  return trace;
}

/// One audited, validated simulation; returns its aggregated metrics.
metrics::Metrics audited_run(const workload::Trace& trace, int procs,
                             SchedulerKind kind, PriorityPolicy priority) {
  const SimulationResult result =
      run_simulation(trace, kind, SchedulerConfig{procs, priority}, {},
                     {.validate = true, .audit = true});
  return metrics::compute_metrics(result, procs);
}

std::vector<FuzzCell> fuzz_grid() {
  std::vector<FuzzCell> cells;
  for (const double factor : {1.0, 2.0, 4.0})
    for (const double cancel : {0.0, 0.15})
      for (const std::uint64_t seed : {1ULL, 2ULL})
        cells.push_back({.trace = exp::TraceKind::Sdsc,
                         .load = exp::kHighLoad,
                         .factor = factor,
                         .cancel_fraction = cancel,
                         .seed = seed});
  // A normal-load CTC cell and a Lublin robustness cell keep the grid
  // from overfitting to one generator shape.
  cells.push_back({.trace = exp::TraceKind::Ctc,
                   .load = exp::kNormalLoad,
                   .factor = 2.0,
                   .cancel_fraction = 0.1,
                   .seed = 3});
  cells.push_back({.trace = exp::TraceKind::Lublin,
                   .load = exp::kHighLoad,
                   .factor = 1.0,
                   .cancel_fraction = 0.0,
                   .seed = 4});
  return cells;
}

TEST(AuditFuzz, EverySchedulerSurvivesTheAuditedGrid) {
  // The real assertion is inside run_simulation: the auditor throws at
  // the first violated invariant, the validator at the first physically
  // impossible schedule. The metric checks on top are sanity floors.
  for (const FuzzCell& cell : fuzz_grid()) {
    SCOPED_TRACE(cell.label());
    const workload::Trace trace = build_fuzz_trace(cell);
    const int procs = exp::machine_procs(cell.trace);
    const struct {
      SchedulerKind kind;
      PriorityPolicy priority;
    } schemes[] = {
        {SchedulerKind::Fcfs, PriorityPolicy::Fcfs},
        {SchedulerKind::Easy, PriorityPolicy::Fcfs},
        {SchedulerKind::Easy, PriorityPolicy::Sjf},
        {SchedulerKind::Conservative, PriorityPolicy::Fcfs},
        {SchedulerKind::Conservative, PriorityPolicy::XFactor},
        {SchedulerKind::KReservation, PriorityPolicy::Fcfs},
        {SchedulerKind::Selective, PriorityPolicy::Fcfs},
        {SchedulerKind::Slack, PriorityPolicy::Fcfs},
        {SchedulerKind::Plan, PriorityPolicy::Fcfs},
        {SchedulerKind::Plan, PriorityPolicy::Sjf},
    };
    for (const auto& scheme : schemes) {
      SCOPED_TRACE(to_string(scheme.kind) + "-" +
                   to_string(scheme.priority));
      metrics::Metrics m;
      ASSERT_NO_THROW(
          m = audited_run(trace, procs, scheme.kind, scheme.priority));
      // Waits are physical times: never negative (a negative mean wait
      // means an outcome leaked kNoTime into the statistics).
      EXPECT_GE(m.overall.wait.mean(), 0.0);
      EXPECT_GE(m.overall.slowdown.mean(), 1.0);
      EXPECT_LE(m.utilization, 1.0 + 1e-9);
      EXPECT_EQ(m.overall.count() + m.cancelled_jobs, kJobs);
    }
  }
}

TEST(AuditFuzz, MultiResourceGridSurvivesThePerAxisAuditor) {
  // The same audited-grid discipline on two axes: every profile-bearing
  // scheduler runs the fuzz workloads with deterministic burst-buffer
  // demands against a shared buffer, and the auditor's per-axis
  // capacity and profile cross-checks are fatal throughout.
  constexpr int kBufferGb = 512;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const FuzzCell cell{.trace = exp::TraceKind::Sdsc,
                        .load = exp::kHighLoad,
                        .factor = 2.0,
                        .cancel_fraction = seed == 2 ? 0.15 : 0.0,
                        .seed = seed};
    SCOPED_TRACE(cell.label());
    workload::Trace trace = build_fuzz_trace(cell);
    test::assign_random_bb(trace, kBufferGb, seed * 131 + 7);
    const int procs = exp::machine_procs(cell.trace);
    for (const SchedulerKind kind :
         {SchedulerKind::Easy, SchedulerKind::Conservative,
          SchedulerKind::KReservation, SchedulerKind::Selective,
          SchedulerKind::Slack, SchedulerKind::Plan}) {
      SCOPED_TRACE(to_string(kind));
      const SimulationResult result = run_simulation(
          trace, kind,
          SchedulerConfig{procs, PriorityPolicy::Fcfs, kBufferGb}, {},
          {.validate = true, .audit = true});
      for (const JobOutcome& outcome : result.outcomes)
        EXPECT_TRUE(outcome.start != sim::kNoTime || outcome.cancelled);
    }
  }
}

TEST(AuditFuzz, SeededBufferOversubscriptionIsCaughtOnTheSecondAxis) {
  // Mutation check for the new axis: shrink the capacity the *auditor*
  // believes in below what the scheduler packs against, and every
  // resulting overflow must surface as "capacity-bb" -- proof the
  // second-axis invariant actually bites on realistic workloads.
  const FuzzCell cell{.trace = exp::TraceKind::Sdsc,
                      .load = exp::kHighLoad,
                      .factor = 1.0,
                      .cancel_fraction = 0.0,
                      .seed = 6};
  workload::Trace trace = build_fuzz_trace(cell);
  const int procs = exp::machine_procs(cell.trace);
  constexpr int kRealBuffer = 256;
  test::assign_random_bb(trace, kRealBuffer, 99);
  // The scheduler packs against the real capacity...
  const SchedulerConfig real{procs, PriorityPolicy::Fcfs, kRealBuffer};
  const auto scheduler = make_scheduler(SchedulerKind::Easy, real);
  // ...while the auditor is built for a machine with half the buffer
  // (a distinct scheduler object: only its config seeds the auditor).
  const SchedulerConfig halved{procs, PriorityPolicy::Fcfs, kRealBuffer / 2};
  const auto believed = make_scheduler(SchedulerKind::Fcfs, halved);
  ScheduleAuditor auditor{*believed, {.fatal = false}};
  (void)run_simulation(trace, *scheduler, {.auditor = &auditor});
  ASSERT_FALSE(auditor.ok());
  bool saw_capacity_bb = false;
  for (const AuditViolation& violation : auditor.violations()) {
    // Only the buffer axis was shrunk, so only it may fire.
    EXPECT_EQ(violation.invariant, "capacity-bb") << violation.to_string();
    saw_capacity_bb |= violation.invariant == "capacity-bb";
  }
  EXPECT_TRUE(saw_capacity_bb);
}

TEST(AuditFuzz, BackfillingDominatesTheFcfsBaseline) {
  // Paper Fig. 1 / Section 4: at high load, both backfilling schemes
  // beat the no-backfill baseline on mean slowdown and turnaround.
  // Checked on cancellation-free cells (the paper's setting).
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double factor : {1.0, 2.0}) {
      const FuzzCell cell{.trace = exp::TraceKind::Sdsc,
                          .load = exp::kHighLoad,
                          .factor = factor,
                          .cancel_fraction = 0.0,
                          .seed = seed};
      SCOPED_TRACE(cell.label());
      const workload::Trace trace = build_fuzz_trace(cell);
      const int procs = exp::machine_procs(cell.trace);
      const auto fcfs =
          audited_run(trace, procs, SchedulerKind::Fcfs, PriorityPolicy::Fcfs);
      const auto easy =
          audited_run(trace, procs, SchedulerKind::Easy, PriorityPolicy::Fcfs);
      const auto cons = audited_run(trace, procs, SchedulerKind::Conservative,
                                    PriorityPolicy::Fcfs);
      EXPECT_LE(easy.overall.slowdown.mean(), fcfs.overall.slowdown.mean());
      EXPECT_LE(cons.overall.slowdown.mean(), fcfs.overall.slowdown.mean());
      EXPECT_LE(easy.overall.turnaround.mean(),
                fcfs.overall.turnaround.mean());
      EXPECT_LE(cons.overall.turnaround.mean(),
                fcfs.overall.turnaround.mean());
    }
  }
}

TEST(AuditFuzz, ConservativePriorityEquivalenceUnderExactEstimates) {
  // Paper Section 4.1: with exact estimates (no early completions, so
  // compression never fires) conservative backfilling produces the
  // *identical* schedule under every priority policy. Cancellations
  // punch holes and void the theorem, so those cells are excluded.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const FuzzCell cell{.trace = exp::TraceKind::Sdsc,
                        .load = exp::kHighLoad,
                        .factor = 1.0,
                        .cancel_fraction = 0.0,
                        .seed = seed};
    SCOPED_TRACE(cell.label());
    const workload::Trace trace = build_fuzz_trace(cell);
    const int procs = exp::machine_procs(cell.trace);
    std::vector<std::vector<sim::Time>> starts;
    for (const PriorityPolicy priority : kPaperPolicies) {
      const SimulationResult result = run_simulation(
          trace, SchedulerKind::Conservative, SchedulerConfig{procs, priority},
          {}, {.validate = true, .audit = true});
      starts.push_back(test::start_times(result));
    }
    EXPECT_EQ(starts[0], starts[1]) << "fcfs vs sjf diverged";
    EXPECT_EQ(starts[0], starts[2]) << "fcfs vs xfactor diverged";
  }
}

TEST(AuditFuzz, SweepShardsTheFuzzGridWithPerCellAuditors) {
  // The same fuzz grid routed through exp::Sweep: every cell carries
  // its own internal auditor + validator (SweepOptions{.audit,
  // .validate}), custom runners reproduce the cancellation transform
  // from the scenario seed, and the sharded run must match the serial
  // one byte for byte.
  exp::Sweep sweep;
  for (const FuzzCell& cell : fuzz_grid()) {
    exp::Scenario scenario;
    scenario.trace = cell.trace;
    scenario.jobs = kJobs;
    scenario.load = cell.load;
    scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                          .factor = cell.factor};
    scenario.scheduler = SchedulerKind::Conservative;
    scenario.priority = PriorityPolicy::Fcfs;
    scenario.seed = cell.seed;
    const double cancel = cell.cancel_fraction;
    (void)sweep.add(
        scenario, cell.label(),
        [cancel](const exp::Scenario& s,
                 const core::SimulationOptions& sim_options,
                 exp::CellResult& result) {
          workload::Trace trace = exp::build_workload(s);
          if (cancel > 0.0) {
            sim::Rng rng{s.seed * 977 + 13};
            workload::apply_cancellations(trace, cancel, /*patience=*/2.0,
                                          rng);
          }
          const SchedulerConfig config{s.procs(), s.priority};
          result.metrics = metrics::compute_metrics(
              run_simulation(trace, s.scheduler, config, {}, sim_options),
              config.procs);
        });
  }

  exp::SweepOptions serial;
  serial.audit = true;
  serial.validate = true;
  const exp::SweepReport oracle = sweep.run(serial);
  ASSERT_EQ(oracle.cells.size(), fuzz_grid().size());
  for (const exp::CellResult& cell : oracle.cells) {
    SCOPED_TRACE(cell.tag);
    EXPECT_GE(cell.metrics.overall.slowdown.mean(), 1.0);
    EXPECT_EQ(cell.metrics.overall.count() + cell.metrics.cancelled_jobs,
              kJobs);
  }

  exp::SweepOptions sharded = serial;
  sharded.threads = 3;
  sharded.chunk = 1;
  const exp::SweepReport parallel = sweep.run(sharded);
  EXPECT_EQ(metrics::metrics_json(parallel.merged),
            metrics::metrics_json(oracle.merged));
  for (std::size_t i = 0; i < oracle.cells.size(); ++i)
    EXPECT_EQ(metrics::metrics_json(parallel.cells[i].metrics),
              metrics::metrics_json(oracle.cells[i].metrics))
        << oracle.cells[i].tag;
}

TEST(AuditFuzz, FaultTolerantSweepReproducesTheAuditedGridUnderInjection) {
  // The fault-injected retry path must be invisible to the audited fuzz
  // grid: transient faults on several cells, healed by retries, with
  // the per-cell auditor + validator still attached, produce the exact
  // bytes of the fault-free serial oracle.
  const util::LogLevel saved = util::log_level();
  util::set_log_level(util::LogLevel::Off);
  util::reset_log_limits();
  exp::Sweep sweep;
  std::vector<std::string> tags;
  for (const FuzzCell& cell : fuzz_grid()) {
    exp::Scenario scenario;
    scenario.trace = cell.trace;
    scenario.jobs = kJobs;
    scenario.load = cell.load;
    scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                          .factor = cell.factor};
    scenario.scheduler = SchedulerKind::Conservative;
    scenario.priority = PriorityPolicy::Fcfs;
    scenario.seed = cell.seed;
    const double cancel = cell.cancel_fraction;
    tags.push_back(cell.label());
    (void)sweep.add(
        scenario, cell.label(),
        [cancel](const exp::Scenario& s,
                 const core::SimulationOptions& sim_options,
                 exp::CellResult& result) {
          workload::Trace trace = exp::build_workload(s);
          if (cancel > 0.0) {
            sim::Rng rng{s.seed * 977 + 13};
            workload::apply_cancellations(trace, cancel, /*patience=*/2.0,
                                          rng);
          }
          const SchedulerConfig config{s.procs(), s.priority};
          result.metrics = metrics::compute_metrics(
              run_simulation(trace, s.scheduler, config, {}, sim_options),
              config.procs);
        });
  }

  exp::SweepOptions serial;
  serial.audit = true;
  serial.validate = true;
  const exp::SweepReport oracle = sweep.run(serial);

  exp::FaultPlan faults;
  faults.add(tags[0], {.fail_attempts = 2});
  faults.add(tags[tags.size() / 2],
             {.fail_attempts = 1, .kind = util::FailureKind::ParseError});
  faults.add(tags.back(),
             {.fail_attempts = 1,
              .kind = util::FailureKind::ResourceExhausted});
  exp::SweepOptions faulty = serial;
  faulty.threads = 3;
  faulty.chunk = 1;
  faulty.policy.retries = 2;
  faulty.faults = &faults;
  const exp::SweepReport report = sweep.run(faulty);

  EXPECT_EQ(report.retried, 4u);
  EXPECT_TRUE(report.failures.empty());
  EXPECT_EQ(metrics::metrics_json(report.merged),
            metrics::metrics_json(oracle.merged));
  ASSERT_EQ(report.cells.size(), oracle.cells.size());
  for (std::size_t i = 0; i < oracle.cells.size(); ++i)
    EXPECT_EQ(metrics::metrics_json(report.cells[i].metrics),
              metrics::metrics_json(oracle.cells[i].metrics))
        << oracle.cells[i].tag;
  util::reset_log_limits();
  util::set_log_level(saved);
}

TEST(AuditFuzz, CollectingAuditorStaysSilentAndBusy) {
  // Differential sanity on the auditor itself: a clean run must produce
  // zero violations while performing a substantial number of checks --
  // an auditor that never checks anything would trivially "pass".
  const FuzzCell cell{.trace = exp::TraceKind::Sdsc,
                      .load = exp::kHighLoad,
                      .factor = 2.0,
                      .cancel_fraction = 0.15,
                      .seed = 5};
  const workload::Trace trace = build_fuzz_trace(cell);
  const int procs = exp::machine_procs(cell.trace);
  const SchedulerConfig config{procs, PriorityPolicy::Fcfs};
  const auto scheduler = make_scheduler(SchedulerKind::Conservative, config);
  ScheduleAuditor auditor{*scheduler, {.fatal = false}};
  const auto result = run_simulation(trace, *scheduler, {.auditor = &auditor});
  EXPECT_GT(result.events, 0u);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().to_string();
  EXPECT_GT(auditor.checks(), 10 * trace.size());
}

}  // namespace
}  // namespace bfsim::core
