// Golden-metrics regression corpus: fixed-seed scenario grids whose
// merged aggregate metrics are pinned to the byte (tolerance 0). Any
// change to the workload generators, schedulers, metric aggregation or
// the sweep merge that shifts a single bit of any double shows up here
// as a diff of the canonical %.17g JSON.
//
// Regenerating after an *intentional* behavior change: run this binary
// with --gtest_filter='GoldenMetrics.*'; each failure prints the full
// actual JSON between BEGIN/END markers -- paste it over the stale
// golden below and explain the shift in the commit message.
#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"

namespace bfsim::exp {
namespace {

struct GoldenCase {
  const char* name;
  TraceKind trace;
  core::SchedulerKind scheduler;
  core::PriorityPolicy priority;
  EstimateSpec estimates;
  const char* golden;  ///< canonical metrics_json of the merged grid
};

constexpr std::size_t kJobs = 200;
constexpr std::size_t kSeeds = 2;

std::string run_grid(const GoldenCase& c) {
  Scenario base;
  base.trace = c.trace;
  base.jobs = kJobs;
  base.load = kHighLoad;
  base.estimates = c.estimates;
  base.scheduler = c.scheduler;
  base.priority = c.priority;
  Sweep sweep;
  (void)sweep.add_replications(base, kSeeds, c.name);
  SweepOptions options;
  options.audit = true;
  options.validate = true;
  return metrics::metrics_json(sweep.run(options).merged);
}

void check(const GoldenCase& c) {
  const std::string actual = run_grid(c);
  if (actual != c.golden) {
    ADD_FAILURE() << c.name << ": merged metrics diverged from the golden "
                  << "corpus.\n--- BEGIN ACTUAL " << c.name << " ---\n"
                  << actual << "\n--- END ACTUAL " << c.name << " ---";
  }
}

// clang-format off
const GoldenCase kCorpus[] = {
    {"ctc-conservative-fcfs-exact", TraceKind::Ctc,
     core::SchedulerKind::Conservative, core::PriorityPolicy::Fcfs,
     {EstimateRegime::Exact, 1.0},
     R"GOLD({"overall":{"slowdown":{"count":360,"mean":14.247362260904106,"stddev":84.031248618981536,"min":1,"max":1344.3243243243244,"sum":5129.050413925479},"turnaround":{"count":360,"mean":15049.180555555555,"stddev":20337.592917834281,"min":30,"max":107881,"sum":5417705},"wait":{"count":360,"mean":5648.0055555555573,"stddev":10782.484399067083,"min":0,"max":57146,"sum":2033282}},"SN":{"slowdown":{"count":164,"mean":11.684125109199979,"stddev":54.291985390212041,"min":1,"max":610.18644067796606,"sum":1916.1965179087972},"turnaround":{"count":164,"mean":2879.4634146341468,"stddev":6227.8893207322926,"min":30,"max":36001,"sum":472232},"wait":{"count":164,"mean":2165.7804878048782,"stddev":6097.4386355837123,"min":0,"max":35942,"sum":355188}},"SW":{"slowdown":{"count":49,"mean":60.504332353007158,"stddev":200.26899266430948,"min":1,"max":1344.3243243243244,"sum":2964.7122852973507},"turnaround":{"count":49,"mean":8866.8367346938794,"stddev":13712.262082935931,"min":34,"max":50764,"sum":434475},"wait":{"count":49,"mean":8258.1836734693879,"stddev":13712.614283439701,"min":0,"max":50643,"sum":404651}},"LN":{"slowdown":{"count":88,"mean":1.4874619228500896,"stddev":0.84525288907031582,"min":1,"max":4.7488622258998756,"sum":130.89664921080791},"turnaround":{"count":88,"mean":29691.227272727272,"stddev":20114.196384087492,"min":3750,"max":78831,"sum":2612828},"wait":{"count":88,"mean":6911.9204545454531,"stddev":10820.155436049266,"min":0,"max":43072,"sum":608249}},"LW":{"slowdown":{"count":59,"mean":1.9872027374326073,"stddev":1.7491321894296366,"min":1,"max":10.887156124058174,"sum":117.24496150852383},"turnaround":{"count":59,"mean":32172.372881355936,"stddev":24780.367746497748,"min":3818,"max":107881,"sum":1898170},"wait":{"count":59,"mean":11274.474576271186,"stddev":14465.03823535232,"min":0,"max":57146,"sum":665194}},"well":{"slowdown":{"count":360,"mean":14.247362260904106,"stddev":84.031248618981536,"min":1,"max":1344.3243243243244,"sum":5129.050413925479},"turnaround":{"count":360,"mean":15049.180555555555,"stddev":20337.592917834281,"min":30,"max":107881,"sum":5417705},"wait":{"count":360,"mean":5648.0055555555573,"stddev":10782.484399067083,"min":0,"max":57146,"sum":2033282}},"poor":{"slowdown":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"turnaround":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"wait":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0}},"slowdown_tail":{"count":360,"p50":1,"p95":65.71681054170098,"p99":212.19094645550601,"max":1344.3243243243244},"utilization":0.61985008417764254,"makespan":270121,"killed":0,"cancelled":0,"backfilled":256})GOLD"},
    {"ctc-easy-sjf-actual", TraceKind::Ctc, core::SchedulerKind::Easy,
     core::PriorityPolicy::Sjf, {EstimateRegime::Actual, 1.0},
     R"GOLD({"overall":{"slowdown":{"count":360,"mean":5.5082652365151503,"stddev":28.660540310012887,"min":1,"max":312.76470588235293,"sum":1982.9754851454547},"turnaround":{"count":360,"mean":11932.547222222222,"stddev":19546.906381707999,"min":30,"max":146451,"sum":4295717},"wait":{"count":360,"mean":2531.3722222222223,"stddev":10224.418566073477,"min":0,"max":95716,"sum":911294}},"SN":{"slowdown":{"count":164,"mean":1.7347247368265646,"stddev":6.4217100666547822,"min":1,"max":66.314285714285717,"sum":284.49485683955646},"turnaround":{"count":164,"mean":784.01219512195132,"stddev":1011.7133253106351,"min":30,"max":6963,"sum":128578},"wait":{"count":164,"mean":70.329268292682912,"stddev":568.70964817153208,"min":0,"max":6858,"sum":11534}},"SW":{"slowdown":{"count":49,"mean":30.62272522991519,"stddev":72.482033936362484,"min":1,"max":312.76470588235293,"sum":1500.5135362658439},"turnaround":{"count":49,"mean":6707.6938775510189,"stddev":15253.899511278094,"min":30,"max":92783,"sum":328677},"wait":{"count":49,"mean":6099.0408163265329,"stddev":15274.62888796209,"min":0,"max":92381,"sum":298853}},"LN":{"slowdown":{"count":88,"mean":1.0098998142458191,"stddev":0.064055628571407369,"min":1,"max":1.5766078372719114,"sum":88.871183653632102},"turnaround":{"count":88,"mean":22949.181818181823,"stddev":16560.617480120844,"min":3750,"max":63839,"sum":2019528},"wait":{"count":88,"mean":169.87500000000003,"stddev":1064.4155572182681,"min":0,"max":9638,"sum":14949}},"LW":{"slowdown":{"count":59,"mean":1.8490831929902138,"stddev":1.7757956182181915,"min":1,"max":9.3101751623696121,"sum":109.09590838642262},"turnaround":{"count":59,"mean":30829.389830508473,"stddev":28917.795813136236,"min":3818,"max":146451,"sum":1818934},"wait":{"count":59,"mean":9931.4915254237294,"stddev":18955.643179741637,"min":0,"max":95716,"sum":585958}},"well":{"slowdown":{"count":237,"mean":4.2040603268758314,"stddev":22.502675574290347,"min":1,"max":258.0625,"sum":996.3622974695719},"turnaround":{"count":237,"mean":14177.367088607596,"stddev":20788.772658542715,"min":30,"max":146451,"sum":3360036},"wait":{"count":237,"mean":2214.8143459915609,"stddev":8600.5583746183038,"min":0,"max":95716,"sum":524911}},"poor":{"slowdown":{"count":123,"mean":8.0212454282592152,"stddev":37.788111133824046,"min":1,"max":312.76470588235293,"sum":986.61318767588341},"turnaround":{"count":123,"mean":7607.162601626017,"stddev":16114.075042692977,"min":30,"max":107713,"sum":935681},"wait":{"count":123,"mean":3141.3252032520327,"stddev":12804.670155650841,"min":0,"max":92381,"sum":386383}},"slowdown_tail":{"count":360,"p50":1,"p95":5.7537779004493608,"p99":147.83033221819554,"max":312.76470588235293},"utilization":0.59819932723207769,"makespan":304048,"killed":0,"cancelled":0,"backfilled":287})GOLD"},
    {"sdsc-kreservation-xfactor-r2", TraceKind::Sdsc,
     core::SchedulerKind::KReservation, core::PriorityPolicy::XFactor,
     {EstimateRegime::Systematic, 2.0},
     R"GOLD({"overall":{"slowdown":{"count":360,"mean":95.557884252281966,"stddev":317.89504778667879,"min":1,"max":2690.3548387096776,"sum":34400.838330821505},"turnaround":{"count":360,"mean":34850.666666666657,"stddev":53740.994472067548,"min":30,"max":408881,"sum":12546240},"wait":{"count":360,"mean":23649.99722222222,"stddev":38478.361220127626,"min":0,"max":313195,"sum":8513999}},"SN":{"slowdown":{"count":173,"mean":102.31402136107035,"stddev":300.58623870559211,"min":1,"max":1882.25,"sum":17700.325695465173},"turnaround":{"count":173,"mean":12461.849710982664,"stddev":21932.135588347384,"min":30,"max":76800,"sum":2155900},"wait":{"count":173,"mean":11774.13294797687,"stddev":21946.673780126497,"min":0,"max":75878,"sum":2036925}},"SW":{"slowdown":{"count":77,"mean":212.25380510755178,"stddev":496.61707403890864,"min":1,"max":2690.3548387096776,"sum":16343.542993281491},"turnaround":{"count":77,"mean":23911.389610389611,"stddev":28528.752867274026,"min":30,"max":106948,"sum":1841177},"wait":{"count":77,"mean":23094.740259740262,"stddev":28584.845970236984,"min":0,"max":106820,"sum":1778295}},"LN":{"slowdown":{"count":60,"mean":2.8953927986885213,"stddev":3.4488331736855442,"min":1,"max":16.181521028546523,"sum":173.72356792131131},"turnaround":{"count":60,"mean":70371.71666666666,"stddev":61722.97677858617,"min":3787,"max":256647,"sum":4222303},"wait":{"count":60,"mean":36622,"stddev":46668.750238030385,"min":0,"max":189225,"sum":2197320}},"LW":{"slowdown":{"count":50,"mean":3.6649214830706165,"stddev":3.6555720287913664,"min":1,"max":19.714536340852131,"sum":183.24607415353086},"turnaround":{"count":50,"mean":86537.199999999997,"stddev":85981.659950223795,"min":4107,"max":408881,"sum":4326860},"wait":{"count":50,"mean":50029.18,"stddev":62068.584299683665,"min":0,"max":313195,"sum":2501459}},"well":{"slowdown":{"count":360,"mean":95.557884252281966,"stddev":317.89504778667879,"min":1,"max":2690.3548387096776,"sum":34400.838330821505},"turnaround":{"count":360,"mean":34850.666666666657,"stddev":53740.994472067548,"min":30,"max":408881,"sum":12546240},"wait":{"count":360,"mean":23649.99722222222,"stddev":38478.361220127626,"min":0,"max":313195,"sum":8513999}},"poor":{"slowdown":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"turnaround":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"wait":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0}},"slowdown_tail":{"count":360,"p50":1,"p95":605.43788537549472,"p99":1607.7106294256494,"max":2690.3548387096776},"utilization":0.61916536919248255,"makespan":935222,"killed":0,"cancelled":0,"backfilled":302})GOLD"},
    {"sdsc-slack-fcfs-exact", TraceKind::Sdsc, core::SchedulerKind::Slack,
     core::PriorityPolicy::Fcfs, {EstimateRegime::Exact, 1.0},
     R"GOLD({"overall":{"slowdown":{"count":360,"mean":93.877552777822046,"stddev":335.52504983751317,"min":1,"max":4151.3783783783783,"sum":33795.919000015929},"turnaround":{"count":360,"mean":41076.811111111114,"stddev":63189.528677614289,"min":30,"max":330873,"sum":14787652},"wait":{"count":360,"mean":29876.141666666663,"stddev":51503.690320219226,"min":0,"max":244267,"sum":10755411}},"SN":{"slowdown":{"count":173,"mean":105.81195982446303,"stddev":313.66184107225297,"min":1,"max":1989.2820512820513,"sum":18305.469049632098},"turnaround":{"count":173,"mean":14166.653179190751,"stddev":28978.70706076963,"min":30,"max":152941,"sum":2450831},"wait":{"count":173,"mean":13478.936416184968,"stddev":28951.142533816786,"min":0,"max":151528,"sum":2331856}},"SW":{"slowdown":{"count":77,"mean":194.72759502459704,"stddev":535.5759519018743,"min":1,"max":4151.3783783783783,"sum":14994.024816893972},"turnaround":{"count":77,"mean":40688.454545454544,"stddev":62302.639348616911,"min":30,"max":226190,"sum":3133011},"wait":{"count":77,"mean":39871.80519480518,"stddev":62170.214776395376,"min":0,"max":225857,"sum":3070129}},"LN":{"slowdown":{"count":60,"mean":3.0530847969859822,"stddev":5.3521095325785639,"min":1,"max":33.127369956246959,"sum":183.18508781915889},"turnaround":{"count":60,"mean":68202.483333333352,"stddev":65380.277700695464,"min":3907,"max":265885,"sum":4092149},"wait":{"count":60,"mean":34452.76666666667,"stddev":49940.901404531898,"min":0,"max":219076,"sum":2067166}},"LW":{"slowdown":{"count":50,"mean":6.2648009134138398,"stddev":10.077240895384689,"min":1,"max":49.63558884297521,"sum":313.24004567069198},"turnaround":{"count":50,"mean":102233.22,"stddev":88683.101504288861,"min":4107,"max":330873,"sum":5111661},"wait":{"count":50,"mean":65725.200000000012,"stddev":71071.299059752782,"min":0,"max":244267,"sum":3286260}},"well":{"slowdown":{"count":360,"mean":93.877552777822046,"stddev":335.52504983751317,"min":1,"max":4151.3783783783783,"sum":33795.919000015929},"turnaround":{"count":360,"mean":41076.811111111114,"stddev":63189.528677614289,"min":30,"max":330873,"sum":14787652},"wait":{"count":360,"mean":29876.141666666663,"stddev":51503.690320219226,"min":0,"max":244267,"sum":10755411}},"poor":{"slowdown":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"turnaround":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"wait":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0}},"slowdown_tail":{"count":360,"p50":1,"p95":692.17008700870099,"p99":1347.7713638843456,"max":4151.3783783783783},"utilization":0.60679128072309818,"makespan":908513,"killed":0,"cancelled":0,"backfilled":284})GOLD"},
    {"ctc-plan-fcfs-r2", TraceKind::Ctc, core::SchedulerKind::Plan,
     core::PriorityPolicy::Fcfs, {EstimateRegime::Systematic, 2.0},
     R"GOLD({"overall":{"slowdown":{"count":360,"mean":11.84672457341512,"stddev":86.265875229398176,"min":1,"max":1530.1621621621621,"sum":4264.8208464294421},"turnaround":{"count":360,"mean":14358.76944444445,"stddev":20501.87166344469,"min":30,"max":107897,"sum":5169157},"wait":{"count":360,"mean":4957.5944444444458,"stddev":10342.465046812453,"min":0,"max":57162,"sum":1784734}},"SN":{"slowdown":{"count":164,"mean":5.6778963781131617,"stddev":23.312064187503964,"min":1,"max":233.82051282051282,"sum":931.17500601055849},"turnaround":{"count":164,"mean":2113.0060975609754,"stddev":5466.1035364442414,"min":30,"max":31656,"sum":346533},"wait":{"count":164,"mean":1399.323170731707,"stddev":5343.2311505351126,"min":0,"max":31345,"sum":229489}},"SW":{"slowdown":{"count":49,"mean":63.361618614657765,"stddev":225.04700913671491,"min":1,"max":1530.1621621621621,"sum":3104.7193121182308},"turnaround":{"count":49,"mean":8887.3673469387759,"stddev":14301.982325732968,"min":41,"max":56616,"sum":435481},"wait":{"count":49,"mean":8278.7142857142862,"stddev":14363.2845492132,"min":0,"max":56579,"sum":405657}},"LN":{"slowdown":{"count":88,"mean":1.3390371492324258,"stddev":0.67423199633480857,"min":1,"max":4.667123663284892,"sum":117.83526913245348},"turnaround":{"count":88,"mean":28291.159090909085,"stddev":20215.00045964864,"min":3750,"max":83593,"sum":2489622},"wait":{"count":88,"mean":5511.852272727273,"stddev":9180.4532086306517,"min":0,"max":37283,"sum":485043}},"LW":{"slowdown":{"count":59,"mean":1.8829026977660956,"stddev":1.4317799939222988,"min":1,"max":6.9990159417437514,"sum":111.09125916819963},"turnaround":{"count":59,"mean":32161.372881355936,"stddev":25869.609965268399,"min":3818,"max":107897,"sum":1897521},"wait":{"count":59,"mean":11263.474576271186,"stddev":14094.68631637828,"min":0,"max":57162,"sum":664545}},"well":{"slowdown":{"count":360,"mean":11.84672457341512,"stddev":86.265875229398176,"min":1,"max":1530.1621621621621,"sum":4264.8208464294421},"turnaround":{"count":360,"mean":14358.76944444445,"stddev":20501.87166344469,"min":30,"max":107897,"sum":5169157},"wait":{"count":360,"mean":4957.5944444444458,"stddev":10342.465046812453,"min":0,"max":57162,"sum":1784734}},"poor":{"slowdown":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"turnaround":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0},"wait":{"count":0,"mean":0,"stddev":0,"min":0,"max":0,"sum":0}},"slowdown_tail":{"count":360,"p50":1,"p95":39.498542919628228,"p99":166.80082829888772,"max":1530.1621621621621},"utilization":0.6027007775354144,"makespan":275578,"killed":0,"cancelled":0,"backfilled":273})GOLD"},
};
// clang-format on

TEST(GoldenMetrics, CtcConservativeFcfsExact) { check(kCorpus[0]); }
TEST(GoldenMetrics, CtcEasySjfActual) { check(kCorpus[1]); }
TEST(GoldenMetrics, SdscKReservationXFactorR2) { check(kCorpus[2]); }
TEST(GoldenMetrics, SdscSlackFcfsExact) { check(kCorpus[3]); }
TEST(GoldenMetrics, CtcPlanFcfsR2) { check(kCorpus[4]); }

TEST(GoldenMetrics, CorpusIsThreadCountInvariant) {
  // The corpus pins the *serial* merge; this pins the sharded one to the
  // same bytes, so a golden mismatch is never a concurrency artifact.
  for (const GoldenCase& c : kCorpus) {
    Scenario base;
    base.trace = c.trace;
    base.jobs = kJobs;
    base.load = kHighLoad;
    base.estimates = c.estimates;
    base.scheduler = c.scheduler;
    base.priority = c.priority;
    Sweep sweep;
    (void)sweep.add_replications(base, kSeeds, c.name);
    SweepOptions parallel;
    parallel.threads = 2;
    EXPECT_EQ(metrics::metrics_json(sweep.run(parallel).merged),
              metrics::metrics_json(sweep.run({}).merged))
        << c.name;
  }
}

}  // namespace
}  // namespace bfsim::exp
