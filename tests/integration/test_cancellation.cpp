// Queued-job cancellation: semantics of the driver, the hole it punches
// into reservation-based schedulers, and validity across every policy.
#include <gtest/gtest.h>

#include "core/conservative_scheduler.hpp"
#include "core/simulation.hpp"
#include "core/validator.hpp"
#include "metrics/aggregate.hpp"
#include "test_support.hpp"
#include "workload/transforms.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

Trace with_cancel(Trace trace, JobId id, sim::Time when) {
  trace[id].cancel_at = when;
  return trace;
}

TEST(Cancellation, QueuedJobIsWithdrawn) {
  Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 100, .procs = 4},  // queued, cancelled at 50
      {.submit = 2, .runtime = 100, .procs = 4},
  });
  trace = with_cancel(trace, 1, 50);
  const auto result = run_simulation(trace, SchedulerKind::Easy,
                                     SchedulerConfig{4, PriorityPolicy::Fcfs},
                                     {}, {.validate = true});
  EXPECT_TRUE(result.outcomes[1].cancelled);
  EXPECT_EQ(result.outcomes[1].start, sim::kNoTime);
  // Job 2 inherits the freed queue position.
  EXPECT_EQ(result.outcomes[2].start, 100);
}

TEST(Cancellation, StartedJobIgnoresCancellation) {
  Trace trace = make_trace({{.submit = 0, .runtime = 100, .procs = 2}});
  trace = with_cancel(trace, 0, 50);  // already running at t=50
  const auto result = run_simulation(trace, SchedulerKind::Conservative,
                                     SchedulerConfig{4, PriorityPolicy::Fcfs},
                                     {}, {.validate = true});
  EXPECT_FALSE(result.outcomes[0].cancelled);
  EXPECT_EQ(result.outcomes[0].end, 100);
}

TEST(Cancellation, CancellationBeforeSubmitRejected) {
  Trace trace = make_trace({{.submit = 100, .runtime = 10, .procs = 1}});
  trace = with_cancel(trace, 0, 50);
  EXPECT_THROW(
      (void)run_simulation(trace, SchedulerKind::Easy,
                           SchedulerConfig{4, PriorityPolicy::Fcfs}),
      std::invalid_argument);
}

TEST(Cancellation, SubmitAndCancelAtSameInstant) {
  Trace trace = make_trace({{.submit = 0, .runtime = 100, .procs = 4},
                            {.submit = 5, .runtime = 100, .procs = 4}});
  trace = with_cancel(trace, 1, 5);  // withdrawn the moment it arrives
  const auto result = run_simulation(trace, SchedulerKind::Conservative,
                                     SchedulerConfig{4, PriorityPolicy::Fcfs},
                                     {}, {.validate = true});
  EXPECT_TRUE(result.outcomes[1].cancelled);
}

TEST(Cancellation, SameInstantSubmitCancelOrderingInOneBatch) {
  // Driver-level batch ordering at t=5: both submits are delivered
  // first (job 1, then job 2, each taking a reservation behind job 0),
  // the cancellation last. Job 2's reservation is therefore computed
  // while job 1's [100, 200) roof still exists and must be compressed
  // back to t=100 within the same batch's scheduling pass.
  Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 5, .runtime = 100, .procs = 4},  // withdrawn on arrival
      {.submit = 5, .runtime = 100, .procs = 4},
  });
  trace = with_cancel(trace, 1, 5);
  const auto result = run_simulation(trace, SchedulerKind::Conservative,
                                     SchedulerConfig{4, PriorityPolicy::Fcfs},
                                     {}, {.validate = true, .audit = true});
  EXPECT_TRUE(result.outcomes[1].cancelled);
  EXPECT_EQ(result.outcomes[1].start, sim::kNoTime);
  EXPECT_EQ(result.outcomes[2].start, 100);
  // 3 submits + 1 cancel + 2 finishes; wake-ups are not counted here.
  EXPECT_EQ(result.events, 6u);
}

TEST(Cancellation, ConservativeReleasesTheReservationHole) {
  // Job 1 (whole machine) is reserved [100, 200) and blocks job 2 until
  // 200. Cancelling job 1 at t=50 must pull job 2 up to t=100.
  Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 100, .procs = 4},
      {.submit = 2, .runtime = 100, .procs = 4},
  });
  const auto blocked = run_simulation(
      trace, SchedulerKind::Conservative,
      SchedulerConfig{4, PriorityPolicy::Fcfs}, {}, {.validate = true});
  EXPECT_EQ(blocked.outcomes[2].start, 200);
  const auto freed = run_simulation(
      with_cancel(trace, 1, 50), SchedulerKind::Conservative,
      SchedulerConfig{4, PriorityPolicy::Fcfs}, {}, {.validate = true});
  EXPECT_TRUE(freed.outcomes[1].cancelled);
  EXPECT_EQ(freed.outcomes[2].start, 100);
}

TEST(Cancellation, ConservativeProfileStaysConsistent) {
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  Job b = a;
  b.id = 1;
  b.submit = 1;
  scheduler.job_submitted(a, 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(b, 1);
  scheduler.job_cancelled(1, 10);
  EXPECT_NO_THROW(scheduler.profile().check_invariants());
  EXPECT_EQ(scheduler.profile().procs_free_at(150), 4);  // reservation gone
  EXPECT_EQ(scheduler.queued_count(), 0u);
  // Cancelling twice (or a never-queued id) is a caller bug.
  EXPECT_THROW(scheduler.job_cancelled(1, 11), std::logic_error);
}

TEST(Cancellation, AllSchedulersStayValidUnderCancellations) {
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Easy, SchedulerKind::Conservative,
        SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack}) {
    for (const auto priority : {PriorityPolicy::Fcfs, PriorityPolicy::Sjf}) {
      Trace trace = test::random_trace(400, 8, 55, true);
      sim::Rng rng{99};
      workload::apply_cancellations(trace, 0.25, 1.0, rng);
      const auto result =
          run_simulation(trace, kind, SchedulerConfig{8, priority});
      const auto report = validate_schedule(trace, result.outcomes, 8);
      EXPECT_TRUE(report.ok()) << to_string(kind) << ": "
                               << report.violations.front();
      // Work conservation over the jobs that actually ran.
      std::int64_t work = 0, expected = 0;
      std::size_t cancelled = 0;
      for (const JobOutcome& o : result.outcomes) {
        if (o.cancelled) {
          ++cancelled;
          continue;
        }
        work += static_cast<std::int64_t>(o.end - o.start) * o.job.procs;
        expected += static_cast<std::int64_t>(
                        std::min(o.job.runtime, o.job.estimate)) *
                    o.job.procs;
      }
      EXPECT_EQ(work, expected);
      EXPECT_GT(cancelled, 0u) << "cancellation never triggered";
    }
  }
}

TEST(Cancellation, MetricsExcludeCancelledJobs) {
  Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 100, .procs = 4},
  });
  trace = with_cancel(trace, 1, 20);
  const auto result = run_simulation(trace, SchedulerKind::Easy,
                                     SchedulerConfig{4, PriorityPolicy::Fcfs});
  const auto m = metrics::compute_metrics(result, 4);
  EXPECT_EQ(m.overall.count(), 1u);
  EXPECT_EQ(m.cancelled_jobs, 1u);
  EXPECT_EQ(m.slowdowns.count(), 1u);
}

TEST(Cancellation, ValidatorFlagsInconsistentCancelledOutcome) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  std::vector<JobOutcome> outcomes(1);
  outcomes[0].job = trace[0];
  outcomes[0].cancelled = true;  // but the job has no cancel_at
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("cancelled"), std::string::npos);
}

TEST(Cancellation, ApplyCancellationsValidatesAndIsDeterministic) {
  Trace trace = test::random_trace(200, 8, 5, false);
  sim::Rng a{1}, b{1};
  Trace t1 = trace, t2 = trace;
  workload::apply_cancellations(t1, 0.3, 2.0, a);
  workload::apply_cancellations(t2, 0.3, 2.0, b);
  EXPECT_EQ(t1, t2);
  std::size_t marked = 0;
  for (std::size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].cancel_at == sim::kNoTime) continue;
    ++marked;
    EXPECT_GT(t1[i].cancel_at, t1[i].submit);
  }
  EXPECT_NEAR(static_cast<double>(marked) / t1.size(), 0.3, 0.1);
  sim::Rng rng{2};
  EXPECT_THROW(workload::apply_cancellations(trace, 1.5, 1.0, rng),
               std::invalid_argument);
  EXPECT_THROW(workload::apply_cancellations(trace, 0.5, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::core
