// The availability differential wall.
//
// 1. Zero-outage identity: threading an *empty* FailureTrace through
//    the replay must be byte-invisible -- identical schedules, identical
//    pass/skip/wakeup accounting -- for every scheduler and policy.
//    This is the contract that let the failure layer land without
//    touching a single pre-availability golden result.
// 2. Requeue determinism: the same (trace, failure trace, policy) runs
//    to the identical schedule every time, including when many replicas
//    run concurrently on different threads.
// 3. Randomized failure fuzz: seeded generated outage scenarios driven
//    through every scheduler with the extended auditor and validator
//    attached -- the auditor's capacity checks against the outage
//    timeline are the real assertion.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/failure.hpp"
#include "sim/rng.hpp"
#include "workload/transforms.hpp"

namespace bfsim::core {
namespace {

constexpr std::size_t kJobs = 200;

const SchedulerKind kAllKinds[] = {
    SchedulerKind::Fcfs,         SchedulerKind::Easy,
    SchedulerKind::Conservative, SchedulerKind::KReservation,
    SchedulerKind::Selective,    SchedulerKind::Slack,
    SchedulerKind::Plan,
};

workload::Trace build_trace(double factor, double cancel_fraction,
                            std::uint64_t seed) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = kJobs;
  scenario.load = exp::kHighLoad;
  scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                        .factor = factor};
  scenario.seed = seed;
  workload::Trace trace = exp::build_workload(scenario);
  if (cancel_fraction > 0.0) {
    sim::Rng rng{seed * 977 + 13};
    workload::apply_cancellations(trace, cancel_fraction, /*patience=*/2.0,
                                  rng);
  }
  return trace;
}

/// An outage scenario dense enough to intersect a kJobs-sized workload:
/// mean six hours up, one hour down, losing up to a quarter of the
/// machine per failure.
sim::FailureTrace build_failures(int procs, std::uint64_t seed) {
  sim::FailureModel model;
  model.mean_uptime = 6.0 * static_cast<double>(sim::kHour);
  model.mean_repair = 1.0 * static_cast<double>(sim::kHour);
  model.max_procs_lost = procs / 4;
  return generate_failures(model, procs, 0, seed);
}

/// Byte-level equality on every field of the result.
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start);
    EXPECT_EQ(a.outcomes[i].end, b.outcomes[i].end);
    EXPECT_EQ(a.outcomes[i].killed, b.outcomes[i].killed);
    EXPECT_EQ(a.outcomes[i].cancelled, b.outcomes[i].cancelled);
    EXPECT_EQ(a.outcomes[i].requeues, b.outcomes[i].requeues);
    EXPECT_EQ(a.outcomes[i].first_start, b.outcomes[i].first_start);
    EXPECT_EQ(a.outcomes[i].requeue_wait, b.outcomes[i].requeue_wait);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.passes_skipped, b.passes_skipped);
  EXPECT_EQ(a.wakeups, b.wakeups);
  EXPECT_EQ(a.max_queue, b.max_queue);
  EXPECT_EQ(a.outages, b.outages);
  EXPECT_EQ(a.repairs, b.repairs);
  EXPECT_EQ(a.kills, b.kills);
}

TEST(FailureDifferential, EmptyFailureTraceIsByteInvisible) {
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const sim::FailureTrace empty;
  for (const double factor : {1.0, 4.0}) {
    for (const double cancel : {0.0, 0.15}) {
      const workload::Trace trace = build_trace(factor, cancel, 1);
      for (const SchedulerKind kind : kAllKinds) {
        for (const PriorityPolicy priority : kPaperPolicies) {
          SCOPED_TRACE(to_string(kind) + "-" + to_string(priority) +
                       " R=" + std::to_string(factor) +
                       " cancel=" + std::to_string(cancel));
          const SchedulerConfig config{procs, priority};
          const SimulationResult baseline =
              run_simulation(trace, kind, config, {}, {.validate = true});
          SimulationOptions with_empty;
          with_empty.validate = true;
          with_empty.failures = &empty;
          const SimulationResult gated =
              run_simulation(trace, kind, config, {}, with_empty);
          expect_identical(baseline, gated);
          EXPECT_EQ(gated.outages, 0u);
          EXPECT_EQ(gated.kills, 0u);
        }
      }
    }
  }
}

TEST(FailureDifferential, RequeueRunsAreDeterministicAcrossRepeats) {
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(2.0, 0.1, 3);
  const sim::FailureTrace failures = build_failures(procs, 11);
  ASSERT_FALSE(failures.empty());
  for (const SchedulerKind kind : kAllKinds) {
    for (const sim::RequeuePolicy policy :
         {sim::RequeuePolicy::kResubmitFull,
          sim::RequeuePolicy::kResubmitRemaining}) {
      SCOPED_TRACE(to_string(kind) + " requeue=" + sim::to_string(policy));
      SimulationOptions options;
      options.validate = true;
      options.failures = &failures;
      options.requeue = policy;
      const SchedulerConfig config{procs, PriorityPolicy::Fcfs};
      const SimulationResult first =
          run_simulation(trace, kind, config, {}, options);
      const SimulationResult second =
          run_simulation(trace, kind, config, {}, options);
      expect_identical(first, second);
      EXPECT_EQ(first.outages, failures.size());
      EXPECT_EQ(first.repairs, failures.size());
    }
  }
}

TEST(FailureDifferential, RequeueRunsAreDeterministicAcrossThreads) {
  // Four replicas of the same availability run race on their own
  // threads; all must land on the serial baseline byte for byte. The
  // simulation shares nothing mutable across replicas, so this is the
  // "identical schedules across thread counts" property -- and under
  // TSan it also proves the failure path touches no hidden globals.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(1.0, 0.0, 5);
  const sim::FailureTrace failures = build_failures(procs, 23);
  SimulationOptions options;
  options.validate = true;
  options.failures = &failures;
  options.requeue = sim::RequeuePolicy::kResubmitRemaining;
  const SchedulerConfig config{procs, PriorityPolicy::Fcfs};
  const SimulationResult baseline = run_simulation(
      trace, SchedulerKind::Easy, config, {}, options);
  constexpr int kThreads = 4;
  std::vector<SimulationResult> replicas(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      workers.emplace_back([&, t] {
        replicas[t] = run_simulation(trace, SchedulerKind::Easy, config, {},
                                     options);
      });
    for (std::thread& worker : workers) worker.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("replica " + std::to_string(t));
    expect_identical(replicas[t], baseline);
  }
}

TEST(FailureDifferential, AuditedFuzzAcrossEverySchedulerAndPolicy) {
  // The extended auditor (outage-capacity accounting, kill/requeue
  // lifecycle, profile checks with outage rectangles) and the physical
  // validator ride along on every cell; any divergence throws inside
  // run_simulation. The kill tally proves the grid actually exercises
  // the victim path rather than scheduling around every outage.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  std::uint64_t total_kills = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const workload::Trace trace = build_trace(2.0, 0.1, seed);
    const sim::FailureTrace failures = build_failures(procs, seed * 31 + 7);
    for (const SchedulerKind kind : kAllKinds) {
      for (const sim::RequeuePolicy policy :
           {sim::RequeuePolicy::kResubmitFull,
            sim::RequeuePolicy::kResubmitRemaining}) {
        SCOPED_TRACE(to_string(kind) + " requeue=" + sim::to_string(policy) +
                     " seed=" + std::to_string(seed));
        SimulationOptions options;
        options.validate = true;
        options.audit = true;
        options.failures = &failures;
        options.requeue = policy;
        const SimulationResult result = run_simulation(
            trace, kind, SchedulerConfig{procs, PriorityPolicy::Fcfs}, {},
            options);
        EXPECT_EQ(result.outages, failures.size());
        EXPECT_EQ(result.repairs, failures.size());
        total_kills += result.kills;
        // Every job still completes or is cancelled -- run_simulation
        // itself enforces this, so reaching here is the assertion.
      }
    }
  }
  EXPECT_GT(total_kills, 0u);
}

}  // namespace
}  // namespace bfsim::core
