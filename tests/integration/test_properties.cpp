// Cross-cutting property tests: every scheduler x priority x workload
// combination must produce a physically valid, deterministic schedule,
// and algebraic relationships between the schedulers must hold.
#include <gtest/gtest.h>

#include <tuple>

#include "core/simulation.hpp"
#include "core/validator.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using Combo = std::tuple<SchedulerKind, PriorityPolicy, std::uint64_t, bool>;

class SchedulerPropertyTest : public testing::TestWithParam<Combo> {};

TEST_P(SchedulerPropertyTest, ScheduleIsValidAndWorkConserving) {
  const auto [kind, priority, seed, overestimate] = GetParam();
  const Trace trace = test::random_trace(400, 16, seed, overestimate);
  const auto result = run_simulation(trace, kind,
                                     SchedulerConfig{16, priority});

  const auto report = validate_schedule(trace, result.outcomes, 16);
  ASSERT_TRUE(report.ok()) << report.violations.front();

  // Work conservation: every job ran once for its effective runtime.
  std::int64_t work = 0;
  for (const JobOutcome& o : result.outcomes) {
    EXPECT_GE(o.start, o.job.submit);
    work += static_cast<std::int64_t>(o.end - o.start) * o.job.procs;
  }
  std::int64_t expected = 0;
  for (const Job& j : trace)
    expected += static_cast<std::int64_t>(std::min(j.runtime, j.estimate)) *
                j.procs;
  EXPECT_EQ(work, expected);

  // Peak usage never exceeds the machine.
  EXPECT_LE(peak_usage(result.outcomes), 16);
}

TEST_P(SchedulerPropertyTest, NoIdleStartDelay) {
  // When the machine is totally idle and the queue is empty, an arriving
  // job must start instantly, whatever the policy.
  const auto [kind, priority, seed, overestimate] = GetParam();
  const Trace trace = test::make_trace(
      {{.submit = 1000, .runtime = 50, .procs = 16,
        .estimate = overestimate ? sim::Time{500} : sim::Time{0}}});
  const auto result =
      run_simulation(trace, kind, SchedulerConfig{16, priority});
  EXPECT_EQ(result.outcomes[0].start, 1000);
}

std::string combo_name(const testing::TestParamInfo<Combo>& info) {
  const SchedulerKind kind = std::get<0>(info.param);
  const PriorityPolicy priority = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  const bool over = std::get<3>(info.param);
  std::string name = to_string(kind) + "_" + to_string(priority) + "_s" +
                     std::to_string(seed) + (over ? "_over" : "_exact");
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchedulerPropertyTest,
    testing::Combine(
        testing::Values(SchedulerKind::Fcfs, SchedulerKind::Easy,
                        SchedulerKind::Conservative,
                        SchedulerKind::KReservation,
                        SchedulerKind::Selective, SchedulerKind::Slack),
        testing::Values(PriorityPolicy::Fcfs, PriorityPolicy::Sjf,
                        PriorityPolicy::XFactor),
        testing::Values(std::uint64_t{1}, std::uint64_t{2}),
        testing::Bool()),
    combo_name);

// --- Algebraic relationships -----------------------------------------

class CrossSchedulerTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossSchedulerTest, EasyEqualsReservationDepthOne) {
  // The shadow/extra formulation of EASY and the profile-based
  // K-reservation scheduler with depth 1 are two independent
  // implementations of the same policy: schedules must coincide exactly.
  for (const bool overestimate : {false, true}) {
    const Trace trace = test::random_trace(500, 12, GetParam(), overestimate);
    for (const auto priority :
         {PriorityPolicy::Fcfs, PriorityPolicy::Sjf,
          PriorityPolicy::XFactor}) {
      const SchedulerConfig config{12, priority};
      const auto easy = run_simulation(trace, SchedulerKind::Easy, config);
      SchedulerExtras extras;
      extras.reservation_depth = 1;
      const auto kres =
          run_simulation(trace, SchedulerKind::KReservation, config, extras);
      EXPECT_EQ(test::start_times(easy), test::start_times(kres))
          << to_string(priority) << (overestimate ? " over" : " exact");
    }
  }
}

TEST_P(CrossSchedulerTest, ConservativePriorityEquivalenceWithExactEstimates) {
  // Paper Section 4.1: with exact estimates, conservative backfilling
  // produces the identical schedule for every priority policy.
  const Trace trace = test::random_trace(500, 12, GetParam(),
                                         /*overestimate=*/false);
  const auto baseline = run_simulation(
      trace, SchedulerKind::Conservative,
      SchedulerConfig{12, PriorityPolicy::Fcfs});
  for (const auto priority :
       {PriorityPolicy::Sjf, PriorityPolicy::XFactor, PriorityPolicy::Ljf,
        PriorityPolicy::Narrowest, PriorityPolicy::Widest}) {
    const auto other = run_simulation(trace, SchedulerKind::Conservative,
                                      SchedulerConfig{12, priority});
    EXPECT_EQ(test::start_times(baseline), test::start_times(other))
        << to_string(priority);
  }
}

TEST_P(CrossSchedulerTest, ConservativeDivergesAcrossPrioritiesWithHoles) {
  // The converse: with heavy overestimation, early completions create
  // holes and the compression order (= priority policy) matters. We only
  // require *some* divergence between FCFS and SJF on a busy trace.
  const Trace trace = test::random_trace(500, 12, GetParam(),
                                         /*overestimate=*/true);
  const auto fcfs = run_simulation(trace, SchedulerKind::Conservative,
                                   SchedulerConfig{12, PriorityPolicy::Fcfs});
  const auto sjf = run_simulation(trace, SchedulerKind::Conservative,
                                  SchedulerConfig{12, PriorityPolicy::Sjf});
  EXPECT_NE(test::start_times(fcfs), test::start_times(sjf));
}

TEST_P(CrossSchedulerTest, BackfillingNeverHurtsTotalThroughput) {
  // Makespan with backfilling is never worse than plain FCFS on the same
  // trace -- backfilling only moves work earlier into holes.
  const Trace trace = test::random_trace(400, 12, GetParam(), false);
  const SchedulerConfig config{12, PriorityPolicy::Fcfs};
  const auto plain = run_simulation(trace, SchedulerKind::Fcfs, config);
  const auto easy = run_simulation(trace, SchedulerKind::Easy, config);
  const auto cons =
      run_simulation(trace, SchedulerKind::Conservative, config);
  EXPECT_LE(easy.makespan, plain.makespan);
  EXPECT_LE(cons.makespan, plain.makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSchedulerTest,
                         testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace bfsim::core
