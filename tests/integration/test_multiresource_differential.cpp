// The multi-resource differential wall: turning the burst-buffer axis
// ON while every job demands zero buffer must be byte-invisible. For
// every scheduler kind, the same trace run with burst_buffer=0 and with
// burst_buffer=N (all demands 0) must produce identical outcomes,
// identical scheduler counters, and identical canonical metrics JSON --
// the contract that lets procs-only studies upgrade to MultiProfile
// without re-validating a single golden.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/report.hpp"
#include "sim/rng.hpp"
#include "test_support.hpp"
#include "workload/transforms.hpp"

namespace bfsim::core {
namespace {

using test::assign_random_bb;
using test::random_trace;

constexpr int kProcs = 16;

const SchedulerKind kAllKinds[] = {
    SchedulerKind::Fcfs,         SchedulerKind::Easy,
    SchedulerKind::Conservative, SchedulerKind::KReservation,
    SchedulerKind::Selective,    SchedulerKind::Slack,
    SchedulerKind::Plan,
};

void expect_identical(const SimulationResult& with_axis,
                      const SimulationResult& without) {
  ASSERT_EQ(with_axis.outcomes.size(), without.outcomes.size());
  for (std::size_t i = 0; i < with_axis.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(with_axis.outcomes[i].start, without.outcomes[i].start);
    EXPECT_EQ(with_axis.outcomes[i].end, without.outcomes[i].end);
    EXPECT_EQ(with_axis.outcomes[i].killed, without.outcomes[i].killed);
    EXPECT_EQ(with_axis.outcomes[i].cancelled, without.outcomes[i].cancelled);
  }
  EXPECT_EQ(with_axis.makespan, without.makespan);
  EXPECT_EQ(with_axis.events, without.events);
  EXPECT_EQ(with_axis.passes, without.passes);
  EXPECT_EQ(with_axis.passes_skipped, without.passes_skipped);
  EXPECT_EQ(with_axis.wakeups, without.wakeups);
  EXPECT_EQ(with_axis.max_queue, without.max_queue);
  EXPECT_EQ(metrics::metrics_json(metrics::compute_metrics(with_axis, kProcs)),
            metrics::metrics_json(metrics::compute_metrics(without, kProcs)));
}

TEST(MultiResourceDifferential, ZeroDemandsMakeTheBufferAxisInvisible) {
  for (const std::uint64_t seed : {51u, 52u}) {
    const Trace trace = random_trace(150, kProcs, seed, /*overestimate=*/true);
    for (const SchedulerKind kind : kAllKinds) {
      SCOPED_TRACE(to_string(kind) + " seed " + std::to_string(seed));
      const SimulationResult without = run_simulation(
          trace, kind, SchedulerConfig{kProcs, PriorityPolicy::Fcfs}, {},
          {.validate = true, .audit = true});
      const SimulationResult with_axis = run_simulation(
          trace, kind,
          SchedulerConfig{kProcs, PriorityPolicy::Fcfs,
                          /*burst_buffer=*/4096},
          {}, {.validate = true, .audit = true});
      expect_identical(with_axis, without);
    }
  }
}

TEST(MultiResourceDifferential, CancellationsStayInvisibleToo) {
  // The cancel path exercises reservation removal and profile release;
  // the axis-0 identity must survive it in every scheduler.
  Trace trace = random_trace(150, kProcs, 53, /*overestimate=*/true);
  sim::Rng rng{53 * 977 + 13};
  workload::apply_cancellations(trace, 0.15, /*patience=*/2.0, rng);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    const SimulationResult without = run_simulation(
        trace, kind, SchedulerConfig{kProcs, PriorityPolicy::Sjf}, {},
        {.validate = true, .audit = true});
    const SimulationResult with_axis = run_simulation(
        trace, kind,
        SchedulerConfig{kProcs, PriorityPolicy::Sjf, /*burst_buffer=*/1024},
        {}, {.validate = true, .audit = true});
    expect_identical(with_axis, without);
  }
}

TEST(MultiResourceDifferential, AmpleBufferNeverChangesTheSchedule) {
  // Non-zero demands that can never contend (every job fits the buffer
  // alongside all others) must also be invisible: the second axis only
  // matters when it binds.
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    Trace trace = random_trace(120, kProcs, 54, /*overestimate=*/true);
    const SimulationResult without = run_simulation(
        trace, kind, SchedulerConfig{kProcs, PriorityPolicy::Fcfs}, {},
        {.validate = true, .audit = true});
    // Demands <= 4 GB with capacity procs*4: even all-jobs-running
    // cannot exceed the buffer, so no anchor ever moves.
    assign_random_bb(trace, 4, 0xbeef);
    const SimulationResult with_axis = run_simulation(
        trace, kind,
        SchedulerConfig{kProcs, PriorityPolicy::Fcfs,
                        /*burst_buffer=*/kProcs * 4},
        {}, {.validate = true, .audit = true});
    expect_identical(with_axis, without);
  }
}

TEST(MultiResourceDifferential, ContendedBufferRunsCleanEverywhere) {
  // When the buffer *does* bind, every scheduler must still produce a
  // valid, audit-clean schedule (per-axis capacity checks fatal).
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    Trace trace = random_trace(150, kProcs, 55, /*overestimate=*/true);
    assign_random_bb(trace, 96, 0xfeed);
    (void)run_simulation(
        trace, kind,
        SchedulerConfig{kProcs, PriorityPolicy::Fcfs, /*burst_buffer=*/128},
        {}, {.validate = true, .audit = true});
  }
}

}  // namespace
}  // namespace bfsim::core
