#include "util/log.hpp"

#include <gtest/gtest.h>

namespace bfsim::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  EXPECT_NO_THROW(log_message(LogLevel::Error, "dropped"));
  EXPECT_NO_THROW(log_error() << "also dropped " << 42);
}

TEST(Log, StreamStyleComposesMessage) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);  // keep test output clean
  // The statement must compile and accept mixed types.
  log_info() << "jobs=" << 100 << " load=" << 0.85;
}

TEST(Log, EmittedMessagesGoToStderr) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  testing::internal::CaptureStderr();
  log_warn() << "watch out";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[warn] watch out"), std::string::npos);
}

TEST(Log, ThresholdFiltersLowerLevels) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  log_debug() << "quiet";
  log_info() << "quiet too";
  log_error() << "loud";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet"), std::string::npos);
  EXPECT_NE(err.find("loud"), std::string::npos);
}

class LogLimitGuard {
 public:
  LogLimitGuard() { reset_log_limits(); }
  ~LogLimitGuard() { reset_log_limits(); }
};

TEST(LogLimited, EmitsUpToLimitThenSuppresses) {
  const LogLevelGuard guard;
  const LogLimitGuard limits;
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 5; ++i)
    (void)log_limited(LogLevel::Warn, "k", "msg " + std::to_string(i), 3);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("msg 0"), std::string::npos);
  EXPECT_NE(err.find("msg 2"), std::string::npos);
  EXPECT_EQ(err.find("msg 3"), std::string::npos);
  EXPECT_EQ(err.find("msg 4"), std::string::npos);
  // The one-shot suppression notice names the key and the limit.
  EXPECT_NE(err.find("[k]"), std::string::npos);
  EXPECT_NE(err.find("suppressed"), std::string::npos);
  EXPECT_EQ(log_suppressed("k"), 2u);
}

TEST(LogLimited, ReturnsWhetherEmitted) {
  const LogLevelGuard guard;
  const LogLimitGuard limits;
  set_log_level(LogLevel::Off);  // threshold does not affect counting
  EXPECT_TRUE(log_limited(LogLevel::Warn, "r", "a", 2));
  EXPECT_TRUE(log_limited(LogLevel::Warn, "r", "b", 2));
  EXPECT_FALSE(log_limited(LogLevel::Warn, "r", "c", 2));
  EXPECT_EQ(log_suppressed("r"), 1u);
}

TEST(LogLimited, KeysAreIndependent) {
  const LogLevelGuard guard;
  const LogLimitGuard limits;
  set_log_level(LogLevel::Off);
  for (int i = 0; i < 4; ++i) (void)log_limited(LogLevel::Warn, "a", "x", 1);
  EXPECT_EQ(log_suppressed("a"), 3u);
  EXPECT_EQ(log_suppressed("b"), 0u);
  EXPECT_TRUE(log_limited(LogLevel::Warn, "b", "x", 1));
}

TEST(LogLimited, ResetRestoresFreshCounters) {
  const LogLevelGuard guard;
  const LogLimitGuard limits;
  set_log_level(LogLevel::Off);
  (void)log_limited(LogLevel::Warn, "z", "x", 1);
  (void)log_limited(LogLevel::Warn, "z", "x", 1);
  EXPECT_EQ(log_suppressed("z"), 1u);
  reset_log_limits();
  EXPECT_EQ(log_suppressed("z"), 0u);
  EXPECT_TRUE(log_limited(LogLevel::Warn, "z", "x", 1));
}

}  // namespace
}  // namespace bfsim::util
