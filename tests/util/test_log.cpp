#include "util/log.hpp"

#include <gtest/gtest.h>

namespace bfsim::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST(Log, SuppressedMessagesDoNotCrash) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  EXPECT_NO_THROW(log_message(LogLevel::Error, "dropped"));
  EXPECT_NO_THROW(log_error() << "also dropped " << 42);
}

TEST(Log, StreamStyleComposesMessage) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);  // keep test output clean
  // The statement must compile and accept mixed types.
  log_info() << "jobs=" << 100 << " load=" << 0.85;
}

TEST(Log, EmittedMessagesGoToStderr) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  testing::internal::CaptureStderr();
  log_warn() << "watch out";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[warn] watch out"), std::string::npos);
}

TEST(Log, ThresholdFiltersLowerLevels) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  log_debug() << "quiet";
  log_info() << "quiet too";
  log_error() << "loud";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("quiet"), std::string::npos);
  EXPECT_NE(err.find("loud"), std::string::npos);
}

}  // namespace
}  // namespace bfsim::util
