#include "util/error.hpp"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

namespace bfsim::util {
namespace {

TEST(FailureKind, ToStringFromStringRoundTrip) {
  for (const FailureKind kind :
       {FailureKind::ParseError, FailureKind::AuditViolation,
        FailureKind::Timeout, FailureKind::ResourceExhausted,
        FailureKind::Internal, FailureKind::OutageViolation})
    EXPECT_EQ(failure_kind_from_string(to_string(kind)), kind);
}

TEST(FailureKind, FromStringRejectsUnknownNames) {
  EXPECT_THROW((void)failure_kind_from_string("flaky"), std::invalid_argument);
  EXPECT_THROW((void)failure_kind_from_string(""), std::invalid_argument);
}

TEST(ClassifyFailure, TypedExceptionsMapDirectly) {
  EXPECT_EQ(classify_failure(TimeoutError{"deadline"}), FailureKind::Timeout);
  EXPECT_EQ(classify_failure(ParseError{"bad token"}),
            FailureKind::ParseError);
  EXPECT_EQ(classify_failure(std::bad_alloc{}),
            FailureKind::ResourceExhausted);
}

TEST(ClassifyFailure, AuditorAndValidatorMessagesAreAuditViolations) {
  EXPECT_EQ(classify_failure(
                std::logic_error{"schedule audit: capacity exceeded"}),
            FailureKind::AuditViolation);
  EXPECT_EQ(classify_failure(std::runtime_error{
                "run_simulation: invalid schedule: jobs overlap"}),
            FailureKind::AuditViolation);
}

TEST(ClassifyFailure, OutageContractMessagesAreOutageViolations) {
  // The decision core's node-down/node-up rejections (DecisionError, a
  // std::logic_error) classify by their stable message markers.
  EXPECT_EQ(classify_failure(std::logic_error{
                "DecisionCore::on_node_down: outage 3 takes more "
                "processors than the still-up machine"}),
            FailureKind::OutageViolation);
  EXPECT_EQ(classify_failure(std::logic_error{
                "DecisionCore::on_node_up: outage 3 is not active"}),
            FailureKind::OutageViolation);
  // The marker must lead the message; mid-message mentions stay in the
  // bucket their own leading marker picks.
  EXPECT_EQ(classify_failure(std::runtime_error{
                "sweep cell died inside DecisionCore::on_node_down"}),
            FailureKind::Internal);
  // An outage rejection whose detail mentions auditor vocabulary is
  // still an outage violation, not an audit one.
  EXPECT_EQ(classify_failure(std::logic_error{
                "DecisionCore::on_node_down: schedule audit would fail"}),
            FailureKind::OutageViolation);
}

TEST(ClassifyFailure, FailureTracePrefixIsAParseError) {
  EXPECT_EQ(classify_failure(std::runtime_error{
                "failure-trace: outage 2 repairs at-or-before its down "
                "instant"}),
            FailureKind::ParseError);
}

TEST(ClassifyFailure, SwfPrefixIsAParseError) {
  EXPECT_EQ(classify_failure(
                std::runtime_error{"swf: line 7: expected 18 fields"}),
            FailureKind::ParseError);
  // The prefix must lead the message, not merely appear in it.
  EXPECT_EQ(classify_failure(std::runtime_error{"while reading swf: boom"}),
            FailureKind::Internal);
}

TEST(ClassifyFailure, EverythingElseIsInternal) {
  EXPECT_EQ(classify_failure(std::runtime_error{"disk on fire"}),
            FailureKind::Internal);
  EXPECT_EQ(classify_failure(std::logic_error{"off by one"}),
            FailureKind::Internal);
}

TEST(ClassifyFailure, CurrentExceptionClassifiesInsideCatchAll) {
  try {
    throw TimeoutError{"late"};
  } catch (...) {
    EXPECT_EQ(classify_current_exception(), FailureKind::Timeout);
  }
  try {
    throw 42;  // non-standard exception
  } catch (...) {
    EXPECT_EQ(classify_current_exception(), FailureKind::Internal);
  }
}

}  // namespace
}  // namespace bfsim::util
