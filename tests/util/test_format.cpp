#include "util/format.hpp"

#include <gtest/gtest.h>

namespace bfsim::util {
namespace {

TEST(Format, DurationSecondsOnly) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(59), "00:00:59");
}

TEST(Format, DurationMinutesHours) {
  EXPECT_EQ(format_duration(61), "00:01:01");
  EXPECT_EQ(format_duration(3600), "01:00:00");
  EXPECT_EQ(format_duration(3661), "01:01:01");
}

TEST(Format, DurationDays) {
  EXPECT_EQ(format_duration(86400), "1d 00:00:00");
  EXPECT_EQ(format_duration(90061), "1d 01:01:01");
  EXPECT_EQ(format_duration(86400 * 12 + 3600 * 5), "12d 05:00:00");
}

TEST(Format, DurationNegative) {
  EXPECT_EQ(format_duration(-61), "-00:01:01");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
  EXPECT_EQ(format_fixed(2.5, 3), "2.500");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.1234, 2), "12.34%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
  EXPECT_EQ(format_percent(0.0, 1), "0.0%");
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(format_signed_percent(0.123, 1), "+12.3%");
  EXPECT_EQ(format_signed_percent(-0.045, 1), "-4.5%");
  EXPECT_EQ(format_signed_percent(0.0, 1), "+0.0%");
}

TEST(Format, CountSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-1234567), "-1,234,567");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_count(123456), "123,456");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
  EXPECT_EQ(pad_left("", 3), "   ");
}

}  // namespace
}  // namespace bfsim::util
