#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace bfsim::util {
namespace {

CliParser make_parser() {
  CliParser cli{"prog", "test program"};
  cli.add_option("jobs", "number of jobs", "100");
  cli.add_option("load", "offered load", "0.85");
  cli.add_option("name", "label", "default");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({}));
  EXPECT_EQ(cli.get_int("jobs"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.85);
  EXPECT_EQ(cli.get("name"), "default");
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, SpaceSeparatedValues) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"--jobs", "500", "--name", "ctc"}));
  EXPECT_EQ(cli.get_int("jobs"), 500);
  EXPECT_EQ(cli.get("name"), "ctc");
}

TEST(Cli, EqualsSyntax) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"--jobs=250", "--load=0.5"}));
  EXPECT_EQ(cli.get_int("jobs"), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.5);
}

TEST(Cli, FlagsToggleOn) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"--verbose"}));
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, FlagRejectsValue) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--verbose=yes"}));
  EXPECT_FALSE(cli.error().empty());
}

TEST(Cli, UnknownOptionFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--bogus", "1"}));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli = make_parser();
  EXPECT_FALSE(cli.parse({"--jobs"}));
  EXPECT_NE(cli.error().find("jobs"), std::string::npos);
}

TEST(Cli, PositionalArgumentsCollected) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"trace.swf", "--jobs", "5", "other.swf"}));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "trace.swf");
  EXPECT_EQ(cli.positional()[1], "other.swf");
}

TEST(Cli, HelpMentionsEveryOption) {
  CliParser cli = make_parser();
  const std::string help = cli.help();
  for (const char* name : {"jobs", "load", "name", "verbose", "help"})
    EXPECT_NE(help.find(name), std::string::npos) << name;
}

TEST(Cli, UndeclaredAccessThrows) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({}));
  EXPECT_THROW((void)cli.get("nope"), std::invalid_argument);
}

TEST(Cli, Int64RoundTrip) {
  CliParser cli{"p", "d"};
  cli.add_option("big", "large value", "0");
  ASSERT_TRUE(cli.parse({"--big", "123456789012"}));
  EXPECT_EQ(cli.get_int64("big"), 123456789012LL);
}

TEST(Cli, ReparseResetsState) {
  CliParser cli = make_parser();
  ASSERT_TRUE(cli.parse({"--jobs", "7", "pos"}));
  ASSERT_TRUE(cli.parse({}));
  EXPECT_EQ(cli.get_int("jobs"), 100);
  EXPECT_TRUE(cli.positional().empty());
}

}  // namespace
}  // namespace bfsim::util
