#include "util/table.hpp"

#include <gtest/gtest.h>

namespace bfsim::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t{"demo"};
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, AlignsColumns) {
  Table t;
  t.set_header({"k", "v"});
  t.add_row({"a", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.str();
  // First column left-aligned, second right-aligned by default.
  EXPECT_NE(out.find("a    1"), std::string::npos);
  EXPECT_NE(out.find("bb  22"), std::string::npos);
}

TEST(Table, ExplicitAlignment) {
  Table t;
  t.set_header({"k", "v"});
  t.set_align({Align::Right, Align::Left});
  t.add_row({"a", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find(" a  1"), std::string::npos);
}

TEST(Table, RuleSeparatesSections) {
  Table t;
  t.set_header({"k", "v"});
  t.add_row({"a", "1"});
  t.add_rule();
  t.add_row({"total", "1"});
  const std::string out = t.str();
  // Two rules: one under the header, one before the total row.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("--"); pos != std::string::npos;
       pos = out.find("--", pos + 1))
    ++rules;
  EXPECT_GE(rules, 2u);
  EXPECT_LT(out.find("a"), out.find("total"));
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"x"});
  t.add_row({"1", "2", "3", "4"});
  EXPECT_NO_THROW((void)t.str());
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, EmptyTableRendersTitleOnly) {
  Table t{"nothing"};
  const std::string out = t.str();
  EXPECT_NE(out.find("nothing"), std::string::npos);
}

TEST(Table, NoTrailingWhitespace) {
  Table t;
  t.set_header({"col", "x"});
  t.add_row({"longer-cell", "1"});
  t.add_row({"s", "2"});
  const std::string out = t.str();
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::string line =
        out.substr(start, end == std::string::npos ? end : end - start);
    if (!line.empty()) {
      EXPECT_NE(line.back(), ' ') << "line: '" << line << "'";
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

}  // namespace
}  // namespace bfsim::util
