#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bfsim::util {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.5"), "1.5");
}

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlinesTriggerQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_escape("a\rb"), "\"a\rb\"");
}

TEST(CsvWriter, WritesHeaderOnce) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.set_header({"x", "y"});
  writer.row({"1", "2"});
  writer.row({"3", "4"});
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriter, NoHeaderWhenUnset) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.row({"1", "2"});
  EXPECT_EQ(out.str(), "1,2\n");
}

TEST(CsvWriter, CountsRows) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.set_header({"a"});
  writer.row({"1"});
  writer.row({"2"});
  // Header also counts as a written row internally; data rows are 2.
  EXPECT_EQ(writer.rows_written(), 3u);
}

TEST(CsvWriter, EscapesFieldsInRows) {
  std::ostringstream out;
  CsvWriter writer{out};
  writer.row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

}  // namespace
}  // namespace bfsim::util
