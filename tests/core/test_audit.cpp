// Mutation tests for the ScheduleAuditor: an auditor that cannot fail
// is worthless, so each test drives a deliberately broken scheduler
// shim through the real simulation loop and asserts the auditor reports
// the seeded violation with the correct structured diagnostic.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/conservative_scheduler.hpp"
#include "core/profile.hpp"
#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

/// Minimal Scheduler with its own (bypassable) bookkeeping, so shims can
/// break rules SchedulerBase::commit_start would reject outright.
class ShimScheduler : public Scheduler {
 public:
  explicit ShimScheduler(SchedulerConfig config) : config_(config) {}

  // Shims request a pass on every event: the mutations under test rely
  // on select_starts running at every batch, as the historic driver did.
  bool job_submitted(const Job& job, Time) override {
    queue_.push_back(job);
    return true;
  }
  bool job_finished(JobId id, Time) override {
    const auto it =
        std::find_if(running_.begin(), running_.end(),
                     [id](const Job& job) { return job.id == id; });
    EXPECT_NE(it, running_.end()) << "shim finish without start";
    if (it != running_.end()) running_.erase(it);
    return true;
  }
  [[nodiscard]] std::string name() const override { return "shim"; }
  [[nodiscard]] const SchedulerConfig& config() const override {
    return config_;
  }
  [[nodiscard]] std::size_t queued_count() const override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t running_count() const override {
    return running_.size();
  }

 protected:
  [[nodiscard]] int used() const {
    int procs = 0;
    for (const Job& job : running_) procs += job.procs;
    return procs;
  }
  /// Move queue_[index] to running_ and return it.
  Job start_at(std::size_t index) {
    const Job job = queue_[index];
    queue_.erase(queue_.begin() +
                 static_cast<std::vector<Job>::difference_type>(index));
    running_.push_back(job);
    return job;
  }

  SchedulerConfig config_;
  std::vector<Job> queue_;
  std::vector<Job> running_;
};

/// Mutation 1 -- capacity overflow: starts every queued job immediately,
/// no matter how many processors are free.
class CapacityOverflowScheduler final : public ShimScheduler {
 public:
  using ShimScheduler::ShimScheduler;
  using Scheduler::select_starts;
  void select_starts(Time, std::vector<Job>& out) override {
    while (!queue_.empty()) out.push_back(start_at(0));
  }
};

/// Mutation 2 -- delayed-reservation start: schedules FCFS (correctly),
/// but *claims* every queued job is guaranteed to start at its submit
/// time, under conservative (monotone) audit hooks. Any queueing delay
/// then breaks the advertised guarantee.
class DelayedReservationScheduler final : public ShimScheduler {
 public:
  using ShimScheduler::ShimScheduler;
  using Scheduler::select_starts;
  void select_starts(Time, std::vector<Job>& out) override {
    while (!queue_.empty() &&
           queue_.front().procs <= config_.procs - used())
      out.push_back(start_at(0));
  }
  [[nodiscard]] AuditHooks audit_hooks() const override {
    return {.reservations = true, .monotone_reservations = true};
  }
  [[nodiscard]] std::vector<AuditReservation> audit_reservations()
      const override {
    std::vector<AuditReservation> out;
    for (const Job& job : queue_)
      out.push_back({job.id, job.submit, job.estimate, job.procs});
    return out;
  }
};

/// Mutation 3 -- stale profile breakpoint: maintains a real availability
/// profile but "forgets" to release the unused tail of an early-finishing
/// job's rectangle -- exactly the PR-1 class of staleness bug.
class StaleProfileScheduler final : public ShimScheduler {
 public:
  explicit StaleProfileScheduler(SchedulerConfig config)
      : ShimScheduler(config), profile_(config.procs) {}
  bool job_submitted(const Job& job, Time now) override {
    const Time anchor =
        profile_.earliest_anchor(job.procs, job.bb, job.estimate, now);
    profile_.reserve(anchor, anchor + job.estimate, job.procs, job.bb);
    queue_.push_back(job);
    return true;
  }
  bool job_finished(JobId id, Time now) override {
    // Bug under test: the tail [now, start + estimate) stays reserved.
    return ShimScheduler::job_finished(id, now);
  }
  using Scheduler::select_starts;
  void select_starts(Time, std::vector<Job>& out) override {
    while (!queue_.empty() &&
           queue_.front().procs <= config_.procs - used())
      out.push_back(start_at(0));
  }
  [[nodiscard]] AuditHooks audit_hooks() const override {
    return {.profile = true};
  }
  [[nodiscard]] const MultiProfile* audit_profile() const override {
    return &profile_;
  }

 private:
  MultiProfile profile_;
};

/// Mutation 4 -- burst-buffer staleness: tracks both axes correctly on
/// submit, but an early finish releases only the *processor* tail of
/// the estimated rectangle; the buffer gigabytes stay pinned. Only the
/// second axis diverges, so this mutant proves the profile cross-check
/// compares the axes independently.
class StaleBufferProfileScheduler final : public ShimScheduler {
 public:
  explicit StaleBufferProfileScheduler(SchedulerConfig config)
      : ShimScheduler(config), profile_(config.procs, config.burst_buffer) {}
  bool job_submitted(const Job& job, Time now) override {
    const Time anchor =
        profile_.earliest_anchor(job.procs, job.bb, job.estimate, now);
    profile_.reserve(anchor, anchor + job.estimate, job.procs, job.bb);
    queue_.push_back(job);
    return true;
  }
  bool job_finished(JobId id, Time now) override {
    for (const Job& job : running_)
      if (job.id == id) {
        // Bug under test: the tail release forgets the buffer axis.
        const Time end = job.submit + job.estimate;
        if (now < end) profile_.release(now, end, job.procs, 0);
        break;
      }
    return ShimScheduler::job_finished(id, now);
  }
  using Scheduler::select_starts;
  void select_starts(Time, std::vector<Job>& out) override {
    while (!queue_.empty() &&
           queue_.front().procs <= config_.procs - used())
      out.push_back(start_at(0));
  }
  [[nodiscard]] AuditHooks audit_hooks() const override {
    return {.profile = true};
  }
  [[nodiscard]] const MultiProfile* audit_profile() const override {
    return &profile_;
  }

 private:
  MultiProfile profile_;
};

/// Run `scheduler` over `trace` under a collecting (non-fatal) auditor
/// and return the recorded violations.
std::vector<AuditViolation> audit_run(const Trace& trace,
                                      Scheduler& scheduler) {
  ScheduleAuditor auditor{scheduler, {.fatal = false}};
  const auto result =
      run_simulation(trace, scheduler, {.auditor = &auditor});
  EXPECT_GT(result.events, 0u);
  EXPECT_GT(auditor.checks(), 0u);
  return auditor.violations();
}

TEST(AuditMutation, DetectsCapacityOverflow) {
  // 4-processor machine, two 3-wide jobs at t=0: the shim starts both.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 3},
                                  {.submit = 0, .runtime = 10, .procs = 3}});
  CapacityOverflowScheduler scheduler{SchedulerConfig{4}};
  const auto violations = audit_run(trace, scheduler);
  ASSERT_FALSE(violations.empty());
  const AuditViolation& v = violations.front();
  EXPECT_EQ(v.invariant, "capacity");
  EXPECT_EQ(v.when, 0);
  EXPECT_EQ(v.job, 1u);  // the second start is the oversubscribing one
  EXPECT_EQ(v.expected, 4);  // machine size
  EXPECT_EQ(v.actual, 6);    // 3 busy + 3 started
}

TEST(AuditMutation, DetectsDelayedReservationStart) {
  // Job 0 fills the machine for 5 s; job 1 is promised (fraudulently) a
  // start at its submit time 0, but cannot start before 5.
  const Trace trace = make_trace({{.submit = 0, .runtime = 5, .procs = 4},
                                  {.submit = 0, .runtime = 5, .procs = 4}});
  DelayedReservationScheduler scheduler{SchedulerConfig{4}};
  const auto violations = audit_run(trace, scheduler);
  ASSERT_FALSE(violations.empty());
  const AuditViolation& v = violations.front();
  EXPECT_EQ(v.invariant, "guarantee-delayed");
  EXPECT_EQ(v.when, 5);
  EXPECT_EQ(v.job, 1u);
  EXPECT_EQ(v.expected, 0);  // the first-assigned (claimed) reservation
  EXPECT_EQ(v.actual, 5);    // the actual, delayed start
}

TEST(AuditMutation, DetectsStaleProfileBreakpoint) {
  // One machine-filling job, estimated 10 s, actually 5 s: the shim
  // keeps [5, 10) reserved after the early completion. The auditor must
  // flag the divergence at t=5 -- the moment of staleness -- not later.
  const Trace trace = make_trace(
      {{.submit = 0, .runtime = 5, .procs = 4, .estimate = 10}});
  StaleProfileScheduler scheduler{SchedulerConfig{4}};
  const auto violations = audit_run(trace, scheduler);
  ASSERT_FALSE(violations.empty());
  const AuditViolation& v = violations.front();
  EXPECT_EQ(v.invariant, "profile-divergence");
  EXPECT_EQ(v.when, 5);
  EXPECT_EQ(v.expected, 4);  // all processors should be free...
  EXPECT_EQ(v.actual, 0);    // ...but the stale rectangle holds them
  EXPECT_NE(v.detail.find("stale"), std::string::npos);
}

TEST(AuditMutation, DetectsBufferCapacityOverflow) {
  // Both jobs fit on the processor axis (1 + 1 of 4); the machine's 10
  // buffer GB do not cover 8 + 8. Only "capacity-bb" may fire.
  const Trace trace =
      make_trace({{.submit = 0, .runtime = 10, .procs = 1, .bb = 8},
                  {.submit = 0, .runtime = 10, .procs = 1, .bb = 8}});
  CapacityOverflowScheduler scheduler{
      SchedulerConfig{4, PriorityPolicy::Fcfs, /*burst_buffer=*/10}};
  const auto violations = audit_run(trace, scheduler);
  ASSERT_FALSE(violations.empty());
  const AuditViolation& v = violations.front();
  EXPECT_EQ(v.invariant, "capacity-bb");
  EXPECT_EQ(v.when, 0);
  EXPECT_EQ(v.job, 1u);
  EXPECT_EQ(v.expected, 10);  // buffer capacity
  EXPECT_EQ(v.actual, 16);    // 8 held + 8 started
  for (const AuditViolation& each : violations)
    EXPECT_NE(each.invariant, "capacity") << "processor axis is not over";
}

TEST(AuditMutation, DetectsStaleBufferBreakpoint) {
  // Early completion at t=5 of a job estimated to 10: the shim releases
  // the processor tail but pins the buffer tail. Exactly the buffer
  // axis diverges, at the moment of staleness.
  const Trace trace = make_trace(
      {{.submit = 0, .runtime = 5, .procs = 4, .estimate = 10, .bb = 8}});
  StaleBufferProfileScheduler scheduler{
      SchedulerConfig{4, PriorityPolicy::Fcfs, /*burst_buffer=*/8}};
  const auto violations = audit_run(trace, scheduler);
  ASSERT_FALSE(violations.empty());
  const AuditViolation& v = violations.front();
  EXPECT_EQ(v.invariant, "profile-divergence");
  EXPECT_EQ(v.when, 5);
  EXPECT_EQ(v.expected, 8);  // all buffer GB should be free...
  EXPECT_EQ(v.actual, 0);    // ...but the stale rectangle holds them
  EXPECT_NE(v.detail.find("burst-buffer"), std::string::npos);
}

TEST(AuditMutation, FatalModeThrowsAtTheViolatingEvent) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 3},
                                  {.submit = 0, .runtime = 10, .procs = 3}});
  CapacityOverflowScheduler scheduler{SchedulerConfig{4}};
  EXPECT_THROW((void)run_simulation(trace, scheduler, {.audit = true}),
               std::logic_error);
}

TEST(Audit, CleanConservativeRunHasNoViolations) {
  // A workload with early completions (estimate > runtime) exercises
  // release + compression -- the paths where staleness bugs live. The
  // auditor must stay silent and must have actually checked things.
  const Trace trace = test::random_trace(200, 16, 7, /*overestimate=*/true);
  ConservativeScheduler scheduler{SchedulerConfig{16}};
  ScheduleAuditor auditor{scheduler, {.fatal = false}};
  const auto result =
      run_simulation(trace, scheduler, {.auditor = &auditor});
  EXPECT_GT(result.events, 0u);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front().to_string();
  EXPECT_GT(auditor.checks(), trace.size());
}

TEST(Audit, ViolationToStringCarriesStructure) {
  const AuditViolation v{.invariant = "capacity",
                         .when = 42,
                         .job = 7,
                         .expected = 4,
                         .actual = 6,
                         .detail = "oversubscribed"};
  const std::string text = v.to_string();
  EXPECT_NE(text.find("[capacity]"), std::string::npos);
  EXPECT_NE(text.find("t=42"), std::string::npos);
  EXPECT_NE(text.find("job=7"), std::string::npos);
  EXPECT_NE(text.find("expected=4"), std::string::npos);
  EXPECT_NE(text.find("actual=6"), std::string::npos);
  EXPECT_NE(text.find("oversubscribed"), std::string::npos);
}

TEST(Audit, RejectsNonPositiveProfileStride) {
  ConservativeScheduler scheduler{SchedulerConfig{4}};
  EXPECT_THROW(
      (ScheduleAuditor{scheduler, {.profile_check_stride = 0}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::core
