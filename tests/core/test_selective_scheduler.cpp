#include "core/selective_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

SimulationResult run(const Trace& trace, int procs, double threshold,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  SelectiveScheduler scheduler{SchedulerConfig{procs, priority}, threshold};
  return run_simulation(trace, scheduler, {.validate = true});
}

TEST(SelectiveScheduler, RejectsThresholdBelowOne) {
  EXPECT_THROW(
      (SelectiveScheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, 0.5}),
      std::invalid_argument);
}

TEST(SelectiveScheduler, BackfillsGreedilyBeforePromotion) {
  // With a high threshold nothing is promoted early: behaves like pure
  // no-guarantee backfilling at first.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 3},
      {.submit = 1, .runtime = 10, .procs = 4},   // wide, unprotected
      {.submit = 2, .runtime = 90, .procs = 1},   // leapfrogs
  });
  const auto result = run(trace, 4, 1000.0);
  EXPECT_EQ(result.outcomes[2].start, 2);
}

TEST(SelectiveScheduler, PromotionProtectsStarvingJob) {
  // A full-width job facing a steady stream of narrow work starves
  // without a reservation (the stream keeps two 1-proc jobs running, so
  // four processors are never simultaneously free); once its expansion
  // factor crosses the threshold it gets a guarantee and the stream must
  // flow around it (the paper's Section 6 cure).
  std::vector<JobSpec> specs;
  specs.push_back({.submit = 0, .runtime = 100, .procs = 3});
  specs.push_back({.submit = 1, .runtime = 50, .procs = 4});  // the victim
  for (int i = 0; i < 40; ++i)  // 1-proc stream, 100 s each, every 50 s
    specs.push_back({.submit = 2 + i * 50, .runtime = 100, .procs = 1});
  const Trace trace = make_trace(specs);

  const auto greedy = run(trace, 4, 1e9);     // never promote
  const auto selective = run(trace, 4, 3.0);  // promote at xfactor 3
  // Greedy: the victim waits for the entire stream to drain.
  EXPECT_GE(greedy.outcomes[1].wait(), 1500);
  // Selective: promotion fires once the wait reaches ~2 estimates
  // (xfactor 3 at estimate 50), and the reservation lands soon after.
  EXPECT_LT(selective.outcomes[1].wait(), greedy.outcomes[1].wait());
  EXPECT_LE(selective.outcomes[1].wait(), 400);
}

TEST(SelectiveScheduler, ThresholdOnePromotesOnFirstSchedulingPass) {
  SelectiveScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs},
                               1.0};
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  Job b = a;
  b.id = 1;
  b.submit = 0;
  scheduler.job_submitted(a, 0);
  scheduler.job_submitted(b, 0);
  (void)scheduler.select_starts(0);
  // Job 0 started; job 1 queued and, at threshold 1.0, already promoted.
  EXPECT_EQ(scheduler.promoted_count(), 1u);
}

TEST(SelectiveScheduler, PromotedJobStartsAtItsAnchor) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 100, .procs = 4},
  });
  const auto result = run(trace, 4, 1.0);
  EXPECT_EQ(result.outcomes[1].start, 100);
}

TEST(SelectiveScheduler, AdaptiveThresholdStartsAtFloor) {
  const SelectiveScheduler scheduler{
      SchedulerConfig{4, PriorityPolicy::Fcfs}, 2.0,
      SelectiveScheduler::Mode::AdaptiveMeanSlowdown};
  // No completions yet: the floor applies.
  EXPECT_DOUBLE_EQ(scheduler.effective_threshold(), 2.0);
  EXPECT_EQ(scheduler.mode(),
            SelectiveScheduler::Mode::AdaptiveMeanSlowdown);
}

TEST(SelectiveScheduler, AdaptiveThresholdTracksCompletedSlowdown) {
  SelectiveScheduler scheduler{
      SchedulerConfig{4, PriorityPolicy::Fcfs}, 1.0,
      SelectiveScheduler::Mode::AdaptiveMeanSlowdown};
  // Two jobs, the second waits 100 s for a 100 s run: slowdowns 1 and 2.
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  Job b = a;
  b.id = 1;
  b.submit = 0;
  scheduler.job_submitted(a, 0);
  scheduler.job_submitted(b, 0);
  (void)scheduler.select_starts(0);
  scheduler.job_finished(0, 100);
  (void)scheduler.select_starts(100);
  scheduler.job_finished(1, 200);
  // mean bounded slowdown = (1 + 2) / 2.
  EXPECT_DOUBLE_EQ(scheduler.effective_threshold(), 1.5);
}

TEST(SelectiveScheduler, FixedModeIgnoresCompletions) {
  SelectiveScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs},
                               3.0};
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  scheduler.job_submitted(a, 0);
  (void)scheduler.select_starts(0);
  scheduler.job_finished(0, 100);
  EXPECT_DOUBLE_EQ(scheduler.effective_threshold(), 3.0);
}

TEST(SelectiveScheduler, AdaptiveModeProducesValidSchedules) {
  const Trace trace = test::random_trace(300, 8, 21, true);
  SelectiveScheduler scheduler{
      SchedulerConfig{8, PriorityPolicy::Fcfs}, 1.5,
      SelectiveScheduler::Mode::AdaptiveMeanSlowdown};
  EXPECT_NO_THROW(
      (void)run_simulation(trace, scheduler, {.validate = true}));
}

TEST(SelectiveScheduler, AdaptiveNameDiffers) {
  const SelectiveScheduler scheduler{
      SchedulerConfig{8, PriorityPolicy::Sjf}, 2.0,
      SelectiveScheduler::Mode::AdaptiveMeanSlowdown};
  EXPECT_EQ(scheduler.name(), "selective-adaptive2.0-sjf");
}

TEST(SelectiveScheduler, FactoryBuildsAdaptive) {
  SchedulerExtras extras;
  extras.xfactor_threshold = 2.0;
  extras.selective_adaptive = true;
  const auto scheduler =
      make_scheduler(SchedulerKind::Selective,
                     SchedulerConfig{8, PriorityPolicy::Fcfs}, extras);
  EXPECT_EQ(scheduler->name(), "selective-adaptive2.0-fcfs");
}

TEST(SelectiveScheduler, NameEncodesThreshold) {
  const SelectiveScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Sjf},
                                     2.5};
  EXPECT_EQ(scheduler.name(), "selective2.5-sjf");
}

TEST(SelectiveScheduler, FactoryBuildsWithExtras) {
  SchedulerExtras extras;
  extras.xfactor_threshold = 4.0;
  const auto scheduler =
      make_scheduler(SchedulerKind::Selective,
                     SchedulerConfig{8, PriorityPolicy::Fcfs}, extras);
  EXPECT_EQ(scheduler->name(), "selective4.0-fcfs");
}

}  // namespace
}  // namespace bfsim::core
