#include "core/validator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

std::vector<JobOutcome> outcomes_for(const Trace& trace) {
  std::vector<JobOutcome> outcomes;
  for (const Job& job : trace) {
    JobOutcome o;
    o.job = job;
    o.start = job.submit;
    o.end = job.submit + std::min(job.runtime, job.estimate);
    o.killed = job.runtime > job.estimate;
    outcomes.push_back(o);
  }
  return outcomes;
}

TEST(Validator, AcceptsCorrectSchedule) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 2},
                                  {.submit = 5, .runtime = 10, .procs = 2}});
  const auto report = validate_schedule(trace, outcomes_for(trace), 4);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(Validator, DetectsStartBeforeSubmit) {
  const Trace trace = make_trace({{.submit = 10, .runtime = 5, .procs = 1}});
  auto outcomes = outcomes_for(trace);
  outcomes[0].start = 5;
  outcomes[0].end = 10;
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("before submission"),
            std::string::npos);
}

TEST(Validator, DetectsWrongDuration) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 5, .procs = 1}});
  auto outcomes = outcomes_for(trace);
  outcomes[0].end = outcomes[0].start + 99;
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("ran"), std::string::npos);
}

TEST(Validator, DetectsOversubscription) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 3},
                                  {.submit = 0, .runtime = 10, .procs = 3}});
  const auto report = validate_schedule(trace, outcomes_for(trace), 4);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations)
    if (v.find("oversubscribed") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Validator, DetectsUnstartedJob) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 5, .procs = 1}});
  std::vector<JobOutcome> outcomes(1);
  outcomes[0].job = trace[0];
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("never started"), std::string::npos);
}

TEST(Validator, DetectsCountMismatch) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 5, .procs = 1}});
  const std::vector<JobOutcome> outcomes;
  const auto report = validate_schedule(trace, outcomes, 4);
  EXPECT_FALSE(report.ok());
}

TEST(Validator, DetectsInconsistentKillFlag) {
  const Trace trace = make_trace(
      {{.submit = 0, .runtime = 100, .procs = 1, .estimate = 50}});
  auto outcomes = outcomes_for(trace);
  outcomes[0].killed = false;  // should be true
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("kill flag"), std::string::npos);
}

TEST(Validator, BackToBackJobsAreNotOverlap) {
  // One job ends exactly when the next starts; [start, end) semantics.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 4},
                                  {.submit = 0, .runtime = 10, .procs = 4}});
  auto outcomes = outcomes_for(trace);
  outcomes[1].start = 10;
  outcomes[1].end = 20;
  const auto report = validate_schedule(trace, outcomes, 4);
  EXPECT_TRUE(report.ok());
}

TEST(Validator, PeakUsage) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 3},
                                  {.submit = 5, .runtime = 10, .procs = 2},
                                  {.submit = 20, .runtime = 10, .procs = 4}});
  EXPECT_EQ(peak_usage(outcomes_for(trace)), 5);
}

TEST(Validator, UtilizationComputation) {
  // 10 s x 4 procs on an 8-proc machine over makespan 10 -> 0.5.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 4}});
  EXPECT_DOUBLE_EQ(utilization(outcomes_for(trace), 8), 0.5);
  EXPECT_DOUBLE_EQ(utilization({}, 8), 0.0);
}

TEST(Validator, SurvivesHostileOutcomeTimes) {
  // Regression for the raw `o.end - o.start` the overflow sweep removed:
  // an outcome whose end saturated at kTimeMax while start is deeply
  // negative used to wrap (signed-overflow UB under UBSan). The
  // validator must instead report the duration mismatch and keep going.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  auto outcomes = outcomes_for(trace);
  outcomes[0].start = std::numeric_limits<sim::Time>::min() + 1;
  outcomes[0].end = sim::kTimeMax;
  const auto report = validate_schedule(trace, outcomes, 4);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const std::string& v : report.violations)
    found = found || v.find("ran") != std::string::npos ||
            v.find("before submission") != std::string::npos;
  EXPECT_TRUE(found);
  // utilization() walks the same difference; it must stay finite.
  const double u = utilization(outcomes, 4);
  EXPECT_TRUE(std::isfinite(u));
}

TEST(Validator, JobOutcomeAccessorsClampInsteadOfWrapping) {
  // JobOutcome::wait/turnaround/effective_runtime are the first
  // arithmetic an SWF record reaches after simulation; with a submit of
  // kTimeMax (hostile trace) and a clamped start they must saturate.
  JobOutcome o;
  o.job.submit = -1;
  o.start = sim::kTimeMax;
  o.end = sim::kTimeMax;
  EXPECT_EQ(o.wait(), sim::kTimeMax);        // would wrap negative raw
  EXPECT_EQ(o.turnaround(), sim::kTimeMax);  // likewise
  EXPECT_EQ(o.effective_runtime(), 0);
}

TEST(Validator, SimulatedSchedulesValidateForAllSchedulers) {
  const Trace trace = test::random_trace(200, 8, 5, true);
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Easy, SchedulerKind::Conservative,
        SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack}) {
    const auto result = run_simulation(
        trace, kind, SchedulerConfig{8, PriorityPolicy::Fcfs});
    const auto report = validate_schedule(trace, result.outcomes, 8);
    EXPECT_TRUE(report.ok())
        << to_string(kind) << ": " << report.violations.front();
  }
}

}  // namespace
}  // namespace bfsim::core
