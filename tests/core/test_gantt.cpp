#include "core/gantt.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::make_trace;

std::vector<JobOutcome> small_schedule() {
  const Trace trace = make_trace({{.submit = 0, .runtime = 100, .procs = 2},
                                  {.submit = 0, .runtime = 50, .procs = 2},
                                  {.submit = 100, .runtime = 50, .procs = 4}});
  return run_simulation(trace, SchedulerKind::Easy,
                        SchedulerConfig{4, PriorityPolicy::Fcfs})
      .outcomes;
}

TEST(Gantt, EmptyScheduleHandled) {
  EXPECT_EQ(ascii_gantt({}, 4), "(empty schedule)\n");
  EXPECT_EQ(ascii_utilization({}, 4), "(empty schedule)\n");
}

TEST(Gantt, OneRowPerProcessor) {
  const std::string out = ascii_gantt(small_schedule(), 4, 40);
  int rows = 0;
  for (std::size_t pos = out.find('|'); pos != std::string::npos;
       pos = out.find('|', pos + 1))
    ++rows;
  EXPECT_EQ(rows, 8);  // 4 rows x 2 bars each
}

TEST(Gantt, JobsAppearAsLetters) {
  const std::string out = ascii_gantt(small_schedule(), 4, 40);
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find('C'), std::string::npos);
}

TEST(Gantt, HeaderShowsMakespan) {
  const std::string out = ascii_gantt(small_schedule(), 4, 40);
  EXPECT_NE(out.find("00:02:30"), std::string::npos);  // 150 s
}

TEST(Gantt, UtilizationBucketsRendered) {
  const std::string out = ascii_utilization(small_schedule(), 4, 10, 20);
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 11);  // 10 buckets + mean footer
  EXPECT_NE(out.find("mean utilization"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Gantt, UtilizationMeanMatchesValidator) {
  const auto outcomes = small_schedule();
  const std::string out = ascii_utilization(outcomes, 4, 6, 20);
  // 2*100 + 2*50 + 4*50 = 500 proc-s over 4*150 = 600 -> 83.33%
  EXPECT_NE(out.find("83.33%"), std::string::npos);
}

}  // namespace
}  // namespace bfsim::core
