// The multi-resource profile's test wall, in three tiers:
//
//   1. a brute-force per-timestep oracle (two flat arrays of free
//      capacity, one per axis) checked against randomized operation
//      sequences -- the 2-axis semantics are proven against something
//      too simple to be wrong;
//   2. the axis-0 compatibility contract: a MultiProfile driven with
//      bb == 0 demands must match core::Profile operation-for-operation
//      -- same anchors, same segments, same breakpoint count, same
//      rejections -- which is the data-structure half of the repo-wide
//      "procs-only schedules are byte-identical" guarantee;
//   3. directed unit tests for the joint-axis behaviors the oracle
//      exercises only probabilistically (buffer-only blocking, per-axis
//      error messages, joint coalescing).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/multi_profile.hpp"
#include "core/profile.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace bfsim::core {
namespace {

/// Brute-force reference: free capacity per axis stored per timestep
/// over a bounded horizon (fully free beyond). Every operation is a
/// plain loop; no sharing, no coalescing, nothing clever.
class BruteProfile {
 public:
  BruteProfile(int total_procs, int total_bb, sim::Time horizon)
      : total_procs_(total_procs),
        total_bb_(total_bb),
        procs_(static_cast<std::size_t>(horizon), total_procs),
        bb_(static_cast<std::size_t>(horizon), total_bb) {}

  [[nodiscard]] int procs_free_at(sim::Time t) const {
    return t < size() ? procs_[static_cast<std::size_t>(t)] : total_procs_;
  }
  [[nodiscard]] int bb_free_at(sim::Time t) const {
    return t < size() ? bb_[static_cast<std::size_t>(t)] : total_bb_;
  }

  [[nodiscard]] bool fits(int procs, int bb, sim::Time begin,
                          sim::Time end) const {
    for (sim::Time t = begin; t < end && t < size(); ++t)
      if (procs_free_at(t) < procs || bb_free_at(t) < bb) return false;
    return true;
  }

  /// Earliest joint anchor by exhaustive scan. Never scans past the
  /// horizon: the caller keeps every window inside it.
  [[nodiscard]] sim::Time earliest_anchor(int procs, int bb,
                                          sim::Time duration,
                                          sim::Time not_before) const {
    for (sim::Time s = not_before;; ++s)
      if (fits(procs, bb, s, s + duration)) return s;
  }

  void reserve(sim::Time begin, sim::Time end, int procs, int bb) {
    for (sim::Time t = begin; t < end && t < size(); ++t) {
      procs_[static_cast<std::size_t>(t)] -= procs;
      bb_[static_cast<std::size_t>(t)] -= bb;
    }
  }
  void release(sim::Time begin, sim::Time end, int procs, int bb) {
    for (sim::Time t = begin; t < end && t < size(); ++t) {
      procs_[static_cast<std::size_t>(t)] += procs;
      bb_[static_cast<std::size_t>(t)] += bb;
    }
  }

  /// The coalesced segment view the production profile must agree with.
  [[nodiscard]] std::vector<MultiProfile::Segment> segments() const {
    std::vector<MultiProfile::Segment> out;
    for (sim::Time t = 0; t <= size(); ++t) {
      const int p = procs_free_at(t);
      const int b = bb_free_at(t);
      if (out.empty() || out.back().procs != p || out.back().bb != b)
        out.push_back({t, p, b});
    }
    return out;
  }

 private:
  [[nodiscard]] sim::Time size() const {
    return static_cast<sim::Time>(procs_.size());
  }

  int total_procs_;
  int total_bb_;
  std::vector<int> procs_;
  std::vector<int> bb_;
};

void expect_matches_oracle(const MultiProfile& profile,
                           const BruteProfile& oracle, sim::Time horizon) {
  ASSERT_NO_THROW(profile.check_invariants());
  ASSERT_EQ(profile.segments(), oracle.segments());
  for (sim::Time t = 0; t <= horizon; t += 7) {
    ASSERT_EQ(profile.procs_free_at(t), oracle.procs_free_at(t)) << "t=" << t;
    ASSERT_EQ(profile.bb_free_at(t), oracle.bb_free_at(t)) << "t=" << t;
  }
}

class MultiProfileOracleTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiProfileOracleTest, RandomOpsMatchPerTimestepOracle) {
  constexpr int kProcs = 24;
  constexpr int kBb = 40;
  // The oracle horizon must cover every window the test creates:
  // anchors start <= kFrom, durations <= kDur, and the worst anchor a
  // search can return is bounded by total work / min demand -- keep the
  // slack generous instead of clever.
  constexpr sim::Time kFrom = 300;
  constexpr sim::Time kDur = 40;
  constexpr sim::Time kHorizon = 20000;
  sim::Rng rng{GetParam()};
  MultiProfile profile{kProcs, kBb};
  BruteProfile oracle{kProcs, kBb, kHorizon};

  struct Live {
    sim::Time b, e;
    int procs, bb;
  };
  std::vector<Live> live;

  for (int step = 0; step < 250; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.30 && !live.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      Live& r = live[idx];
      const bool tail_only = r.e - r.b > 2 && rng.bernoulli(0.4);
      const sim::Time from =
          tail_only ? r.b + rng.uniform_int(1, r.e - r.b - 1) : r.b;
      profile.release(from, r.e, r.procs, r.bb);
      oracle.release(from, r.e, r.procs, r.bb);
      if (tail_only) {
        r.e = from;
      } else {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else if (dice < 0.70) {
      // Fused find-and-reserve vs exhaustive scan + loop subtraction.
      // bb == 0 demands stay common (they are the compatibility path).
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const int bb =
          rng.bernoulli(0.3) ? 0 : static_cast<int>(rng.uniform_int(0, kBb));
      const sim::Time dur = rng.uniform_int(1, kDur);
      const sim::Time from = rng.uniform_int(0, kFrom);
      const sim::Time got = profile.find_and_reserve(procs, bb, dur, from);
      const sim::Time want = oracle.earliest_anchor(procs, bb, dur, from);
      ASSERT_EQ(got, want) << "procs=" << procs << " bb=" << bb
                           << " dur=" << dur << " from=" << from;
      oracle.reserve(got, got + dur, procs, bb);
      live.push_back({got, got + dur, procs, bb});
    } else if (dice < 0.85) {
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs / 2));
      const int bb = static_cast<int>(rng.uniform_int(0, kBb / 2));
      const sim::Time b = rng.uniform_int(0, kFrom);
      const sim::Time e = b + rng.uniform_int(1, kDur);
      if (!oracle.fits(procs, bb, b, e)) continue;
      profile.reserve(b, e, procs, bb);
      oracle.reserve(b, e, procs, bb);
      live.push_back({b, e, procs, bb});
    } else {
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const int bb = static_cast<int>(rng.uniform_int(0, kBb));
      const sim::Time dur = rng.uniform_int(1, kDur);
      const sim::Time from = rng.uniform_int(0, kFrom);
      ASSERT_EQ(profile.earliest_anchor(procs, bb, dur, from),
                oracle.earliest_anchor(procs, bb, dur, from));
      ASSERT_EQ(profile.fits(procs, bb, from, from + dur),
                oracle.fits(procs, bb, from, from + dur));
    }
    expect_matches_oracle(profile, oracle, kFrom + 2 * kDur);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MultiProfileOracleTest,
                         testing::Values(21, 22, 23, 24, 25, 26));

// -- Tier 2: the axis-0 compatibility contract ------------------------

class MultiProfileAxisZeroTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(MultiProfileAxisZeroTest, BbZeroPathIsIdenticalToProfile) {
  constexpr int kProcs = 48;
  constexpr sim::Time kHorizon = 100000;
  sim::Rng rng{GetParam()};
  MultiProfile multi{kProcs};  // total_bb defaults to 0: axis absent
  Profile flat{kProcs};

  const auto expect_identical = [&] {
    ASSERT_NO_THROW(multi.check_invariants());
    // Not just equivalent: the same breakpoints, which pins the internal
    // representation (coalescing and hint-cache evolution included, as
    // different hints would surface as different anchors below).
    ASSERT_EQ(multi.breakpoints(), flat.breakpoints());
    const auto ms = multi.segments();
    const auto fs = flat.segments();
    ASSERT_EQ(ms.size(), fs.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      ASSERT_EQ(ms[i].begin, fs[i].begin);
      ASSERT_EQ(ms[i].procs, fs[i].free);
      ASSERT_EQ(ms[i].bb, 0);
    }
  };

  struct Live {
    sim::Time b, e;
    int procs;
  };
  std::vector<Live> live;

  for (int step = 0; step < 400; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.28 && !live.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      Live& r = live[idx];
      const bool tail_only = r.e - r.b > 2 && rng.bernoulli(0.4);
      const sim::Time from =
          tail_only ? r.b + rng.uniform_int(1, r.e - r.b - 1) : r.b;
      multi.release(from, r.e, r.procs, 0);
      flat.release(from, r.e, r.procs);
      if (tail_only) {
        r.e = from;
      } else {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else if (dice < 0.62) {
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const sim::Time dur = rng.uniform_int(1, 4000);
      const sim::Time from = rng.uniform_int(0, kHorizon);
      const sim::Time got = multi.find_and_reserve(procs, 0, dur, from);
      const sim::Time want = flat.find_and_reserve(procs, dur, from);
      ASSERT_EQ(got, want);
      live.push_back({got, got + dur, procs});
    } else if (dice < 0.75) {
      // discard_before exercises the hint/breakpoint bookkeeping both
      // implementations must age identically. Discarding settles the
      // past, so the live set is trimmed the way the scheduler trims
      // it: rectangles wholly before the cut are never released again,
      // straddlers only ever release their surviving tail.
      const sim::Time cut = rng.uniform_int(0, kHorizon / 4);
      multi.discard_before(cut);
      flat.discard_before(cut);
      std::erase_if(live, [cut](const Live& r) { return r.e <= cut; });
      for (Live& r : live) r.b = std::max(r.b, cut);
    } else {
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const sim::Time dur = rng.uniform_int(1, 8000);
      const sim::Time from = rng.uniform_int(0, kHorizon);
      ASSERT_EQ(multi.earliest_anchor(procs, 0, dur, from),
                flat.earliest_anchor(procs, dur, from));
      ASSERT_EQ(multi.fits(procs, 0, from, from + dur),
                flat.fits(procs, from, from + dur));
      for (sim::Time t = 0; t <= kHorizon; t += kHorizon / 13)
        ASSERT_EQ(multi.procs_free_at(t), flat.free_at(t));
    }
    expect_identical();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MultiProfileAxisZeroTest,
                         testing::Values(31, 32, 33, 34));

// -- Tier 3: directed joint-axis behavior -----------------------------

TEST(MultiProfile, BufferAxisAloneDelaysAnAnchor) {
  MultiProfile profile{8, 100};
  // Processors nearly free, buffer saturated until t=50.
  profile.reserve(0, 50, 1, 100);
  EXPECT_EQ(profile.earliest_anchor(1, 0, 10, 0), 0);   // procs-only: now
  EXPECT_EQ(profile.earliest_anchor(1, 1, 10, 0), 50);  // 1 GB: waits
  EXPECT_EQ(profile.procs_free_at(0), 7);
  EXPECT_EQ(profile.bb_free_at(0), 0);
  EXPECT_EQ(profile.bb_free_at(50), 100);
}

TEST(MultiProfile, ProcsAxisAloneDelaysAnAnchor) {
  MultiProfile profile{8, 100};
  profile.reserve(0, 50, 8, 1);
  EXPECT_EQ(profile.earliest_anchor(1, 99, 10, 0), 50);
  EXPECT_TRUE(profile.fits(0, 99, 0, 50));
  EXPECT_FALSE(profile.fits(1, 0, 0, 50));
}

TEST(MultiProfile, SegmentsDifferingOnlyOnBufferStayDistinct) {
  MultiProfile profile{8, 100};
  profile.reserve(10, 20, 4, 10);
  profile.reserve(20, 30, 4, 20);  // same procs, different bb
  const auto segments = profile.segments();
  ASSERT_EQ(segments.size(), 4u);
  EXPECT_EQ(segments[0], (MultiProfile::Segment{0, 8, 100}));
  EXPECT_EQ(segments[1], (MultiProfile::Segment{10, 4, 90}));
  EXPECT_EQ(segments[2], (MultiProfile::Segment{20, 4, 80}));
  EXPECT_EQ(segments[3], (MultiProfile::Segment{30, 8, 100}));
}

TEST(MultiProfile, AdjacentEqualRectanglesCoalesce) {
  MultiProfile profile{8, 100};
  profile.reserve(10, 20, 4, 10);
  profile.reserve(20, 30, 4, 10);
  EXPECT_EQ(profile.segments().size(), 3u);
  profile.release(10, 30, 4, 10);
  EXPECT_EQ(profile.segments().size(), 1u);
  EXPECT_EQ(profile.breakpoints(), 1u);
}

TEST(MultiProfile, PerAxisOverReservationAndDoubleReleaseThrow) {
  MultiProfile profile{8, 10};
  profile.reserve(0, 10, 8, 0);
  // Processor axis exhausted, buffer axis plentiful.
  EXPECT_THROW(profile.reserve(5, 6, 1, 0), std::logic_error);
  profile.reserve(0, 10, 0, 10);
  // Buffer axis exhausted, processors untouched by this demand shape.
  EXPECT_THROW(profile.reserve(5, 6, 0, 1), std::logic_error);
  // Each axis rejects its own double release.
  EXPECT_THROW(profile.release(20, 30, 1, 0), std::logic_error);
  EXPECT_THROW(profile.release(20, 30, 0, 1), std::logic_error);
  // Failed operations left the timeline untouched (strong guarantee).
  EXPECT_NO_THROW(profile.check_invariants());
  EXPECT_EQ(profile.procs_free_at(5), 0);
  EXPECT_EQ(profile.bb_free_at(5), 0);
  EXPECT_EQ(profile.procs_free_at(10), 8);
  EXPECT_EQ(profile.bb_free_at(10), 10);
}

TEST(MultiProfile, AbsentBufferAxisRejectsAnyDemand) {
  MultiProfile profile{8};
  EXPECT_THROW((void)profile.earliest_anchor(1, 1, 10, 0),
               std::invalid_argument);
  EXPECT_THROW(profile.find_and_reserve(1, 1, 10, 0), std::invalid_argument);
  EXPECT_NO_THROW(profile.reserve(0, 10, 4, 0));
  EXPECT_THROW(profile.reserve(0, 10, 1, 1), std::logic_error);
}

TEST(MultiProfile, RejectsMalformedArguments) {
  EXPECT_THROW(MultiProfile(0, 4), std::invalid_argument);
  EXPECT_THROW(MultiProfile(4, -1), std::invalid_argument);
  MultiProfile profile{4, 4};
  EXPECT_THROW((void)profile.earliest_anchor(0, 0, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)profile.earliest_anchor(5, 0, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)profile.earliest_anchor(1, 5, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)profile.earliest_anchor(1, -1, 10, 0),
               std::invalid_argument);
  EXPECT_THROW((void)profile.earliest_anchor(1, 0, 0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)profile.procs_free_at(-1), std::invalid_argument);
  EXPECT_THROW((void)profile.bb_free_at(-1), std::invalid_argument);
}

TEST(MultiProfile, DiscardBeforeKeepsTheVisibleTimeline) {
  MultiProfile profile{8, 20};
  profile.reserve(0, 100, 2, 5);
  profile.reserve(50, 150, 3, 5);
  profile.discard_before(60);
  EXPECT_EQ(profile.procs_free_at(60), 3);
  EXPECT_EQ(profile.bb_free_at(60), 10);
  EXPECT_EQ(profile.procs_free_at(120), 5);
  EXPECT_EQ(profile.bb_free_at(120), 15);
  EXPECT_EQ(profile.procs_free_at(200), 8);
  EXPECT_EQ(profile.bb_free_at(200), 20);
  EXPECT_NO_THROW(profile.check_invariants());
}

TEST(MultiProfile, WindowsSaturateAtTheFarFuture) {
  MultiProfile profile{4, 8};
  // A duration that would overflow begin + duration must saturate, not
  // wrap: the anchor is still found (the far future is fully free).
  const sim::Time anchor =
      profile.earliest_anchor(4, 8, sim::kTimeMax, 100);
  EXPECT_EQ(anchor, 100);
  profile.reserve(0, 10, 4, 8);
  EXPECT_EQ(profile.earliest_anchor(1, 1, sim::kTimeMax, 0), 10);
}

}  // namespace
}  // namespace bfsim::core
