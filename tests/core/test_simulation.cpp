#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

TEST(Simulation, EmptyTraceProducesEmptyResult) {
  const Trace empty;
  const auto result = run_simulation(
      empty, SchedulerKind::Easy, SchedulerConfig{4, PriorityPolicy::Fcfs});
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_EQ(result.makespan, 0);
  EXPECT_EQ(result.events, 0u);
}

TEST(Simulation, SingleJobRunsImmediately) {
  const Trace trace = make_trace({{.submit = 5, .runtime = 10, .procs = 2}});
  const auto result = run_simulation(
      trace, SchedulerKind::Conservative,
      SchedulerConfig{4, PriorityPolicy::Fcfs}, {}, {.validate = true});
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_EQ(result.outcomes[0].start, 5);
  EXPECT_EQ(result.outcomes[0].end, 15);
  EXPECT_FALSE(result.outcomes[0].killed);
  EXPECT_EQ(result.makespan, 15);
  EXPECT_EQ(result.events, 2u);  // one submit + one finish
}

TEST(Simulation, JobExceedingEstimateIsKilled) {
  const Trace trace = make_trace(
      {{.submit = 0, .runtime = 500, .procs = 1, .estimate = 100}});
  const auto result = run_simulation(
      trace, SchedulerKind::Easy, SchedulerConfig{4, PriorityPolicy::Fcfs},
      {}, {.validate = true});
  EXPECT_TRUE(result.outcomes[0].killed);
  EXPECT_EQ(result.outcomes[0].end, 100);  // killed at the wall-clock limit
  EXPECT_EQ(result.outcomes[0].effective_runtime(), 100);
}

TEST(Simulation, OutcomeAccessors) {
  const Trace trace = make_trace(
      {{.submit = 10, .runtime = 50, .procs = 2, .estimate = 80}});
  const auto result = run_simulation(
      trace, SchedulerKind::Fcfs, SchedulerConfig{4, PriorityPolicy::Fcfs});
  const JobOutcome& o = result.outcomes[0];
  EXPECT_EQ(o.wait(), 0);
  EXPECT_EQ(o.turnaround(), 50);
  EXPECT_EQ(o.effective_runtime(), 50);
}

TEST(Simulation, RejectsUnsortedTrace) {
  Trace trace = make_trace({{.submit = 100, .runtime = 1, .procs = 1},
                            {.submit = 0, .runtime = 1, .procs = 1}});
  std::swap(trace[0], trace[1]);  // break ordering but keep ids
  std::swap(trace[0].id, trace[1].id);
  EXPECT_THROW(
      (void)run_simulation(trace, SchedulerKind::Easy,
                           SchedulerConfig{4, PriorityPolicy::Fcfs}),
      std::invalid_argument);
}

TEST(Simulation, RejectsBadIds) {
  Trace trace = make_trace({{.submit = 0, .runtime = 1, .procs = 1}});
  trace[0].id = 5;
  EXPECT_THROW(
      (void)run_simulation(trace, SchedulerKind::Easy,
                           SchedulerConfig{4, PriorityPolicy::Fcfs}),
      std::invalid_argument);
}

TEST(Simulation, RejectsMalformedJobs) {
  for (const JobSpec bad : {JobSpec{.submit = 0, .runtime = 0, .procs = 1},
                            JobSpec{.submit = 0, .runtime = 1, .procs = 0}}) {
    Trace trace = make_trace({bad});
    trace[0].runtime = bad.runtime;  // make_trace clamps nothing; keep as is
    trace[0].procs = bad.procs;
    EXPECT_THROW(
        (void)run_simulation(trace, SchedulerKind::Easy,
                             SchedulerConfig{4, PriorityPolicy::Fcfs}),
        std::invalid_argument);
  }
}

TEST(Simulation, SimultaneousFinishAndSubmitOrdering) {
  // J1 arrives exactly when J0 finishes: it must see the free machine.
  const Trace trace = make_trace({{.submit = 0, .runtime = 100, .procs = 4},
                                  {.submit = 100, .runtime = 10, .procs = 4}});
  const auto result = run_simulation(
      trace, SchedulerKind::Fcfs, SchedulerConfig{4, PriorityPolicy::Fcfs},
      {}, {.validate = true});
  EXPECT_EQ(result.outcomes[1].start, 100);
}

TEST(Simulation, TracksPeakQueueDepth) {
  std::vector<JobSpec> specs;
  specs.push_back({.submit = 0, .runtime = 1000, .procs = 4});
  for (int i = 0; i < 7; ++i)
    specs.push_back({.submit = 1 + i, .runtime = 10, .procs = 4});
  const auto result = run_simulation(
      make_trace(specs), SchedulerKind::Fcfs,
      SchedulerConfig{4, PriorityPolicy::Fcfs});
  EXPECT_EQ(result.max_queue, 7u);
}

TEST(Simulation, EventCountIsTwoPerJob) {
  const Trace trace = test::random_trace(100, 8, 3, false);
  const auto result = run_simulation(
      trace, SchedulerKind::Easy, SchedulerConfig{8, PriorityPolicy::Fcfs});
  EXPECT_EQ(result.events, 200u);
}

TEST(Simulation, SkipsNoOpPassesOnSaturatedWorkload) {
  // Deep backlogs are where skipping pays: most arrival batches cannot
  // start anything. Every scheduler must execute strictly fewer passes
  // than it receives events, and must actually skip some batches.
  const Trace trace = test::random_trace(400, 8, 21, /*overestimate=*/true);
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Easy, SchedulerKind::Conservative,
        SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack}) {
    const auto result = run_simulation(
        trace, kind, SchedulerConfig{8, PriorityPolicy::Fcfs});
    EXPECT_LT(result.passes, result.events) << to_string(kind);
    EXPECT_GT(result.passes_skipped, 0u) << to_string(kind);
  }
}

TEST(Simulation, PassAndSkipCountsCoverEveryBatch) {
  // submit@0 (pass: starts), finish@10 + submit@10 (one batch, pass:
  // starts job 1), finish@20 (no queue: skipped). Three passes never
  // happen: batches are decided once, not per event.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 4},
                                  {.submit = 10, .runtime = 10, .procs = 4}});
  const auto result = run_simulation(
      trace, SchedulerKind::Fcfs, SchedulerConfig{4, PriorityPolicy::Fcfs});
  EXPECT_EQ(result.events, 4u);
  EXPECT_EQ(result.passes, 2u);
  EXPECT_EQ(result.passes_skipped, 1u);
  EXPECT_EQ(result.wakeups, 0u);
}

TEST(Simulation, SchedulerNameIsRecorded) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 1, .procs = 1}});
  const auto result = run_simulation(
      trace, SchedulerKind::Conservative,
      SchedulerConfig{4, PriorityPolicy::XFactor});
  EXPECT_EQ(result.scheduler_name, "conservative-xfactor");
}

TEST(Simulation, DeterministicAcrossRuns) {
  const Trace trace = test::random_trace(400, 16, 11, true);
  const auto a = run_simulation(trace, SchedulerKind::Easy,
                                SchedulerConfig{16, PriorityPolicy::Sjf});
  const auto b = run_simulation(trace, SchedulerKind::Easy,
                                SchedulerConfig{16, PriorityPolicy::Sjf});
  for (std::size_t i = 0; i < trace.size(); ++i)
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start);
}

TEST(Simulation, HostileEstimatesNearTimeMaxStaySane) {
  // Overflow regression: an estimate near kTimeMax flows into every
  // time sum on the hot path -- profile window ends, kill deadlines,
  // reservation ends -- all of which must saturate at kTimeMax instead
  // of wrapping (this test runs under UBSan in CI, where a raw `+`
  // here is a hard failure, not just a wrong schedule). The schedule
  // itself must stay exact: the monster job still finishes at its real
  // runtime and the waiter starts right behind it.
  const Trace trace =
      make_trace({{.submit = 0, .runtime = 1000, .procs = 4,
                   .estimate = sim::kTimeMax - 5},
                  {.submit = 10, .runtime = 50, .procs = 4, .estimate = 100}});
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Easy, SchedulerKind::Conservative,
        SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack}) {
    SCOPED_TRACE(to_string(kind));
    const auto result =
        run_simulation(trace, kind, SchedulerConfig{4, PriorityPolicy::Fcfs},
                       {}, {.validate = true, .audit = true});
    ASSERT_EQ(result.outcomes.size(), 2u);
    EXPECT_EQ(result.outcomes[0].start, 0);
    EXPECT_EQ(result.outcomes[0].end, 1000);
    EXPECT_FALSE(result.outcomes[0].killed);
    EXPECT_EQ(result.outcomes[1].start, 1000);
    EXPECT_EQ(result.outcomes[1].end, 1050);
    EXPECT_EQ(result.makespan, 1050);
  }
}

TEST(Simulation, SchedulerKindNamesRoundTrip) {
  for (const auto kind :
       {SchedulerKind::Fcfs, SchedulerKind::Easy, SchedulerKind::Conservative,
        SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack})
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
  EXPECT_EQ(scheduler_kind_from_string("aggressive"), SchedulerKind::Easy);
  EXPECT_THROW((void)scheduler_kind_from_string("nope"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::core
