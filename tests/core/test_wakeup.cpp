// Wake-up timers: a scheduler holding a start for an instant at which
// no submit/finish/cancel event lands must still fire exactly on time,
// driven by next_wakeup() through the engine's timer events -- plus the
// driver's guard rails around that contract (overdue wake-ups throw,
// timers re-arm after a pass that starts nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/conservative_scheduler.hpp"
#include "core/simulation.hpp"
#include "core/slack_scheduler.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;

/// Holds every queued job until a fixed sequence of release instants;
/// at each release time the next queued job starts. Between releases it
/// reports the next instant via next_wakeup() and (correctly) promises
/// that no pass is needed -- so a start can only happen if the driver's
/// timer path works.
class TimerScheduler : public Scheduler {
 public:
  TimerScheduler(SchedulerConfig config, std::vector<Time> releases)
      : config_(config), releases_(std::move(releases)) {}

  bool job_submitted(const Job& job, Time) override {
    queue_.push_back(job);
    return false;  // never start on arrival: rely on the timer
  }
  bool job_finished(JobId, Time) override {
    running_ -= 1;
    return false;
  }
  [[nodiscard]] Time next_wakeup() override {
    return next_ < releases_.size() ? releases_[next_] : sim::kNoTime;
  }
  using Scheduler::select_starts;
  void select_starts(Time now, std::vector<Job>& out) override {
    if (next_ >= releases_.size() || now < releases_[next_]) return;
    ++next_;
    if (!queue_.empty()) {
      out.push_back(queue_.front());
      queue_.erase(queue_.begin());
      running_ += 1;
    }
  }
  [[nodiscard]] std::string name() const override { return "timer"; }
  [[nodiscard]] const SchedulerConfig& config() const override {
    return config_;
  }
  [[nodiscard]] std::size_t queued_count() const override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t running_count() const override {
    return static_cast<std::size_t>(running_);
  }

 private:
  SchedulerConfig config_;
  std::vector<Time> releases_;
  std::size_t next_ = 0;
  std::vector<Job> queue_;
  int running_ = 0;
};

TEST(Wakeup, ReservationAtEventlessTimeStartsExactlyOnTime) {
  // One job, submitted at t=0, held until t=7. No trace event exists at
  // 7: only the armed wake-up can start it there.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 1}});
  TimerScheduler scheduler{SchedulerConfig{4}, {7}};
  const auto result = run_simulation(trace, scheduler, {.validate = true});
  EXPECT_EQ(result.outcomes[0].start, 7);
  EXPECT_EQ(result.outcomes[0].end, 17);
  EXPECT_EQ(result.wakeups, 1u);
  // Submit and finish batches provably start nothing and are skipped;
  // only the wake-driven batch runs a pass.
  EXPECT_EQ(result.passes, 1u);
  EXPECT_EQ(result.passes_skipped, 2u);
  EXPECT_EQ(result.events, 2u);  // wake-ups are not trace events
}

TEST(Wakeup, TimerRearmsAfterAWakeDrivenPass) {
  // Two eventless releases in sequence: after the t=3 wake-driven pass
  // the scheduler reports the next release, and the driver must re-read
  // next_wakeup() post-pass and arm the follow-up timer for t=9.
  const Trace trace = make_trace({{.submit = 0, .runtime = 5, .procs = 1},
                                  {.submit = 0, .runtime = 5, .procs = 1}});
  TimerScheduler scheduler{SchedulerConfig{4}, {3, 9}};
  const auto result = run_simulation(trace, scheduler, {.validate = true});
  EXPECT_EQ(result.outcomes[0].start, 3);
  EXPECT_EQ(result.outcomes[1].start, 9);
  EXPECT_EQ(result.wakeups, 2u);
}

TEST(Wakeup, WakeCoincidingWithAnEventIsNotArmed) {
  // The release instant equals job 1's submit time: the submit batch at
  // t=5 re-evaluates the wake-up anyway, so no timer fires.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 1},
                                  {.submit = 5, .runtime = 10, .procs = 1}});
  TimerScheduler scheduler{SchedulerConfig{4}, {5, 6}};
  const auto result = run_simulation(trace, scheduler, {.validate = true});
  EXPECT_EQ(result.outcomes[0].start, 5);   // batch at 5, no timer needed
  EXPECT_EQ(result.outcomes[1].start, 6);   // eventless: timer
  EXPECT_EQ(result.wakeups, 1u);
}

/// Always claims a wake-up in the past -- the driver must refuse.
class OverdueScheduler final : public TimerScheduler {
 public:
  explicit OverdueScheduler(SchedulerConfig config)
      : TimerScheduler(config, {}) {}
  [[nodiscard]] Time next_wakeup() override { return 3; }
};

TEST(Wakeup, OverdueWakeupThrows) {
  const Trace trace = make_trace({{.submit = 5, .runtime = 10, .procs = 1}});
  OverdueScheduler scheduler{SchedulerConfig{4}};
  EXPECT_THROW((void)run_simulation(trace, scheduler), std::logic_error);
}

Job make_job(JobId id, sim::Time submit, sim::Time estimate, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = estimate;
  j.estimate = estimate;
  j.procs = procs;
  return j;
}

TEST(Wakeup, ConservativeReportsItsEarliestReservation) {
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  EXPECT_EQ(scheduler.next_wakeup(), sim::kNoTime);
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  EXPECT_EQ(scheduler.next_wakeup(), 0);  // reserved for right now
  (void)scheduler.select_starts(0);
  EXPECT_EQ(scheduler.next_wakeup(), sim::kNoTime);  // started, none queued
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_EQ(scheduler.next_wakeup(), 100);  // behind job 0's estimate
  scheduler.job_submitted(make_job(2, 2, 50, 2), 2);
  EXPECT_EQ(scheduler.next_wakeup(), 100);  // still the earliest anchor
  scheduler.job_finished(0, 60);  // early completion compresses to 60
  EXPECT_EQ(scheduler.next_wakeup(), 60);
}

TEST(Wakeup, SlackReportsRebuiltReservationsAfterDisplacement) {
  // Displacement reassigns reservations wholesale; next_wakeup() must
  // reflect the rebuilt heap, not the pre-displacement anchors.
  SlackScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs},
                           /*slack_factor=*/2.0};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 100, 4), 1);  // anchored at 100
  EXPECT_EQ(scheduler.next_wakeup(), 100);
  // A short narrow job may displace job 1 within its slack or slot in
  // beside it; either way the earliest anchor can only move earlier or
  // stay -- and must agree with the authoritative reservation table.
  scheduler.job_submitted(make_job(2, 2, 10, 1), 2);
  Time earliest = sim::kNoTime;
  for (const AuditReservation& r : scheduler.audit_reservations())
    earliest = earliest == sim::kNoTime ? r.start : std::min(earliest, r.start);
  EXPECT_EQ(scheduler.next_wakeup(), earliest);
}

}  // namespace
}  // namespace bfsim::core
