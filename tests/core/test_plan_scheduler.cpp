// The plan-based scheduler (Kopanski & Rzadca): the whole reservation
// plan is re-optimized at every event, so guarantees float to the
// current best packing instead of being pinned forever like
// conservative backfilling's. These tests pin the semantics that make
// it distinct -- replan-on-event, plans that legally move later,
// joint-axis packing -- and then run it through the full simulator with
// the auditor's profile and reservation cross-checks fatal.
#include "core/plan_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/audit.hpp"
#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::assign_random_bb;
using test::JobSpec;
using test::make_trace;
using test::random_trace;
using test::start_times;

Job make_job(JobId id, sim::Time submit, sim::Time estimate, int procs,
             int bb = 0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = estimate;
  j.estimate = estimate;
  j.procs = procs;
  j.bb = bb;
  return j;
}

SimulationResult run(const Trace& trace, SchedulerConfig config) {
  PlanScheduler scheduler{config};
  return run_simulation(trace, scheduler, {.validate = true, .audit = true});
}

TEST(PlanScheduler, IdleMachineStartsAFittingJobImmediately) {
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  EXPECT_TRUE(scheduler.job_submitted(make_job(0, 0, 100, 4), 0));
  const auto starts = scheduler.select_starts(0);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].id, 0u);
  EXPECT_EQ(scheduler.replans(), 0u);  // the O(1) fast path, no replan
}

TEST(PlanScheduler, EveryQueuedJobHoldsAPlannedStart) {
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  scheduler.job_submitted(make_job(2, 2, 50, 2), 2);
  EXPECT_EQ(scheduler.reservation_of(2), 150);
  scheduler.job_submitted(make_job(3, 3, 40, 2), 3);
  // Replanned in FCFS order, job 3 packs beside job 2, not behind it.
  EXPECT_EQ(scheduler.reservation_of(3), 150);
}

TEST(PlanScheduler, ReplanMovesGuaranteesEarlierAfterAnEarlyFinish) {
  // Conservative backfilling keeps the reservation computed from the
  // estimate; the plan scheduler re-anchors from the true state.
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  Job head = make_job(0, 0, 100, 4);
  head.runtime = 10;  // finishes early
  scheduler.job_submitted(head, 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  EXPECT_TRUE(scheduler.job_finished(0, 10));
  EXPECT_EQ(scheduler.reservation_of(1), 10);  // the whole plan moved up
  const auto starts = scheduler.select_starts(10);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].id, 1u);
}

TEST(PlanScheduler, ReplanMayLegallyMoveAPlannedStartLater) {
  // Under SJF a shorter late arrival outranks a queued job at the next
  // replan, pushing the queued job's planned start later -- the exact
  // behavior the monotone-reservation audit hook would flag, and why
  // the plan scheduler declares it off.
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Sjf}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 80, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  scheduler.job_submitted(make_job(2, 2, 10, 4), 2);
  EXPECT_EQ(scheduler.reservation_of(2), 100);  // shorter: planned first
  EXPECT_EQ(scheduler.reservation_of(1), 110);  // moved later, by design
  EXPECT_FALSE(scheduler.audit_hooks().monotone_reservations);
}

TEST(PlanScheduler, PacksBothResourceAxesJointly) {
  // procs fit now, but the buffer is held by the running job -- the
  // plan must anchor the bb-hungry job at the release instant.
  PlanScheduler scheduler{
      SchedulerConfig{8, PriorityPolicy::Fcfs, /*burst_buffer=*/100}};
  scheduler.job_submitted(make_job(0, 0, 100, 2, 100), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 2, 50), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  // A buffer-free job of the same width backfills immediately.
  EXPECT_TRUE(scheduler.job_submitted(make_job(2, 2, 50, 2, 0), 2));
  EXPECT_EQ(scheduler.reservation_of(2), 2);
}

TEST(PlanScheduler, CancellingTheLastQueuedJobVacatesItsRectangle) {
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_FALSE(scheduler.job_cancelled(1, 5));
  EXPECT_NO_THROW(scheduler.profile().check_invariants());
  EXPECT_EQ(scheduler.profile().procs_free_at(100), 4);  // plan gone
  EXPECT_EQ(scheduler.queued_count(), 0u);
  EXPECT_EQ(scheduler.next_wakeup(), sim::kNoTime);
}

TEST(PlanScheduler, WakeupTracksTheEarliestPlannedStart) {
  PlanScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  EXPECT_EQ(scheduler.next_wakeup(), sim::kNoTime);
  scheduler.job_submitted(make_job(1, 1, 50, 2), 1);
  EXPECT_EQ(scheduler.next_wakeup(), 100);
}

TEST(PlanScheduler, SimultaneousStartsCommitInPriorityOrder) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 50, .procs = 2},
      {.submit = 2, .runtime = 50, .procs = 2},
  });
  const auto result = run(trace, SchedulerConfig{4, PriorityPolicy::Fcfs});
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 100}));
}

TEST(PlanScheduler, FullSimulationStaysValidAndAuditClean) {
  for (const std::uint64_t seed : {401u, 402u, 403u}) {
    const Trace trace = random_trace(150, 16, seed, /*overestimate=*/true);
    const auto result = run(trace, SchedulerConfig{16, PriorityPolicy::Fcfs});
    EXPECT_EQ(result.scheduler_name, "plan-fcfs");
  }
}

TEST(PlanScheduler, FullSimulationWithBurstBuffersStaysValidAndAuditClean) {
  for (const std::uint64_t seed : {411u, 412u, 413u}) {
    Trace trace = random_trace(150, 16, seed, /*overestimate=*/true);
    assign_random_bb(trace, 64, seed ^ 0x9e37);
    (void)run(trace,
              SchedulerConfig{16, PriorityPolicy::Fcfs, /*burst_buffer=*/64});
  }
}

TEST(PlanScheduler, EveryPriorityPolicyRunsClean) {
  const Trace trace = random_trace(120, 8, 77, /*overestimate=*/true);
  for (const PriorityPolicy priority :
       {PriorityPolicy::Fcfs, PriorityPolicy::Sjf, PriorityPolicy::Ljf,
        PriorityPolicy::XFactor}) {
    (void)run(trace, SchedulerConfig{8, priority});
  }
}

TEST(PlanScheduler, RegisteredWithTheFactoryAndKindStrings) {
  EXPECT_EQ(to_string(SchedulerKind::Plan), "plan");
  EXPECT_EQ(scheduler_kind_from_string("plan"), SchedulerKind::Plan);
  const auto scheduler = make_scheduler(
      SchedulerKind::Plan, SchedulerConfig{8, PriorityPolicy::Sjf}, {});
  EXPECT_EQ(scheduler->name(), "plan-sjf");
}

TEST(PlanScheduler, RejectsNegativeBurstBufferCapacity) {
  EXPECT_THROW(
      PlanScheduler(SchedulerConfig{8, PriorityPolicy::Fcfs, -1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace bfsim::core
