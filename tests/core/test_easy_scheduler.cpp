#include "core/easy_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/conservative_scheduler.hpp"
#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;
using test::start_times;

SimulationResult run(const Trace& trace, int procs,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  EasyScheduler scheduler{SchedulerConfig{procs, priority}};
  return run_simulation(trace, scheduler, {.validate = true});
}

TEST(EasyScheduler, BackfillsShortJobUnderTheShadow) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 2},  // J0 runs [0, 100)
      {.submit = 1, .runtime = 100, .procs = 4},  // J1 head, shadow = 100
      {.submit = 2, .runtime = 50, .procs = 2},   // ends 52 <= 100: backfills
      {.submit = 3, .runtime = 200, .procs = 2},  // would delay J1: waits
  });
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 2, 200}));
}

TEST(EasyScheduler, HeadReservationIsHonoredExactly) {
  // Despite the backfill, the head starts exactly at its shadow time.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 2},
      {.submit = 1, .runtime = 10, .procs = 4},
      {.submit = 2, .runtime = 98, .procs = 2},  // ends exactly at 100
  });
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 2}));
}

TEST(EasyScheduler, ExtraProcessorsAdmitLongBackfill) {
  // Shadow leaves one spare processor: a single-processor job may run
  // arbitrarily long without delaying the head.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 3},   // J0
      {.submit = 1, .runtime = 50, .procs = 4},    // J1 head: shadow 100,
                                                   // extra = (2+3)-4 = 1
      {.submit = 2, .runtime = 1000, .procs = 1},  // uses the spare proc
      {.submit = 3, .runtime = 1000, .procs = 1},  // extra exhausted: waits
  });
  const auto result = run(trace, 5);
  ASSERT_EQ(result.outcomes.size(), 4u);
  EXPECT_EQ(result.outcomes[0].start, 0);
  EXPECT_EQ(result.outcomes[1].start, 100);  // head on time
  EXPECT_EQ(result.outcomes[2].start, 2);    // via extra
  EXPECT_EQ(result.outcomes[3].start, 150);  // after the head finishes
}

TEST(EasyScheduler, ShadowTieIncludesAllSimultaneousCompletions) {
  // Two jobs end at t=100 together. The shadow walk crosses the head's
  // requirement at the first of them; the extra processors must still
  // count the second (regression test for the tie bug).
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 3},   // ends 100
      {.submit = 0, .runtime = 100, .procs = 3},   // ends 100 too
      {.submit = 1, .runtime = 100, .procs = 5},   // head: shadow 100,
                                                   // extra = (2+3+3)-5 = 3
      {.submit = 2, .runtime = 1000, .procs = 2},  // fits in extra
  });
  const auto result = run(trace, 8);
  EXPECT_EQ(result.outcomes[2].start, 100);
  EXPECT_EQ(result.outcomes[3].start, 2);
}

TEST(EasyScheduler, SjfPriorityPicksDifferentHead) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 500, .procs = 4},
      {.submit = 2, .runtime = 50, .procs = 4},
  });
  const auto fcfs = run(trace, 4, PriorityPolicy::Fcfs);
  EXPECT_EQ(start_times(fcfs), (std::vector<sim::Time>{0, 100, 600}));
  const auto sjf = run(trace, 4, PriorityPolicy::Sjf);
  EXPECT_EQ(start_times(sjf), (std::vector<sim::Time>{0, 150, 100}));
}

TEST(EasyScheduler, SjfStarvesWideJobWithoutReservation) {
  // Under SJF-EASY a wide long job never reaches the head of the queue
  // while shorter work keeps arriving: each batch of short jobs sorts
  // ahead of it and takes the machine. Under conservative backfilling
  // the same job is protected by its arrival-time reservation. This is
  // the mechanism behind the paper's worst-case turnaround blow-up
  // (Tables 4 and 7).
  std::vector<JobSpec> specs;
  specs.push_back({.submit = 0, .runtime = 100, .procs = 2});  // short
  specs.push_back({.submit = 0, .runtime = 100, .procs = 2});  // short
  specs.push_back({.submit = 1, .runtime = 1000, .procs = 4}); // wide victim
  for (int i = 0; i < 20; ++i)  // a steady stream of shorts
    specs.push_back({.submit = 5 + 50 * i, .runtime = 100, .procs = 2});
  const Trace trace = make_trace(specs);

  const auto easy = run(trace, 4, PriorityPolicy::Sjf);
  // Shorts pair up in 100 s waves; the victim waits out all 10 waves.
  EXPECT_EQ(easy.outcomes[2].start, 1100);

  core::ConservativeScheduler cons{SchedulerConfig{4, PriorityPolicy::Sjf}};
  const auto cons_result = run_simulation(trace, cons, {.validate = true});
  // Conservative guaranteed the victim t=100 on arrival.
  EXPECT_EQ(cons_result.outcomes[2].start, 100);
}

TEST(EasyScheduler, LastShadowExposedForDiagnostics) {
  EasyScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  scheduler.job_submitted(a, 0);
  (void)scheduler.select_starts(0);
  EXPECT_EQ(scheduler.last_shadow_time(), sim::kNoTime);  // nothing blocked
  Job b = a;
  b.id = 1;
  b.submit = 5;
  scheduler.job_submitted(b, 5);
  (void)scheduler.select_starts(5);
  EXPECT_EQ(scheduler.last_shadow_time(), 100);
}

TEST(EasyScheduler, RejectsJobWiderThanMachine) {
  // Too-wide jobs are rejected by the driver's trace validation before
  // any event reaches the scheduler.
  const Trace trace = make_trace({{.submit = 0, .runtime = 1, .procs = 9}});
  EasyScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Fcfs}};
  EXPECT_THROW((void)run_simulation(trace, scheduler), std::invalid_argument);
}

TEST(EasyScheduler, DrainsBurstArrivals) {
  // 50 simultaneous single-proc jobs on a 4-proc machine: EASY packs
  // them 4 at a time with no idle gaps.
  std::vector<JobSpec> specs;
  for (int i = 0; i < 50; ++i)
    specs.push_back({.submit = 0, .runtime = 10, .procs = 1});
  const auto result = run(make_trace(specs), 4);
  EXPECT_EQ(result.makespan, 130);  // ceil(50/4) * 10
}

TEST(EasyScheduler, NameIncludesPriority) {
  const EasyScheduler scheduler{SchedulerConfig{8, PriorityPolicy::XFactor}};
  EXPECT_EQ(scheduler.name(), "easy-xfactor");
}

}  // namespace
}  // namespace bfsim::core
