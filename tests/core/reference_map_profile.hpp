// bfsim tests -- the original std::map-based availability profile, kept
// verbatim as the differential-testing reference for the flat-vector
// core::Profile that replaced it. Semantics are the contract; this
// implementation is the spec. Two deliberate deviations from the seed
// version, matching fixes carried into the production profile:
//   * fits() validates a negative window start instead of decrementing
//     points_.upper_bound(begin) past begin() (undefined behaviour);
//   * find_and_reserve() exists (search + reserve, unfused here).
#pragma once

#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "sim/time.hpp"

namespace bfsim::core::test {

/// Reference model: time -> free processors in a std::map.
class MapProfile {
 public:
  using Segment = Profile::Segment;

  explicit MapProfile(int total_procs) : total_(total_procs) {
    if (total_procs < 1)
      throw std::invalid_argument("MapProfile: total_procs must be >= 1");
    points_[0] = total_;
  }

  [[nodiscard]] int total() const { return total_; }

  [[nodiscard]] int free_at(sim::Time t) const {
    if (t < 0)
      throw std::invalid_argument("MapProfile::free_at: negative time");
    auto it = points_.upper_bound(t);
    --it;  // key 0 always exists, so it is valid
    return it->second;
  }

  [[nodiscard]] bool fits(int procs, sim::Time begin, sim::Time end) const {
    if (begin >= end) return true;
    if (begin < 0)
      throw std::invalid_argument("MapProfile::fits: negative window start");
    auto it = points_.upper_bound(begin);
    --it;
    for (; it != points_.end() && it->first < end; ++it)
      if (it->second < procs) return false;
    return true;
  }

  [[nodiscard]] sim::Time earliest_anchor(int procs, sim::Time duration,
                                          sim::Time not_before) const {
    if (procs < 1 || procs > total_)
      throw std::invalid_argument("MapProfile::earliest_anchor: bad procs");
    if (duration < 1)
      throw std::invalid_argument("MapProfile::earliest_anchor: bad duration");
    if (not_before < 0) not_before = 0;

    constexpr sim::Time kFar = std::numeric_limits<sim::Time>::max();
    auto it = points_.upper_bound(not_before);
    --it;
    sim::Time candidate = not_before;
    for (;;) {
      auto scan = it;
      bool ok = true;
      while (true) {
        if (scan->second < procs) {
          ok = false;
          break;
        }
        auto next = std::next(scan);
        const sim::Time seg_end = next == points_.end() ? kFar : next->first;
        if (seg_end >= candidate + duration) break;
        scan = next;
      }
      if (ok) return candidate;
      do {
        ++scan;
      } while (scan->second < procs);
      candidate = scan->first;
      it = scan;
    }
  }

  sim::Time find_and_reserve(int procs, sim::Time duration,
                             sim::Time not_before) {
    const sim::Time anchor = earliest_anchor(procs, duration, not_before);
    reserve(anchor, anchor + duration, procs);
    return anchor;
  }

  void reserve(sim::Time begin, sim::Time end, int procs) {
    if (procs < 0)
      throw std::invalid_argument("MapProfile::reserve: procs < 0");
    apply(begin, end, -procs);
  }

  void release(sim::Time begin, sim::Time end, int procs) {
    if (procs < 0)
      throw std::invalid_argument("MapProfile::release: procs < 0");
    apply(begin, end, procs);
  }

  [[nodiscard]] std::vector<Segment> segments() const {
    std::vector<Segment> out;
    out.reserve(points_.size());
    for (const auto& [time, free] : points_) {
      if (!out.empty() && out.back().free == free) continue;
      out.push_back(Segment{time, free});
    }
    return out;
  }

  void check_invariants() const {
    if (points_.empty() || points_.begin()->first != 0)
      throw std::logic_error("MapProfile: missing origin breakpoint");
    for (const auto& [time, free] : points_) {
      if (free < 0 || free > total_)
        throw std::logic_error("MapProfile: free out of range at t=" +
                               std::to_string(time));
    }
    if (points_.rbegin()->second != total_)
      throw std::logic_error("MapProfile: tail segment is not fully free");
  }

 private:
  int total_;
  std::map<sim::Time, int> points_;

  std::map<sim::Time, int>::iterator ensure_point(sim::Time t) {
    auto it = points_.lower_bound(t);
    if (it != points_.end() && it->first == t) return it;
    const int value = std::prev(it)->second;
    return points_.emplace_hint(it, t, value);
  }

  void apply(sim::Time begin, sim::Time end, int delta) {
    if (begin < 0)
      throw std::invalid_argument("MapProfile: negative interval start");
    if (begin >= end) return;
    const auto first = ensure_point(begin);
    ensure_point(end);
    for (auto it = first; it->first < end; ++it) {
      const int updated = it->second + delta;
      if (updated < 0)
        throw std::logic_error("MapProfile: over-reservation at t=" +
                               std::to_string(it->first));
      if (updated > total_)
        throw std::logic_error("MapProfile: double release at t=" +
                               std::to_string(it->first));
      it->second = updated;
    }
    coalesce_around(begin, end);
  }

  void coalesce_around(sim::Time begin, sim::Time end) {
    auto it = points_.upper_bound(begin);
    if (it != points_.begin()) --it;
    if (it != points_.begin()) --it;
    while (it != points_.end() && it->first <= end) {
      auto next = std::next(it);
      if (next == points_.end()) break;
      if (next->second == it->second) {
        points_.erase(next);
      } else {
        ++it;
      }
    }
  }
};

}  // namespace bfsim::core::test
