#include "core/kres_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/easy_scheduler.hpp"
#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;
using test::start_times;

SimulationResult run(const Trace& trace, int procs, int depth,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  KReservationScheduler scheduler{SchedulerConfig{procs, priority}, depth};
  return run_simulation(trace, scheduler, {.validate = true});
}

TEST(KReservation, RejectsNegativeDepth) {
  EXPECT_THROW(
      (KReservationScheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, -1}),
      std::invalid_argument);
}

TEST(KReservation, DepthZeroIsGreedyNoGuarantee) {
  // With no reservations at all, short jobs leapfrog a blocked wide job
  // indefinitely as long as they fit.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 3},  // [0,100)
      {.submit = 1, .runtime = 10, .procs = 4},   // wide: no protection
      {.submit = 2, .runtime = 200, .procs = 1},  // runs [2,202): with K=1
                                                  // it would delay the head
  });
  const auto k0 = run(trace, 4, 0);
  EXPECT_EQ(k0.outcomes[2].start, 2);     // leapfrogs freely
  EXPECT_EQ(k0.outcomes[1].start, 202);   // wide job pays
  const auto k1 = run(trace, 4, 1);
  EXPECT_EQ(k1.outcomes[1].start, 100);   // head protected at its anchor
  // The narrow job must now respect the head's [100, 110) reservation:
  // its 200 s window no longer fits at t=2, so it follows the head.
  EXPECT_EQ(k1.outcomes[2].start, 110);
}

TEST(KReservation, DepthOneMatchesEasyOnHandScenario) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 2},
      {.submit = 1, .runtime = 100, .procs = 4},
      {.submit = 2, .runtime = 50, .procs = 2},
      {.submit = 3, .runtime = 200, .procs = 2},
  });
  const auto kres = run(trace, 4, 1);
  EasyScheduler easy{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  const auto easy_result = run_simulation(trace, easy, {.validate = true});
  EXPECT_EQ(start_times(kres), start_times(easy_result));
}

TEST(KReservation, DepthTwoProtectsSecondJob) {
  // The second blocked job holds a guarantee only at depth >= 2. The
  // 1-proc backfill candidate slips through the head's half-width
  // reservation, but at depth 2 the second job's full-width reservation
  // [200, 250) stands in its way.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 3},  // running [0, 100)
      {.submit = 1, .runtime = 100, .procs = 2},  // head: reserved [100,200)
      {.submit = 2, .runtime = 50, .procs = 4},   // second: blocked
      {.submit = 3, .runtime = 300, .procs = 1},  // backfill candidate
  });
  const auto k1 = run(trace, 4, 1);
  // depth 1: the candidate's window [3, 303) has a free processor
  // throughout -- the head only reserves 2 of 4 in [100, 200) -- and job
  // 2 holds no guarantee, so the candidate starts immediately.
  EXPECT_EQ(k1.outcomes[3].start, 3);
  EXPECT_EQ(k1.outcomes[1].start, 100);
  const auto k2 = run(trace, 4, 2);
  // depth 2: job 2 is guaranteed [200, 250) on the full machine; the
  // candidate's window would cut into it, so it waits until job 2 ends.
  EXPECT_EQ(k2.outcomes[3].start, 250);
  EXPECT_EQ(k2.outcomes[2].start, 200);
  // The protected job starts no later under depth 2 than under depth 1.
  EXPECT_LE(k2.outcomes[2].start, k1.outcomes[2].start);
}

TEST(KReservation, LargeDepthApproachesConservativeBehavior) {
  // With depth >= queue length every waiting job is protected: a later
  // arrival can never start before an earlier-arrived narrower window
  // would allow. We check the no-starvation effect: the widest job's
  // wait under large depth is <= its wait under depth 0.
  std::vector<JobSpec> specs;
  specs.push_back({.submit = 0, .runtime = 400, .procs = 6});
  specs.push_back({.submit = 1, .runtime = 300, .procs = 8});  // wide victim
  for (int i = 0; i < 30; ++i)
    specs.push_back({.submit = 2 + i * 5, .runtime = 120, .procs = 2});
  const Trace trace = make_trace(specs);
  const auto k0 = run(trace, 8, 0);
  const auto kbig = run(trace, 8, 64);
  EXPECT_LE(kbig.outcomes[1].start, k0.outcomes[1].start);
}

TEST(KReservation, NameEncodesDepthAndPriority) {
  const KReservationScheduler scheduler{
      SchedulerConfig{8, PriorityPolicy::Sjf}, 4};
  EXPECT_EQ(scheduler.name(), "kres4-sjf");
  EXPECT_EQ(scheduler.depth(), 4);
}

TEST(KReservation, FactoryBuildsWithExtras) {
  SchedulerExtras extras;
  extras.reservation_depth = 7;
  const auto scheduler =
      make_scheduler(SchedulerKind::KReservation,
                     SchedulerConfig{8, PriorityPolicy::Fcfs}, extras);
  EXPECT_EQ(scheduler->name(), "kres7-fcfs");
}

}  // namespace
}  // namespace bfsim::core
