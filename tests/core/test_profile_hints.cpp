// Property suite for the anchor-hint cache (core/profile.hpp): hints are
// a pure accelerator, so every anchor query must return exactly what a
// hint-free search over the current timeline returns, no matter how warm
// or stale the cache is. The oracle below recomputes the earliest anchor
// from segments() alone (it cannot see the hints), and check_invariants()
// additionally proves every live certificate against the raw timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <vector>

#include "core/profile.hpp"
#include "sim/time.hpp"

namespace bfsim::core {
namespace {

sim::Time segment_end(const std::vector<Profile::Segment>& segs,
                      std::size_t i) {
  return i + 1 < segs.size() ? segs[i + 1].begin : sim::kTimeMax;
}

/// Hint-free reference: earliest t >= not_before with free >= procs over
/// the whole window [t, t + duration). O(n^2) and proud of it.
sim::Time naive_anchor(const std::vector<Profile::Segment>& segs, int procs,
                       sim::Time duration, sim::Time not_before) {
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const sim::Time candidate = std::max(not_before, segs[i].begin);
    if (candidate >= segment_end(segs, i)) continue;  // before the query
    if (segs[i].free < procs) continue;
    const sim::Time window_end = sim::saturating_add(candidate, duration);
    bool ok = true;
    for (std::size_t j = i; j < segs.size(); ++j) {
      if (segs[j].free < procs) {
        ok = false;
        break;
      }
      if (segment_end(segs, j) >= window_end) break;
    }
    if (ok) return candidate;
  }
  ADD_FAILURE() << "no anchor found (the free tail should always fit)";
  return sim::kNoTime;
}

struct Held {
  sim::Time begin, end;
  int procs;
};

TEST(ProfileHints, WarmCacheNeverChangesAnchorResults) {
  constexpr int kProcs = 64;
  std::mt19937_64 rng{4242};
  Profile profile{kProcs};
  std::vector<Held> held;
  for (int round = 0; round < 3000; ++round) {
    const auto segs = profile.segments();
    const int procs = static_cast<int>(rng() % kProcs) + 1;
    const sim::Time duration = static_cast<sim::Time>(rng() % 500) + 1;
    const sim::Time from = static_cast<sim::Time>(rng() % 2000);
    const auto roll = rng() % 4;
    if (roll == 0) {
      // Pure query: must match the oracle and leave the timeline alone.
      const sim::Time expected = naive_anchor(segs, procs, duration, from);
      EXPECT_EQ(profile.earliest_anchor(procs, duration, from), expected)
          << "round " << round;
      EXPECT_EQ(profile.segments(), segs);
    } else if (roll == 1 && !held.empty()) {
      // Release (the clamp_hints path: capacity reappears inside
      // certified-empty intervals, which must truncate them).
      const std::size_t pick = static_cast<std::size_t>(rng() % held.size());
      profile.release(held[pick].begin, held[pick].end, held[pick].procs);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const sim::Time expected = naive_anchor(segs, procs, duration, from);
      const sim::Time anchor = profile.find_and_reserve(procs, duration, from);
      EXPECT_EQ(anchor, expected) << "round " << round;
      held.push_back({anchor, sim::saturating_add(anchor, duration), procs});
      if (held.size() > 40) {
        profile.release(held.front().begin, held.front().end,
                        held.front().procs);
        held.erase(held.begin());
      }
    }
    // Every live certificate is re-proved against the raw timeline.
    ASSERT_NO_THROW(profile.check_invariants()) << "round " << round;
  }
}

TEST(ProfileHints, DiscardBeforeInvalidatesCertifiedPrefixes) {
  Profile profile{8};
  // Fill [0, 100) completely so wide queries certify a no-capacity
  // prefix, then discard history: the discarded region reads as free,
  // and stale certificates must not keep pushing anchors past it.
  profile.reserve(0, 100, 8);
  EXPECT_EQ(profile.earliest_anchor(8, 10, 0), 100);  // warms the cache
  profile.discard_before(150);
  ASSERT_NO_THROW(profile.check_invariants());
  const auto segs = profile.segments();
  for (const int procs : {1, 2, 8})
    EXPECT_EQ(profile.earliest_anchor(procs, 10, 0),
              naive_anchor(segs, procs, 10, 0));
}

TEST(ProfileHints, HostileDurationSaturatesInsteadOfOverflowing) {
  // Regression for the anchor_from overflow: a duration near kTimeMax
  // used to compute `candidate + duration` raw, which is signed-overflow
  // UB once any reservation pushes the candidate past zero. With
  // saturating_add the window end parks at kTimeMax ("runs forever")
  // and the fully-free tail covers it.
  Profile profile{16};
  profile.reserve(0, 1000, 16);  // force a nonzero anchor
  const sim::Time anchor = profile.find_and_reserve(4, sim::kTimeMax, 0);
  EXPECT_EQ(anchor, 1000);
  ASSERT_NO_THROW(profile.check_invariants());
  // The forever-job occupies its processors to the end of time: only
  // the remaining width fits after it.
  EXPECT_EQ(profile.free_at(sim::kTimeMax - 1), 12);
  const sim::Time next = profile.earliest_anchor(12, 50, 0);
  EXPECT_EQ(next, 1000);
  EXPECT_EQ(profile.earliest_anchor(16, 50, 0), sim::kTimeMax);
}

}  // namespace
}  // namespace bfsim::core
