#include "core/fcfs_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;
using test::start_times;

SimulationResult run(const Trace& trace, int procs,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  FcfsScheduler scheduler{SchedulerConfig{procs, priority}};
  return run_simulation(trace, scheduler, {.validate = true});
}

TEST(FcfsScheduler, RunsJobsImmediatelyWhenMachineFree) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 2},
                                  {.submit = 0, .runtime = 10, .procs = 2}});
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 0}));
}

TEST(FcfsScheduler, HeadOfQueueBlocksEverything) {
  // J1 (whole machine) blocks J2 even though J2 would fit right now --
  // the utilization loss that motivated backfilling.
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 2},  // J0 runs [0, 100)
      {.submit = 1, .runtime = 10, .procs = 4},   // J1 blocked until 100
      {.submit = 2, .runtime = 10, .procs = 1},   // J2 stuck behind J1
  });
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 110}));
}

TEST(FcfsScheduler, StartsInArrivalOrder) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 50, .procs = 4},
      {.submit = 1, .runtime = 10, .procs = 4},
      {.submit = 2, .runtime = 10, .procs = 4},
      {.submit = 3, .runtime = 10, .procs = 4},
  });
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 50, 60, 70}));
}

TEST(FcfsScheduler, SjfPriorityReordersQueue) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},  // machine busy
      {.submit = 1, .runtime = 500, .procs = 4},  // long
      {.submit = 2, .runtime = 10, .procs = 4},   // short -> first under SJF
  });
  const auto result = run(trace, 4, PriorityPolicy::Sjf);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 110, 100}));
}

TEST(FcfsScheduler, MultipleStartsWhenCapacityFreesUp) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 4},
      {.submit = 1, .runtime = 10, .procs = 2},
      {.submit = 2, .runtime = 10, .procs = 2},
  });
  const auto result = run(trace, 4);
  // Both small jobs start together once the big one ends.
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 100}));
}

TEST(FcfsScheduler, RejectsJobWiderThanMachine) {
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 9}});
  FcfsScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Fcfs}};
  EXPECT_THROW((void)run_simulation(trace, scheduler), std::invalid_argument);
}

TEST(FcfsScheduler, NamesIncludePriority) {
  const FcfsScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Sjf}};
  EXPECT_EQ(scheduler.name(), "nobackfill-sjf");
}

TEST(FcfsScheduler, CountsQueuedAndRunning) {
  FcfsScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  Job a;
  a.id = 0;
  a.submit = 0;
  a.runtime = a.estimate = 100;
  a.procs = 4;
  Job b = a;
  b.id = 1;
  b.submit = 1;
  scheduler.job_submitted(a, 0);
  EXPECT_EQ(scheduler.queued_count(), 1u);
  (void)scheduler.select_starts(0);
  EXPECT_EQ(scheduler.queued_count(), 0u);
  EXPECT_EQ(scheduler.running_count(), 1u);
  scheduler.job_submitted(b, 1);
  EXPECT_TRUE(scheduler.select_starts(1).empty());
  scheduler.job_finished(0, 100);
  EXPECT_EQ(scheduler.running_count(), 0u);
  const auto started = scheduler.select_starts(100);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, 1u);
}

}  // namespace
}  // namespace bfsim::core
