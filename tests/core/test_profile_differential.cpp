// Differential test: the flat-vector core::Profile against the original
// std::map implementation (tests/core/reference_map_profile.hpp) under
// randomized operation sequences. The flat rewrite must be drop-in
// behavior-equivalent: identical segments(), anchors, fits() verdicts
// and free_at() values after every operation, with both sides' internal
// invariants intact throughout.
#include <gtest/gtest.h>

#include <vector>

#include "core/profile.hpp"
#include "core/reference_map_profile.hpp"
#include "sim/rng.hpp"

namespace bfsim::core {
namespace {

using test::MapProfile;

void expect_equivalent(const Profile& flat, const MapProfile& reference,
                       sim::Time horizon) {
  ASSERT_NO_THROW(flat.check_invariants());
  ASSERT_NO_THROW(reference.check_invariants());
  ASSERT_EQ(flat.segments(), reference.segments());
  for (sim::Time t = 0; t <= horizon; t += 13)
    ASSERT_EQ(flat.free_at(t), reference.free_at(t)) << "t=" << t;
}

class ProfileDifferentialTest : public testing::TestWithParam<std::uint64_t> {
};

TEST_P(ProfileDifferentialTest, FlatMatchesMapUnderRandomOps) {
  constexpr int kProcs = 48;
  constexpr sim::Time kHorizon = 100000;
  sim::Rng rng{GetParam()};
  Profile flat{kProcs};
  MapProfile reference{kProcs};

  struct Live {
    sim::Time b, e;
    int procs;
  };
  std::vector<Live> live;

  for (int step = 0; step < 600; ++step) {
    const double dice = rng.next_double();
    if (dice < 0.30 && !live.empty()) {
      // Release a random live rectangle (possibly only its tail, the
      // early-completion pattern; the head stays live).
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      Live& r = live[idx];
      const bool tail_only = r.e - r.b > 2 && rng.bernoulli(0.4);
      const sim::Time from =
          tail_only ? r.b + rng.uniform_int(1, r.e - r.b - 1) : r.b;
      flat.release(from, r.e, r.procs);
      reference.release(from, r.e, r.procs);
      if (tail_only) {
        r.e = from;
      } else {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      }
    } else if (dice < 0.65) {
      // Fused find-and-reserve against reference search + reserve.
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const sim::Time dur = rng.uniform_int(1, 4000);
      const sim::Time from = rng.uniform_int(0, kHorizon);
      const sim::Time got = flat.find_and_reserve(procs, dur, from);
      const sim::Time want = reference.find_and_reserve(procs, dur, from);
      ASSERT_EQ(got, want) << "procs=" << procs << " dur=" << dur
                           << " from=" << from;
      live.push_back({got, got + dur, procs});
    } else if (dice < 0.85) {
      // Plain reserve of a window that fits (mirrors scheduler usage).
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs / 2));
      const sim::Time b = rng.uniform_int(0, kHorizon);
      const sim::Time e = b + rng.uniform_int(1, 3000);
      if (!reference.fits(procs, b, e)) continue;
      flat.reserve(b, e, procs);
      reference.reserve(b, e, procs);
      live.push_back({b, e, procs});
    } else {
      // Read-only spot checks with random shapes.
      const int procs = static_cast<int>(rng.uniform_int(1, kProcs));
      const sim::Time dur = rng.uniform_int(1, 8000);
      const sim::Time from = rng.uniform_int(0, kHorizon);
      ASSERT_EQ(flat.earliest_anchor(procs, dur, from),
                reference.earliest_anchor(procs, dur, from));
      ASSERT_EQ(flat.fits(procs, from, from + dur),
                reference.fits(procs, from, from + dur));
    }
    expect_equivalent(flat, reference, kHorizon);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ProfileDifferentialTest,
                         testing::Values(11, 12, 13, 14, 15, 16));

TEST(ProfileDifferential, RejectedOperationsLeaveBothUntouched) {
  Profile flat{8};
  MapProfile reference{8};
  flat.reserve(10, 20, 8);
  reference.reserve(10, 20, 8);
  EXPECT_THROW(flat.reserve(15, 25, 1), std::logic_error);
  EXPECT_THROW(reference.reserve(15, 25, 1), std::logic_error);
  EXPECT_THROW(flat.release(0, 5, 1), std::logic_error);
  EXPECT_THROW(reference.release(0, 5, 1), std::logic_error);
  // The flat profile guarantees full rollback; compare observable state
  // (values, not breakpoint bookkeeping) against the reference.
  EXPECT_EQ(flat.segments(), reference.segments());
  for (sim::Time t = 0; t < 40; ++t)
    EXPECT_EQ(flat.free_at(t), reference.free_at(t));
}

}  // namespace
}  // namespace bfsim::core
