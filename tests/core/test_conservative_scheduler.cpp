#include "core/conservative_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "sim/event_queue.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;
using test::start_times;

SimulationResult run(const Trace& trace, int procs,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  ConservativeScheduler scheduler{SchedulerConfig{procs, priority}};
  return run_simulation(trace, scheduler, {.validate = true});
}

Job make_job(JobId id, sim::Time submit, sim::Time estimate, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = estimate;
  j.estimate = estimate;
  j.procs = procs;
  return j;
}

TEST(ConservativeScheduler, EveryJobGetsAReservationOnArrival) {
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  EXPECT_EQ(scheduler.reservation_of(0), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  scheduler.job_submitted(make_job(2, 2, 50, 4), 2);
  EXPECT_EQ(scheduler.reservation_of(2), 150);  // behind job 1's guarantee
  scheduler.job_submitted(make_job(3, 3, 99999, 2), 3);
  // A narrow job backfills into the hole beside the running job only if
  // it also clears both reservations; this one cannot, so it anchors
  // after everything.
  EXPECT_EQ(scheduler.reservation_of(3), 200);
}

TEST(ConservativeScheduler, BackfillsIntoHolesWithoutDelayingAnyone) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 2},  // [0,100) on 2 procs
      {.submit = 1, .runtime = 100, .procs = 4},  // reserved [100,200)
      {.submit = 2, .runtime = 90, .procs = 2},   // fits [2,92): backfills
      {.submit = 3, .runtime = 150, .procs = 2},  // would hit the roof: 200
  });
  const auto result = run(trace, 4);
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 100, 2, 200}));
}

TEST(ConservativeScheduler, ReservationsActAsRoofs) {
  // The reservation of a *queued* job (not just the head) blocks a later
  // long job -- the "roof" effect that hurts Long-Narrow jobs under
  // conservative backfilling (paper Section 4.2).
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 1000, 2), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 10, 4), 1);   // roof [1000,1010)
  scheduler.job_submitted(make_job(2, 2, 2000, 2), 2); // long narrow
  // Without job 1's roof, job 2 would start at t=2 beside job 0.
  EXPECT_EQ(scheduler.reservation_of(2), 1010);
}

TEST(ConservativeScheduler, EarlyCompletionCompressesReservations) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 50, .procs = 4, .estimate = 100},  // ends early
      {.submit = 1, .runtime = 100, .procs = 4, .estimate = 100},
  });
  const auto result = run(trace, 4);
  // Job 1 was guaranteed t=100 but compression pulls it to t=50.
  EXPECT_EQ(start_times(result), (std::vector<sim::Time>{0, 50}));
}

TEST(ConservativeScheduler, CompressionFollowsPriorityOrder) {
  // After an early completion, queued jobs are re-anchored in priority
  // order -- the only place the priority policy matters (Section 4.1).
  const std::vector<JobSpec> specs{
      {.submit = 0, .runtime = 30, .procs = 4, .estimate = 100},
      {.submit = 1, .runtime = 100, .procs = 4, .estimate = 100},  // long
      {.submit = 2, .runtime = 10, .procs = 4, .estimate = 10},    // short
      {.submit = 3, .runtime = 10, .procs = 4, .estimate = 10},    // short
  };
  const Trace trace = make_trace(specs);
  const auto fcfs = run(trace, 4, PriorityPolicy::Fcfs);
  EXPECT_EQ(start_times(fcfs), (std::vector<sim::Time>{0, 30, 130, 140}));
  const auto sjf = run(trace, 4, PriorityPolicy::Sjf);
  // The short jobs grab the freed hole first under SJF.
  EXPECT_EQ(start_times(sjf), (std::vector<sim::Time>{0, 50, 30, 40}));
}

TEST(ConservativeScheduler, OnTimeCompletionChangesNothing) {
  // With exact estimates no new holes appear: reservations assigned at
  // arrival are final (the priority-equivalence mechanism).
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Sjf}};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 200, 4), 1);
  scheduler.job_submitted(make_job(2, 2, 10, 4), 2);
  const sim::Time res1 = scheduler.reservation_of(1);
  const sim::Time res2 = scheduler.reservation_of(2);
  EXPECT_EQ(res1, 100);
  EXPECT_EQ(res2, 300);  // SJF cannot jump an existing guarantee
  scheduler.job_finished(0, 100);  // exactly on estimate
  EXPECT_EQ(scheduler.reservation_of(1), res1);
  EXPECT_EQ(scheduler.reservation_of(2), res2);
}

TEST(ConservativeScheduler, GuaranteeNeverWorsensAcrossEvents) {
  // Random trace with overestimates: track every job's reservation at
  // arrival and assert its actual start is never later.
  const Trace trace = test::random_trace(300, 16, 99, /*overestimate=*/true);
  ConservativeScheduler scheduler{SchedulerConfig{16, PriorityPolicy::Fcfs}};
  std::vector<sim::Time> guaranteed(trace.size(), sim::kNoTime);

  sim::EventQueue<JobId> events;
  for (const Job& job : trace) events.push(job.submit, 1, job.id);
  std::vector<sim::Time> started(trace.size(), sim::kNoTime);
  while (!events.empty()) {
    const sim::Time now = events.top().time;
    while (!events.empty() && events.top().time == now) {
      const auto event = events.pop();
      if (event.priority_class() == 0) {
        scheduler.job_finished(event.payload, now);
      } else {
        scheduler.job_submitted(trace[event.payload], now);
        guaranteed[event.payload] = scheduler.reservation_of(event.payload);
      }
    }
    for (const Job& job : scheduler.select_starts(now)) {
      started[job.id] = now;
      events.push(now + std::min(job.runtime, job.estimate), 0, job.id);
    }
  }
  for (std::size_t i = 0; i < trace.size(); ++i) {
    ASSERT_NE(started[i], sim::kNoTime) << "job " << i;
    EXPECT_LE(started[i], guaranteed[i]) << "job " << i;
  }
}

TEST(ConservativeScheduler, ProfileTailReturnsToFullyFree) {
  ConservativeScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 8), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 100, 4), 1);
  EXPECT_NO_THROW(scheduler.profile().check_invariants());
  EXPECT_EQ(scheduler.profile().procs_free_at(100), 4);
  EXPECT_EQ(scheduler.profile().procs_free_at(200), 8);
}

TEST(ConservativeScheduler, RejectsJobWiderThanMachine) {
  // Too-wide jobs are rejected by the driver's trace validation before
  // any event reaches the scheduler.
  const Trace trace = make_trace({{.submit = 0, .runtime = 10, .procs = 9}});
  ConservativeScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Fcfs}};
  EXPECT_THROW((void)run_simulation(trace, scheduler), std::invalid_argument);
}

TEST(ConservativeScheduler, CompressionCascadesWithinOneEvent) {
  // Regression: one priority-order pass over the queue is not a fixpoint.
  // A later-priority job that re-anchors earlier vacates its old slot,
  // which can unblock an *already visited* earlier-priority job; a
  // single-pass compress left that job's reservation stale until some
  // future event happened to re-run compression.
  //
  // Machine of 4. Two jobs start at t=0: job 0 (2 procs, est 100, really
  // finishes at 10) and job 1 (2 procs, est 40). Job 2 (3 procs, est 60)
  // cannot fit before their estimated ends and anchors at 100. Job 3
  // (2 procs, est 50) backfill-reserves [40,90) beside job 0 -- a
  // *later*-priority job holding an *earlier* reservation.
  ConservativeScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}};
  scheduler.job_submitted(make_job(0, 0, 100, 2), 0);
  scheduler.job_submitted(make_job(1, 0, 40, 2), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(2, 1, 60, 3), 1);
  scheduler.job_submitted(make_job(3, 2, 50, 2), 2);
  ASSERT_EQ(scheduler.reservation_of(2), 100);
  ASSERT_EQ(scheduler.reservation_of(3), 40);

  // Job 0 finishes early at t=10, freeing 2 procs over [10,100). Pass 1
  // visits job 2 first: with job 3 still parked on [40,90) it can only
  // reach t=90. Job 3 then slides into the fresh hole at t=10, vacating
  // [40,90) -- job 2's true earliest anchor is now t=60, which only a
  // second pass can discover.
  scheduler.job_finished(0, 10);
  EXPECT_EQ(scheduler.reservation_of(3), 10);
  EXPECT_EQ(scheduler.reservation_of(2), 60);
  EXPECT_NO_THROW(scheduler.profile().check_invariants());

  // The repaired reservation is immediately startable: at t=10 job 3
  // begins next to the still-running job 1, and nothing throws the
  // "reservation in the past" error the stale state used to cause.
  const auto started = scheduler.select_starts(10);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, 3);
}

TEST(ConservativeScheduler, NameIncludesPriority) {
  const ConservativeScheduler scheduler{
      SchedulerConfig{8, PriorityPolicy::Sjf}};
  EXPECT_EQ(scheduler.name(), "conservative-sjf");
}

}  // namespace
}  // namespace bfsim::core
