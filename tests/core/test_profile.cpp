#include "core/profile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace bfsim::core {
namespace {

TEST(Profile, StartsFullyFree) {
  const Profile p{64};
  EXPECT_EQ(p.total(), 64);
  EXPECT_EQ(p.free_at(0), 64);
  EXPECT_EQ(p.free_at(1'000'000), 64);
  EXPECT_NO_THROW(p.check_invariants());
}

TEST(Profile, RejectsBadConstruction) {
  EXPECT_THROW(Profile{0}, std::invalid_argument);
  EXPECT_THROW(Profile{-3}, std::invalid_argument);
}

TEST(Profile, ReserveCarvesInterval) {
  Profile p{10};
  p.reserve(100, 200, 4);
  EXPECT_EQ(p.free_at(99), 10);
  EXPECT_EQ(p.free_at(100), 6);
  EXPECT_EQ(p.free_at(199), 6);
  EXPECT_EQ(p.free_at(200), 10);
  EXPECT_NO_THROW(p.check_invariants());
}

TEST(Profile, ReservationsStack) {
  Profile p{10};
  p.reserve(0, 100, 3);
  p.reserve(50, 150, 3);
  EXPECT_EQ(p.free_at(0), 7);
  EXPECT_EQ(p.free_at(50), 4);
  EXPECT_EQ(p.free_at(100), 7);
  EXPECT_EQ(p.free_at(150), 10);
}

TEST(Profile, OverReservationThrows) {
  Profile p{4};
  p.reserve(0, 10, 3);
  EXPECT_THROW(p.reserve(5, 15, 2), std::logic_error);
  // The failed reserve must not corrupt earlier state.
  EXPECT_EQ(p.free_at(0), 1);
}

TEST(Profile, DoubleReleaseThrows) {
  Profile p{4};
  p.reserve(0, 10, 2);
  p.release(0, 10, 2);
  EXPECT_THROW(p.release(0, 10, 1), std::logic_error);
}

TEST(Profile, ReleaseRestoresExactly) {
  Profile p{8};
  p.reserve(10, 30, 5);
  p.release(10, 30, 5);
  EXPECT_EQ(p.free_at(10), 8);
  EXPECT_EQ(p.segments().size(), 1u);  // fully coalesced again
}

TEST(Profile, PartialRelease) {
  Profile p{8};
  p.reserve(0, 100, 5);
  p.release(40, 100, 5);  // early completion frees the tail
  EXPECT_EQ(p.free_at(0), 3);
  EXPECT_EQ(p.free_at(40), 8);
}

TEST(Profile, EmptyIntervalIsNoop) {
  Profile p{8};
  p.reserve(10, 10, 5);
  EXPECT_EQ(p.free_at(10), 8);
  p.release(10, 10, 5);
  EXPECT_EQ(p.free_at(10), 8);
}

TEST(Profile, NegativeTimeRejected) {
  Profile p{8};
  EXPECT_THROW(p.reserve(-5, 10, 1), std::invalid_argument);
  EXPECT_THROW((void)p.free_at(-1), std::invalid_argument);
}

TEST(Profile, FitsRejectsNegativeWindowStart) {
  // Regression: the map-based implementation decremented
  // upper_bound(begin) without a begin >= 0 guard, walking past begin()
  // (undefined behaviour). A negative start now validates like free_at.
  Profile p{8};
  p.reserve(0, 10, 4);
  EXPECT_THROW((void)p.fits(1, -1, 5), std::invalid_argument);
  EXPECT_THROW((void)p.fits(8, -100, -50), std::invalid_argument);
  // Empty windows stay trivially true, even degenerate ones.
  EXPECT_TRUE(p.fits(8, 5, 5));
  EXPECT_TRUE(p.fits(8, 7, 3));
}

TEST(Profile, FindAndReserveMatchesSearchThenReserve) {
  Profile fused{10};
  Profile stepwise{10};
  fused.reserve(0, 100, 8);
  stepwise.reserve(0, 100, 8);
  fused.reserve(200, 300, 8);
  stepwise.reserve(200, 300, 8);

  const sim::Time got = fused.find_and_reserve(6, 100, 0);
  const sim::Time want = stepwise.earliest_anchor(6, 100, 0);
  stepwise.reserve(want, want + 100, 6);
  EXPECT_EQ(got, want);
  EXPECT_EQ(got, 100);  // the hole between the two reservations
  EXPECT_EQ(fused.segments(), stepwise.segments());

  // A shape that cannot use the hole lands after everything, in both.
  const sim::Time got2 = fused.find_and_reserve(6, 101, 0);
  const sim::Time want2 = stepwise.earliest_anchor(6, 101, 0);
  stepwise.reserve(want2, want2 + 101, 6);
  EXPECT_EQ(got2, want2);
  EXPECT_EQ(got2, 300);
  EXPECT_EQ(fused.segments(), stepwise.segments());
  EXPECT_NO_THROW(fused.check_invariants());
}

TEST(Profile, FindAndReserveRespectsNotBefore) {
  Profile p{4};
  EXPECT_EQ(p.find_and_reserve(4, 10, 500), 500);
  EXPECT_EQ(p.free_at(499), 4);
  EXPECT_EQ(p.free_at(500), 0);
  EXPECT_EQ(p.free_at(510), 4);
  // Negative not_before clamps to 0 like earliest_anchor.
  EXPECT_EQ(p.find_and_reserve(4, 10, -7), 0);
  EXPECT_EQ(p.free_at(0), 0);
}

TEST(Profile, FindAndReserveRejectsBadArguments) {
  Profile p{8};
  EXPECT_THROW((void)p.find_and_reserve(0, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)p.find_and_reserve(9, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)p.find_and_reserve(1, 0, 0), std::invalid_argument);
}

TEST(Profile, AnchorOnEmptyMachineIsImmediate) {
  const Profile p{16};
  EXPECT_EQ(p.earliest_anchor(16, 1000, 0), 0);
  EXPECT_EQ(p.earliest_anchor(1, 1, 12345), 12345);
}

TEST(Profile, AnchorWaitsForBlockingReservation) {
  Profile p{10};
  p.reserve(0, 100, 8);  // only 2 free until t=100
  EXPECT_EQ(p.earliest_anchor(2, 50, 0), 0);
  EXPECT_EQ(p.earliest_anchor(3, 50, 0), 100);
  EXPECT_EQ(p.earliest_anchor(10, 1, 0), 100);
}

TEST(Profile, AnchorFindsHoleBetweenReservations) {
  Profile p{10};
  p.reserve(0, 100, 8);
  p.reserve(200, 300, 8);
  // 10 free in [100, 200): a 100 s job of 6 procs fits in the hole.
  EXPECT_EQ(p.earliest_anchor(6, 100, 0), 100);
  // A 101 s job of 6 procs cannot fit in the hole: the window
  // [100, 201) dips to 2 free at t=200.
  EXPECT_EQ(p.earliest_anchor(6, 101, 0), 300);
  // But a 2-proc job of any length fits immediately.
  EXPECT_EQ(p.earliest_anchor(2, 10000, 0), 0);
}

TEST(Profile, AnchorRespectsNotBefore) {
  Profile p{10};
  p.reserve(50, 150, 9);
  EXPECT_EQ(p.earliest_anchor(5, 10, 0), 0);
  EXPECT_EQ(p.earliest_anchor(5, 10, 20), 20);  // fits in [20, 30)
  EXPECT_EQ(p.earliest_anchor(5, 40, 20), 150); // [20,60) blocked at 50
  EXPECT_EQ(p.earliest_anchor(1, 10, 70), 70);
}

TEST(Profile, AnchorExactlyAtWindowBoundary) {
  Profile p{4};
  p.reserve(0, 100, 4);
  // Machine free from t=100; a job needing everything anchors there.
  EXPECT_EQ(p.earliest_anchor(4, 100, 0), 100);
  // A job that would end exactly when the blockade begins fits before it.
  Profile q{4};
  q.reserve(100, 200, 4);
  EXPECT_EQ(q.earliest_anchor(4, 100, 0), 0);
  EXPECT_EQ(q.earliest_anchor(4, 101, 0), 200);
}

TEST(Profile, AnchorRejectsBadArguments) {
  const Profile p{8};
  EXPECT_THROW((void)p.earliest_anchor(0, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)p.earliest_anchor(9, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)p.earliest_anchor(1, 0, 0), std::invalid_argument);
}

TEST(Profile, FitsChecksWindow) {
  Profile p{10};
  p.reserve(100, 200, 8);
  EXPECT_TRUE(p.fits(10, 0, 100));
  EXPECT_FALSE(p.fits(3, 50, 150));
  EXPECT_TRUE(p.fits(2, 50, 150));
  EXPECT_TRUE(p.fits(10, 200, 500));
  EXPECT_TRUE(p.fits(10, 150, 150));  // empty window
}

TEST(Profile, SegmentsAreCoalesced) {
  Profile p{10};
  p.reserve(0, 100, 4);
  p.reserve(100, 200, 4);  // same level: one logical segment
  const auto segs = p.segments();
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Profile::Segment{0, 6}));
  EXPECT_EQ(segs[1], (Profile::Segment{200, 10}));
}

TEST(Profile, BreakpointCountStaysBounded) {
  // Coalescing keeps the map from growing without bound when
  // reservations are added and released repeatedly.
  Profile p{16};
  for (int round = 0; round < 200; ++round) {
    const sim::Time t = round * 10;
    p.reserve(t, t + 100, 4);
    p.release(t, t + 100, 4);
  }
  EXPECT_LE(p.breakpoints(), 4u);
}

// ---------------------------------------------------------------------
// Property test: Profile must agree with a brute-force reference model
// (a plain array over discretized time) under random operation sequences.
// ---------------------------------------------------------------------

class ReferenceProfile {
 public:
  ReferenceProfile(int total, sim::Time horizon)
      : total_(total), free_(static_cast<std::size_t>(horizon), total) {}

  [[nodiscard]] int free_at(sim::Time t) const {
    return free_[static_cast<std::size_t>(t)];
  }

  void apply(sim::Time b, sim::Time e, int delta) {
    for (sim::Time t = b; t < e; ++t)
      free_[static_cast<std::size_t>(t)] += delta;
  }

  [[nodiscard]] sim::Time earliest_anchor(int procs, sim::Time dur,
                                          sim::Time not_before) const {
    const auto horizon = static_cast<sim::Time>(free_.size());
    for (sim::Time s = not_before;; ++s) {
      bool ok = true;
      for (sim::Time t = s; t < s + dur; ++t) {
        const int f = t < horizon ? free_[static_cast<std::size_t>(t)] : total_;
        if (f < procs) {
          ok = false;
          break;
        }
      }
      if (ok) return s;
    }
  }

 private:
  int total_;
  std::vector<int> free_;
};

class ProfilePropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfilePropertyTest, MatchesReferenceModel) {
  constexpr int kProcs = 12;
  constexpr sim::Time kHorizon = 300;
  sim::Rng rng{GetParam()};
  Profile profile{kProcs};
  ReferenceProfile reference{kProcs, kHorizon};

  struct Live {
    sim::Time b, e;
    int procs;
  };
  std::vector<Live> live;

  for (int step = 0; step < 400; ++step) {
    const bool do_release = !live.empty() && rng.bernoulli(0.45);
    if (do_release) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const Live r = live[idx];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      profile.release(r.b, r.e, r.procs);
      reference.apply(r.b, r.e, r.procs);
    } else {
      const sim::Time b = rng.uniform_int(0, kHorizon - 20);
      const sim::Time e = b + rng.uniform_int(1, 19);
      const int procs = static_cast<int>(rng.uniform_int(1, 4));
      // Only reserve when capacity allows (mirrors scheduler behaviour).
      bool fits = true;
      for (sim::Time t = b; t < e; ++t)
        if (reference.free_at(t) < procs) fits = false;
      if (!fits) continue;
      profile.reserve(b, e, procs);
      reference.apply(b, e, -procs);
      live.push_back({b, e, procs});
    }

    ASSERT_NO_THROW(profile.check_invariants());
    for (sim::Time t = 0; t < kHorizon; t += 7)
      ASSERT_EQ(profile.free_at(t), reference.free_at(t)) << "t=" << t;

    // Spot-check anchors with random shapes.
    const int aprocs = static_cast<int>(rng.uniform_int(1, kProcs));
    const sim::Time adur = rng.uniform_int(1, 40);
    const sim::Time afrom = rng.uniform_int(0, kHorizon);
    ASSERT_EQ(profile.earliest_anchor(aprocs, adur, afrom),
              reference.earliest_anchor(aprocs, adur, afrom))
        << "procs=" << aprocs << " dur=" << adur << " from=" << afrom;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ProfilePropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace bfsim::core
