// Kill-requeue semantics end to end: hand-built scenarios through
// run_simulation pin the victim-selection order, both requeue policies'
// arithmetic, same-batch restarts after a kill, and the availability
// counters; direct DecisionCore tests pin the node-down/node-up
// contract (every DecisionError fires before any mutation, so a
// hostile front cannot corrupt the core).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/decision_core.hpp"
#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "sim/failure.hpp"

namespace bfsim::core {
namespace {

Job make_job(JobId id, Time submit, Time runtime, Time estimate, int procs,
             int bb = 0) {
  Job job;
  job.id = id;
  job.submit = submit;
  job.runtime = runtime;
  job.estimate = estimate;
  job.procs = procs;
  job.bb = bb;
  return job;
}

sim::Outage make_outage(sim::OutageId id, Time down_at, Time repair_at,
                        int procs, int bb = 0) {
  sim::Outage outage;
  outage.id = id;
  outage.down_at = down_at;
  outage.repair_at = repair_at;
  outage.procs = procs;
  outage.bb = bb;
  return outage;
}

SimulationResult run_with_failures(const Trace& trace, int procs,
                                   const sim::FailureTrace& failures,
                                   sim::RequeuePolicy requeue,
                                   SchedulerKind kind = SchedulerKind::Fcfs) {
  SimulationOptions options;
  options.validate = true;
  options.audit = true;
  options.failures = &failures;
  options.requeue = requeue;
  return run_simulation(trace, kind, SchedulerConfig{procs, PriorityPolicy::Fcfs},
                        {}, options);
}

TEST(FailureRequeue, FullRestartRerunsTheWholeJob) {
  // One 4-wide job on a 4-proc machine; a 2-proc outage at t=50 must
  // kill it (nothing narrower frees enough), and the restart cannot fit
  // until the repair at t=150 restores the full machine.
  Trace trace{make_job(0, 0, 100, 100, 4)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 150, 2));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitFull);
  EXPECT_EQ(result.outages, 1u);
  EXPECT_EQ(result.repairs, 1u);
  EXPECT_EQ(result.kills, 1u);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.first_start, 0);
  EXPECT_EQ(outcome.start, 150);
  EXPECT_EQ(outcome.end, 250);  // the full 100s again
  EXPECT_EQ(outcome.requeues, 1);
  EXPECT_EQ(outcome.requeue_wait, 100);
  EXPECT_FALSE(outcome.killed);
  EXPECT_EQ(result.makespan, 250);
}

TEST(FailureRequeue, RemainingResumesFromTheCheckpoint) {
  // Same scenario under checkpointed resume: 50s were completed before
  // the kill, so the restart runs only the remaining 50s.
  Trace trace{make_job(0, 0, 100, 100, 4)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 150, 2));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitRemaining);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.start, 150);
  EXPECT_EQ(outcome.end, 200);
  EXPECT_EQ(outcome.requeues, 1);
  EXPECT_EQ(result.kills, 1u);
}

TEST(FailureRequeue, OutageWithinFreeCapacityKillsNobody) {
  Trace trace{make_job(0, 0, 100, 100, 2)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 150, 2));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitFull);
  EXPECT_EQ(result.kills, 0u);
  EXPECT_EQ(result.outages, 1u);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.start, 0);
  EXPECT_EQ(outcome.end, 100);
  EXPECT_EQ(outcome.requeues, 0);
}

TEST(FailureRequeue, VictimsAreKilledLatestStartFirst) {
  // Two 2-wide jobs fill the machine; a 2-proc outage needs exactly one
  // victim, and it must be the one that started later.
  Trace trace{make_job(0, 0, 200, 200, 2), make_job(1, 10, 200, 200, 2)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 100, 2));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitFull);
  EXPECT_EQ(result.kills, 1u);
  // Job 0 (earlier start) rides through the outage untouched.
  EXPECT_EQ(result.outcomes[0].start, 0);
  EXPECT_EQ(result.outcomes[0].end, 200);
  EXPECT_EQ(result.outcomes[0].requeues, 0);
  // Job 1 restarts once the repair frees its processors.
  EXPECT_EQ(result.outcomes[1].requeues, 1);
  EXPECT_EQ(result.outcomes[1].start, 100);
  EXPECT_EQ(result.outcomes[1].end, 300);
}

TEST(FailureRequeue, NonHelpingVictimsAreSkipped) {
  // The outage hits the burst-buffer axis only. The later-started job
  // holds no buffer, so killing it would free nothing the outage needs:
  // the kill loop must skip it and take the earlier buffer-holding job.
  Trace trace{make_job(0, 0, 200, 200, 1, 8), make_job(1, 10, 50, 50, 1, 0)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 20, 400, 0, 4));
  SimulationOptions options;
  options.validate = true;
  options.audit = true;
  options.failures = &failures;
  options.requeue = sim::RequeuePolicy::kResubmitFull;
  const SimulationResult result = run_simulation(
      trace, SchedulerKind::Fcfs,
      SchedulerConfig{4, PriorityPolicy::Fcfs, /*burst_buffer=*/8}, {},
      options);
  EXPECT_EQ(result.kills, 1u);
  // The bufferless job keeps running.
  EXPECT_EQ(result.outcomes[1].requeues, 0);
  EXPECT_EQ(result.outcomes[1].start, 10);
  // The buffer holder waits out the long repair.
  EXPECT_EQ(result.outcomes[0].requeues, 1);
  EXPECT_EQ(result.outcomes[0].start, 400);
}

TEST(FailureRequeue, KilledVictimMayRestartInTheSameBatch) {
  // EASY on 4 procs: a 3-wide and a 1-wide job fill the machine, a
  // 2-proc outage forces both out. The 3-wide head must wait for the
  // repair, but the 1-wide job fits the surviving 2 processors and ends
  // before the head's shadow time -- it backfills at the kill instant
  // itself (killed and restarted in one batch, requeue_wait = 0).
  Trace trace{make_job(0, 0, 300, 300, 3), make_job(1, 10, 100, 100, 1)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 150, 2));
  const SimulationResult result =
      run_with_failures(trace, 4, failures, sim::RequeuePolicy::kResubmitFull,
                        SchedulerKind::Easy);
  EXPECT_EQ(result.kills, 2u);
  EXPECT_EQ(result.outcomes[1].requeues, 1);
  EXPECT_EQ(result.outcomes[1].start, 50);
  EXPECT_EQ(result.outcomes[1].end, 150);
  EXPECT_EQ(result.outcomes[1].requeue_wait, 0);
  EXPECT_EQ(result.outcomes[0].requeues, 1);
  EXPECT_EQ(result.outcomes[0].start, 150);
  EXPECT_EQ(result.outcomes[0].end, 450);
}

TEST(FailureRequeue, EstimateEnforcementSurvivesARestart) {
  // True runtime exceeds the estimate: the restarted run is still
  // killed at the (full) estimate, and the outcome keeps the kill flag.
  Trace trace{make_job(0, 0, 150, 100, 4)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 50, 120, 4));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitFull);
  const JobOutcome& outcome = result.outcomes[0];
  EXPECT_EQ(outcome.start, 120);
  EXPECT_EQ(outcome.end, 220);  // estimate-killed after 100s
  EXPECT_TRUE(outcome.killed);
  EXPECT_EQ(outcome.requeues, 1);
}

TEST(FailureRequeue, OutagesAfterTheLastJobStillCount) {
  Trace trace{make_job(0, 0, 10, 10, 1)};
  sim::FailureTrace failures;
  failures.outages.push_back(make_outage(0, 100, 200, 2));
  const SimulationResult result = run_with_failures(
      trace, 4, failures, sim::RequeuePolicy::kResubmitFull);
  EXPECT_EQ(result.outages, 1u);
  EXPECT_EQ(result.repairs, 1u);
  EXPECT_EQ(result.kills, 0u);
  EXPECT_EQ(result.outcomes[0].end, 10);
}

// -- the DecisionCore outage contract --------------------------------

class OutageContractTest : public ::testing::Test {
 protected:
  OutageContractTest()
      : scheduler_(make_scheduler(SchedulerKind::Easy,
                                  SchedulerConfig{8, PriorityPolicy::Fcfs})),
        core_(*scheduler_, nullptr, sim::RequeuePolicy::kResubmitFull) {}

  std::unique_ptr<Scheduler> scheduler_;
  DecisionCore core_;
};

TEST_F(OutageContractTest, AcceptsAndTracksAValidOutageLifecycle) {
  core_.on_node_down(make_outage(0, 10, 50, 3), 10);
  EXPECT_TRUE(core_.outage_known(0));
  EXPECT_EQ(core_.down_procs(), 3);
  ASSERT_NE(core_.active_outage(0), nullptr);
  EXPECT_EQ(core_.active_outage(0)->repair_at, 50);
  (void)core_.end_cycle(10);
  core_.on_node_up(0, 50);
  EXPECT_EQ(core_.down_procs(), 0);
  EXPECT_EQ(core_.active_outage(0), nullptr);
  EXPECT_TRUE(core_.outage_known(0));  // ids are never reused
  EXPECT_EQ(core_.stats().outages, 1u);
  EXPECT_EQ(core_.stats().repairs, 1u);
}

TEST_F(OutageContractTest, RejectsMalformedDownEvents) {
  // down_at must equal the event instant.
  EXPECT_THROW(core_.on_node_down(make_outage(0, 5, 50, 1), 10),
               DecisionError);
  // Repair must lie strictly in the future.
  EXPECT_THROW(core_.on_node_down(make_outage(0, 10, 10, 1), 10),
               DecisionError);
  // Some capacity must actually be lost, and never a negative amount.
  EXPECT_THROW(core_.on_node_down(make_outage(0, 10, 50, 0, 0), 10),
               DecisionError);
  EXPECT_THROW(core_.on_node_down(make_outage(0, 10, 50, -1, 2), 10),
               DecisionError);
  // Wider than the machine.
  EXPECT_THROW(core_.on_node_down(make_outage(0, 10, 50, 9), 10),
               DecisionError);
  // Hostile id: must not allocate a phase slot per 2^60.
  EXPECT_THROW(
      core_.on_node_down(make_outage(kMaxTrackedOutages, 10, 50, 1), 10),
      DecisionError);
  // Every rejection fired before mutation: id 0 is still usable.
  EXPECT_FALSE(core_.outage_known(0));
  EXPECT_NO_THROW(core_.on_node_down(make_outage(0, 10, 50, 1), 10));
}

TEST_F(OutageContractTest, RejectsDuplicateAndOverlappingBeyondMachine) {
  core_.on_node_down(make_outage(0, 10, 50, 6), 10);
  // Same id twice -- even after repair, ids are spent.
  EXPECT_THROW(core_.on_node_down(make_outage(0, 10, 60, 1), 10),
               DecisionError);
  // A second outage may overlap, but not beyond the still-up machine.
  EXPECT_THROW(core_.on_node_down(make_outage(1, 10, 60, 3), 10),
               DecisionError);
  EXPECT_NO_THROW(core_.on_node_down(make_outage(1, 10, 60, 2), 10));
  EXPECT_EQ(core_.down_procs(), 8);
}

TEST_F(OutageContractTest, RejectsBogusRepairs) {
  // Repair of an outage that was never delivered. A rejected event still
  // consumes its timestamp (check_time runs first, like every hook), so
  // the probes below stay monotone.
  EXPECT_THROW(core_.on_node_up(0, 5), DecisionError);
  core_.on_node_down(make_outage(0, 10, 50, 2), 10);
  // Repair at the wrong instant: the trace said t=50.
  EXPECT_THROW(core_.on_node_up(0, 40), DecisionError);
  EXPECT_NO_THROW(core_.on_node_up(0, 50));
  // And never twice.
  EXPECT_THROW(core_.on_node_up(0, 50), DecisionError);
}

TEST_F(OutageContractTest, KillReportsVictimsExactlyOnceInTheDecision) {
  core_.on_submit(make_job(0, 0, 100, 100, 8), 0);
  (void)core_.end_cycle(0);
  EXPECT_EQ(core_.running(), 1u);
  core_.on_node_down(make_outage(0, 10, 500, 4), 10);
  EXPECT_EQ(core_.running(), 0u);
  EXPECT_EQ(core_.queued(), 1u);  // requeued, too wide to restart
  const CycleDecision decision = core_.end_cycle(10);
  ASSERT_EQ(decision.killed.size(), 1u);
  EXPECT_EQ(decision.killed[0], 0u);
  EXPECT_TRUE(decision.starts.empty());
  EXPECT_EQ(core_.stats().kills, 1u);
  // The killed span is consumed: the next cycle must not repeat it.
  core_.on_wake(20);
  EXPECT_TRUE(core_.end_cycle(20).killed.empty());
}

}  // namespace
}  // namespace bfsim::core
