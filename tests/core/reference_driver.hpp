// bfsim tests -- the pre-refactor simulation driver, kept verbatim as a
// differential oracle.
//
// This is the hand-rolled event loop `core::run_simulation` used before
// the engine unification: a flat sim::EventQueue drained batch by batch,
// hook return values ignored, and `select_starts` invoked after *every*
// batch unconditionally. The production driver must produce byte-
// identical schedules while skipping the no-op passes this loop still
// performs; the differential suite asserts exactly that. Do not "fix"
// or modernise this file -- its value is that it does not change.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "sim/event_queue.hpp"

namespace bfsim::test {

/// Replay `trace` through `scheduler` with the historic driver. The
/// returned result fills the fields the old loop maintained (outcomes,
/// events, makespan, max_queue); `passes` counts every batch, since the
/// old loop never skipped one, and `wakeups` stays zero.
[[nodiscard]] inline core::SimulationResult reference_run(
    const workload::Trace& trace, core::Scheduler& scheduler) {
  using core::JobOutcome;
  using sim::Time;
  enum EventClass : int { kFinish = 0, kSubmit = 1, kCancel = 2 };

  core::SimulationResult result;
  result.scheduler_name = scheduler.name();
  result.outcomes.resize(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i)
    result.outcomes[i].job = trace[i];

  sim::EventQueue<core::JobId> events;
  for (const workload::Job& job : trace) {
    events.push(job.submit, kSubmit, job.id);
    if (job.cancel_at != sim::kNoTime)
      events.push(job.cancel_at, kCancel, job.id);
  }

  while (!events.empty()) {
    const Time now = events.top().time;
    while (!events.empty() && events.top().time == now) {
      const auto event = events.pop();
      ++result.events;
      if (event.priority_class() == kFinish) {
        (void)scheduler.job_finished(event.payload, now);
      } else if (event.priority_class() == kSubmit) {
        (void)scheduler.job_submitted(trace[event.payload], now);
      } else {
        JobOutcome& outcome = result.outcomes[event.payload];
        if (outcome.start == sim::kNoTime) {  // still queued: withdraw
          (void)scheduler.job_cancelled(event.payload, now);
          outcome.cancelled = true;
        }
      }
    }
    ++result.passes;
    for (const workload::Job& started : scheduler.select_starts(now)) {
      JobOutcome& outcome = result.outcomes[started.id];
      if (outcome.start != sim::kNoTime)
        throw std::logic_error("reference_run: job " +
                               std::to_string(started.id) + " started twice");
      const Time effective = std::min(started.runtime, started.estimate);
      outcome.start = now;
      outcome.end = now + effective;
      outcome.killed = started.runtime > started.estimate;
      result.makespan = std::max(result.makespan, outcome.end);
      events.push(outcome.end, kFinish, started.id);
    }
    result.max_queue = std::max(result.max_queue, scheduler.queued_count());
  }

  for (const JobOutcome& outcome : result.outcomes)
    if (outcome.start == sim::kNoTime && !outcome.cancelled)
      throw std::logic_error("reference_run: job " +
                             std::to_string(outcome.job.id) + " never ran");
  return result;
}

}  // namespace bfsim::test
