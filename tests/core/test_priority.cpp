#include "core/priority.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_support.hpp"

namespace bfsim::core {
namespace {

Job make_job(JobId id, Time submit, Time estimate, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.estimate = estimate;
  j.runtime = estimate;
  j.procs = procs;
  return j;
}

TEST(Priority, NamesRoundTrip) {
  for (const auto policy :
       {PriorityPolicy::Fcfs, PriorityPolicy::Sjf, PriorityPolicy::XFactor,
        PriorityPolicy::Ljf, PriorityPolicy::Narrowest,
        PriorityPolicy::Widest})
    EXPECT_EQ(priority_from_string(to_string(policy)), policy);
  EXPECT_EQ(priority_from_string("xf"), PriorityPolicy::XFactor);
  EXPECT_THROW((void)priority_from_string("bogus"), std::invalid_argument);
}

TEST(Priority, XFactorFormula) {
  // xfactor = (wait + estimate) / estimate
  const Job j = make_job(0, 100, 50, 1);
  EXPECT_DOUBLE_EQ(xfactor(j, 100), 1.0);   // just arrived
  EXPECT_DOUBLE_EQ(xfactor(j, 150), 2.0);   // waited one estimate
  EXPECT_DOUBLE_EQ(xfactor(j, 350), 6.0);
}

TEST(Priority, XFactorGrowsFasterForShortJobs) {
  const Job short_job = make_job(0, 0, 60, 1);
  const Job long_job = make_job(1, 0, 6000, 1);
  // Same wait time, the short job's factor rises far faster -- this is
  // why XFactor implicitly favors short jobs (paper Section 4.2).
  EXPECT_GT(xfactor(short_job, 600), xfactor(long_job, 600));
}

TEST(Priority, FcfsOrdersByArrival) {
  std::vector<Job> queue{make_job(1, 20, 10, 1), make_job(0, 10, 99, 1)};
  sort_by_priority(queue, PriorityPolicy::Fcfs, 100);
  EXPECT_EQ(queue[0].id, 0u);
  EXPECT_EQ(queue[1].id, 1u);
}

TEST(Priority, FcfsTieBreaksById) {
  std::vector<Job> queue{make_job(5, 10, 1, 1), make_job(2, 10, 1, 1)};
  sort_by_priority(queue, PriorityPolicy::Fcfs, 100);
  EXPECT_EQ(queue[0].id, 2u);
}

TEST(Priority, SjfOrdersByEstimate) {
  std::vector<Job> queue{make_job(0, 0, 500, 1), make_job(1, 5, 100, 1),
                         make_job(2, 1, 300, 1)};
  sort_by_priority(queue, PriorityPolicy::Sjf, 100);
  EXPECT_EQ(queue[0].id, 1u);
  EXPECT_EQ(queue[1].id, 2u);
  EXPECT_EQ(queue[2].id, 0u);
}

TEST(Priority, SjfTieBreaksByArrival) {
  std::vector<Job> queue{make_job(1, 20, 100, 1), make_job(0, 10, 100, 1)};
  sort_by_priority(queue, PriorityPolicy::Sjf, 100);
  EXPECT_EQ(queue[0].id, 0u);
}

TEST(Priority, LjfIsReverseOfSjf) {
  std::vector<Job> queue{make_job(0, 0, 100, 1), make_job(1, 0, 500, 1)};
  sort_by_priority(queue, PriorityPolicy::Ljf, 100);
  EXPECT_EQ(queue[0].id, 1u);
}

TEST(Priority, XFactorPrefersLongestRelativeWait) {
  // Both arrived at 0; at now=200 the short job has the higher factor.
  std::vector<Job> queue{make_job(0, 0, 1000, 1), make_job(1, 0, 100, 1)};
  sort_by_priority(queue, PriorityPolicy::XFactor, 200);
  EXPECT_EQ(queue[0].id, 1u);
}

TEST(Priority, XFactorIsTimeDependent) {
  // j0 waits longer, j1 is shorter; the order flips as time passes.
  std::vector<Job> queue{make_job(0, 0, 1000, 1), make_job(1, 90, 100, 1)};
  sort_by_priority(queue, PriorityPolicy::XFactor, 100);
  // t=100: xf0 = 1.1, xf1 = 1.1 -> tie broken by arrival: j0 first.
  EXPECT_EQ(queue[0].id, 0u);
  sort_by_priority(queue, PriorityPolicy::XFactor, 500);
  // t=500: xf0 = 1.5, xf1 = 5.1 -> j1 first.
  EXPECT_EQ(queue[0].id, 1u);
}

TEST(Priority, WidthPolicies) {
  std::vector<Job> queue{make_job(0, 0, 10, 64), make_job(1, 1, 10, 2),
                         make_job(2, 2, 10, 16)};
  sort_by_priority(queue, PriorityPolicy::Narrowest, 100);
  EXPECT_EQ(queue[0].id, 1u);
  EXPECT_EQ(queue[2].id, 0u);
  sort_by_priority(queue, PriorityPolicy::Widest, 100);
  EXPECT_EQ(queue[0].id, 0u);
  EXPECT_EQ(queue[2].id, 1u);
}

TEST(Priority, ComparatorIsStrictWeakOrder) {
  // Irreflexivity and antisymmetry over a brute-force sample.
  std::vector<Job> jobs;
  sim::Rng rng{4};
  for (JobId i = 0; i < 30; ++i)
    jobs.push_back(make_job(i, rng.uniform_int(0, 5),
                            rng.uniform_int(1, 4) * 100,
                            static_cast<int>(rng.uniform_int(1, 8))));
  for (const auto policy :
       {PriorityPolicy::Fcfs, PriorityPolicy::Sjf, PriorityPolicy::XFactor,
        PriorityPolicy::Ljf, PriorityPolicy::Narrowest,
        PriorityPolicy::Widest}) {
    const PriorityOrder less{policy, 1000};
    for (const Job& a : jobs) {
      EXPECT_FALSE(less(a, a));
      for (const Job& b : jobs)
        if (less(a, b)) {
          EXPECT_FALSE(less(b, a));
        }
    }
  }
}

TEST(Priority, PaperPoliciesConstant) {
  ASSERT_EQ(std::size(kPaperPolicies), 3u);
  EXPECT_EQ(kPaperPolicies[0], PriorityPolicy::Fcfs);
  EXPECT_EQ(kPaperPolicies[1], PriorityPolicy::Sjf);
  EXPECT_EQ(kPaperPolicies[2], PriorityPolicy::XFactor);
}

}  // namespace
}  // namespace bfsim::core
