// JobQueue (core/job_queue.hpp) is a drop-in for std::vector<Job> with a
// gap-at-front representation, so the whole contract is "behaves exactly
// like the vector it replaced" -- checked here differentially under
// randomized front-heavy workloads shaped like the scheduler's (erase
// near the front on starts, insert anywhere on arrivals).
#include "core/job_queue.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <random>
#include <vector>

#include "core/types.hpp"

namespace bfsim::core {
namespace {

Job make_job(JobId id) {
  Job job;
  job.id = id;
  job.submit = static_cast<sim::Time>(id);
  job.runtime = 10;
  job.estimate = 20;
  job.procs = 1;
  return job;
}

void expect_equal(const JobQueue& queue, const std::vector<Job>& model) {
  ASSERT_EQ(queue.size(), model.size());
  ASSERT_EQ(queue.empty(), model.empty());
  for (std::size_t i = 0; i < model.size(); ++i)
    ASSERT_EQ(queue[i].id, model[i].id) << "slot " << i;
  if (!model.empty()) {
    ASSERT_EQ(queue.front().id, model.front().id);
  }
  // Iterators are contiguous Job pointers; walking them is the same as
  // indexing.
  std::size_t i = 0;
  for (const Job& job : queue) ASSERT_EQ(job.id, model[i++].id);
}

TEST(JobQueue, StartsEmpty) {
  JobQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.begin(), queue.end());
}

TEST(JobQueue, PushInsertEraseMirrorVectorSemantics) {
  JobQueue queue;
  std::vector<Job> model;
  for (JobId id = 0; id < 5; ++id) {
    queue.push_back(make_job(id));
    model.push_back(make_job(id));
  }
  // Insert at front, middle, back.
  for (const std::size_t pos : {0u, 3u, 7u}) {
    const Job job = make_job(100 + static_cast<JobId>(pos));
    queue.insert(queue.begin() + static_cast<std::ptrdiff_t>(pos), job);
    model.insert(model.begin() + static_cast<std::ptrdiff_t>(pos), job);
    expect_equal(queue, model);
  }
  // Erase front, middle, back.
  for (const std::size_t pos : {0u, 4u, 5u}) {
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(pos));
    expect_equal(queue, model);
  }
}

TEST(JobQueue, FrontEraseDrainsCompletely) {
  // The hot pattern: FCFS starts pop the head until the queue empties.
  // The gap-at-front representation must compact rather than grow.
  JobQueue queue;
  for (JobId id = 0; id < 200; ++id) queue.push_back(make_job(id));
  for (JobId id = 0; id < 200; ++id) {
    ASSERT_EQ(queue.front().id, id);
    queue.erase(queue.begin());
  }
  EXPECT_TRUE(queue.empty());
  // Refill after a full drain: no stale gap state may leak through.
  queue.push_back(make_job(999));
  ASSERT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.front().id, 999u);
}

TEST(JobQueue, RandomizedDifferentialAgainstVector) {
  std::mt19937_64 rng{777};
  JobQueue queue;
  std::vector<Job> model;
  JobId next_id = 0;
  for (int round = 0; round < 4000; ++round) {
    const auto roll = rng() % 10;
    if (model.empty() || roll < 4) {
      // Arrival: mostly at the back (sorted-insert fast path), sometimes
      // anywhere.
      const Job job = make_job(next_id++);
      const std::size_t pos = (rng() % 4 == 0)
                                  ? static_cast<std::size_t>(
                                        rng() % (model.size() + 1))
                                  : model.size();
      queue.insert(queue.begin() + static_cast<std::ptrdiff_t>(pos), job);
      model.insert(model.begin() + static_cast<std::ptrdiff_t>(pos), job);
    } else {
      // Start/cancel: biased toward the front like real schedules.
      std::size_t pos = static_cast<std::size_t>(rng() % model.size());
      if (rng() % 2 == 0) pos = pos % (model.size() / 2 + 1);
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pos));
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    if (round % 64 == 0) expect_equal(queue, model);
    ASSERT_EQ(queue.size(), model.size());
  }
  expect_equal(queue, model);
}

}  // namespace
}  // namespace bfsim::core
