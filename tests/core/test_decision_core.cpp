// Unit tests for the decision-core seam itself: the incremental event
// API, the lifecycle contract (every DecisionError fires *before* the
// scheduler is touched, so the core stays serviceable), the pass/skip
// accounting, and the wake-up discipline. The differential suites prove
// the seam reproduces run_simulation; this file pins the contract a
// front can rely on when its event source is hostile.
#include <gtest/gtest.h>

#include <memory>

#include "core/decision_core.hpp"
#include "core/scheduler.hpp"

namespace bfsim::core {
namespace {

Job make_job(JobId id, Time submit, Time estimate, int procs) {
  Job job;
  job.id = id;
  job.submit = submit;
  job.runtime = estimate;
  job.estimate = estimate;
  job.procs = procs;
  return job;
}

class DecisionCoreTest : public ::testing::Test {
 protected:
  DecisionCoreTest()
      : scheduler_(make_scheduler(SchedulerKind::Easy,
                                  SchedulerConfig{8, PriorityPolicy::Fcfs})),
        core_(*scheduler_) {}

  std::unique_ptr<Scheduler> scheduler_;
  DecisionCore core_;
};

TEST_F(DecisionCoreTest, SubmitAndStartLifecycle) {
  EXPECT_EQ(core_.phase(0), JobPhase::kUnseen);
  core_.on_submit(make_job(0, 0, 100, 4), 0);
  EXPECT_EQ(core_.phase(0), JobPhase::kQueued);
  EXPECT_EQ(core_.queued(), 1u);
  const CycleDecision decision = core_.end_cycle(0);
  EXPECT_TRUE(decision.pass_ran);
  ASSERT_EQ(decision.starts.size(), 1u);
  EXPECT_EQ(decision.starts[0], 0u);
  EXPECT_EQ(core_.phase(0), JobPhase::kRunning);
  EXPECT_EQ(core_.queued(), 0u);
  EXPECT_EQ(core_.running(), 1u);
  core_.on_finish(0, 100);
  EXPECT_EQ(core_.phase(0), JobPhase::kFinished);
  EXPECT_EQ(core_.running(), 0u);
  EXPECT_EQ(core_.stats().events, 2u);
}

TEST_F(DecisionCoreTest, TimeMustNotRunBackwards) {
  core_.on_submit(make_job(0, 100, 10, 1), 100);
  EXPECT_THROW(core_.on_submit(make_job(1, 99, 10, 1), 99), DecisionError);
  // The guard fired before any mutation: job 1 is unseen, and the core
  // keeps serving at valid times.
  EXPECT_EQ(core_.phase(1), JobPhase::kUnseen);
  EXPECT_NO_THROW(core_.on_submit(make_job(1, 100, 10, 1), 100));
}

TEST_F(DecisionCoreTest, RejectsMalformedSubmissions) {
  // Duplicate submit.
  core_.on_submit(make_job(0, 0, 10, 1), 0);
  EXPECT_THROW(core_.on_submit(make_job(0, 0, 10, 1), 0), DecisionError);
  // Estimate below one.
  EXPECT_THROW(core_.on_submit(make_job(1, 0, 0, 1), 0), DecisionError);
  // Wider than the machine.
  EXPECT_THROW(core_.on_submit(make_job(1, 0, 10, 9), 0), DecisionError);
  // Submit-time mismatch: an arrival is an event at its own instant.
  EXPECT_THROW(core_.on_submit(make_job(1, 5, 10, 1), 0), DecisionError);
  // Hostile id: must not allocate a phase table entry per 2^60.
  EXPECT_THROW(core_.on_submit(make_job(kMaxTrackedJobs, 0, 10, 1), 0),
               DecisionError);
  // None of it perturbed the queue.
  EXPECT_EQ(core_.queued(), 1u);
  EXPECT_EQ(core_.stats().events, 1u);
}

TEST_F(DecisionCoreTest, FinishRequiresARunningJob) {
  EXPECT_THROW(core_.on_finish(0, 0), DecisionError);
  core_.on_submit(make_job(0, 0, 10, 1), 0);
  // Queued but not started: still not finishable.
  EXPECT_THROW(core_.on_finish(0, 0), DecisionError);
  (void)core_.end_cycle(0);
  EXPECT_NO_THROW(core_.on_finish(0, 10));
  // And not twice.
  EXPECT_THROW(core_.on_finish(0, 10), DecisionError);
}

TEST_F(DecisionCoreTest, CancelContract) {
  EXPECT_THROW(core_.on_cancel(0, 0), DecisionError);  // never submitted
  core_.on_submit(make_job(0, 0, 10, 8), 0);
  core_.on_submit(make_job(1, 0, 10, 8), 0);
  (void)core_.end_cycle(0);  // job 0 starts; job 1 waits
  core_.on_cancel(1, 5);     // queued: withdrawn for good
  EXPECT_EQ(core_.phase(1), JobPhase::kCancelled);
  EXPECT_EQ(core_.queued(), 0u);
  EXPECT_THROW(core_.on_cancel(1, 5), DecisionError);  // cancelled twice
  // Cancelling a running job is a scheduler no-op but legal input.
  EXPECT_NO_THROW(core_.on_cancel(0, 6));
  EXPECT_EQ(core_.phase(0), JobPhase::kRunning);
}

TEST_F(DecisionCoreTest, CancelOfARunningJobStillForcesAPass) {
  // No hook can vouch the batch is a no-op (clock-driven policies can
  // surface starts from time alone), so the cycle must run a pass.
  core_.on_submit(make_job(0, 0, 10, 8), 0);
  (void)core_.end_cycle(0);
  core_.on_cancel(0, 5);
  const CycleDecision decision = core_.end_cycle(5);
  EXPECT_TRUE(decision.pass_ran);
}

TEST_F(DecisionCoreTest, NoOpBatchesAreSkippedAndCounted) {
  core_.on_submit(make_job(0, 0, 100, 8), 0);  // fills the machine
  core_.on_submit(make_job(1, 0, 50, 8), 0);   // must wait behind it
  (void)core_.end_cycle(0);
  // A submit that provably cannot start (machine full, EASY cannot
  // backfill it) lets the scheduler hooks veto the pass.
  core_.on_submit(make_job(2, 10, 50, 8), 10);
  const CycleDecision decision = core_.end_cycle(10);
  EXPECT_FALSE(decision.pass_ran);
  EXPECT_EQ(decision.starts.size(), 0u);
  EXPECT_EQ(core_.stats().passes_skipped, 1u);
}

TEST_F(DecisionCoreTest, StaleWakeIsACountedNoOp) {
  core_.on_submit(make_job(0, 0, 100, 1), 0);
  (void)core_.end_cycle(0);
  // A wake at an instant where no reservation is due: the cycle re-asks
  // the scheduler, learns nothing is due, and skips.
  core_.on_wake(10);
  const CycleDecision decision = core_.end_cycle(10);
  EXPECT_FALSE(decision.pass_ran);
  EXPECT_EQ(core_.stats().wakeups, 1u);
}

TEST_F(DecisionCoreTest, ErrorsLeaveTheCoreServiceable) {
  // A front that quarantines DecisionErrors must be able to keep using
  // the core: run a small legitimate schedule after a barrage of
  // contract violations and check it completes coherently.
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(core_.on_finish(99, 0), DecisionError);
    EXPECT_THROW(core_.on_cancel(98, 0), DecisionError);
    EXPECT_THROW(core_.on_submit(make_job(0, 5, 10, 1), 0), DecisionError);
  }
  core_.on_submit(make_job(0, 0, 10, 4), 0);
  const CycleDecision first = core_.end_cycle(0);
  ASSERT_EQ(first.starts.size(), 1u);
  core_.on_finish(0, 10);
  const CycleDecision second = core_.end_cycle(10);
  EXPECT_EQ(second.starts.size(), 0u);
  EXPECT_EQ(core_.stats().events, 2u);
}

TEST_F(DecisionCoreTest, StatsTrackQueueDepth) {
  core_.on_submit(make_job(0, 0, 100, 8), 0);
  (void)core_.end_cycle(0);
  core_.on_submit(make_job(1, 1, 10, 1), 1);
  core_.on_submit(make_job(2, 1, 10, 8), 1);
  (void)core_.end_cycle(1);
  EXPECT_EQ(core_.stats().max_queue, 2u);
}

TEST(DecisionCoreWakeups, ConservativeReportsItsReservation) {
  const auto scheduler = make_scheduler(
      SchedulerKind::Conservative, SchedulerConfig{4, PriorityPolicy::Fcfs});
  DecisionCore core{*scheduler};
  core.on_submit(make_job(0, 0, 100, 4), 0);
  (void)core.end_cycle(0);
  core.on_submit(make_job(1, 1, 50, 4), 1);
  const CycleDecision blocked = core.end_cycle(1);
  EXPECT_EQ(blocked.starts.size(), 0u);
  // Job 1's reservation sits at job 0's estimated end.
  EXPECT_EQ(blocked.next_wakeup, 100);
}

}  // namespace
}  // namespace bfsim::core
