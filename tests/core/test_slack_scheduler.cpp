#include "core/slack_scheduler.hpp"

#include <gtest/gtest.h>

#include "core/conservative_scheduler.hpp"
#include "core/simulation.hpp"
#include "sim/event_queue.hpp"
#include "test_support.hpp"

namespace bfsim::core {
namespace {

using test::JobSpec;
using test::make_trace;
using test::start_times;

SimulationResult run(const Trace& trace, int procs, double slack,
                     PriorityPolicy priority = PriorityPolicy::Fcfs) {
  SlackScheduler scheduler{SchedulerConfig{procs, priority}, slack};
  return run_simulation(trace, scheduler, {.validate = true});
}

Job make_job(JobId id, sim::Time submit, sim::Time estimate, int procs) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = estimate;
  j.estimate = estimate;
  j.procs = procs;
  return j;
}

TEST(SlackScheduler, RejectsNegativeSlack) {
  EXPECT_THROW(
      (SlackScheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, -0.5}),
      std::invalid_argument);
}

TEST(SlackScheduler, ZeroSlackMatchesConservativeOnExactEstimates) {
  // With no slack nobody may be displaced; only compaction-free
  // backfills are possible, which conservative performs too.
  for (const std::uint64_t seed : {31u, 32u, 33u}) {
    const Trace trace = test::random_trace(400, 12, seed, false);
    const SchedulerConfig config{12, PriorityPolicy::Fcfs};
    ConservativeScheduler cons{config};
    const auto a = run_simulation(trace, cons);
    SlackScheduler slack{config, 0.0};
    const auto b = run_simulation(trace, slack);
    EXPECT_EQ(start_times(a), start_times(b)) << "seed " << seed;
  }
}

TEST(SlackScheduler, DisplacementWithinSlack) {
  // J1 (whole machine, est 100) is guaranteed t=100 with one estimate of
  // slack (deadline 200). The later-arriving short J2 may displace it.
  SlackScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, 1.0};
  scheduler.job_submitted(make_job(0, 0, 100, 4), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 100, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  EXPECT_EQ(scheduler.deadline_of(1), 200);
  // J2: 2 procs, 90 s -- fits beside nothing now (J0 holds all 4), so no
  // displacement is even needed at t=2... it must wait. Make it arrive
  // when J0 is done and J1 is about to start.
  scheduler.job_finished(0, 100);
  const auto started = scheduler.select_starts(100);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, 1u);
  // Now a 4-proc 50 s job arrives at t=110; J1 runs until 200, nothing
  // is queued: it anchors at 200 (no displacement possible of running
  // jobs).
  scheduler.job_submitted(make_job(2, 110, 50, 4), 110);
  EXPECT_EQ(scheduler.reservation_of(2), 200);
}

TEST(SlackScheduler, ArrivalDisplacesQueuedReservation) {
  // Machine 4. J0 runs [0, 100) on 2 procs. J1 (4 procs, est 50) is
  // reserved [100, 150), slack factor 2 -> deadline 200. J2 (2 procs,
  // est 120) arrives at t=2: conservative would anchor it at 150, but
  // displacing J1 to 122 (<= deadline) lets J2 start immediately.
  SlackScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, 2.0};
  scheduler.job_submitted(make_job(0, 0, 100, 2), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  EXPECT_EQ(scheduler.reservation_of(1), 100);
  scheduler.job_submitted(make_job(2, 2, 120, 2), 2);
  EXPECT_EQ(scheduler.reservation_of(2), 2);    // displaced its way in
  EXPECT_EQ(scheduler.reservation_of(1), 122);  // pushed, within slack
  EXPECT_EQ(scheduler.displacements(), 1u);
  const auto started = scheduler.select_starts(2);
  ASSERT_EQ(started.size(), 1u);
  EXPECT_EQ(started[0].id, 2u);
}

TEST(SlackScheduler, DisplacementDeniedWhenSlackExhausted) {
  // Same geometry but slack 0.1 -> J1's deadline is 105; pushing it to
  // 122 is not allowed, so J2 takes the conservative anchor.
  SlackScheduler scheduler{SchedulerConfig{4, PriorityPolicy::Fcfs}, 0.1};
  scheduler.job_submitted(make_job(0, 0, 100, 2), 0);
  (void)scheduler.select_starts(0);
  scheduler.job_submitted(make_job(1, 1, 50, 4), 1);
  scheduler.job_submitted(make_job(2, 2, 120, 2), 2);
  EXPECT_EQ(scheduler.reservation_of(1), 100);  // untouched
  EXPECT_EQ(scheduler.reservation_of(2), 150);  // behind J1
  EXPECT_EQ(scheduler.displacements(), 0u);
}

TEST(SlackScheduler, DeadlinesAreNeverViolated) {
  // Drive random traces manually, record each job's deadline at arrival
  // and assert its start never exceeds it -- the scheduler's core
  // guarantee, under every priority policy and estimate accuracy.
  for (const auto priority :
       {PriorityPolicy::Fcfs, PriorityPolicy::Sjf, PriorityPolicy::XFactor}) {
    for (const bool overestimate : {false, true}) {
      const Trace trace = test::random_trace(400, 16, 77, overestimate);
      SlackScheduler scheduler{SchedulerConfig{16, priority}, 1.5};
      std::vector<sim::Time> deadline(trace.size(), sim::kNoTime);
      std::vector<sim::Time> started(trace.size(), sim::kNoTime);
      sim::EventQueue<JobId> events;
      for (const Job& job : trace) events.push(job.submit, 1, job.id);
      while (!events.empty()) {
        const sim::Time now = events.top().time;
        while (!events.empty() && events.top().time == now) {
          const auto event = events.pop();
          if (event.priority_class() == 0) {
            scheduler.job_finished(event.payload, now);
          } else {
            scheduler.job_submitted(trace[event.payload], now);
            deadline[event.payload] = scheduler.deadline_of(event.payload);
          }
        }
        for (const Job& job : scheduler.select_starts(now)) {
          started[job.id] = now;
          events.push(now + std::min(job.runtime, job.estimate), 0, job.id);
        }
      }
      for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_NE(started[i], sim::kNoTime);
        EXPECT_LE(started[i], deadline[i])
            << "job " << i << " " << to_string(priority);
      }
    }
  }
}

TEST(SlackScheduler, SlackTradesWorstCaseForMeanUnderSjf) {
  // Busy trace with overestimates: more slack -> better packing (lower
  // mean wait) but weaker guarantees (no better worst case).
  const Trace trace = test::random_trace(600, 12, 41, true);
  const auto tight = run(trace, 12, 0.0, PriorityPolicy::Sjf);
  const auto loose = run(trace, 12, 10.0, PriorityPolicy::Sjf);
  double tight_wait = 0, loose_wait = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    tight_wait += static_cast<double>(tight.outcomes[i].wait());
    loose_wait += static_cast<double>(loose.outcomes[i].wait());
  }
  EXPECT_LT(loose_wait, tight_wait);
}

TEST(SlackScheduler, NameEncodesSlack) {
  const SlackScheduler scheduler{SchedulerConfig{8, PriorityPolicy::Sjf},
                                 2.5};
  EXPECT_EQ(scheduler.name(), "slack2.5-sjf");
  EXPECT_DOUBLE_EQ(scheduler.slack_factor(), 2.5);
}

TEST(SlackScheduler, FactoryBuildsWithExtras) {
  SchedulerExtras extras;
  extras.slack_factor = 1.0;
  const auto scheduler = make_scheduler(
      SchedulerKind::Slack, SchedulerConfig{8, PriorityPolicy::Fcfs}, extras);
  EXPECT_EQ(scheduler->name(), "slack1.0-fcfs");
}

}  // namespace
}  // namespace bfsim::core
