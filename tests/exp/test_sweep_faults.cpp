// The fault-tolerant sweep runtime under deterministic fault injection
// (exp::FaultPlan): retries must heal transient faults byte-identically,
// the watchdog must kill stalled cells without hanging the pool, and
// degraded-results mode must classify permanent failures per the
// util::FailureKind taxonomy. Lives in bfsim_fault_tests (labels
// `concurrency`) so the whole file also runs under TSan in CI.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/fault.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/log.hpp"

namespace bfsim::exp {
namespace {

constexpr std::size_t kJobs = 120;

Scenario small_scenario(core::SchedulerKind kind, std::uint64_t seed) {
  Scenario s;
  s.trace = TraceKind::Sdsc;
  s.jobs = kJobs;
  s.load = kHighLoad;
  s.scheduler = kind;
  s.priority = core::PriorityPolicy::Fcfs;
  s.seed = seed;
  return s;
}

/// Three schedulers x two seeds; tags "<kind>/seed=<n>".
Sweep small_grid() {
  Sweep sweep;
  for (const auto kind :
       {core::SchedulerKind::Conservative, core::SchedulerKind::Easy,
        core::SchedulerKind::Fcfs})
    (void)sweep.add_replications(small_scenario(kind, 1), 2,
                                 core::to_string(kind));
  return sweep;
}

std::string report_bytes(const SweepReport& report) {
  std::string bytes = metrics::metrics_json(report.merged);
  for (const CellResult& cell : report.cells)
    bytes += "\n" + cell.tag + " " + metrics::metrics_json(cell.metrics);
  return bytes;
}

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = util::log_level();
    util::set_log_level(util::LogLevel::Off);
    util::reset_log_limits();
  }
  void TearDown() override {
    util::set_log_level(saved_);
    util::reset_log_limits();
  }

 private:
  util::LogLevel saved_ = util::LogLevel::Warn;
};

using SweepFaults = QuietLogs;

TEST_F(SweepFaults, TransientFaultsHealByteIdenticallyAtAnyThreadCount) {
  const Sweep sweep = small_grid();
  const std::string golden = report_bytes(sweep.run({}));

  FaultPlan faults;
  faults.add("conservative/seed=1", {.fail_attempts = 2});
  faults.add("nobackfill/seed=2",
             {.fail_attempts = 1, .kind = util::FailureKind::ParseError});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    SweepOptions options;
    options.threads = threads;
    options.chunk = 1;
    options.policy.retries = 2;
    options.faults = &faults;
    const SweepReport report = sweep.run(options);
    EXPECT_EQ(report_bytes(report), golden) << "threads=" << threads;
    EXPECT_TRUE(report.failures.empty());
    // 2 + 1 faulty attempts were retried away.
    EXPECT_EQ(report.retried, 3u) << "threads=" << threads;
    for (const CellResult& cell : report.cells) EXPECT_TRUE(cell.ok);
  }
}

TEST_F(SweepFaults, RetryBudgetZeroPreservesSeedFailFastBehavior) {
  const Sweep sweep = small_grid();
  FaultPlan faults;
  faults.add("easy/seed=1", {.fail_attempts = 1});
  SweepOptions options;
  options.faults = &faults;
  try {
    (void)sweep.run(options);
    FAIL() << "expected SweepError";
  } catch (const SweepError& error) {
    EXPECT_EQ(error.cell(), 2u);  // easy/seed=1 declared at index 2
    EXPECT_EQ(error.tag(), "easy/seed=1");
  }
}

TEST_F(SweepFaults, PermanentFaultExhaustsRetriesAndThrowsWithoutPartial) {
  const Sweep sweep = small_grid();
  FaultPlan faults;
  faults.add("easy/seed=2", {.fail_attempts = 100});
  SweepOptions options;
  options.policy.retries = 2;
  options.faults = &faults;
  try {
    (void)sweep.run(options);
    FAIL() << "expected SweepError";
  } catch (const SweepError& error) {
    EXPECT_EQ(error.tag(), "easy/seed=2");
    EXPECT_NE(std::string(error.what()).find("injected"), std::string::npos);
  }
}

TEST_F(SweepFaults, PartialModeRecordsStructuredFailuresAndFinishesTheGrid) {
  const Sweep sweep = small_grid();
  const SweepReport oracle = sweep.run({});

  FaultPlan faults;
  faults.add("easy/seed=1", {.fail_attempts = 100});
  SweepOptions options;
  options.threads = 3;
  options.chunk = 1;
  options.policy.retries = 1;
  options.policy.partial = true;
  options.faults = &faults;
  const SweepReport report = sweep.run(options);

  ASSERT_EQ(report.failures.size(), 1u);
  const CellFailure& failure = report.failures[0];
  EXPECT_EQ(failure.cell, 2u);
  EXPECT_EQ(failure.tag, "easy/seed=1");
  EXPECT_EQ(failure.kind, util::FailureKind::Internal);
  EXPECT_EQ(failure.attempts, 2);  // 1 + 1 retry
  EXPECT_NE(failure.message.find("injected"), std::string::npos);

  // The failed cell is present, marked, and empty; every healthy cell
  // still matches the fault-free run bit for bit.
  ASSERT_EQ(report.cells.size(), oracle.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    if (i == failure.cell) {
      EXPECT_FALSE(report.cells[i].ok);
      EXPECT_EQ(report.cells[i].metrics.overall.count(), 0u);
    } else {
      EXPECT_TRUE(report.cells[i].ok);
      EXPECT_EQ(metrics::metrics_json(report.cells[i].metrics),
                metrics::metrics_json(oracle.cells[i].metrics));
    }
  }
  // The merge skips exactly the failed cell's jobs.
  EXPECT_EQ(report.merged.overall.count() +
                oracle.cells[failure.cell].metrics.overall.count(),
            oracle.merged.overall.count());
}

TEST_F(SweepFaults, InjectedKindsClassifyAcrossTheTaxonomy) {
  const Sweep sweep = small_grid();
  FaultPlan faults;
  faults.add("conservative/seed=1",
             {.fail_attempts = 100, .kind = util::FailureKind::ParseError});
  faults.add("conservative/seed=2",
             {.fail_attempts = 100,
              .kind = util::FailureKind::AuditViolation});
  faults.add("easy/seed=1",
             {.fail_attempts = 100,
              .kind = util::FailureKind::ResourceExhausted});
  SweepOptions options;
  options.policy.partial = true;
  options.faults = &faults;
  const SweepReport report = sweep.run(options);
  ASSERT_EQ(report.failures.size(), 3u);
  EXPECT_EQ(report.failures[0].kind, util::FailureKind::ParseError);
  EXPECT_EQ(report.failures[1].kind, util::FailureKind::AuditViolation);
  EXPECT_EQ(report.failures[2].kind, util::FailureKind::ResourceExhausted);
  // Failures come back sorted by declaration index.
  EXPECT_EQ(report.failures[0].cell, 0u);
  EXPECT_EQ(report.failures[1].cell, 1u);
  EXPECT_EQ(report.failures[2].cell, 2u);
}

TEST_F(SweepFaults, WatchdogKillsStalledAttemptAndTheRetryHeals) {
  const Sweep sweep = small_grid();
  const std::string golden = report_bytes(sweep.run({}));

  FaultPlan faults;
  // Attempt 1 stalls well past the watchdog and never throws on its
  // own; the watchdog must classify it as Timeout. Attempt 2 is clean.
  faults.add("nobackfill/seed=1",
             {.fail_attempts = 1,
              .kind = util::FailureKind::Timeout,
              .stall_ms = 2000});
  SweepOptions options;
  options.threads = 2;
  options.chunk = 1;
  options.policy.retries = 1;
  options.policy.cell_timeout_ms = 100;
  options.faults = &faults;
  const SweepReport report = sweep.run(options);
  EXPECT_EQ(report_bytes(report), golden);
  EXPECT_EQ(report.retried, 1u);
  EXPECT_TRUE(report.failures.empty());
}

TEST_F(SweepFaults, PermanentStallBecomesATimeoutFailureInPartialMode) {
  const Sweep sweep = small_grid();
  FaultPlan faults;
  faults.add("nobackfill/seed=2",
             {.fail_attempts = 100,
              .kind = util::FailureKind::Timeout,
              .stall_ms = 2000});
  SweepOptions options;
  options.policy.partial = true;
  options.policy.cell_timeout_ms = 100;
  options.faults = &faults;
  const SweepReport report = sweep.run(options);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].tag, "nobackfill/seed=2");
  EXPECT_EQ(report.failures[0].kind, util::FailureKind::Timeout);
  EXPECT_NE(report.failures[0].message.find("watchdog"), std::string::npos);
}

TEST_F(SweepFaults, WatchdogLeavesHealthyCellsByteIdentical) {
  // A generous watchdog over a fault-free grid must be invisible: the
  // timed path (detached attempt thread per cell) returns the same
  // bytes as the inline path.
  const Sweep sweep = small_grid();
  const std::string golden = report_bytes(sweep.run({}));
  SweepOptions options;
  options.threads = 2;
  options.policy.cell_timeout_ms = 60000;
  EXPECT_EQ(report_bytes(sweep.run(options)), golden);
}

TEST_F(SweepFaults, FaultyRunsAreDeterministicAcrossRepeats) {
  const Sweep sweep = small_grid();
  FaultPlan faults;
  faults.add("conservative/seed=2", {.fail_attempts = 100});
  faults.add("easy/seed=1", {.fail_attempts = 1});
  SweepOptions options;
  options.threads = 3;
  options.chunk = 1;
  options.policy.retries = 1;
  options.policy.partial = true;
  options.faults = &faults;
  const SweepReport first = sweep.run(options);
  const SweepReport second = sweep.run(options);
  EXPECT_EQ(report_bytes(second), report_bytes(first));
  ASSERT_EQ(second.failures.size(), first.failures.size());
  for (std::size_t i = 0; i < first.failures.size(); ++i) {
    EXPECT_EQ(second.failures[i].cell, first.failures[i].cell);
    EXPECT_EQ(second.failures[i].kind, first.failures[i].kind);
    EXPECT_EQ(second.failures[i].message, first.failures[i].message);
  }
}

TEST_F(SweepFaults, FaultPlanIsInertOnTagsItDoesNotName) {
  FaultPlan faults;
  faults.add("some-other-cell", {.fail_attempts = 100});
  EXPECT_NO_THROW(faults.on_attempt("unrelated", 1));
  EXPECT_EQ(faults.size(), 1u);
  EXPECT_FALSE(faults.empty());
  // Spent faults are no-ops too.
  FaultPlan transient;
  transient.add("cell", {.fail_attempts = 2});
  EXPECT_THROW(transient.on_attempt("cell", 1), std::exception);
  EXPECT_THROW(transient.on_attempt("cell", 2), std::exception);
  EXPECT_NO_THROW(transient.on_attempt("cell", 3));
}

}  // namespace
}  // namespace bfsim::exp
