// ThreadPool hardening wall. Compiled into bfsim_concurrency_tests and
// labeled `concurrency` so CI re-runs it under ThreadSanitizer
// (-DBFSIM_SANITIZE=thread): every test here doubles as a TSan probe of
// the pool's locking discipline.
#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace bfsim::exp {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool{2};
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool{2};
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("bad cell");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool{2};
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto& f : futures) f.get();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DestructorWithQueuedWorkNobodyWaitsOn) {
  // Futures are dropped on the floor: the destructor must still drain
  // the queue and join without touching freed task state. The counter
  // outlives the pool, so every queued increment is observable after.
  std::atomic<int> counter{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 200; ++i) {
      auto f = pool.submit([&counter] { ++counter; });
      (void)f;  // discarded immediately
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ResultsComputedConcurrentlyAreCorrect) {
  ThreadPool pool{4};
  std::vector<std::future<long>> futures;
  for (long i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] {
      long sum = 0;
      for (long k = 0; k <= i; ++k) sum += k;
      return sum;
    }));
  for (long i = 0; i < 64; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * (i + 1) / 2);
}

TEST(ThreadPool, ShutdownDrainsThenRejectsSubmit) {
  ThreadPool pool{2};
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    auto f = pool.submit([&counter] { ++counter; });
    (void)f;
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool{2};
  pool.shutdown();
  EXPECT_NO_THROW(pool.shutdown());
  EXPECT_NO_THROW(pool.shutdown());
}  // destructor shuts down a third time

// ---------------------------------------------------------------------------
// Chunked loops and cooperative cancellation.
// ---------------------------------------------------------------------------

TEST(ThreadPoolChunked, CoversEveryIndexForAnyChunkSize) {
  ThreadPool pool{3};
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{100},
                                  std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for_chunked(100, chunk,
                              [&hits](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk=" << chunk;
  }
}

TEST(ThreadPoolChunked, PreCancelledTokenSkipsEverything) {
  ThreadPool pool{2};
  CancellationToken token;
  token.cancel();
  std::atomic<int> ran{0};
  pool.parallel_for_chunked(50, 5, [&ran](std::size_t) { ++ran; }, &token);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolChunked, ThrowCancelsTheSharedToken) {
  ThreadPool pool{2};
  CancellationToken token;
  EXPECT_THROW(pool.parallel_for_chunked(
                   20, 1,
                   [](std::size_t i) {
                     if (i == 4) throw std::runtime_error("cell 4");
                   },
                   &token),
               std::runtime_error);
  EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPoolChunked, SerialPoolReportsLowestFailedChunk) {
  // With one worker the chunks run in submission order, so the first
  // throw (index 3) cancels the token and index 11's throw never runs:
  // the rethrown error must be chunk 3's, deterministically.
  ThreadPool pool{1};
  CancellationToken token;
  std::string message;
  try {
    pool.parallel_for_chunked(
        20, 1,
        [](std::size_t i) {
          if (i == 3 || i == 11)
            throw std::runtime_error("cell " + std::to_string(i));
        },
        &token);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& error) {
    message = error.what();
  }
  EXPECT_EQ(message, "cell 3");
}

TEST(ThreadPoolChunked, ManyWorkersPickLowestAmongFailedChunks) {
  // Under real concurrency which chunks get skipped is schedule
  // dependent, but the propagated error is always the lowest-indexed
  // chunk among those that actually failed -- i.e. one of the throwers,
  // never a mangled or empty error.
  ThreadPool pool{4};
  for (int round = 0; round < 20; ++round) {
    CancellationToken token;
    std::string message;
    try {
      pool.parallel_for_chunked(
          64, 1,
          [](std::size_t i) {
            if (i % 13 == 5)
              throw std::runtime_error(std::to_string(i));
          },
          &token);
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& error) {
      message = error.what();
    }
    const std::size_t cell = std::stoul(message);
    EXPECT_EQ(cell % 13, 5u);
    EXPECT_TRUE(token.cancelled());
  }
}

// ---------------------------------------------------------------------------
// Cross-grid stress: several "grids" (threads driving chunked loops)
// hammer one shared pool concurrently. TSan target.
// ---------------------------------------------------------------------------

TEST(ThreadPoolStress, ConcurrentChunkedLoopsFromManyThreads) {
  ThreadPool pool{4};
  constexpr int kGrids = 6;
  constexpr std::size_t kCells = 200;
  std::vector<std::vector<std::atomic<int>>> hits(kGrids);
  for (auto& grid : hits) {
    std::vector<std::atomic<int>> cells(kCells);
    grid.swap(cells);
  }

  std::vector<std::thread> grids;
  std::atomic<int> failures{0};
  grids.reserve(kGrids);
  for (int g = 0; g < kGrids; ++g) {
    grids.emplace_back([&pool, &hits, &failures, g] {
      try {
        pool.parallel_for_chunked(kCells, g % 2 == 0 ? 1 : 16,
                                  [&hits, g](std::size_t i) { ++hits[g][i]; });
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& t : grids) t.join();

  EXPECT_EQ(failures.load(), 0);
  for (int g = 0; g < kGrids; ++g)
    for (const auto& h : hits[g]) ASSERT_EQ(h.load(), 1) << "grid " << g;
}

TEST(ThreadPoolStress, ConcurrentLoopsWithOneFailingGrid) {
  // One grid throws mid-flight while the others keep going: the failure
  // must stay confined to its own loop (its own token), and the healthy
  // grids must still cover every index.
  ThreadPool pool{4};
  constexpr std::size_t kCells = 100;
  std::vector<std::atomic<int>> healthy_a(kCells), healthy_b(kCells);
  std::atomic<bool> caught{false};

  std::thread failing{[&pool, &caught] {
    CancellationToken token;
    try {
      pool.parallel_for_chunked(
          kCells, 4,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("grid failure");
          },
          &token);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }};
  std::thread a{[&pool, &healthy_a] {
    pool.parallel_for_chunked(kCells, 4,
                              [&healthy_a](std::size_t i) { ++healthy_a[i]; });
  }};
  std::thread b{[&pool, &healthy_b] {
    pool.parallel_for_chunked(kCells, 1,
                              [&healthy_b](std::size_t i) { ++healthy_b[i]; });
  }};
  failing.join();
  a.join();
  b.join();

  EXPECT_TRUE(caught.load());
  for (const auto& h : healthy_a) ASSERT_EQ(h.load(), 1);
  for (const auto& h : healthy_b) ASSERT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace bfsim::exp
