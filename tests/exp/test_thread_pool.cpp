#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bfsim::exp {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool{2};
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool{4};
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool{2};
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool{3};
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool{2};
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3)
                                     throw std::runtime_error("bad cell");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForZeroCountIsNoop) {
  ThreadPool pool{2};
  EXPECT_NO_THROW(pool.parallel_for(0, [](std::size_t) { FAIL(); }));
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool{1};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i)
      futures.push_back(pool.submit([&counter] { ++counter; }));
    for (auto& f : futures) f.get();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ResultsComputedConcurrentlyAreCorrect) {
  ThreadPool pool{4};
  std::vector<std::future<long>> futures;
  for (long i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] {
      long sum = 0;
      for (long k = 0; k <= i; ++k) sum += k;
      return sum;
    }));
  for (long i = 0; i < 64; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * (i + 1) / 2);
}

}  // namespace
}  // namespace bfsim::exp
