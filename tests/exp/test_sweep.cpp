// exp::Sweep -- the grid-level parallel experiment engine.
//
// The load-bearing property is the determinism contract: a grid run at
// any thread count / chunk size produces byte-identical merged metrics
// and identical cell ordering, with the serial (threads == 1) run and
// run_replications as oracles. Compiled into bfsim_concurrency_tests
// (label `concurrency`) so the whole file also runs under TSan in CI.
#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "exp/runner.hpp"
#include "metrics/report.hpp"

namespace bfsim::exp {
namespace {

constexpr std::size_t kJobs = 150;  // small but non-trivial grids

Scenario small_scenario(core::SchedulerKind kind, std::uint64_t seed) {
  Scenario s;
  s.trace = TraceKind::Sdsc;
  s.jobs = kJobs;
  s.load = kHighLoad;
  s.scheduler = kind;
  s.priority = core::PriorityPolicy::Fcfs;
  s.seed = seed;
  return s;
}

/// The standard test grid: three schedulers x three seeds, SDSC.
Sweep small_grid() {
  Sweep sweep;
  for (const auto kind :
       {core::SchedulerKind::Conservative, core::SchedulerKind::Easy,
        core::SchedulerKind::Fcfs})
    (void)sweep.add_replications(small_scenario(kind, 1), 3,
                                 core::to_string(kind));
  return sweep;
}

TEST(Sweep, EmptyGridYieldsEmptyReport) {
  const Sweep sweep;
  const SweepReport report = sweep.run({});
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.merged.overall.count(), 0u);
}

TEST(Sweep, CellsComeBackInDeclarationOrder) {
  const Sweep sweep = small_grid();
  SweepOptions options;
  options.threads = 2;
  const SweepReport report = sweep.run(options);
  ASSERT_EQ(report.cells.size(), 9u);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].label, sweep.scenario(i).label());
    EXPECT_EQ(report.cells[i].tag,
              core::to_string(sweep.scenario(i).scheduler) +
                  "/seed=" + std::to_string(sweep.scenario(i).seed));
  }
}

TEST(Sweep, SerialRunMatchesRunReplicationsOracle) {
  // One scheme's slice of the sweep must reproduce run_replications
  // bit-for-bit: same scenarios, same runner, same aggregation.
  Sweep sweep;
  (void)sweep.add_replications(
      small_scenario(core::SchedulerKind::Conservative, 1), 3);
  const SweepReport report = sweep.run({});

  const auto oracle = run_replications(
      small_scenario(core::SchedulerKind::Conservative, 1), 3);
  ASSERT_EQ(report.cells.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i)
    EXPECT_EQ(metrics::metrics_json(report.cells[i].metrics),
              metrics::metrics_json(oracle[i]))
        << "seed " << i + 1;
}

TEST(Sweep, MergedMetricsAreByteIdenticalAtAnyThreadCount) {
  const Sweep sweep = small_grid();
  const SweepReport serial = sweep.run({});  // threads = 1: the oracle
  const std::string golden = metrics::metrics_json(serial.merged);
  EXPECT_EQ(serial.threads_used, 1u);

  const std::size_t hardware = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  for (const std::size_t threads : {std::size_t{2}, hardware}) {
    SweepOptions options;
    options.threads = threads;
    const SweepReport parallel = sweep.run(options);
    EXPECT_EQ(parallel.threads_used, threads);
    EXPECT_EQ(metrics::metrics_json(parallel.merged), golden)
        << "threads=" << threads;
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (std::size_t i = 0; i < parallel.cells.size(); ++i) {
      EXPECT_EQ(parallel.cells[i].tag, serial.cells[i].tag);
      EXPECT_EQ(metrics::metrics_json(parallel.cells[i].metrics),
                metrics::metrics_json(serial.cells[i].metrics))
          << "threads=" << threads << " cell=" << i;
    }
  }
}

TEST(Sweep, ChunkSizeNeverChangesTheBytes) {
  const Sweep sweep = small_grid();
  const std::string golden = metrics::metrics_json(sweep.run({}).merged);
  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{2}, std::size_t{5}, std::size_t{100}}) {
    SweepOptions options;
    options.threads = 3;
    options.chunk = chunk;
    EXPECT_EQ(metrics::metrics_json(sweep.run(options).merged), golden)
        << "chunk=" << chunk;
  }
}

TEST(Sweep, AuditedGridMatchesUnauditedBytes) {
  // The per-cell auditor observes; it must never perturb the schedule.
  const Sweep sweep = small_grid();
  const std::string golden = metrics::metrics_json(sweep.run({}).merged);
  SweepOptions options;
  options.threads = 2;
  options.audit = true;
  options.validate = true;
  EXPECT_EQ(metrics::metrics_json(sweep.run(options).merged), golden);
}

TEST(Sweep, CustomRunnerValuesSurviveShardingInOrder) {
  Sweep sweep;
  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    (void)sweep.add(small_scenario(core::SchedulerKind::Easy, seed),
                    std::string{"v"}.append(std::to_string(seed)),
                    [](const Scenario& scenario,
                       const core::SimulationOptions&, CellResult& result) {
                      result.values = {static_cast<double>(scenario.seed),
                                       static_cast<double>(scenario.seed) * 2};
                    });
  SweepOptions options;
  options.threads = 4;
  options.chunk = 1;
  const SweepReport report = sweep.run(options);
  ASSERT_EQ(report.cells.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    ASSERT_EQ(report.cells[i].values.size(), 2u);
    EXPECT_EQ(report.cells[i].values[0], static_cast<double>(i + 1));
    EXPECT_EQ(report.cells[i].values[1], static_cast<double>(i + 1) * 2);
  }
}

// ---------------------------------------------------------------------------
// Error contract.
// ---------------------------------------------------------------------------

CellRunner fail_on_seeds(std::uint64_t a, std::uint64_t b) {
  return [a, b](const Scenario& scenario, const core::SimulationOptions&,
                CellResult&) {
    if (scenario.seed == a || scenario.seed == b)
      throw std::runtime_error("seed " + std::to_string(scenario.seed) +
                               " exploded");
  };
}

TEST(SweepErrors, SerialRunReportsTheFirstFailingCell) {
  Sweep sweep;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    (void)sweep.add(small_scenario(core::SchedulerKind::Easy, seed),
                    "cell" + std::to_string(seed), fail_on_seeds(6, 3));
  try {
    (void)sweep.run({});
    FAIL() << "expected SweepError";
  } catch (const SweepError& error) {
    EXPECT_EQ(error.cell(), 2u);  // seed 3 declared at index 2
    EXPECT_EQ(error.tag(), "cell3");
    EXPECT_NE(std::string(error.what()).find("seed 3 exploded"),
              std::string::npos);
  }
}

TEST(SweepErrors, ParallelRunReportsSomeFailingCellAndCancelsTheRest) {
  // Under concurrency the skipped set is schedule dependent, but the
  // propagated SweepError always identifies a cell that genuinely
  // failed, and healthy cells never appear in it.
  Sweep sweep;
  std::atomic<int> executed{0};
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    (void)sweep.add(
        small_scenario(core::SchedulerKind::Easy, seed),
        "cell" + std::to_string(seed),
        [&executed](const Scenario& scenario, const core::SimulationOptions&,
                    CellResult&) {
          ++executed;
          if (scenario.seed % 9 == 4)
            throw std::runtime_error("seed " +
                                     std::to_string(scenario.seed));
        });
  SweepOptions options;
  options.threads = 4;
  options.chunk = 1;
  try {
    (void)sweep.run(options);
    FAIL() << "expected SweepError";
  } catch (const SweepError& error) {
    EXPECT_EQ((error.cell() + 1) % 9, 4u) << "cell " << error.cell();
    EXPECT_EQ(error.tag(), "cell" + std::to_string(error.cell() + 1));
  }
  // Cancellation actually pruned work: with 40 cells and the first
  // failure at cell index 3, a full run of all cells would mean the
  // token never fired. Allow every schedule except "nothing skipped".
  EXPECT_LT(executed.load(), 40);
}

TEST(SweepErrors, ParallelErrorPickIsDeterministicWithOneWorkerThread) {
  Sweep sweep;
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    (void)sweep.add(small_scenario(core::SchedulerKind::Easy, seed),
                    "cell" + std::to_string(seed), fail_on_seeds(8, 2));
  SweepOptions options;
  options.threads = 1;
  for (int round = 0; round < 3; ++round) {
    try {
      (void)sweep.run(options);
      FAIL() << "expected SweepError";
    } catch (const SweepError& error) {
      EXPECT_EQ(error.cell(), 1u);
      EXPECT_EQ(error.tag(), "cell2");
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-grid stress: several sweeps run concurrently from different
// threads (each builds its own pool); TSan watches the whole dance.
// ---------------------------------------------------------------------------

TEST(SweepStress, ConcurrentGridsProduceIndependentCorrectResults) {
  const Sweep sweep = small_grid();
  const std::string golden = metrics::metrics_json(sweep.run({}).merged);

  constexpr int kGrids = 4;
  std::vector<std::string> merged(kGrids);
  std::vector<std::thread> threads;
  threads.reserve(kGrids);
  for (int g = 0; g < kGrids; ++g)
    threads.emplace_back([&sweep, &merged, g] {
      SweepOptions options;
      options.threads = 2;
      options.chunk = g % 2 == 0 ? 1 : 4;
      merged[static_cast<std::size_t>(g)] =
          metrics::metrics_json(sweep.run(options).merged);
    });
  for (auto& t : threads) t.join();
  for (const auto& m : merged) EXPECT_EQ(m, golden);
}

}  // namespace
}  // namespace bfsim::exp
