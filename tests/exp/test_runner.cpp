#include "exp/runner.hpp"

#include <gtest/gtest.h>

namespace bfsim::exp {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.trace = TraceKind::Sdsc;
  s.jobs = 600;
  s.load = 0.85;
  s.scheduler = core::SchedulerKind::Easy;
  s.priority = core::PriorityPolicy::Fcfs;
  s.seed = 5;
  return s;
}

TEST(Runner, ExperimentOptionsTrimFivePercent) {
  const auto options = experiment_metrics_options(1000);
  EXPECT_EQ(options.skip_head, 50u);
  EXPECT_EQ(options.skip_tail, 50u);
  EXPECT_EQ(options.slowdown_threshold, 10);
}

TEST(Runner, RunScenarioProducesTrimmedMetrics) {
  const auto metrics = run_scenario(small_scenario());
  EXPECT_EQ(metrics.overall.count(), 600u - 2 * 30u);
  EXPECT_GT(metrics.overall.slowdown.mean(), 0.99);
  EXPECT_GT(metrics.utilization, 0.1);
}

TEST(Runner, RunScenarioIsDeterministic) {
  const auto a = run_scenario(small_scenario());
  const auto b = run_scenario(small_scenario());
  EXPECT_DOUBLE_EQ(a.overall.slowdown.mean(), b.overall.slowdown.mean());
  EXPECT_DOUBLE_EQ(a.overall.turnaround.max(), b.overall.turnaround.max());
}

TEST(Runner, ReplicationsUseConsecutiveSeeds) {
  const auto reps = run_replications(small_scenario(), 3);
  ASSERT_EQ(reps.size(), 3u);
  // Different seeds -> different workloads -> (almost surely) different
  // means; and replication 0 must equal the single-run result.
  const auto single = run_scenario(small_scenario());
  EXPECT_DOUBLE_EQ(reps[0].overall.slowdown.mean(),
                   single.overall.slowdown.mean());
  EXPECT_NE(reps[0].overall.slowdown.mean(),
            reps[1].overall.slowdown.mean());
}

TEST(Runner, ParallelReplicationsMatchSerial) {
  ThreadPool pool{2};
  const auto serial = run_replications(small_scenario(), 3);
  const auto parallel = run_replications(small_scenario(), 3, &pool);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(parallel[i].overall.slowdown.mean(),
                     serial[i].overall.slowdown.mean());
}

TEST(Runner, MeanAndMaxExtractors) {
  const auto reps = run_replications(small_scenario(), 3);
  const double mean_slow = mean_of(reps, overall_slowdown);
  double expect = 0.0;
  for (const auto& m : reps) expect += m.overall.slowdown.mean();
  expect /= 3.0;
  EXPECT_DOUBLE_EQ(mean_slow, expect);

  const double worst = max_of(reps, worst_turnaround);
  for (const auto& m : reps)
    EXPECT_GE(worst, m.overall.turnaround.max());
  EXPECT_DOUBLE_EQ(mean_of({}, overall_slowdown), 0.0);
}

TEST(Runner, MaxOfEmptyAndAllNegative) {
  // Regression: max_of folded std::max from 0.0, so an empty set and a
  // set whose every value is negative both came back as a fake 0.0.
  EXPECT_DOUBLE_EQ(max_of({}, overall_slowdown), 0.0);

  const std::vector<metrics::Metrics> three(3);
  int calls = 0;
  const double got = max_of(three, [&calls](const metrics::Metrics&) {
    return static_cast<double>(-5 + calls++);  // -5, -4, -3
  });
  EXPECT_DOUBLE_EQ(got, -3.0);
}

TEST(Runner, CategoryExtractor) {
  const auto m = run_scenario(small_scenario());
  EXPECT_DOUBLE_EQ(
      category_slowdown(m, workload::Category::ShortNarrow),
      m.category(workload::Category::ShortNarrow).slowdown.mean());
}

}  // namespace
}  // namespace bfsim::exp
