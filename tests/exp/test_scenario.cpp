#include "exp/scenario.hpp"

#include <gtest/gtest.h>

#include "workload/transforms.hpp"

namespace bfsim::exp {
namespace {

TEST(Scenario, TraceKindNamesRoundTrip) {
  for (const auto kind :
       {TraceKind::Ctc, TraceKind::Sdsc, TraceKind::Lublin})
    EXPECT_EQ(trace_kind_from_string(to_string(kind)), kind);
  EXPECT_EQ(trace_kind_from_string("ctc"), TraceKind::Ctc);
  EXPECT_THROW((void)trace_kind_from_string("xyz"), std::invalid_argument);
}

TEST(Scenario, MachineSizesMatchPaper) {
  EXPECT_EQ(machine_procs(TraceKind::Ctc), 430);
  EXPECT_EQ(machine_procs(TraceKind::Sdsc), 128);
}

TEST(Scenario, EstimateSpecLabels) {
  EXPECT_EQ(EstimateSpec{}.label(), "exact");
  EXPECT_EQ((EstimateSpec{EstimateRegime::Systematic, 4.0}).label(), "R=4");
  EXPECT_EQ((EstimateSpec{EstimateRegime::Actual, 1.0}).label(), "actual");
}

TEST(Scenario, LabelMentionsEveryAxis) {
  Scenario s;
  s.trace = TraceKind::Sdsc;
  s.scheduler = core::SchedulerKind::Conservative;
  s.priority = core::PriorityPolicy::Sjf;
  s.seed = 9;
  const std::string label = s.label();
  for (const char* part : {"SDSC", "conservative", "sjf", "exact", "seed=9"})
    EXPECT_NE(label.find(part), std::string::npos) << part;
}

TEST(Scenario, BuildWorkloadIsSimulatorReady) {
  Scenario s;
  s.jobs = 500;
  s.seed = 3;
  const workload::Trace trace = build_workload(s);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, i);
    if (i > 0) {
      EXPECT_LE(trace[i - 1].submit, trace[i].submit);
    }
    EXPECT_GE(trace[i].runtime, 1);
    EXPECT_GE(trace[i].estimate, trace[i].runtime);
    EXPECT_LE(trace[i].procs, s.procs());
  }
}

TEST(Scenario, BuildWorkloadHitsTargetLoad) {
  Scenario s;
  s.jobs = 4000;
  s.load = kHighLoad;
  const workload::Trace trace = build_workload(s);
  EXPECT_NEAR(workload::offered_load(trace, s.procs()), kHighLoad, 0.03);
}

TEST(Scenario, SchedulerAxisDoesNotChangeWorkload) {
  Scenario a;
  a.jobs = 300;
  a.scheduler = core::SchedulerKind::Easy;
  a.priority = core::PriorityPolicy::Sjf;
  Scenario b = a;
  b.scheduler = core::SchedulerKind::Conservative;
  b.priority = core::PriorityPolicy::Fcfs;
  EXPECT_EQ(build_workload(a), build_workload(b));
}

TEST(Scenario, EstimateRegimePreservesJobShapes) {
  Scenario exact;
  exact.jobs = 300;
  Scenario actual = exact;
  actual.estimates.regime = EstimateRegime::Actual;
  const auto t1 = build_workload(exact);
  const auto t2 = build_workload(actual);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].submit, t2[i].submit);
    EXPECT_EQ(t1[i].runtime, t2[i].runtime);
    EXPECT_EQ(t1[i].procs, t2[i].procs);
    EXPECT_GE(t2[i].estimate, t2[i].runtime);
  }
}

TEST(Scenario, SystematicRegimeMultipliesEstimates) {
  Scenario s;
  s.jobs = 200;
  s.estimates = {EstimateRegime::Systematic, 4.0};
  const auto trace = build_workload(s);
  for (const auto& job : trace) EXPECT_EQ(job.estimate, 4 * job.runtime);
}

TEST(Scenario, SeedsProduceDifferentWorkloads) {
  Scenario a;
  a.jobs = 200;
  a.seed = 1;
  Scenario b = a;
  b.seed = 2;
  EXPECT_NE(build_workload(a), build_workload(b));
}

TEST(Scenario, BuildIsDeterministic) {
  Scenario s;
  s.jobs = 200;
  s.trace = TraceKind::Lublin;
  EXPECT_EQ(build_workload(s), build_workload(s));
}

TEST(Scenario, ZeroLoadSkipsNormalization) {
  Scenario s;
  s.jobs = 500;
  s.load = 0.0;
  EXPECT_NO_THROW((void)build_workload(s));
}

}  // namespace
}  // namespace bfsim::exp
