// exp::journal -- the crash-safe checkpoint layer under Sweep::run.
// The acceptance property is resume fidelity: kill a grid partway
// (simulated by a permanent fault), relaunch with the same journal, and
// the final report must be byte-identical to an uninterrupted run.
#include "exp/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "exp/fault.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "metrics/serialize.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace bfsim::exp {
namespace {

constexpr std::size_t kJobs = 120;

Scenario small_scenario(core::SchedulerKind kind, std::uint64_t seed) {
  Scenario s;
  s.trace = TraceKind::Sdsc;
  s.jobs = kJobs;
  s.load = kHighLoad;
  s.scheduler = kind;
  s.priority = core::PriorityPolicy::Fcfs;
  s.seed = seed;
  return s;
}

Sweep small_grid() {
  Sweep sweep;
  for (const auto kind :
       {core::SchedulerKind::Conservative, core::SchedulerKind::Easy,
        core::SchedulerKind::Fcfs})
    (void)sweep.add_replications(small_scenario(kind, 1), 2,
                                 core::to_string(kind));
  return sweep;
}

std::string report_bytes(const SweepReport& report) {
  std::string bytes = metrics::metrics_json(report.merged);
  for (const CellResult& cell : report.cells)
    bytes += "\n" + cell.tag + " " + metrics::metrics_json(cell.metrics);
  return bytes;
}

/// Fresh per-test journal path inside gtest's temp dir.
std::string journal_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "bfsim-journal-" + name;
  std::remove(path.c_str());
  return path;
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = util::log_level();
    util::set_log_level(util::LogLevel::Off);
    util::reset_log_limits();
  }
  void TearDown() override {
    util::set_log_level(saved_);
    util::reset_log_limits();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;

 private:
  util::LogLevel saved_ = util::LogLevel::Warn;
};

TEST_F(JournalTest, MissingFileReadsAsEmpty) {
  const JournalContents contents =
      read_journal(::testing::TempDir() + "bfsim-journal-never-written");
  EXPECT_TRUE(contents.cells.empty());
  EXPECT_FALSE(contents.truncated);
}

TEST_F(JournalTest, ForeignFileIsRejectedAsNotAJournal) {
  path_ = journal_path("foreign");
  std::ofstream{path_} << "definitely not a journal\n1 2 3\n";
  EXPECT_THROW((void)read_journal(path_), util::ParseError);
}

TEST_F(JournalTest, WriterRoundTripsNastyTagsAndValues) {
  path_ = journal_path("escaping");
  CellResult cell;
  cell.tag = "tab\there %weird%\r\nnewline";
  cell.label = "label with\ttab";
  cell.metrics = run_scenario(small_scenario(core::SchedulerKind::Easy, 1), {});
  cell.values = {1.5, -0.25, 3e-17};
  {
    JournalWriter writer{path_};
    writer.record(7, cell);
  }
  const JournalContents contents = read_journal(path_);
  EXPECT_FALSE(contents.truncated);
  ASSERT_EQ(contents.cells.size(), 1u);
  const CellResult& back = contents.cells.at(7);
  EXPECT_EQ(back.tag, cell.tag);
  EXPECT_EQ(back.label, cell.label);
  EXPECT_EQ(back.values, cell.values);
  EXPECT_EQ(metrics::encode_metrics(back.metrics),
            metrics::encode_metrics(cell.metrics));
}

TEST_F(JournalTest, LaterDuplicateRecordsWin) {
  path_ = journal_path("duplicates");
  CellResult first;
  first.tag = "cell";
  first.values = {1.0};
  CellResult second = first;
  second.values = {2.0};
  {
    JournalWriter writer{path_};
    writer.record(0, first);
    writer.record(0, second);
  }
  const JournalContents contents = read_journal(path_);
  ASSERT_EQ(contents.cells.size(), 1u);
  EXPECT_EQ(contents.cells.at(0).values, std::vector<double>{2.0});
}

TEST_F(JournalTest, TornTailReadsAsTruncationNotCorruption) {
  path_ = journal_path("torn");
  CellResult cell;
  cell.tag = "cell";
  cell.metrics = run_scenario(small_scenario(core::SchedulerKind::Easy, 1), {});
  {
    JournalWriter writer{path_};
    writer.record(0, cell);
    writer.record(1, cell);
  }
  // A crash mid-write leaves one partial line: chop the file mid-record.
  std::string contents;
  {
    std::ifstream in{path_, std::ios::binary};
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  const std::size_t last_line = contents.rfind("\nC");
  ASSERT_NE(last_line, std::string::npos);
  {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out << contents.substr(0, last_line + 20);  // torn second record
  }
  const JournalContents read = read_journal(path_);
  EXPECT_TRUE(read.truncated);
  ASSERT_EQ(read.cells.size(), 1u);
  EXPECT_EQ(read.cells.count(0), 1u);
}

TEST_F(JournalTest, FullRunJournalReplaysEveryCellByteIdentically) {
  path_ = journal_path("full-replay");
  const Sweep sweep = small_grid();
  SweepOptions options;
  options.journal = path_;
  const SweepReport first = sweep.run(options);
  EXPECT_EQ(first.replayed, 0u);
  const SweepReport second = sweep.run(options);
  EXPECT_EQ(second.replayed, sweep.size());
  EXPECT_EQ(report_bytes(second), report_bytes(first));
  // And both match a journal-free run.
  EXPECT_EQ(report_bytes(sweep.run({})), report_bytes(first));
}

TEST_F(JournalTest, ResumeAfterACrashedRunIsByteIdenticalToAFreshOne) {
  path_ = journal_path("crash-resume");
  const Sweep sweep = small_grid();
  const std::string golden = report_bytes(sweep.run({}));

  // Run 1 "crashes": a permanent injected fault aborts the grid after
  // some cells already hit the journal.
  FaultPlan faults;
  faults.add("nobackfill/seed=1", {.fail_attempts = 100});
  SweepOptions crashed;
  crashed.threads = 3;
  crashed.chunk = 1;
  crashed.journal = path_;
  crashed.faults = &faults;
  EXPECT_THROW((void)sweep.run(crashed), SweepError);
  const JournalContents after_crash = read_journal(path_);
  EXPECT_GT(after_crash.cells.size(), 0u);
  EXPECT_LT(after_crash.cells.size(), sweep.size());
  // The failed cell was never journaled.
  for (const auto& [index, cell] : after_crash.cells)
    EXPECT_NE(cell.tag, "nobackfill/seed=1");

  // Run 2: the fault has healed; only the pending cells run live.
  SweepOptions resumed;
  resumed.threads = 3;
  resumed.chunk = 1;
  resumed.journal = path_;
  const SweepReport report = sweep.run(resumed);
  EXPECT_EQ(report.replayed, after_crash.cells.size());
  EXPECT_EQ(report_bytes(report), golden);
}

TEST_F(JournalTest, ResumeAfterATornTailRerunsTheTornCell) {
  path_ = journal_path("torn-resume");
  const Sweep sweep = small_grid();
  SweepOptions options;
  options.journal = path_;
  const std::string golden = report_bytes(sweep.run(options));
  // Tear the final record, as a kill -9 mid-append would.
  std::string contents;
  {
    std::ifstream in{path_, std::ios::binary};
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out{path_, std::ios::binary | std::ios::trunc};
    out << contents.substr(0, contents.size() - 10);
  }
  const SweepReport report = sweep.run(options);
  EXPECT_EQ(report.replayed, sweep.size() - 1);
  EXPECT_EQ(report_bytes(report), golden);
}

TEST_F(JournalTest, WrongJournalForTheGridIsRejected) {
  path_ = journal_path("wrong-grid");
  const Sweep big = small_grid();
  SweepOptions options;
  options.journal = path_;
  (void)big.run(options);

  // A different (smaller, differently tagged) grid must refuse to
  // resume from it rather than silently replaying foreign cells.
  Sweep other;
  (void)other.add(small_scenario(core::SchedulerKind::Easy, 1), "mine");
  EXPECT_THROW((void)other.run(options), std::invalid_argument);
}

TEST_F(JournalTest, JournaledValuesSurviveForCustomRunners) {
  path_ = journal_path("values");
  Sweep sweep;
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    (void)sweep.add(small_scenario(core::SchedulerKind::Easy, seed),
                    "v" + std::to_string(seed),
                    [](const Scenario& s, const core::SimulationOptions&,
                       CellResult& result) {
                      result.values = {static_cast<double>(s.seed) * 0.5};
                    });
  SweepOptions options;
  options.journal = path_;
  (void)sweep.run(options);
  const SweepReport replayed = sweep.run(options);
  EXPECT_EQ(replayed.replayed, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(replayed.cells[i].values.size(), 1u);
    EXPECT_EQ(replayed.cells[i].values[0],
              static_cast<double>(i + 1) * 0.5);
  }
}

}  // namespace
}  // namespace bfsim::exp
