// bfsim_lint fixture: violations seeded in *service* code. The scoped
// layout policy must treat src/svc/ as deterministic-zone -- a daemon
// that consults wall clocks or iterates hash order cannot replay its
// event log into bit-identical state -- and the raw-time check applies
// as everywhere. If the zone list ever regresses, this file's findings
// vanish and the test below fails.

#include <chrono>
#include <unordered_map>

using Time = long long;

std::unordered_map<unsigned, int> sessions_;

long long frame_timestamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 16
}

int drain_sessions() {
  int total = 0;
  for (const auto& [id, refs] : sessions_)  // line 21: flagged (hash order)
    total += refs;
  return total;
}

Time reply_deadline(Time now, Time patience) {
  return now + patience;  // line 27: flagged (raw Time arithmetic)
}
