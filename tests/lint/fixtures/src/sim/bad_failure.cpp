// bfsim_lint fixture: violations seeded in *failure-model* code. The
// scoped layout policy must treat src/sim/ as deterministic-zone -- a
// failure trace is data, never sampled during the run, so the model
// may not consult entropy sources or wall clocks -- and the raw-time
// check applies as everywhere (outage arithmetic must saturate). If
// the zone list ever regresses, this file's findings vanish and the
// test below fails.

#include <chrono>
#include <random>

using Time = long long;

unsigned draw_outage_seed() {
  std::random_device entropy;  // line 15: flagged (entropy source)
  return entropy();
}

Time stamp_outage() {
  const auto now = std::chrono::system_clock::now();  // line 20: flagged
  return now.time_since_epoch().count();
}

Time repair_deadline(Time down_at, Time duration) {
  return down_at + duration;  // line 25: flagged (raw Time arithmetic)
}
