// bfsim_lint fixture: SmallFn capture-hygiene violations. The engine
// stores these callbacks past the enclosing frame's lifetime, so
// by-reference and whole-object captures are dangling bugs in waiting.

template <typename Sig>
class SmallFn {};

void schedule_wakeup(long long when, SmallFn<void(long long)> callback);

struct Scheduler {
  int pending = 0;

  void arm(long long when) {
    schedule_wakeup(when, [&](long long) { ++pending; });  // 14: flagged [&]
    schedule_wakeup(when, [=](long long) {});              // 15: flagged [=]
    int budget = 3;
    schedule_wakeup(when,
                    [&budget](long long) { --budget; });  // 18: flagged &name
    schedule_wakeup(when, [*this](long long) {});         // 19: flagged *this
    schedule_wakeup(when, [this](long long) { ++pending; });  // NOT flagged
    schedule_wakeup(when, [budget](long long) {});            // NOT flagged
  }
};
