// bfsim_lint fixture: escape-hatch grammar. A justified hatch
// suppresses; an unjustified one is itself a finding; a typoed tag is
// a finding even with a justification.

using Time = long long;

Time justified(Time start, Time len) {
  // bfsim-lint: unchecked-time -- fixture: operands proven small above
  return start + len;  // suppressed
}

Time unjustified(Time start, Time len) {
  return start + len;  // bfsim-lint: unchecked-time
}

Time typoed(Time start, Time len) {
  // bfsim-lint: unchekced-time -- justification cannot save a bad tag
  return start + len;
}
