// bfsim_lint fixture: raw Time arithmetic the checker must flag.
//
// The JobRecord block replicates the auditor occupancy-rebuild bug the
// overflow sweep fixed (a raw `start + estimate` on hostile operands):
// if a future refactor reverts that site to `+`, this fixture is the
// proof the linter would have caught it.

using Time = long long;

struct JobRecord {
  Time start = 0;
  Time estimate = 0;
  bool running = false;
  int procs = 1;
};

Time saturating_add(Time lhs, Time rhs);

Time occupancy_end(const JobRecord& rec) {
  return rec.start + rec.estimate;  // line 20: flagged
}

Time deadline(Time now, Time delay) {
  Time due = now;
  due += delay;  // line 25: flagged (compound)
  return due;
}

Time wait(Time start, Time submit) {
  return start - submit;  // line 30: flagged (difference)
}
