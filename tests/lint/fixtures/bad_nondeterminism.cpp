// bfsim_lint fixture: nondeterminism sources the checker must flag --
// libc entropy, wall clocks, and hash-order iteration.

#include <chrono>
#include <cstdlib>
#include <random>
#include <unordered_map>

std::unordered_map<int, int> jobs_;

int draw() {
  return rand();  // line 12: flagged (libc global state)
}

void seed_it() {
  srand(42);  // line 16: flagged
}

unsigned entropy() {
  std::random_device device;  // line 20: flagged
  return device();
}

long long stamp() {
  return time(nullptr);  // line 25: flagged (wall clock)
}

long long wall() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // 29
}

int sum_jobs() {
  int total = 0;
  for (const auto& [id, value] : jobs_)  // line 34: flagged (hash order)
    total += value;
  return total;
}

bool has_job(int id) {
  const auto it = jobs_.find(id);
  return it != jobs_.end();  // NOT flagged: lookup, not iteration
}

int first_value() {
  return jobs_.begin()->second;  // line 45: flagged (explicit begin)
}
