// bfsim_lint fixture: contract-conforming code the checker must pass
// with zero findings -- saturating arithmetic, seeded randomness,
// ordered iteration, and value captures.

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

using Time = long long;

Time saturating_add(Time lhs, Time rhs);
Time saturating_sub(Time lhs, Time rhs);

struct JobRecord {
  Time start = 0;
  Time estimate = 0;
};

std::unordered_map<int, JobRecord> jobs_;

Time occupancy_end(const JobRecord& rec) {
  return saturating_add(rec.start, rec.estimate);
}

Time wait(Time start, Time submit) { return saturating_sub(start, submit); }

// A sorted view over the hash map: key collection is order-erased.
std::vector<int> sorted_ids() {
  std::vector<int> ids;
  // bfsim-lint: nondeterminism -- key collection for a sorted view
  for (const auto& [id, rec] : jobs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool has_job(int id) { return jobs_.find(id) != jobs_.end(); }

// Non-Time arithmetic stays untouched: string building, doubles, ints.
int plain_math(int a, int b) { return a + b - 2; }
