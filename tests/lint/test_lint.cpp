// bfsim_lint self-tests: drive the checker over seeded fixture files
// and assert each planted violation is flagged (at the right line, with
// the right check) and that clean / properly-hatched code is not. This
// is the linter's own regression wall -- a checker that silently stops
// seeing a violation class is worse than no checker, because the
// contract looks enforced.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bfsim_lint/driver.hpp"

namespace bfsim::lint {
namespace {

std::vector<Finding> lint_fixture(const std::string& name) {
  DriverOptions options;
  options.root = BFSIM_LINT_FIXTURE_DIR;
  options.files = {std::string{BFSIM_LINT_FIXTURE_DIR} + "/" + name};
  options.scope = ScopePolicy::kAll;
  Driver driver{std::move(options)};
  return driver.run();
}

bool has(const std::vector<Finding>& findings, Check check, int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.check == check && f.line == line;
                     });
}

std::string dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += f.to_string() + "\n";
  return out;
}

TEST(BfsimLint, FlagsRawTimeArithmetic) {
  const auto findings = lint_fixture("bad_raw_time.cpp");
  // The auditor occupancy-rebuild replica: `rec.start + rec.estimate`.
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 20))
      << dump(findings);
  // Compound assignment on a Time local.
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 25))
      << dump(findings);
  // Raw difference (the wait-time shape).
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 30))
      << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

TEST(BfsimLint, FlagsNondeterminismSources) {
  const auto findings = lint_fixture("bad_nondeterminism.cpp");
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 12)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 16)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 20)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 25)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 29)) << dump(findings);
  // Hash-order iteration: range-for and explicit begin().
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 34)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 45)) << dump(findings);
  // `it != jobs_.end()` is a lookup, not iteration: line 41 must not
  // appear.
  EXPECT_FALSE(has(findings, Check::kNondeterminism, 41)) << dump(findings);
  EXPECT_EQ(findings.size(), 7u) << dump(findings);
}

TEST(BfsimLint, FlagsSmallFnCaptureViolations) {
  const auto findings = lint_fixture("bad_smallfn.cpp");
  EXPECT_TRUE(has(findings, Check::kSmallFnCapture, 14)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kSmallFnCapture, 15)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kSmallFnCapture, 18)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kSmallFnCapture, 19)) << dump(findings);
  // `[this]` and `[budget]` (lines 20-21) are the blessed forms.
  EXPECT_EQ(findings.size(), 4u) << dump(findings);
}

TEST(BfsimLint, PassesCleanCode) {
  const auto findings = lint_fixture("clean.cpp");
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(BfsimLint, EscapeHatchGrammar) {
  const auto findings = lint_fixture("hatches.cpp");
  // Justified hatch (line 9) suppresses entirely.
  EXPECT_FALSE(has(findings, Check::kRawTimeArithmetic, 9)) << dump(findings);
  // Unjustified hatch: the finding mutates into "write a justification".
  ASSERT_TRUE(has(findings, Check::kRawTimeArithmetic, 13)) << dump(findings);
  const auto unjustified =
      std::find_if(findings.begin(), findings.end(),
                   [](const Finding& f) { return f.line == 13; });
  EXPECT_NE(unjustified->message.find("lacks a justification"),
            std::string::npos)
      << unjustified->message;
  // A typoed tag is reported as unknown, and does not suppress the raw
  // finding beneath it.
  const bool unknown_tag = std::any_of(
      findings.begin(), findings.end(), [](const Finding& f) {
        return f.message.find("unknown bfsim-lint escape-hatch tag") !=
               std::string::npos;
      });
  EXPECT_TRUE(unknown_tag) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 18)) << dump(findings);
}

TEST(BfsimLint, ScopePolicyDisablesNondeterminismOutsideCore) {
  // Under the production layout policy, a fixture path (not src/core,
  // src/sim or src/exp) gets the raw-time check but not the
  // nondeterminism check.
  DriverOptions options;
  options.root = BFSIM_LINT_FIXTURE_DIR;
  options.files = {std::string{BFSIM_LINT_FIXTURE_DIR} +
                   "/bad_nondeterminism.cpp"};
  options.scope = ScopePolicy::kAuto;
  Driver driver{std::move(options)};
  const auto findings = driver.run();
  EXPECT_TRUE(findings.empty()) << dump(findings);
}

TEST(BfsimLint, ScopePolicyCoversTheServiceZone) {
  // src/svc/ is deterministic-zone: a daemon that reads wall clocks or
  // iterates hash order cannot replay its event log into bit-identical
  // state. The same fixture outside src/ proved the check off above;
  // here the src/svc/ path turns it on, plus raw-time as everywhere.
  DriverOptions options;
  options.root = BFSIM_LINT_FIXTURE_DIR;
  options.files = {std::string{BFSIM_LINT_FIXTURE_DIR} +
                   "/src/svc/bad_service.cpp"};
  options.scope = ScopePolicy::kAuto;
  Driver driver{std::move(options)};
  const auto findings = driver.run();
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 16)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 21)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 27))
      << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

TEST(BfsimLint, ScopePolicyCoversTheFailureModel) {
  // src/sim/ is deterministic-zone and the availability layer lives
  // there (sim/failure.*): a failure trace is data, never sampled
  // during the run, so the model may not read entropy sources or wall
  // clocks, and outage arithmetic saturates like all Time math. The
  // seeded fixture pins the zone: if src/sim/ ever drops off the list,
  // its nondeterminism findings vanish and this test fails.
  DriverOptions options;
  options.root = BFSIM_LINT_FIXTURE_DIR;
  options.files = {std::string{BFSIM_LINT_FIXTURE_DIR} +
                   "/src/sim/bad_failure.cpp"};
  options.scope = ScopePolicy::kAuto;
  Driver driver{std::move(options)};
  const auto findings = driver.run();
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 15)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kNondeterminism, 20)) << dump(findings);
  EXPECT_TRUE(has(findings, Check::kRawTimeArithmetic, 25))
      << dump(findings);
  EXPECT_EQ(findings.size(), 3u) << dump(findings);
}

}  // namespace
}  // namespace bfsim::lint
