// The protocol state machine: handshake discipline, sequence-number
// handling (contiguity, retransmit dedup), whole-batch atomicity, and
// the per-reason quarantine counters. Everything here drives a bare
// Session -- no sockets, no threads -- because the session IS the
// daemon's semantics.
#include <gtest/gtest.h>

#include <string>

#include "svc/json.hpp"
#include "svc/session.hpp"

namespace bfsim::svc {
namespace {

std::string reply_type(const std::string& reply) {
  const Json parsed = parse_json(reply);
  const Json* type = parsed.find("type");
  return type != nullptr && type->is_string() ? type->as_string() : "";
}

std::string error_reason(const std::string& reply) {
  const Json parsed = parse_json(reply);
  if (reply_type(reply) != "error") return "";
  return parsed.find("reason")->as_string();
}

constexpr const char* kHello =
    R"({"type":"hello","v":3,"scheduler":"easy","procs":8})";

std::string submit_batch(std::uint64_t seq, core::Time now,
                         workload::JobId id, core::Time estimate, int procs) {
  return R"({"type":"events","seq":)" + std::to_string(seq) +
         R"(,"now":)" + std::to_string(now) +
         R"(,"events":[{"kind":"submit","id":)" + std::to_string(id) +
         R"(,"submit":)" + std::to_string(now) + R"(,"estimate":)" +
         std::to_string(estimate) + R"(,"procs":)" + std::to_string(procs) +
         "}]}";
}

TEST(Session, HandshakeThenDecisions) {
  Session session;
  const std::string welcome = session.handle_line(kHello);
  EXPECT_EQ(reply_type(welcome), "welcome");
  const Json parsed = parse_json(welcome);
  EXPECT_EQ(parsed.find("scheduler")->as_string(), "easy-fcfs");
  EXPECT_EQ(parsed.find("resumed_seq")->as_int(), 0);

  const std::string decisions =
      session.handle_line(submit_batch(1, 0, 0, 100, 4));
  EXPECT_EQ(reply_type(decisions), "decisions");
  const Json decision = parse_json(decisions);
  ASSERT_EQ(decision.find("starts")->as_array().size(), 1u);
  EXPECT_EQ(decision.find("starts")->as_array()[0].as_int(), 0);
  EXPECT_TRUE(decision.find("pass")->as_bool());
  EXPECT_EQ(session.last_seq(), 1u);
}

TEST(Session, EventsBeforeHelloAreRejected) {
  Session session;
  EXPECT_EQ(error_reason(session.handle_line(submit_batch(1, 0, 0, 10, 1))),
            "no-hello");
  EXPECT_EQ(error_reason(session.handle_line(R"({"type":"stats"})")),
            "no-hello");
  // report works pre-handshake: it is how a client inspects rejects.
  EXPECT_EQ(reply_type(session.handle_line(R"({"type":"report"})")),
            "report");
}

TEST(Session, RepeatedHelloIsIdempotentForTheSameConfig) {
  Session session;
  EXPECT_EQ(reply_type(session.handle_line(kHello)), "welcome");
  (void)session.handle_line(submit_batch(1, 0, 0, 100, 4));
  // Reconnect: same config re-handshakes into the live session and
  // learns the resume point.
  const std::string again = session.handle_line(kHello);
  EXPECT_EQ(reply_type(again), "welcome");
  EXPECT_EQ(parse_json(again).find("resumed_seq")->as_int(), 1);
  // A different config is a different session: refused.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"hello","v":3,"scheduler":"fcfs","procs":8})")),
            "hello-mismatch");
}

TEST(Session, BurstBufferCapacityIsPartOfTheSessionIdentity) {
  // Reconnecting with a different buffer capacity is a different
  // machine: refused, exactly like a procs mismatch.
  Session session;
  (void)session.handle_line(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
      R"("burst_buffer":100})");
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
                R"("burst_buffer":200})")),
            "hello-mismatch");
}

TEST(Session, OverCapacityBurstBufferDemandsAreBadEvents) {
  Session session;
  (void)session.handle_line(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
      R"("burst_buffer":100})");
  // Fits both axes: accepted.
  EXPECT_EQ(reply_type(session.handle_line(
                R"({"type":"events","seq":1,"now":0,"events":[)"
                R"({"kind":"submit","id":0,"submit":0,"estimate":10,)"
                R"("procs":4,"bb":100}]})")),
            "decisions");
  // Demands more buffer than the machine owns: quarantined, atomic.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":2,"now":1,"events":[)"
                R"({"kind":"submit","id":1,"submit":1,"estimate":10,)"
                R"("procs":4,"bb":101}]})")),
            "bad-event");
  EXPECT_EQ(session.last_seq(), 1u);
}

TEST(Session, AnyBufferDemandIsBadOnABufferlessMachine) {
  Session session;
  (void)session.handle_line(kHello);  // no burst_buffer: capacity 0
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":1,"now":0,"events":[)"
                R"({"kind":"submit","id":0,"submit":0,"estimate":10,)"
                R"("procs":4,"bb":1}]})")),
            "bad-event");
}

TEST(Session, SequenceNumbersMustBeContiguous) {
  Session session;
  (void)session.handle_line(kHello);
  (void)session.handle_line(submit_batch(1, 0, 0, 100, 4));
  EXPECT_EQ(error_reason(session.handle_line(submit_batch(3, 5, 1, 100, 1))),
            "bad-seq");
  EXPECT_EQ(session.last_seq(), 1u);
}

TEST(Session, RetransmitReplaysTheCachedReplyWithoutReapplying) {
  Session session;
  (void)session.handle_line(kHello);
  const std::string frame = submit_batch(1, 0, 0, 100, 4);
  const std::string first = session.handle_line(frame);
  const std::string second = session.handle_line(frame);
  EXPECT_EQ(first, second);
  // The duplicate was NOT applied: the core saw exactly one submit.
  ASSERT_NE(session.decision_core(), nullptr);
  EXPECT_EQ(session.decision_core()->stats().events, 1u);
}

TEST(Session, TimeMustNotRunBackwards) {
  Session session;
  (void)session.handle_line(kHello);
  (void)session.handle_line(submit_batch(1, 100, 0, 50, 1));
  EXPECT_EQ(error_reason(session.handle_line(submit_batch(2, 99, 1, 50, 1))),
            "time-regression");
  // Equal timestamps are fine (two frames can close the same instant).
  EXPECT_EQ(reply_type(session.handle_line(submit_batch(2, 100, 1, 50, 1))),
            "decisions");
}

TEST(Session, EventsWithinABatchMustBeOrdered) {
  Session session;
  (void)session.handle_line(kHello);
  const std::string out_of_order =
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":10,"procs":1},)"
      R"({"kind":"finish","id":0}]})";
  EXPECT_EQ(error_reason(session.handle_line(out_of_order)), "out-of-order");
}

TEST(Session, RejectedBatchesAreAtomic) {
  Session session;
  (void)session.handle_line(kHello);
  // Second event is hostile (submit wider than the machine); the first
  // event must NOT have been applied.
  const std::string poison =
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":10,"procs":1},)"
      R"({"kind":"submit","id":1,"submit":0,"estimate":10,"procs":999}]})";
  EXPECT_EQ(error_reason(session.handle_line(poison)), "bad-event");
  EXPECT_EQ(session.last_seq(), 0u);
  EXPECT_EQ(session.decision_core()->stats().events, 0u);
  // The repaired batch reuses the same seq and succeeds; job 0 is not
  // a duplicate because the poisoned frame never touched the core.
  const std::string repaired =
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":10,"procs":1},)"
      R"({"kind":"submit","id":1,"submit":0,"estimate":10,"procs":8}]})";
  EXPECT_EQ(reply_type(session.handle_line(repaired)), "decisions");
  EXPECT_EQ(session.decision_core()->stats().events, 2u);
}

TEST(Session, LifecycleViolationsAreCaughtBeforeApplication) {
  Session session;
  (void)session.handle_line(kHello);
  (void)session.handle_line(submit_batch(1, 0, 0, 100, 4));  // job 0 starts
  // Finish of a job that is not running.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":2,"now":1,)"
                R"("events":[{"kind":"finish","id":7}]})")),
            "bad-event");
  // Cancel of a job never submitted.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":2,"now":1,)"
                R"("events":[{"kind":"cancel","id":7}]})")),
            "bad-event");
  // Duplicate submit.
  EXPECT_EQ(error_reason(session.handle_line(submit_batch(2, 1, 0, 10, 1))),
            "bad-event");
  // Submit whose embedded time disagrees with the batch instant.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":2,"now":5,"events":[)"
                R"({"kind":"submit","id":1,"submit":4,"estimate":10,)"
                R"("procs":1}]})")),
            "bad-event");
  // Absurd job id (phase-table allocation attack).
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"events","seq":2,"now":5,"events":[)"
                R"({"kind":"submit","id":999999999,"submit":5,)"
                R"("estimate":10,"procs":1}]})")),
            "bad-event");
  // The session survives it all and still serves.
  const std::string finish =
      R"({"type":"events","seq":2,"now":100,)"
      R"("events":[{"kind":"finish","id":0}]})";
  EXPECT_EQ(reply_type(session.handle_line(finish)), "decisions");
}

TEST(Session, QuarantineCountersMirrorEveryRejection) {
  Session session;
  (void)session.handle_line("garbage");
  (void)session.handle_line("garbage");
  (void)session.handle_line(R"({"type":"events","seq":1,"now":0,)"
                            R"("events":[]})");  // no-hello
  (void)session.handle_line(kHello);
  (void)session.handle_line(submit_batch(5, 0, 0, 10, 1));  // bad-seq
  const ProtocolReport& report = session.report();
  EXPECT_EQ(report.frames, 5u);
  EXPECT_EQ(report.rejected, 4u);
  EXPECT_EQ(report.reasons.at("bad-json"), 2u);
  EXPECT_EQ(report.reasons.at("no-hello"), 1u);
  EXPECT_EQ(report.reasons.at("bad-seq"), 1u);
  const std::string reply = session.handle_line(R"({"type":"report"})");
  EXPECT_EQ(parse_json(reply).find("rejected")->as_int(), 4);
  EXPECT_EQ(parse_json(reply)
                .find("reasons")
                ->find("bad-json")
                ->as_int(),
            2);
}

TEST(Session, StatsReflectTheCore) {
  Session session;
  (void)session.handle_line(kHello);
  (void)session.handle_line(submit_batch(1, 0, 0, 100, 4));
  (void)session.handle_line(submit_batch(2, 10, 1, 100, 8));  // must wait
  const std::string reply = session.handle_line(R"({"type":"stats"})");
  const Json stats = parse_json(reply);
  EXPECT_EQ(stats.find("events")->as_int(), 2);
  EXPECT_EQ(stats.find("queued")->as_int(), 1);
  EXPECT_EQ(stats.find("running")->as_int(), 1);
  EXPECT_EQ(stats.find("max_queue")->as_int(), 1);
}

TEST(Session, ByeClosesTheSession) {
  Session session;
  (void)session.handle_line(kHello);
  EXPECT_FALSE(session.closed());
  EXPECT_EQ(reply_type(session.handle_line(R"({"type":"bye"})")), "bye");
  EXPECT_TRUE(session.closed());
  EXPECT_EQ(error_reason(session.handle_line(submit_batch(1, 0, 0, 10, 1))),
            "closed");
}

TEST(Session, WakeFramesDriveReservationsAtEventlessInstants) {
  // Conservative + a blocked queue: the decision carries next_wakeup;
  // honouring it with a wake frame at that instant starts the waiter.
  Session session;
  (void)session.handle_line(
      R"({"type":"hello","v":3,"scheduler":"conservative","procs":4})");
  (void)session.handle_line(submit_batch(1, 0, 0, 100, 4));  // occupies all
  const std::string blocked = session.handle_line(submit_batch(2, 1, 1, 50, 4));
  const Json decision = parse_json(blocked);
  ASSERT_EQ(reply_type(blocked), "decisions");
  EXPECT_EQ(decision.find("starts")->as_array().size(), 0u);
  ASSERT_TRUE(decision.find("next_wakeup")->is_int());
  const core::Time wake_at = decision.find("next_wakeup")->as_int();
  EXPECT_EQ(wake_at, 100);  // job 0's estimate expires
  // The client reports the finish at the same instant; the reservation
  // fires within that batch.
  const std::string at_wake = session.handle_line(
      R"({"type":"events","seq":3,"now":100,)"
      R"("events":[{"kind":"finish","id":0},{"kind":"wake"}]})");
  const Json fired = parse_json(at_wake);
  ASSERT_EQ(fired.find("starts")->as_array().size(), 1u);
  EXPECT_EQ(fired.find("starts")->as_array()[0].as_int(), 1);
}

}  // namespace
}  // namespace bfsim::svc
