// The wire protocol: frame parsing (happy path and every rejection
// slug), reply builders' exact bytes, and the client-side decision
// parser. Reason slugs are pinned by string -- they are the quarantine
// counters' keys and part of the protocol surface.
#include <gtest/gtest.h>

#include <string>

#include "svc/protocol.hpp"

namespace bfsim::svc {
namespace {

std::string reason_of(const std::string& line) {
  try {
    (void)parse_request(line);
    return "";
  } catch (const ProtocolError& error) {
    return error.reason();
  }
}

TEST(Protocol, ParsesHelloWithDefaults) {
  const Request request = parse_request(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":128})");
  ASSERT_EQ(request.type, Request::Type::kHello);
  EXPECT_EQ(request.hello.kind, core::SchedulerKind::Easy);
  EXPECT_EQ(request.hello.config.procs, 128);
  EXPECT_EQ(request.hello.config.priority, core::PriorityPolicy::Fcfs);
  EXPECT_FALSE(request.hello.audit);
  EXPECT_EQ(request.hello.extras.reservation_depth, 4);
}

TEST(Protocol, ParsesHelloWithEveryKnob) {
  const Request request = parse_request(
      R"({"type":"hello","v":3,"scheduler":"kres","procs":430,)"
      R"("priority":"xfactor","audit":true,"reservation_depth":8,)"
      R"("xfactor_threshold":3.5,"selective_adaptive":true,)"
      R"("slack_factor":1.5})");
  EXPECT_EQ(request.hello.kind, core::SchedulerKind::KReservation);
  EXPECT_EQ(request.hello.config.procs, 430);
  EXPECT_EQ(request.hello.config.priority, core::PriorityPolicy::XFactor);
  EXPECT_TRUE(request.hello.audit);
  EXPECT_EQ(request.hello.extras.reservation_depth, 8);
  EXPECT_DOUBLE_EQ(request.hello.extras.xfactor_threshold, 3.5);
  EXPECT_TRUE(request.hello.extras.selective_adaptive);
  EXPECT_DOUBLE_EQ(request.hello.extras.slack_factor, 1.5);
}

TEST(Protocol, ParsesEventBatch) {
  const Request request = parse_request(
      R"({"type":"events","seq":3,"now":100,"events":[)"
      R"({"kind":"finish","id":1},)"
      R"({"kind":"submit","id":2,"submit":100,"estimate":60,"procs":4},)"
      R"({"kind":"cancel","id":0},)"
      R"({"kind":"wake"}]})");
  ASSERT_EQ(request.type, Request::Type::kEvents);
  EXPECT_EQ(request.batch.seq, 3u);
  EXPECT_EQ(request.batch.now, 100);
  ASSERT_EQ(request.batch.events.size(), 4u);
  EXPECT_EQ(request.batch.events[0].kind, EventKind::kFinish);
  EXPECT_EQ(request.batch.events[0].id, 1u);
  const Event& submit = request.batch.events[1];
  EXPECT_EQ(submit.kind, EventKind::kSubmit);
  EXPECT_EQ(submit.job.id, 2u);
  EXPECT_EQ(submit.job.submit, 100);
  EXPECT_EQ(submit.job.estimate, 60);
  // The true runtime never crosses the wire: the parsed job carries
  // the estimate in its place.
  EXPECT_EQ(submit.job.runtime, 60);
  EXPECT_EQ(submit.job.procs, 4);
  EXPECT_EQ(request.batch.events[3].kind, EventKind::kWake);
}

TEST(Protocol, RejectionSlugs) {
  // slug <- frame
  EXPECT_EQ(reason_of("not json at all"), "bad-json");
  EXPECT_EQ(reason_of("[1,2,3]"), "not-object");
  EXPECT_EQ(reason_of(R"({"no":"type"})"), "missing-field");
  EXPECT_EQ(reason_of(R"({"type":"teapot"})"), "unknown-type");
  EXPECT_EQ(reason_of(R"({"type":42})"), "bad-type");
  EXPECT_EQ(reason_of(R"({"type":"hello","v":1,"scheduler":"easy","procs":4})"),
            "bad-version");
  EXPECT_EQ(
      reason_of(R"({"type":"hello","v":3,"scheduler":"magic","procs":4})"),
      "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"hello","v":3,"scheduler":"easy","procs":0})"),
            "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"events","seq":0,"now":1,"events":[]})"),
            "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"events","seq":1,"now":-5,"events":[]})"),
            "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"events","seq":1,"now":1,"events":{}})"),
            "bad-type");
  EXPECT_EQ(reason_of(
                R"({"type":"events","seq":1,"now":1,"events":[{"kind":"?"}]})"),
            "bad-value");
  EXPECT_EQ(
      reason_of(R"({"type":"events","seq":1.5,"now":1,"events":[]})"),
      "bad-type");
  // A frame over the byte cap is rejected before parsing.
  std::string huge = R"({"type":"events","seq":1,"now":1,"pad":")";
  huge += std::string(kMaxFrameBytes, 'x');
  huge += R"(","events":[]})";
  EXPECT_EQ(reason_of(huge), "oversized-frame");
}

TEST(Protocol, TimesBeyondTheHostilityBoundAreRejected) {
  // Mirrors the SWF reader's max_time cap: a reservation in year 30000
  // poisons every profile it touches even with saturating arithmetic.
  EXPECT_EQ(
      reason_of(
          R"({"type":"events","seq":1,"now":999999999999,"events":[]})"),
      "bad-value");
}

TEST(Protocol, ParsesBurstBufferFields) {
  // v2 extension: hello carries the machine's buffer capacity, submit
  // events carry the per-job demand. Both default to zero when absent.
  const Request hello = parse_request(
      R"({"type":"hello","v":3,"scheduler":"plan","procs":128,)"
      R"("burst_buffer":1024})");
  EXPECT_EQ(hello.hello.kind, core::SchedulerKind::Plan);
  EXPECT_EQ(hello.hello.config.burst_buffer, 1024);
  const Request events = parse_request(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":10,"procs":2,)"
      R"("bb":64}]})");
  ASSERT_EQ(events.batch.events.size(), 1u);
  EXPECT_EQ(events.batch.events[0].job.bb, 64);
}

TEST(Protocol, BurstBufferDefaultsToZeroWhenAbsent) {
  const Request hello = parse_request(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":128})");
  EXPECT_EQ(hello.hello.config.burst_buffer, 0);
  const Request events = parse_request(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":10,"procs":2}]})");
  EXPECT_EQ(events.batch.events[0].job.bb, 0);
}

TEST(Protocol, HostileBurstBufferFieldsAreRejected) {
  EXPECT_EQ(reason_of(R"({"type":"hello","v":3,"scheduler":"easy",)"
                      R"("procs":4,"burst_buffer":-1})"),
            "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"hello","v":3,"scheduler":"easy",)"
                      R"("procs":4,"burst_buffer":4294967296})"),
            "bad-value");  // > INT_MAX: would truncate
  EXPECT_EQ(reason_of(R"({"type":"hello","v":3,"scheduler":"easy",)"
                      R"("procs":4,"burst_buffer":"lots"})"),
            "bad-type");
  EXPECT_EQ(reason_of(R"({"type":"events","seq":1,"now":0,"events":[)"
                      R"({"kind":"submit","id":0,"submit":0,"estimate":1,)"
                      R"("procs":1,"bb":-64}]})"),
            "bad-value");
  EXPECT_EQ(reason_of(R"({"type":"events","seq":1,"now":0,"events":[)"
                      R"({"kind":"submit","id":0,"submit":0,"estimate":1,)"
                      R"("procs":1,"bb":1.5}]})"),
            "bad-type");
}

TEST(Protocol, ReplyBuildersAreByteStable) {
  EXPECT_EQ(welcome_reply("easy-fcfs", 7),
            R"({"type":"welcome","v":3,"scheduler":"easy-fcfs",)"
            R"("resumed_seq":7})");
  core::CycleDecision decision;
  std::vector<workload::JobId> ids{4, 9};
  decision.starts = ids;
  decision.next_wakeup = 500;
  decision.pass_ran = true;
  EXPECT_EQ(decision_reply(3, 100, decision),
            R"({"type":"decisions","seq":3,"now":100,"pass":true,)"
            R"("starts":[4,9],"next_wakeup":500})");
  decision.next_wakeup = sim::kNoTime;
  EXPECT_EQ(decision_reply(3, 100, decision),
            R"({"type":"decisions","seq":3,"now":100,"pass":true,)"
            R"("starts":[4,9],"next_wakeup":null})");
  ProtocolReport report;
  report.frames = 5;
  report.count_rejected("bad-json");
  report.count_rejected("bad-json");
  report.count_rejected("bad-seq");
  EXPECT_EQ(report_reply(report),
            R"({"type":"report","frames":5,"rejected":3,)"
            R"("reasons":{"bad-json":2,"bad-seq":1}})");
  EXPECT_EQ(error_reply("bad-seq", "detail here"),
            R"({"type":"error","reason":"bad-seq","detail":"detail here"})");
  EXPECT_EQ(bye_reply(), R"({"type":"bye"})");
}

TEST(Protocol, DecisionReplyRoundTrips) {
  core::CycleDecision sent;
  std::vector<workload::JobId> ids{1, 2, 3};
  sent.starts = ids;
  sent.next_wakeup = 777;
  sent.pass_ran = true;
  std::vector<workload::JobId> killed_ids{7};
  sent.killed = killed_ids;
  std::vector<workload::JobId> storage;
  std::vector<workload::JobId> kill_storage;
  const core::CycleDecision got = parse_decision_reply(
      decision_reply(9, 123, sent), 9, storage, kill_storage);
  EXPECT_TRUE(got.pass_ran);
  EXPECT_EQ(got.next_wakeup, 777);
  ASSERT_EQ(got.starts.size(), 3u);
  EXPECT_EQ(got.starts[1], 2u);
  ASSERT_EQ(got.killed.size(), 1u);
  EXPECT_EQ(got.killed[0], 7u);
}

TEST(Protocol, DecisionReplyRejectsSeqMismatchAndErrors) {
  std::vector<workload::JobId> storage;
  std::vector<workload::JobId> kill_storage;
  core::CycleDecision decision;
  const std::string line = decision_reply(4, 10, decision);
  EXPECT_THROW((void)parse_decision_reply(line, 5, storage, kill_storage),
               ProtocolError);
  try {
    (void)parse_decision_reply(error_reply("bad-seq", "boom"), 1, storage,
                               kill_storage);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.reason(), "server-error");
  }
}

}  // namespace
}  // namespace bfsim::svc
