// The served differential wall: a trace replayed through the service
// stack (RemoteDecisionCore -> JSON frames -> Session -> DecisionCore)
// must produce byte-identical schedules to run_simulation for every
// scheduler x priority policy x estimate regime x cancellation mix.
// LocalChannel short-circuits the socket but keeps every byte of the
// protocol, so this is the daemon's semantics minus the kernel.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/rng.hpp"
#include "svc/client.hpp"
#include "svc/session.hpp"
#include "workload/transforms.hpp"

namespace bfsim::svc {
namespace {

using core::PriorityPolicy;
using core::SchedulerKind;
using core::SimulationResult;

constexpr std::size_t kJobs = 200;

const SchedulerKind kAllKinds[] = {
    SchedulerKind::Fcfs,         SchedulerKind::Easy,
    SchedulerKind::Conservative, SchedulerKind::KReservation,
    SchedulerKind::Selective,    SchedulerKind::Slack,
    SchedulerKind::Plan,
};

workload::Trace build_trace(double factor, double cancel_fraction,
                            double load, std::uint64_t seed) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = kJobs;
  scenario.load = load;
  scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                        .factor = factor};
  scenario.seed = seed;
  workload::Trace trace = exp::build_workload(scenario);
  if (cancel_fraction > 0.0) {
    sim::Rng rng{seed * 977 + 13};
    workload::apply_cancellations(trace, cancel_fraction, /*patience=*/2.0,
                                  rng);
  }
  return trace;
}

/// Byte-level equality on every field both fronts report.
void expect_identical(const SimulationResult& served,
                      const SimulationResult& local) {
  ASSERT_EQ(served.outcomes.size(), local.outcomes.size());
  for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(served.outcomes[i].start, local.outcomes[i].start);
    EXPECT_EQ(served.outcomes[i].end, local.outcomes[i].end);
    EXPECT_EQ(served.outcomes[i].killed, local.outcomes[i].killed);
    EXPECT_EQ(served.outcomes[i].cancelled, local.outcomes[i].cancelled);
  }
  EXPECT_EQ(served.makespan, local.makespan);
  EXPECT_EQ(served.events, local.events);
  EXPECT_EQ(served.passes, local.passes);
  EXPECT_EQ(served.passes_skipped, local.passes_skipped);
  EXPECT_EQ(served.wakeups, local.wakeups);
  EXPECT_EQ(served.max_queue, local.max_queue);
  EXPECT_EQ(served.scheduler_name, local.scheduler_name);
}

SimulationResult run_served(const workload::Trace& trace,
                            const HelloRequest& hello) {
  Session session;
  LocalChannel channel{session};
  const SimulationResult result = served_run(trace, channel, hello);
  // A clean replay quarantines nothing.
  EXPECT_EQ(session.report().rejected, 0u);
  EXPECT_TRUE(session.closed());
  return result;
}

TEST(ServedDifferential, MatchesTheInProcessEngineAcrossTheGrid) {
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  for (const double factor : {1.0, 4.0}) {
    for (const double cancel : {0.0, 0.15}) {
      SCOPED_TRACE("R=" + std::to_string(factor) +
                   " cancel=" + std::to_string(cancel));
      const workload::Trace trace =
          build_trace(factor, cancel, exp::kHighLoad, 1);
      for (const SchedulerKind kind : kAllKinds) {
        for (const PriorityPolicy priority : core::kPaperPolicies) {
          SCOPED_TRACE(to_string(kind) + "-" + to_string(priority));
          HelloRequest hello;
          hello.kind = kind;
          hello.config = core::SchedulerConfig{procs, priority};
          const SimulationResult served = run_served(trace, hello);
          const SimulationResult local = core::run_simulation(
              trace, kind, hello.config, hello.extras, {.validate = true});
          expect_identical(served, local);
        }
      }
    }
  }
}

TEST(ServedDifferential, AuditedSessionStaysIdenticalAndGreen) {
  // The daemon-side auditor observes every event through the seam; it
  // must stay silent (no throw) and change nothing about the schedule.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(2.0, 0.1, exp::kHighLoad, 3);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::XFactor};
    hello.audit = true;
    const SimulationResult served = run_served(trace, hello);
    const SimulationResult local = core::run_simulation(
        trace, kind, hello.config, hello.extras,
        {.validate = true, .audit = true});
    expect_identical(served, local);
  }
}

TEST(ServedDifferential, LowLoadFastPathsSurviveTheWire) {
  // Quarter load: most submits hit the O(1) empty-and-fits start path
  // and the skip hooks; next_wakeup round-trips as JSON null almost
  // every batch. The wire must be invisible.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(4.0, 0.0, 0.25, 5);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::Sjf};
    const SimulationResult served = run_served(trace, hello);
    const SimulationResult local = core::run_simulation(
        trace, kind, hello.config, hello.extras, {.validate = true});
    expect_identical(served, local);
  }
}

TEST(ServedDifferential, BurstBufferDemandsCrossTheWire) {
  // v2 fields: the machine's capacity rides the hello frame, each
  // job's demand rides its submit event. The audited daemon must match
  // the in-process engine byte for byte with the second axis binding.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  workload::Trace trace = build_trace(2.0, 0.1, exp::kHighLoad, 9);
  sim::Rng rng{9 * 1031 + 7};
  for (workload::Job& job : trace)
    job.bb = static_cast<int>(rng.uniform_int(0, 512));
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::Fcfs,
                                         /*burst_buffer=*/512};
    hello.audit = true;
    const SimulationResult served = run_served(trace, hello);
    const SimulationResult local = core::run_simulation(
        trace, kind, hello.config, hello.extras,
        {.validate = true, .audit = true});
    expect_identical(served, local);
  }
}

TEST(ServedDifferential, NonDefaultExtrasCrossTheWire) {
  // Every extras knob rides the hello frame; a daemon configured with
  // depth-8 reservations or a custom slack factor must behave as the
  // in-process scheduler built from the same extras.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(2.0, 0.0, exp::kHighLoad, 7);
  core::SchedulerExtras extras;
  extras.reservation_depth = 8;
  extras.xfactor_threshold = 3.5;
  extras.selective_adaptive = true;
  extras.slack_factor = 1.5;
  for (const SchedulerKind kind :
       {SchedulerKind::KReservation, SchedulerKind::Selective,
        SchedulerKind::Slack}) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::Fcfs};
    hello.extras = extras;
    const SimulationResult served = run_served(trace, hello);
    const SimulationResult local = core::run_simulation(
        trace, kind, hello.config, extras, {.validate = true});
    expect_identical(served, local);
  }
}

}  // namespace
}  // namespace bfsim::svc
