// Hostile-input fuzz for the service: a session pelted with mutated,
// truncated and garbage frames interleaved into a legitimate replay
// must (a) never crash, (b) answer every hostile frame with a
// structured error, and (c) produce a schedule byte-identical to an
// undisturbed run -- quarantine means the garbage leaves no trace.
// Deterministic by construction: all randomness flows from sim::Rng
// seeds, per the project's reproducibility contract.
#include <gtest/gtest.h>

#include <string>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/rng.hpp"
#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/session.hpp"

namespace bfsim::svc {
namespace {

/// A channel that harasses its Session with hostile mutations of each
/// outbound frame before delivering the real one. Every mutation is
/// built to be *rejectable* (truncations, garbage, bad seq, unknown
/// type) so the legitimate conversation must come through untouched;
/// duplicates of the previous accepted frame check retransmit dedup.
class HostileChannel final : public LineChannel {
 public:
  HostileChannel(Session& session, std::uint64_t seed)
      : session_(&session), rng_(seed) {}

  [[nodiscard]] std::uint64_t hostile_frames() const { return hostile_; }

  [[nodiscard]] std::string roundtrip(const std::string& line) override {
    const int attacks = static_cast<int>(rng_.uniform_int(0, 2));
    for (int i = 0; i < attacks; ++i) attack(line);
    const std::string reply = session_->handle_line(line);
    if (reply.find("\"type\":\"decisions\"") != std::string::npos) {
      last_accepted_ = line;
      last_reply_ = reply;
    }
    return reply;
  }

 private:
  void attack(const std::string& line) {
    switch (rng_.uniform_int(0, 6)) {
      case 0: {  // truncation: a prefix of a JSON object never parses
        const auto cut = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
        expect_rejected(line.substr(0, cut));
        break;
      }
      case 1: {  // pure garbage bytes
        std::string garbage;
        const int length = static_cast<int>(rng_.uniform_int(1, 64));
        for (int i = 0; i < length; ++i)
          garbage += static_cast<char>(rng_.uniform_int(1, 255));
        expect_rejected(garbage);
        break;
      }
      case 2:  // structurally valid, semantically alien
        expect_rejected(R"({"type":"discombobulate","seq":1})");
        break;
      case 3: {  // far-future sequence number
        const std::string needle = "\"seq\":";
        const std::size_t at = line.find(needle);
        if (at == std::string::npos) break;  // hello/stats/bye frame
        std::string skewed = line;
        skewed.insert(at + needle.size(), "9999");
        expect_rejected(skewed);
        break;
      }
      case 4: {  // duplicate of the last accepted frame: dedup, not error
        if (last_accepted_.empty()) break;
        ++hostile_;
        const std::string reply = session_->handle_line(last_accepted_);
        EXPECT_EQ(reply, last_reply_)
            << "retransmit must replay the cached reply";
        break;
      }
      case 5:  // an events frame from a parallel universe (bad lifecycle)
        expect_rejected(
            R"({"type":"events","seq":999999,"now":0,)"
            R"("events":[{"kind":"finish","id":12345}]})");
        break;
      case 6:  // v2 burst-buffer hostility: negative and over-capacity
        if (rng_.uniform_int(0, 1) == 0) {
          expect_rejected(
              R"({"type":"events","seq":999998,"now":0,)"
              R"("events":[{"kind":"submit","id":54321,"submit":0,)"
              R"("estimate":1,"procs":1,"bb":-5}]})");
        } else {
          expect_rejected(
              R"({"type":"events","seq":999998,"now":0,)"
              R"("events":[{"kind":"submit","id":54321,"submit":0,)"
              R"("estimate":1,"procs":1,"bb":2000000000}]})");
        }
        break;
    }
  }

  void expect_rejected(const std::string& frame) {
    ++hostile_;
    std::string reply;
    EXPECT_NO_THROW(reply = session_->handle_line(frame))
        << "hostile frame crashed the session";
    // Structured error, parseable, with a reason slug.
    const Json parsed = parse_json(reply);
    ASSERT_NE(parsed.find("type"), nullptr);
    EXPECT_EQ(parsed.find("type")->as_string(), "error") << frame;
    ASSERT_NE(parsed.find("reason"), nullptr);
    EXPECT_FALSE(parsed.find("reason")->as_string().empty());
  }

  Session* session_;
  sim::Rng rng_;
  std::string last_accepted_;
  std::string last_reply_;
  std::uint64_t hostile_ = 0;
};

workload::Trace fuzz_trace(std::uint64_t seed) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = 120;
  scenario.load = exp::kHighLoad;
  scenario.seed = seed;
  return exp::build_workload(scenario);
}

TEST(SessionFuzz, HostileFramesLeaveTheScheduleUntouched) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const workload::Trace trace = fuzz_trace(seed);
    HelloRequest hello;
    hello.kind = core::SchedulerKind::Easy;
    hello.config = core::SchedulerConfig{
        exp::machine_procs(exp::TraceKind::Sdsc), core::PriorityPolicy::Fcfs};

    Session session;
    HostileChannel channel{session, seed * 0x9e3779b9ULL + 1};
    const core::SimulationResult served = served_run(trace, channel, hello);
    EXPECT_GT(channel.hostile_frames(), 0u);
    // Every hostile frame (minus accepted duplicates) is quarantined
    // with a reason; the counters never undercount.
    EXPECT_GT(session.report().rejected, 0u);
    EXPECT_LE(session.report().rejected, channel.hostile_frames());

    const core::SimulationResult local = core::run_simulation(
        trace, hello.kind, hello.config, hello.extras, {.validate = true});
    ASSERT_EQ(served.outcomes.size(), local.outcomes.size());
    for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      EXPECT_EQ(served.outcomes[i].start, local.outcomes[i].start);
      EXPECT_EQ(served.outcomes[i].end, local.outcomes[i].end);
      EXPECT_EQ(served.outcomes[i].killed, local.outcomes[i].killed);
      EXPECT_EQ(served.outcomes[i].cancelled, local.outcomes[i].cancelled);
    }
    EXPECT_EQ(served.makespan, local.makespan);
    EXPECT_EQ(served.events, local.events);
    EXPECT_EQ(served.max_queue, local.max_queue);
  }
}

TEST(SessionFuzz, PureGarbageStormNeverCrashes) {
  // No legitimate conversation at all: thousands of random byte
  // strings, every reply a structured error, the session still
  // perfectly willing to do real work afterwards.
  Session session;
  sim::Rng rng{42};
  for (int i = 0; i < 5000; ++i) {
    std::string garbage;
    const int length = static_cast<int>(rng.uniform_int(0, 200));
    for (int j = 0; j < length; ++j)
      garbage += static_cast<char>(rng.uniform_int(1, 255));
    std::string reply;
    ASSERT_NO_THROW(reply = session.handle_line(garbage));
    const Json parsed = parse_json(reply);
    EXPECT_EQ(parsed.find("type")->as_string(), "error");
  }
  EXPECT_EQ(session.report().rejected, 5000u);
  const std::string welcome = session.handle_line(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  EXPECT_NE(welcome.find("\"type\":\"welcome\""), std::string::npos);
}

TEST(SessionFuzz, MutatedJsonDocumentsNeverCrashTheParser) {
  // Take one well-formed frame and flip/insert/delete bytes at random;
  // parse_json must either succeed or throw JsonError -- nothing else.
  const std::string base =
      R"({"type":"events","seq":3,"now":100,"events":[)"
      R"({"kind":"submit","id":2,"submit":100,"estimate":60,"procs":4},)"
      R"({"kind":"wake"}]})";
  sim::Rng rng{7};
  for (int i = 0; i < 20000; ++i) {
    std::string mutated = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated[at] = static_cast<char>(rng.uniform_int(0, 255));
          break;
        case 1:
          mutated.insert(at, 1,
                         static_cast<char>(rng.uniform_int(0, 255)));
          break;
        case 2:
          mutated.erase(at, 1);
          break;
      }
    }
    try {
      (void)parse_json(mutated);
    } catch (const JsonError&) {
      // expected for most mutants
    }
  }
}

}  // namespace
}  // namespace bfsim::svc
