// The threaded transport: BoundedQueue backpressure semantics and
// serve_connection's reader/worker pair over real descriptors. Lives
// in the svc concurrency binary so CI reruns it under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "svc/json.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/server.hpp"
#include "svc/session.hpp"

#include <unistd.h>

namespace bfsim::svc {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue{4};
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_TRUE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
}

TEST(BoundedQueue, FullQueueBlocksThePusherUntilAPop) {
  BoundedQueue<int> queue{1};
  ASSERT_TRUE(queue.push(0));
  std::atomic<bool> pushed{false};
  std::thread producer{[&] {
    EXPECT_TRUE(queue.push(1));  // blocks: capacity 1, queue full
    pushed = true;
  }};
  // The producer cannot complete until the consumer makes room.
  EXPECT_EQ(queue.pop(), 0);
  EXPECT_EQ(queue.pop(), 1);  // waits for the producer's push
  producer.join();
  EXPECT_TRUE(pushed);
}

TEST(BoundedQueue, CloseUnblocksBothSides) {
  BoundedQueue<int> queue{1};
  ASSERT_TRUE(queue.push(7));
  std::thread blocked_pusher{[&] {
    EXPECT_FALSE(queue.push(8));  // blocked full, then closed
  }};
  std::thread closer{[&] { queue.close(); }};
  closer.join();
  blocked_pusher.join();
  // close() is end-of-stream, not abort: the backlog still drains.
  EXPECT_EQ(queue.pop(), 7);
  EXPECT_EQ(queue.pop(), std::nullopt);
  EXPECT_FALSE(queue.push(9));
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
  constexpr int kProducers = 4;
  constexpr int kEach = 500;
  BoundedQueue<int> queue{8};  // far smaller than the item count
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kEach; ++i)
        ASSERT_TRUE(queue.push(p * kEach + i));
    });
  std::vector<int> seen(kProducers * kEach, 0);
  for (int i = 0; i < kProducers * kEach; ++i) {
    const std::optional<int> value = queue.pop();
    ASSERT_TRUE(value.has_value());
    ++seen[static_cast<std::size_t>(*value)];
  }
  for (std::thread& producer : producers) producer.join();
  for (const int count : seen) EXPECT_EQ(count, 1);
}

/// A serve_connection harness over two pipes: writes frames in, reads
/// reply lines out, with the server on its own thread.
class PipeServer {
 public:
  explicit PipeServer(Session& session, std::size_t queue_capacity = 4) {
    EXPECT_EQ(::pipe(to_server_), 0);
    EXPECT_EQ(::pipe(to_client_), 0);
    server_ = std::thread{[this, &session, queue_capacity] {
      ServeOptions options;
      options.queue_capacity = queue_capacity;
      result_ = serve_connection(to_server_[0], to_client_[1], session,
                                 options);
      // Close the reply pipe so a reader waiting for more lines sees
      // EOF instead of hanging.
      ::close(to_client_[1]);
    }};
  }

  ~PipeServer() {
    finish();
    ::close(to_server_[0]);
    ::close(to_client_[0]);
  }

  void send(const std::string& line) {
    const std::string framed = line + '\n';
    ASSERT_EQ(::write(to_server_[1], framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  void send_raw(const std::string& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t wrote =
          ::write(to_server_[1], bytes.data() + done, bytes.size() - done);
      ASSERT_GT(wrote, 0);
      done += static_cast<std::size_t>(wrote);
    }
  }

  std::string read_reply() {
    while (true) {
      const std::size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t got = ::read(to_client_[0], chunk, sizeof chunk);
      if (got <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  /// Close the client's write end and join the server thread.
  ServeResult finish() {
    if (to_server_[1] >= 0) {
      ::close(to_server_[1]);
      to_server_[1] = -1;
    }
    if (server_.joinable()) server_.join();
    return result_;
  }

 private:
  int to_server_[2] = {-1, -1};
  int to_client_[2] = {-1, -1};
  std::thread server_;
  ServeResult result_;
  std::string buffer_;
};

std::string type_of(const std::string& reply) {
  const Json parsed = parse_json(reply);
  const Json* type = parsed.find("type");
  return type != nullptr && type->is_string() ? type->as_string() : "";
}

TEST(ServeConnection, FullConversationOverPipes) {
  Session session;
  PipeServer server{session};
  server.send(R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  EXPECT_EQ(type_of(server.read_reply()), "welcome");
  server.send(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":50,"procs":2}]})");
  const std::string decisions = server.read_reply();
  EXPECT_EQ(type_of(decisions), "decisions");
  EXPECT_NE(decisions.find("\"starts\":[0]"), std::string::npos);
  server.send(R"({"type":"bye"})");
  EXPECT_EQ(type_of(server.read_reply()), "bye");
  const ServeResult result = server.finish();
  EXPECT_TRUE(result.clean_bye);
  EXPECT_EQ(result.lines, 3u);
}

TEST(ServeConnection, DroppedConnectionKeepsTheSession) {
  Session session;
  {
    PipeServer server{session};
    server.send(R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
    EXPECT_EQ(type_of(server.read_reply()), "welcome");
    server.send(
        R"({"type":"events","seq":1,"now":0,"events":[)"
        R"({"kind":"submit","id":0,"submit":0,"estimate":50,"procs":2}]})");
    EXPECT_EQ(type_of(server.read_reply()), "decisions");
    const ServeResult result = server.finish();  // EOF without bye
    EXPECT_FALSE(result.clean_bye);
  }
  EXPECT_FALSE(session.closed());
  // A second connection resumes the same live session.
  PipeServer server{session};
  server.send(R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  const std::string welcome = server.read_reply();
  EXPECT_EQ(type_of(welcome), "welcome");
  EXPECT_NE(welcome.find("\"resumed_seq\":1"), std::string::npos);
  server.send(R"({"type":"bye"})");
  EXPECT_EQ(type_of(server.read_reply()), "bye");
  EXPECT_TRUE(server.finish().clean_bye);
}

TEST(ServeConnection, OversizedLineIsQuarantinedNotFatal) {
  Session session;
  PipeServer server{session};
  server.send(R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  EXPECT_EQ(type_of(server.read_reply()), "welcome");
  // A frame far over the cap streams in; the reader keeps only enough
  // to classify it and discards the rest, so memory stays bounded.
  std::string huge = R"({"type":"events","pad":")";
  huge.resize(kMaxFrameBytes + 4096, 'x');
  huge += "\n";
  server.send_raw(huge);
  const std::string reply = server.read_reply();
  EXPECT_EQ(type_of(reply), "error");
  EXPECT_NE(reply.find("oversized-frame"), std::string::npos);
  // The session is unharmed.
  server.send(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":50,"procs":2}]})");
  EXPECT_EQ(type_of(server.read_reply()), "decisions");
  server.send(R"({"type":"bye"})");
  EXPECT_EQ(type_of(server.read_reply()), "bye");
  EXPECT_TRUE(server.finish().clean_bye);
}

TEST(ServeConnection, BlankAndCarriageReturnLinesAreIgnored) {
  Session session;
  PipeServer server{session};
  server.send_raw("\n\r\n");
  server.send_raw(
      "{\"type\":\"hello\",\"v\":3,\"scheduler\":\"easy\",\"procs\":8}\r\n");
  EXPECT_EQ(type_of(server.read_reply()), "welcome");
  server.send(R"({"type":"bye"})");
  EXPECT_EQ(type_of(server.read_reply()), "bye");
  const ServeResult result = server.finish();
  EXPECT_TRUE(result.clean_bye);
  EXPECT_EQ(result.lines, 2u);  // blank lines never reach the session
}

TEST(ServeConnection, BackpressureBoundsTheInboundQueue) {
  // A tiny queue and a storm of frames written before any reply is
  // consumed: the reader must stall rather than buffer unboundedly,
  // and every frame must still be answered in order.
  Session session;
  PipeServer server{session, /*queue_capacity=*/2};
  server.send(R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  constexpr int kFrames = 200;
  std::thread writer{[&] {
    for (int i = 0; i < kFrames; ++i)
      server.send(R"({"type":"report"})");
  }};
  EXPECT_EQ(type_of(server.read_reply()), "welcome");
  for (int i = 0; i < kFrames; ++i)
    EXPECT_EQ(type_of(server.read_reply()), "report");
  writer.join();
  server.send(R"({"type":"bye"})");
  EXPECT_EQ(type_of(server.read_reply()), "bye");
  EXPECT_TRUE(server.finish().clean_bye);
}

}  // namespace
}  // namespace bfsim::svc
