// The availability layer over the wire: v3 down/up event parsing and
// its rejection slugs, the session's outage overlay (every core
// contract mirrored at validation time so a bad frame is refused whole,
// never half-applied), the killed/stats reply surfaces, the requeue
// handshake knob, and the served availability differential -- a replay
// with outages through the full JSON protocol must be byte-identical to
// run_simulation with the same failure trace.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/failure.hpp"
#include "sim/rng.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/session.hpp"
#include "workload/transforms.hpp"

namespace bfsim::svc {
namespace {

using core::PriorityPolicy;
using core::SchedulerKind;
using core::SimulationResult;

std::string reply_type(const std::string& reply) {
  const Json parsed = parse_json(reply);
  const Json* type = parsed.find("type");
  return type != nullptr && type->is_string() ? type->as_string() : "";
}

std::string error_reason(const std::string& reply) {
  const Json parsed = parse_json(reply);
  if (reply_type(reply) != "error") return "";
  return parsed.find("reason")->as_string();
}

std::string parse_reason(const std::string& line) {
  try {
    (void)parse_request(line);
    return "";
  } catch (const ProtocolError& error) {
    return error.reason();
  }
}

// -- protocol surface ------------------------------------------------

TEST(FailureProtocol, ParsesDownAndUpEvents) {
  const Request request = parse_request(
      R"({"type":"events","seq":1,"now":100,"events":[)"
      R"({"kind":"up","outage":0},)"
      R"({"kind":"down","outage":1,"repair":500,"procs":4,"bb":16}]})");
  ASSERT_EQ(request.batch.events.size(), 2u);
  EXPECT_EQ(request.batch.events[0].kind, EventKind::kRepair);
  EXPECT_EQ(request.batch.events[0].outage.id, 0u);
  const Event& down = request.batch.events[1];
  EXPECT_EQ(down.kind, EventKind::kDown);
  EXPECT_EQ(down.outage.id, 1u);
  EXPECT_EQ(down.outage.repair_at, 500);
  EXPECT_EQ(down.outage.procs, 4);
  EXPECT_EQ(down.outage.bb, 16);
}

TEST(FailureProtocol, DownEventBbDefaultsToZero) {
  const Request request = parse_request(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"down","outage":0,"repair":50,"procs":2}]})");
  EXPECT_EQ(request.batch.events[0].outage.bb, 0);
}

TEST(FailureProtocol, HostileDownAndUpFieldsAreRejected) {
  // Missing outage id.
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"up"}]})"),
            "missing-field");
  // Out-of-range outage id (the core's tracking bound).
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"up","outage":99999999}]})"),
            "bad-value");
  // Missing repair / procs on a down event.
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"down","outage":0,"procs":2}]})"),
            "missing-field");
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"down","outage":0,"repair":50}]})"),
            "missing-field");
  // Negative losses, and a down that loses nothing.
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"down","outage":0,"repair":50,)"
                         R"("procs":-1}]})"),
            "bad-value");
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"down","outage":0,"repair":50,)"
                         R"("procs":2,"bb":-1}]})"),
            "bad-value");
  EXPECT_EQ(parse_reason(R"({"type":"events","seq":1,"now":0,"events":[)"
                         R"({"kind":"down","outage":0,"repair":50,)"
                         R"("procs":0,"bb":0}]})"),
            "bad-value");
}

TEST(FailureProtocol, HelloParsesTheRequeueKnob) {
  const Request full = parse_request(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":8})");
  EXPECT_EQ(full.hello.requeue, sim::RequeuePolicy::kResubmitFull);
  const Request remaining = parse_request(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
      R"("requeue":"remaining"})");
  EXPECT_EQ(remaining.hello.requeue, sim::RequeuePolicy::kResubmitRemaining);
  EXPECT_EQ(parse_reason(R"({"type":"hello","v":3,"scheduler":"easy",)"
                         R"("procs":8,"requeue":"sometimes"})"),
            "bad-value");
  EXPECT_EQ(parse_reason(R"({"type":"hello","v":3,"scheduler":"easy",)"
                         R"("procs":8,"requeue":7})"),
            "bad-type");
}

// -- session state machine -------------------------------------------

constexpr const char* kHello =
    R"({"type":"hello","v":3,"scheduler":"easy","procs":8})";

std::string batch_frame(std::uint64_t seq, core::Time now,
                        const std::string& events) {
  return R"({"type":"events","seq":)" + std::to_string(seq) +
         R"(,"now":)" + std::to_string(now) + R"(,"events":[)" + events +
         "]}";
}

TEST(FailureSession, OutageLifecycleOverTheWire) {
  Session session;
  ASSERT_EQ(reply_type(session.handle_line(kHello)), "welcome");
  // An 8-wide job fills the machine.
  const std::string started = session.handle_line(batch_frame(
      1, 0,
      R"({"kind":"submit","id":0,"submit":0,"estimate":100,"procs":8})"));
  ASSERT_EQ(reply_type(started), "decisions");
  // No outage yet: no "killed" key at all (byte-compatible with v2).
  EXPECT_EQ(started.find("killed"), std::string::npos);
  // The outage forces the job out; the reply reports the victim.
  const std::string killed = session.handle_line(batch_frame(
      2, 10, R"({"kind":"down","outage":0,"repair":50,"procs":4})"));
  ASSERT_EQ(reply_type(killed), "decisions");
  const Json parsed = parse_json(killed);
  const Json* victims = parsed.find("killed");
  ASSERT_NE(victims, nullptr);
  ASSERT_EQ(victims->as_array().size(), 1u);
  EXPECT_EQ(victims->as_array()[0].as_int(), 0);
  // Repair at the declared instant; the requeued job restarts.
  const std::string repaired = session.handle_line(
      batch_frame(3, 50, R"({"kind":"up","outage":0})"));
  ASSERT_EQ(reply_type(repaired), "decisions");
  const Json restart = parse_json(repaired);
  ASSERT_EQ(restart.find("starts")->as_array().size(), 1u);
  // Stats surface the availability counters.
  const std::string stats = session.handle_line(R"({"type":"stats"})");
  const Json stat = parse_json(stats);
  EXPECT_EQ(stat.find("outages")->as_int(), 1);
  EXPECT_EQ(stat.find("repairs")->as_int(), 1);
  EXPECT_EQ(stat.find("kills")->as_int(), 1);
}

TEST(FailureSession, ValidationRejectsContractBreakingOutageFrames) {
  Session session;
  ASSERT_EQ(reply_type(session.handle_line(kHello)), "welcome");
  // Repair of an outage that does not exist.
  EXPECT_EQ(error_reason(session.handle_line(
                batch_frame(1, 0, R"({"kind":"up","outage":0})"))),
            "bad-event");
  // A down wider than the machine.
  EXPECT_EQ(error_reason(session.handle_line(batch_frame(
                1, 0,
                R"({"kind":"down","outage":0,"repair":50,"procs":9})"))),
            "bad-event");
  // Repair at-or-before the batch instant.
  EXPECT_EQ(error_reason(session.handle_line(batch_frame(
                1, 10,
                R"({"kind":"down","outage":0,"repair":10,"procs":2})"))),
            "bad-event");
  // Every rejection left the session clean: seq 1 still opens.
  const std::string accepted = session.handle_line(batch_frame(
      1, 10, R"({"kind":"down","outage":0,"repair":50,"procs":2})"));
  EXPECT_EQ(reply_type(accepted), "decisions");
  // The same outage id delivered again.
  EXPECT_EQ(error_reason(session.handle_line(batch_frame(
                2, 20,
                R"({"kind":"down","outage":0,"repair":90,"procs":1})"))),
            "bad-event");
  // Two downs in one batch exceeding the still-up machine together.
  EXPECT_EQ(error_reason(session.handle_line(batch_frame(
                2, 20,
                R"({"kind":"down","outage":1,"repair":90,"procs":4},)"
                R"({"kind":"down","outage":2,"repair":90,"procs":3})"))),
            "bad-event");
  // Repair at the wrong instant (the trace said t=50).
  EXPECT_EQ(error_reason(session.handle_line(
                batch_frame(2, 20, R"({"kind":"up","outage":0})"))),
            "bad-event");
  // Events out of order: a down may not follow a submit.
  EXPECT_EQ(
      error_reason(session.handle_line(batch_frame(
          2, 20,
          R"({"kind":"submit","id":0,"submit":20,"estimate":10,"procs":1},)"
          R"({"kind":"down","outage":1,"repair":90,"procs":1})"))),
      "out-of-order");
  // The session survived it all: a clean repair at t=50 applies.
  EXPECT_EQ(reply_type(session.handle_line(
                batch_frame(2, 50, R"({"kind":"up","outage":0})"))),
            "decisions");
}

TEST(FailureSession, RequeuePolicyIsPartOfTheSessionIdentity) {
  Session session;
  ASSERT_EQ(reply_type(session.handle_line(kHello)), "welcome");
  // Re-handshake with the same implicit policy: idempotent.
  EXPECT_EQ(reply_type(session.handle_line(
                R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
                R"("requeue":"full"})")),
            "welcome");
  // A different requeue policy is a different session.
  EXPECT_EQ(error_reason(session.handle_line(
                R"({"type":"hello","v":3,"scheduler":"easy","procs":8,)"
                R"("requeue":"remaining"})")),
            "hello-mismatch");
}

// -- served availability differential --------------------------------

constexpr std::size_t kJobs = 200;

const SchedulerKind kAllKinds[] = {
    SchedulerKind::Fcfs,         SchedulerKind::Easy,
    SchedulerKind::Conservative, SchedulerKind::KReservation,
    SchedulerKind::Selective,    SchedulerKind::Slack,
    SchedulerKind::Plan,
};

workload::Trace build_trace(double factor, double cancel_fraction,
                            std::uint64_t seed) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = kJobs;
  scenario.load = exp::kHighLoad;
  scenario.estimates = {.regime = exp::EstimateRegime::Systematic,
                        .factor = factor};
  scenario.seed = seed;
  workload::Trace trace = exp::build_workload(scenario);
  if (cancel_fraction > 0.0) {
    sim::Rng rng{seed * 977 + 13};
    workload::apply_cancellations(trace, cancel_fraction, /*patience=*/2.0,
                                  rng);
  }
  return trace;
}

sim::FailureTrace build_failures(int procs, std::uint64_t seed) {
  sim::FailureModel model;
  model.mean_uptime = 6.0 * static_cast<double>(sim::kHour);
  model.mean_repair = 1.0 * static_cast<double>(sim::kHour);
  model.max_procs_lost = procs / 4;
  return generate_failures(model, procs, 0, seed);
}

void expect_identical(const SimulationResult& served,
                      const SimulationResult& local) {
  ASSERT_EQ(served.outcomes.size(), local.outcomes.size());
  for (std::size_t i = 0; i < served.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(served.outcomes[i].start, local.outcomes[i].start);
    EXPECT_EQ(served.outcomes[i].end, local.outcomes[i].end);
    EXPECT_EQ(served.outcomes[i].killed, local.outcomes[i].killed);
    EXPECT_EQ(served.outcomes[i].cancelled, local.outcomes[i].cancelled);
    EXPECT_EQ(served.outcomes[i].requeues, local.outcomes[i].requeues);
    EXPECT_EQ(served.outcomes[i].requeue_wait,
              local.outcomes[i].requeue_wait);
  }
  EXPECT_EQ(served.makespan, local.makespan);
  EXPECT_EQ(served.events, local.events);
  EXPECT_EQ(served.passes, local.passes);
  EXPECT_EQ(served.passes_skipped, local.passes_skipped);
  EXPECT_EQ(served.wakeups, local.wakeups);
  EXPECT_EQ(served.max_queue, local.max_queue);
  EXPECT_EQ(served.outages, local.outages);
  EXPECT_EQ(served.repairs, local.repairs);
  EXPECT_EQ(served.kills, local.kills);
}

TEST(ServedFailureDifferential, OutageReplayMatchesTheInProcessEngine) {
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(2.0, 0.1, 3);
  const sim::FailureTrace failures = build_failures(procs, 11);
  ASSERT_FALSE(failures.empty());
  std::uint64_t total_kills = 0;
  for (const SchedulerKind kind : kAllKinds) {
    for (const sim::RequeuePolicy policy :
         {sim::RequeuePolicy::kResubmitFull,
          sim::RequeuePolicy::kResubmitRemaining}) {
      SCOPED_TRACE(to_string(kind) + " requeue=" + sim::to_string(policy));
      HelloRequest hello;
      hello.kind = kind;
      hello.config = core::SchedulerConfig{procs, PriorityPolicy::Fcfs};
      hello.requeue = policy;
      Session session;
      LocalChannel channel{session};
      const SimulationResult served =
          served_run(trace, channel, hello, &failures);
      EXPECT_EQ(session.report().rejected, 0u);
      core::SimulationOptions options;
      options.validate = true;
      options.failures = &failures;
      options.requeue = policy;
      const SimulationResult local = core::run_simulation(
          trace, kind, hello.config, hello.extras, options);
      expect_identical(served, local);
      total_kills += served.kills;
    }
  }
  EXPECT_GT(total_kills, 0u);
}

TEST(ServedFailureDifferential, EmptyFailureTraceIsByteInvisibleServed) {
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(1.0, 0.0, 1);
  const sim::FailureTrace empty;
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::Fcfs};
    Session plain_session;
    LocalChannel plain_channel{plain_session};
    const SimulationResult baseline = served_run(trace, plain_channel, hello);
    Session gated_session;
    LocalChannel gated_channel{gated_session};
    const SimulationResult gated =
        served_run(trace, gated_channel, hello, &empty);
    expect_identical(gated, baseline);
  }
}

TEST(ServedFailureDifferential, AuditedOutageSessionStaysGreen) {
  // The daemon-side auditor observes kills, requeues and the outage
  // timeline through the seam; it must stay silent and change nothing.
  const int procs = exp::machine_procs(exp::TraceKind::Sdsc);
  const workload::Trace trace = build_trace(2.0, 0.0, 7);
  const sim::FailureTrace failures = build_failures(procs, 5);
  for (const SchedulerKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    HelloRequest hello;
    hello.kind = kind;
    hello.config = core::SchedulerConfig{procs, PriorityPolicy::Fcfs};
    hello.audit = true;
    hello.requeue = sim::RequeuePolicy::kResubmitRemaining;
    Session session;
    LocalChannel channel{session};
    const SimulationResult served =
        served_run(trace, channel, hello, &failures);
    EXPECT_EQ(session.report().rejected, 0u);
    core::SimulationOptions options;
    options.validate = true;
    options.audit = true;
    options.failures = &failures;
    options.requeue = hello.requeue;
    const SimulationResult local = core::run_simulation(
        trace, kind, hello.config, hello.extras, options);
    expect_identical(served, local);
  }
}

}  // namespace
}  // namespace bfsim::svc
