// The service JSON layer: exact integer round-trips, deterministic
// dumps, and -- above all -- hostile-input behavior: every malformed
// byte sequence must be a JsonError with an offset, never UB, and the
// depth/member limits must hold against nesting and flooding attacks.
#include <gtest/gtest.h>

#include <string>

#include "svc/json.hpp"

namespace bfsim::svc {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersStayExactThroughRoundTrip) {
  // Times and ids must round-trip exactly; doubles would corrupt
  // int64 values past 2^53.
  const std::int64_t big = 9007199254740993;  // 2^53 + 1
  const Json parsed = parse_json(std::to_string(big));
  ASSERT_TRUE(parsed.is_int());
  EXPECT_EQ(parsed.as_int(), big);
  EXPECT_EQ(parsed.dump(), std::to_string(big));
}

TEST(Json, IntegerOverflowFallsBackToDouble) {
  const Json parsed = parse_json("99999999999999999999999999");
  EXPECT_FALSE(parsed.is_int());
  EXPECT_TRUE(parsed.is_number());
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const Json parsed = parse_json(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(parsed.dump(), R"({"z":1,"a":2,"m":3})");
  ASSERT_NE(parsed.find("a"), nullptr);
  EXPECT_EQ(parsed.find("a")->as_int(), 2);
  EXPECT_EQ(parsed.find("missing"), nullptr);
}

TEST(Json, DumpIsDeterministicAndReparsable) {
  const std::string text =
      R"({"s":"a\"b\\c\nd","arr":[1,2.5,null,true],"nested":{"k":[{}]}})";
  const Json once = parse_json(text);
  const Json twice = parse_json(once.dump());
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once.dump(), twice.dump());
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\tb\r\n\f\b\/")").as_string(), "a\tb\r\n\f\b/");
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\u00e9")").as_string(), "\xc3\xa9");      // e-acute
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xe2\x82\xac");  // euro
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  // Control characters dump back as \u escapes.
  EXPECT_EQ(Json::string(std::string("\x01", 1)).dump(), R"("\u0001")");
}

TEST(Json, RejectsMalformedInput) {
  const char* cases[] = {
      "",           "{",         "[1,",         "tru",
      "\"unterminated", "{\"a\":}",  "{\"a\" 1}",   "[1 2]",
      "01x",        "-",         "1.",          "1e",
      "\"\\q\"",    "\"\\u12\"", "\"\\ud800\"", "\"\\ud800\\u0041\"",
      "\"\\udc00\"", "nan",      "1 2",         "{\"a\":1,}",
      "\"raw\ncontrol\"",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    EXPECT_THROW((void)parse_json(text), JsonError);
  }
}

TEST(Json, ErrorsCarryByteOffsets) {
  try {
    (void)parse_json("[1, 2, x]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_EQ(error.offset(), 7u);
  }
}

TEST(Json, DepthLimitStopsNestingBombs) {
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += '[';
  EXPECT_THROW((void)parse_json(deep), JsonError);
  // A document at the cap parses fine.
  std::string ok;
  for (int i = 0; i < 8; ++i) ok += '[';
  ok += '1';
  for (int i = 0; i < 8; ++i) ok += ']';
  EXPECT_NO_THROW((void)parse_json(ok));
}

TEST(Json, MemberLimitStopsFloodingBombs) {
  std::string flood = "[0";
  for (int i = 0; i < 200000; ++i) flood += ",0";
  flood += ']';
  EXPECT_THROW((void)parse_json(flood), JsonError);
  JsonLimits tight;
  tight.max_members = 4;
  EXPECT_THROW((void)parse_json("[1,2,3,4,5]", tight), JsonError);
  EXPECT_NO_THROW((void)parse_json("[1,2,3]", tight));
}

TEST(Json, RejectsNonFiniteNumbers) {
  EXPECT_THROW((void)parse_json("1e999"), JsonError);
}

TEST(Json, BuildersProduceCompactOutput) {
  Json object = Json::object();
  object.set("a", Json::integer(1));
  Json inner = Json::array();
  inner.push_back(Json::boolean(true));
  inner.push_back(Json::null());
  object.set("b", std::move(inner));
  EXPECT_EQ(object.dump(), R"({"a":1,"b":[true,null]})");
}

}  // namespace
}  // namespace bfsim::svc
