// Crash-safe state: the event log's read/write round trip, torn-tail
// semantics, and -- the point of it all -- a daemon killed mid-session
// coming back with the same future schedule. The crash drills run a
// real replay through RemoteDecisionCore over a channel that kills and
// resurrects its Session at chosen frames, exercising the client's
// retransmit path against both failure orders (died before the frame
// was applied / died after applying but before the reply arrived).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "svc/client.hpp"
#include "svc/eventlog.hpp"
#include "svc/session.hpp"

namespace bfsim::svc {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "bfsim-eventlog-" + name;
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(EventLog, RoundTripsHelloAndFrames) {
  const std::string path = temp_path("roundtrip");
  {
    EventLogWriter writer{path};
    writer.record_hello(R"({"type":"hello","v":3})");
    writer.record_batch(1, R"({"type":"events","seq":1})");
    writer.record_batch(2, R"({"type":"events","seq":2})");
  }
  const EventLogContents contents = read_event_log(path);
  EXPECT_EQ(contents.hello, R"({"type":"hello","v":3})");
  ASSERT_EQ(contents.frames.size(), 2u);
  EXPECT_EQ(contents.frames[0].first, 1u);
  EXPECT_EQ(contents.frames[0].second, R"({"type":"events","seq":1})");
  EXPECT_EQ(contents.frames[1].first, 2u);
  EXPECT_FALSE(contents.truncated);
  std::remove(path.c_str());
}

TEST(EventLog, MissingFileReadsAsEmpty) {
  const EventLogContents contents =
      read_event_log(temp_path("never-written"));
  EXPECT_TRUE(contents.hello.empty());
  EXPECT_TRUE(contents.frames.empty());
  EXPECT_FALSE(contents.truncated);
}

TEST(EventLog, TornTailReadsAsNeverAccepted) {
  const std::string path = temp_path("torn");
  {
    EventLogWriter writer{path};
    writer.record_hello(R"({"type":"hello"})");
    writer.record_batch(1, R"({"type":"events","seq":1})");
  }
  // Simulate a crash mid-write: a partial record with no checksum.
  {
    std::ofstream out{path, std::ios::app | std::ios::binary};
    out << "E\t2\t{\"type\":\"ev";
  }
  const EventLogContents contents = read_event_log(path);
  ASSERT_EQ(contents.frames.size(), 1u);
  EXPECT_EQ(contents.frames[0].first, 1u);
  EXPECT_TRUE(contents.truncated);
  // Appending after recovery continues the log cleanly... except the
  // torn bytes are still there; the writer appends after them and the
  // reader stops at the tear, which is why the session re-logs nothing
  // and the client retransmits instead.
  std::remove(path.c_str());
}

TEST(EventLog, RejectsAForeignFile) {
  const std::string path = temp_path("foreign");
  {
    std::ofstream out{path};
    out << "definitely not an event log\n";
  }
  EXPECT_THROW((void)read_event_log(path), std::exception);
  std::remove(path.c_str());
}

TEST(EventLog, SessionRestoreRebuildsTheScheduler) {
  const std::string path = temp_path("restore");
  const char* hello = R"({"type":"hello","v":3,"scheduler":"easy","procs":8})";
  std::string reply2;
  {
    Session first{SessionOptions{path}};
    (void)first.handle_line(hello);
    (void)first.handle_line(
        R"({"type":"events","seq":1,"now":0,"events":[)"
        R"({"kind":"submit","id":0,"submit":0,"estimate":100,"procs":8}]})");
    reply2 = first.handle_line(
        R"({"type":"events","seq":2,"now":10,"events":[)"
        R"({"kind":"submit","id":1,"submit":10,"estimate":50,"procs":4}]})");
    // Session dies here (destructor = crash for state purposes; the
    // log was fsync'd per frame).
  }
  Session second{SessionOptions{path}};
  const std::string welcome = second.handle_line(hello);
  const Json parsed = parse_json(welcome);
  ASSERT_EQ(parsed.find("type")->as_string(), "welcome");
  EXPECT_EQ(parsed.find("resumed_seq")->as_int(), 2);
  // The rebuilt core observed both submits and holds job 1 queued
  // behind the machine-filling job 0 -- the same live state.
  ASSERT_NE(second.decision_core(), nullptr);
  EXPECT_EQ(second.decision_core()->stats().events, 2u);
  EXPECT_EQ(second.decision_core()->queued(), 1u);
  EXPECT_EQ(second.decision_core()->running(), 1u);
  // Retransmit of the last frame replays the cached... no: the cache
  // died with the process. The frame is already in the log, so the
  // session must regenerate the identical reply from the rebuilt core.
  const std::string again = second.handle_line(
      R"({"type":"events","seq":2,"now":10,"events":[)"
      R"({"kind":"submit","id":1,"submit":10,"estimate":50,"procs":4}]})");
  EXPECT_EQ(again, reply2);
  // And a config mismatch on resume is refused outright.
  Session third{SessionOptions{path}};
  const std::string refused = third.handle_line(
      R"({"type":"hello","v":3,"scheduler":"fcfs","procs":8})");
  EXPECT_EQ(parse_json(refused).find("reason")->as_string(),
            "hello-mismatch");
  std::remove(path.c_str());
}

/// A LineChannel that owns a crash-safe Session and murders it at
/// chosen frame numbers -- before or after the frame is delivered --
/// then rebuilds it from the state file, exactly like a daemon being
/// kill -9'd and relaunched with the same --state.
class CrashyChannel final : public LineChannel {
 public:
  explicit CrashyChannel(std::string state_path)
      : state_path_(std::move(state_path)) {
    restart();
  }

  void crash_before_frame(std::uint64_t n) { crash_before_ = n; }
  void crash_after_frame(std::uint64_t n) { crash_after_ = n; }
  [[nodiscard]] int crashes() const { return crashes_; }
  [[nodiscard]] Session& session() { return *session_; }

  [[nodiscard]] std::string roundtrip(const std::string& line) override {
    ++calls_;
    if (calls_ == crash_before_) {
      restart();
      ++crashes_;
      throw ChannelError("daemon died before the frame arrived");
    }
    std::string reply = session_->handle_line(line);
    if (calls_ == crash_after_) {
      restart();
      ++crashes_;
      throw ChannelError("daemon died before the reply left");
    }
    return reply;
  }

 private:
  void restart() {
    session_ = std::make_unique<Session>(SessionOptions{state_path_});
  }

  std::string state_path_;
  std::unique_ptr<Session> session_;
  std::uint64_t calls_ = 0;
  std::uint64_t crash_before_ = 0;
  std::uint64_t crash_after_ = 0;
  int crashes_ = 0;
};

workload::Trace crash_trace() {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = 80;
  scenario.load = exp::kHighLoad;
  scenario.seed = 11;
  return exp::build_workload(scenario);
}

void expect_same_schedule(const core::SimulationResult& a,
                          const core::SimulationResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    EXPECT_EQ(a.outcomes[i].start, b.outcomes[i].start);
    EXPECT_EQ(a.outcomes[i].end, b.outcomes[i].end);
    EXPECT_EQ(a.outcomes[i].killed, b.outcomes[i].killed);
    EXPECT_EQ(a.outcomes[i].cancelled, b.outcomes[i].cancelled);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
}

TEST(EventLog, ReplaySurvivesACrashAfterApply) {
  // The daemon applies + logs frame 20, dies before the reply leaves.
  // The relaunched daemon replays its log, the client re-handshakes
  // and retransmits; the daemon recognizes the seq and serves the
  // reply from the rebuilt core. Schedule: unperturbed.
  const std::string path = temp_path("crash-after");
  const workload::Trace trace = crash_trace();
  HelloRequest hello;
  hello.kind = core::SchedulerKind::Easy;
  hello.config = core::SchedulerConfig{
      exp::machine_procs(exp::TraceKind::Sdsc), core::PriorityPolicy::Fcfs};

  CrashyChannel channel{path};
  channel.crash_after_frame(20);
  const core::SimulationResult served = served_run(trace, channel, hello);
  EXPECT_EQ(channel.crashes(), 1);

  const core::SimulationResult local = core::run_simulation(
      trace, hello.kind, hello.config, hello.extras, {.validate = true});
  expect_same_schedule(served, local);
  std::remove(path.c_str());
}

TEST(EventLog, ReplaySurvivesACrashBeforeApply) {
  // The daemon dies before frame 15 ever reaches it: nothing logged,
  // the retransmitted frame applies fresh after resume.
  const std::string path = temp_path("crash-before");
  const workload::Trace trace = crash_trace();
  HelloRequest hello;
  hello.kind = core::SchedulerKind::Conservative;
  hello.config = core::SchedulerConfig{
      exp::machine_procs(exp::TraceKind::Sdsc), core::PriorityPolicy::Sjf};

  CrashyChannel channel{path};
  channel.crash_before_frame(15);
  const core::SimulationResult served = served_run(trace, channel, hello);
  EXPECT_EQ(channel.crashes(), 1);

  const core::SimulationResult local = core::run_simulation(
      trace, hello.kind, hello.config, hello.extras, {.validate = true});
  expect_same_schedule(served, local);
  std::remove(path.c_str());
}

TEST(EventLog, StatelessDaemonCannotResume) {
  // No --state: after a crash the reborn session has an empty history,
  // so its welcome reports resumed_seq 0 while the client has acked
  // frames -- the client must refuse ("bad-resume") rather than
  // silently continue against a scheduler that forgot everything.
  const workload::Trace trace = crash_trace();
  HelloRequest hello;
  hello.kind = core::SchedulerKind::Easy;
  hello.config = core::SchedulerConfig{
      exp::machine_procs(exp::TraceKind::Sdsc), core::PriorityPolicy::Fcfs};

  CrashyChannel channel{""};  // empty state path = no event log
  channel.crash_after_frame(20);
  try {
    (void)served_run(trace, channel, hello);
    FAIL() << "expected ProtocolError bad-resume";
  } catch (const ProtocolError& error) {
    EXPECT_EQ(error.reason(), "bad-resume");
  }
}

TEST(EventLog, LogIsDurableLineByLine) {
  // Every accepted frame is on disk (with its checksum) before the
  // reply exists -- verified by reading the raw file between frames.
  const std::string path = temp_path("durable");
  Session session{SessionOptions{path}};
  (void)session.handle_line(
      R"({"type":"hello","v":3,"scheduler":"easy","procs":4})");
  const std::string before = read_file(path);
  EXPECT_NE(before.find("bfsim-eventlog v1"), std::string::npos);
  EXPECT_NE(before.find("H\t"), std::string::npos);
  (void)session.handle_line(
      R"({"type":"events","seq":1,"now":0,"events":[)"
      R"({"kind":"submit","id":0,"submit":0,"estimate":9,"procs":1}]})");
  const std::string after = read_file(path);
  EXPECT_NE(after.find("E\t1\t"), std::string::npos);
  // Rejected frames are never logged.
  (void)session.handle_line("garbage");
  (void)session.handle_line(
      R"({"type":"events","seq":9,"now":0,"events":[]})");
  EXPECT_EQ(read_file(path), after);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bfsim::svc
