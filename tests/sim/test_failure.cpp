// The failure-model unit wall: trace validation (every rejection and
// the sweep-line concurrency bound), requeue-policy naming, the seeded
// generator's determinism contract, and the text format round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/failure.hpp"
#include "util/error.hpp"

namespace bfsim::sim {
namespace {

Outage make_outage(OutageId id, Time down_at, Time repair_at, int procs,
                   int bb = 0) {
  Outage outage;
  outage.id = id;
  outage.down_at = down_at;
  outage.repair_at = repair_at;
  outage.procs = procs;
  outage.bb = bb;
  return outage;
}

std::string validation_error(const FailureTrace& trace, int procs,
                             int bb = 0) {
  try {
    validate_failure_trace(trace, procs, bb);
    return "";
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
}

TEST(FailureTrace, EmptyTraceIsValid) {
  EXPECT_EQ(validation_error({}, 8), "");
}

TEST(FailureTrace, AcceptsSequentialAndOverlappingWithinMachine) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 2));
  trace.outages.push_back(make_outage(1, 15, 30, 3));  // overlaps 0
  trace.outages.push_back(make_outage(2, 30, 40, 5));
  EXPECT_EQ(validation_error(trace, 8), "");
}

TEST(FailureTrace, RejectsNonDenseIds) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(1, 10, 20, 2));
  const std::string what = validation_error(trace, 8);
  EXPECT_EQ(what.rfind("failure-trace:", 0), 0u) << what;
}

TEST(FailureTrace, RejectsRepairAtOrBeforeDown) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 10, 2));
  EXPECT_NE(validation_error(trace, 8), "");
}

TEST(FailureTrace, RejectsNegativeDownTime) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, -1, 10, 2));
  EXPECT_NE(validation_error(trace, 8), "");
}

TEST(FailureTrace, RejectsZeroLossOnBothAxes) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 0, 0));
  EXPECT_NE(validation_error(trace, 8), "");
}

TEST(FailureTrace, RejectsLossBeyondTheMachine) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 9));
  EXPECT_NE(validation_error(trace, 8), "");
  FailureTrace bb_trace;
  bb_trace.outages.push_back(make_outage(0, 10, 20, 0, 100));
  EXPECT_NE(validation_error(bb_trace, 8, 64), "");
}

TEST(FailureTrace, RejectsUnsortedRecords) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 20, 30, 1));
  trace.outages.push_back(make_outage(1, 10, 15, 1));
  EXPECT_NE(validation_error(trace, 8), "");
}

TEST(FailureTrace, RejectsConcurrentLossExceedingTheMachine) {
  // Each outage alone fits; together on [15, 20) they take 9 of 8.
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 5));
  trace.outages.push_back(make_outage(1, 15, 25, 4));
  EXPECT_NE(validation_error(trace, 8), "");
}

TEST(FailureTrace, RepairFreesCapacityBeforeASameInstantDown) {
  // The second outage begins exactly when the first repairs: the sweep
  // line must order the repair first, matching the engine's
  // finish < repair < down event order.
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 6));
  trace.outages.push_back(make_outage(1, 20, 30, 6));
  EXPECT_EQ(validation_error(trace, 8), "");
}

TEST(RequeuePolicy, StringsRoundTrip) {
  EXPECT_EQ(to_string(RequeuePolicy::kResubmitFull), "full");
  EXPECT_EQ(to_string(RequeuePolicy::kResubmitRemaining), "remaining");
  EXPECT_EQ(requeue_policy_from_string("full"), RequeuePolicy::kResubmitFull);
  EXPECT_EQ(requeue_policy_from_string("remaining"),
            RequeuePolicy::kResubmitRemaining);
  EXPECT_THROW((void)requeue_policy_from_string("Full"),
               std::invalid_argument);
  EXPECT_THROW((void)requeue_policy_from_string(""), std::invalid_argument);
}

TEST(GenerateFailures, SameSeedSameTrace) {
  FailureModel model;
  model.max_procs_lost = 4;
  const FailureTrace a = generate_failures(model, 128, 0, 42);
  const FailureTrace b = generate_failures(model, 128, 0, 42);
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
}

TEST(GenerateFailures, DifferentSeedsDiffer) {
  FailureModel model;
  model.max_procs_lost = 4;
  const FailureTrace a = generate_failures(model, 128, 0, 1);
  const FailureTrace b = generate_failures(model, 128, 0, 2);
  EXPECT_NE(a, b);
}

TEST(GenerateFailures, ResultValidatesAndIsSequential) {
  FailureModel model;
  model.max_procs_lost = 8;
  model.max_bb_lost = 16;
  const FailureTrace trace = generate_failures(model, 64, 256, 7);
  EXPECT_NO_THROW(validate_failure_trace(trace, 64, 256));
  for (std::size_t i = 1; i < trace.outages.size(); ++i)
    EXPECT_GE(trace.outages[i].down_at, trace.outages[i - 1].repair_at);
  for (const Outage& outage : trace.outages) {
    EXPECT_LT(outage.down_at, model.horizon);
    EXPECT_GE(outage.procs + outage.bb, 1);
  }
}

TEST(GenerateFailures, RejectsNonsensicalModels) {
  FailureModel no_axis;
  no_axis.max_procs_lost = 0;
  no_axis.max_bb_lost = 0;
  EXPECT_THROW((void)generate_failures(no_axis, 8, 0, 1),
               std::invalid_argument);
  FailureModel bad_mean;
  bad_mean.mean_uptime = 0.0;
  EXPECT_THROW((void)generate_failures(bad_mean, 8, 0, 1),
               std::invalid_argument);
  FailureModel bad_horizon;
  bad_horizon.horizon = 0;
  EXPECT_THROW((void)generate_failures(bad_horizon, 8, 0, 1),
               std::invalid_argument);
}

TEST(FailureTraceText, WriteParseRoundTrips) {
  FailureTrace trace;
  trace.outages.push_back(make_outage(0, 10, 20, 2));
  trace.outages.push_back(make_outage(1, 30, 45, 4, 16));
  std::ostringstream out;
  write_failure_trace(out, trace);
  std::istringstream in{out.str()};
  EXPECT_EQ(parse_failure_trace(in), trace);
}

TEST(FailureTraceText, CommentsAndBlankLinesAreIgnored) {
  std::istringstream in{
      "# maintenance window\n"
      "\n"
      "; scheduled\n"
      "10 20 2\n"
      "30 45 4 16\n"};
  const FailureTrace trace = parse_failure_trace(in);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.outages[0].id, 0u);
  EXPECT_EQ(trace.outages[0].procs, 2);
  EXPECT_EQ(trace.outages[1].id, 1u);
  EXPECT_EQ(trace.outages[1].bb, 16);
}

TEST(FailureTraceText, MalformedLinesThrowWithThePrefix) {
  const auto parse_error = [](const char* text) -> std::string {
    std::istringstream in{text};
    try {
      (void)parse_failure_trace(in);
      return "";
    } catch (const util::ParseError& error) {
      return error.what();
    }
  };
  EXPECT_EQ(parse_error("10 20").rfind("failure-trace:", 0), 0u);
  EXPECT_EQ(parse_error("10 20 2 16 99").rfind("failure-trace:", 0), 0u);
  EXPECT_EQ(parse_error("ten 20 2").rfind("failure-trace:", 0), 0u);
}

TEST(FailureTraceText, MissingFileThrows) {
  EXPECT_THROW((void)read_failure_trace_file("/nonexistent/outages.txt"),
               util::ParseError);
}

}  // namespace
}  // namespace bfsim::sim
