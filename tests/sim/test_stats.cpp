#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace bfsim::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> values{1.0, 2.5, -3.0, 7.25, 0.0, 12.5};
  RunningStats s;
  double sum = 0.0;
  for (double v : values) {
    s.add(v);
    sum += v;
  }
  const double mean = sum / static_cast<double>(values.size());
  double m2 = 0.0;
  for (double v : values) m2 += (v - mean) * (v - mean);
  const double var = m2 / static_cast<double>(values.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 12.5);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), offset, 1e-3);
  EXPECT_NEAR(s.variance(), 1.001, 0.01);  // ~1
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{1};
  RunningStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 250 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, StderrShrinksWithSamples) {
  RunningStats small, large;
  Rng rng{2};
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.stderr_mean(), large.stderr_mean());
}

TEST(Sample, QuantilesInterpolate) {
  Sample s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

TEST(Sample, SingleElement) {
  Sample s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Sample, EmptyQuantileThrows) {
  Sample s;
  EXPECT_THROW((void)s.median(), std::logic_error);
}

TEST(Sample, AddAfterQuantileStillWorks) {
  Sample s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-100.0); // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW((Histogram{1.0, 1.0, 5}), std::invalid_argument);
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
}

TEST(Histogram, AsciiContainsEveryBin) {
  Histogram h{0.0, 4.0, 4};
  for (int i = 0; i < 8; ++i) h.add(i % 4 + 0.5);
  const std::string out = h.ascii(10);
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, AsciiHandlesEmpty) {
  Histogram h{0.0, 1.0, 3};
  EXPECT_NO_THROW((void)h.ascii());
}

}  // namespace
}  // namespace bfsim::sim
