#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bfsim::sim {
namespace {

TEST(Engine, RunsEventsInOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  const Time end = engine.run();
  EXPECT_EQ(end, 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, ClockAdvancesDuringRun) {
  Engine engine;
  Time seen = -1;
  engine.schedule_at(42, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen, 42);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  std::vector<Time> times;
  engine.schedule_at(10, [&] {
    times.push_back(engine.now());
    engine.schedule_in(5, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Engine, NextTimeExposesThePendingHorizon) {
  // Batch-end detection in the simulation driver hinges on peeking at
  // the next pending timestamp from inside a callback.
  Engine engine;
  std::vector<Time> horizons;
  engine.schedule_at(10, [&] {
    horizons.push_back(engine.next_time());  // the same-time sibling
  });
  engine.schedule_at(10, [&] {
    horizons.push_back(engine.next_time());  // the t=20 event
  });
  engine.schedule_at(20, [&] {
    horizons.push_back(engine.pending() ? engine.next_time() : kNoTime);
  });
  engine.run();
  EXPECT_EQ(horizons, (std::vector<Time>{10, 20, kNoTime}));
}

TEST(Engine, RejectsPastEvents) {
  Engine engine;
  engine.schedule_at(10, [&] {
    EXPECT_THROW(engine.schedule_at(5, [] {}), std::invalid_argument);
  });
  engine.run();
  EXPECT_THROW(engine.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(20, [&] { ++fired; });
  engine.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.pending());
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.pending());
}

TEST(Engine, RunUntilInclusiveOfHorizon) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(15, [&] { ++fired; });
  engine.run_until(15);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopHaltsAfterCurrentEvent) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1, [&] {
    order.push_back(1);
    engine.stop();
  });
  engine.schedule_at(2, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(engine.pending());
  engine.run();  // resumes after a stop
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, SameTimePriorityClasses) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(5, [&] { order.push_back(2); }, /*priority_class=*/1);
  engine.schedule_at(5, [&] { order.push_back(1); }, /*priority_class=*/0);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, CascadedEventsAtSameTime) {
  Engine engine;
  int count = 0;
  engine.schedule_at(10, [&] {
    ++count;
    engine.schedule_in(0, [&] { ++count; });
  });
  engine.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(engine.now(), 10);
}

TEST(Engine, ManyEventsProcessAll) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10000; ++i)
    engine.schedule_at(i % 100, [&] { ++count; });
  engine.run();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(engine.events_processed(), 10000u);
}

TEST(Engine, ScheduleInSaturatesInsteadOfWrapping) {
  // Regression: `now_ + delay` used to be an unchecked add, so a
  // far-future delay wrapped negative and either threw from schedule_at
  // or fired in the past. It must park at kTimeMax instead.
  Engine engine;
  Time fired_at = kNoTime;
  engine.schedule_at(100, [&] {
    engine.schedule_in(kTimeMax, [&] { fired_at = engine.now(); });
  });
  engine.run_until(1000);
  EXPECT_EQ(fired_at, kNoTime);  // parked in the far future, not the past
  EXPECT_TRUE(engine.pending());
  EXPECT_EQ(engine.next_time(), kTimeMax);
}

// ---------------------------------------------------------------------------
// The stream channel: externally ordered events merged with the heap.
// ---------------------------------------------------------------------------

TEST(EngineStream, FiresInTimeOrderAgainstHeapEvents) {
  Engine engine;
  std::vector<int> order;
  engine.set_stream(/*priority_class=*/1, [&] { order.push_back(100); });
  engine.arm_stream(15);
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 100, 2}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(EngineStream, ReArmsFromInsideItsOwnAction) {
  // The production driver's shape: each arrival re-arms its successor.
  Engine engine;
  std::vector<Time> fired;
  engine.set_stream(1, [&] {
    fired.push_back(engine.now());
    if (fired.size() < 3) engine.arm_stream(engine.now() + 10);
  });
  engine.arm_stream(5);
  engine.run();
  EXPECT_EQ(fired, (std::vector<Time>{5, 15, 25}));
}

TEST(EngineStream, ClassOrderDecidesSameTimeTies) {
  // Stream class 1 vs heap classes 0 and 2 at one instant: the stream
  // slots strictly between them, exactly as a heap-pushed event of the
  // same class would.
  Engine engine;
  std::vector<int> order;
  engine.set_stream(1, [&] { order.push_back(100); });
  engine.arm_stream(10);
  engine.schedule_at(10, [&] { order.push_back(2); }, /*priority_class=*/2);
  engine.schedule_at(10, [&] { order.push_back(0); }, /*priority_class=*/0);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 100, 2}));
}

TEST(EngineStream, ExtendsTheBatchAndThePendingHorizon) {
  // pending()/next_time() must see the armed head, or batch-end hooks
  // would fire mid-batch and wake-up arming would double-schedule.
  Engine engine;
  std::vector<Time> batches;
  engine.set_batch_end([&] { batches.push_back(engine.now()); });
  engine.set_stream(1, [&] {});
  engine.arm_stream(10);
  engine.schedule_at(10, [&] {});  // same instant: one batch, not two
  engine.schedule_at(30, [&] {});
  engine.run();
  EXPECT_EQ(batches, (std::vector<Time>{10, 30}));
}

TEST(EngineStream, ArmValidation) {
  Engine engine;
  EXPECT_THROW(engine.arm_stream(5), std::logic_error);  // no stream set
  engine.set_stream(1, [] {});
  engine.arm_stream(5);
  EXPECT_TRUE(engine.stream_armed());
  EXPECT_THROW(engine.arm_stream(7), std::logic_error);  // already armed
  engine.schedule_at(10, [] {});
  engine.run();
  EXPECT_FALSE(engine.stream_armed());
  EXPECT_THROW(engine.arm_stream(engine.now() - 1),
               std::invalid_argument);  // in the past
}

TEST(EngineStream, DrainsWhenHeapIsEmpty) {
  Engine engine;
  int fired = 0;
  engine.set_stream(0, [&] { ++fired; });
  engine.arm_stream(40);
  EXPECT_TRUE(engine.pending());
  EXPECT_EQ(engine.next_time(), 40);
  const Time end = engine.run();
  EXPECT_EQ(end, 40);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.pending());
}

TEST(EngineStream, RunUntilLeavesArmedHeadQueued) {
  Engine engine;
  int fired = 0;
  engine.set_stream(0, [&] { ++fired; });
  engine.arm_stream(50);
  engine.run_until(40);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(engine.stream_armed());
  engine.run_until(60);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace bfsim::sim
