#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bfsim::sim {
namespace {

TEST(Engine, RunsEventsInOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  const Time end = engine.run();
  EXPECT_EQ(end, 30);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, ClockAdvancesDuringRun) {
  Engine engine;
  Time seen = -1;
  engine.schedule_at(42, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_EQ(seen, 42);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine engine;
  std::vector<Time> times;
  engine.schedule_at(10, [&] {
    times.push_back(engine.now());
    engine.schedule_in(5, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Engine, NextTimeExposesThePendingHorizon) {
  // Batch-end detection in the simulation driver hinges on peeking at
  // the next pending timestamp from inside a callback.
  Engine engine;
  std::vector<Time> horizons;
  engine.schedule_at(10, [&] {
    horizons.push_back(engine.next_time());  // the same-time sibling
  });
  engine.schedule_at(10, [&] {
    horizons.push_back(engine.next_time());  // the t=20 event
  });
  engine.schedule_at(20, [&] {
    horizons.push_back(engine.pending() ? engine.next_time() : kNoTime);
  });
  engine.run();
  EXPECT_EQ(horizons, (std::vector<Time>{10, 20, kNoTime}));
}

TEST(Engine, RejectsPastEvents) {
  Engine engine;
  engine.schedule_at(10, [&] {
    EXPECT_THROW(engine.schedule_at(5, [] {}), std::invalid_argument);
  });
  engine.run();
  EXPECT_THROW(engine.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Engine, RunUntilLeavesLaterEventsQueued) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(20, [&] { ++fired; });
  engine.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.pending());
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.pending());
}

TEST(Engine, RunUntilInclusiveOfHorizon) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(15, [&] { ++fired; });
  engine.run_until(15);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopHaltsAfterCurrentEvent) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(1, [&] {
    order.push_back(1);
    engine.stop();
  });
  engine.schedule_at(2, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(engine.pending());
  engine.run();  // resumes after a stop
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, SameTimePriorityClasses) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(5, [&] { order.push_back(2); }, /*priority_class=*/1);
  engine.schedule_at(5, [&] { order.push_back(1); }, /*priority_class=*/0);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, CascadedEventsAtSameTime) {
  Engine engine;
  int count = 0;
  engine.schedule_at(10, [&] {
    ++count;
    engine.schedule_in(0, [&] { ++count; });
  });
  engine.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(engine.now(), 10);
}

TEST(Engine, ManyEventsProcessAll) {
  Engine engine;
  int count = 0;
  for (int i = 0; i < 10000; ++i)
    engine.schedule_at(i % 100, [&] { ++count; });
  engine.run();
  EXPECT_EQ(count, 10000);
  EXPECT_EQ(engine.events_processed(), 10000u);
}

}  // namespace
}  // namespace bfsim::sim
