#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

namespace bfsim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(30, 0, 3);
  q.push(10, 0, 1);
  q.push(20, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PriorityClassBreaksTimeTies) {
  EventQueue<std::string> q;
  q.push(5, 1, "submit");
  q.push(5, 0, "finish");
  EXPECT_EQ(q.pop().payload, "finish");
  EXPECT_EQ(q.pop().payload, "submit");
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(7, 0, i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(1, 0, 1);
  q.push(2, 0, 2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, TopDoesNotRemove) {
  EventQueue<int> q;
  q.push(1, 0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().payload, 42);
}

TEST(EventQueue, MixedOrderingMatchesSpecification) {
  EventQueue<int> q;
  q.push(10, 1, 0);  // time 10, class 1, seq 0
  q.push(10, 0, 1);  // earlier class wins at same time
  q.push(9, 2, 2);   // earlier time wins regardless of class
  q.push(10, 0, 3);  // same (time, class) as #1 -> after it
  const std::vector<int> expected{2, 1, 3, 0};
  for (int want : expected) EXPECT_EQ(q.pop().payload, want);
}

TEST(EventQueue, NegativeTimesSupported) {
  EventQueue<int> q;
  q.push(-5, 0, 1);
  q.push(0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
}

TEST(EventQueue, MovesPayloads) {
  EventQueue<std::unique_ptr<int>> q;
  q.push(1, 0, std::make_unique<int>(9));
  auto event = q.pop();
  ASSERT_TRUE(event.payload);
  EXPECT_EQ(*event.payload, 9);
}

TEST(EventQueue, RandomizedPopsMatchTheTotalOrderExactly) {
  // The heap layout (4-ary, hole-descent pop, packed tie-break key) is
  // an implementation detail; the observable contract is the total
  // order (time, priority class, insertion sequence). Mixed pushes and
  // pops against a stable-sorted model must agree element for element
  // -- this is what makes the heap swappable without changing any
  // simulation byte.
  std::mt19937_64 rng{12345};
  EventQueue<int> q;
  struct Expected {
    Time time;
    int cls;
    int tag;
  };
  std::vector<Expected> pending;
  int next_tag = 0;
  for (int round = 0; round < 2000; ++round) {
    const bool push = pending.empty() || (rng() % 3 != 0);
    if (push) {
      const Time t = static_cast<Time>(rng() % 50);
      const int cls = static_cast<int>(rng() % 4);
      q.push(t, cls, next_tag);
      pending.push_back({t, cls, next_tag});
      ++next_tag;
    } else {
      // The model: earliest (time, class), FIFO within ties -- i.e. the
      // first pending element under a stable min selection.
      std::size_t best = 0;
      for (std::size_t i = 1; i < pending.size(); ++i)
        if (pending[i].time < pending[best].time ||
            (pending[i].time == pending[best].time &&
             pending[i].cls < pending[best].cls))
          best = i;
      const auto event = q.pop();
      EXPECT_EQ(event.time, pending[best].time);
      EXPECT_EQ(event.priority_class(), pending[best].cls);
      EXPECT_EQ(event.payload, pending[best].tag);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }
  while (!pending.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i)
      if (pending[i].time < pending[best].time ||
          (pending[i].time == pending[best].time &&
           pending[i].cls < pending[best].cls))
        best = i;
    EXPECT_EQ(q.pop().payload, pending[best].tag);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(best));
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace bfsim::sim
