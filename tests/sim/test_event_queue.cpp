#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace bfsim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(30, 0, 3);
  q.push(10, 0, 1);
  q.push(20, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PriorityClassBreaksTimeTies) {
  EventQueue<std::string> q;
  q.push(5, 1, "submit");
  q.push(5, 0, "finish");
  EXPECT_EQ(q.pop().payload, "finish");
  EXPECT_EQ(q.pop().payload, "submit");
}

TEST(EventQueue, InsertionOrderBreaksFullTies) {
  EventQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(7, 0, i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(1, 0, 1);
  q.push(2, 0, 2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, TopDoesNotRemove) {
  EventQueue<int> q;
  q.push(1, 0, 42);
  EXPECT_EQ(q.top().payload, 42);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().payload, 42);
}

TEST(EventQueue, MixedOrderingMatchesSpecification) {
  EventQueue<int> q;
  q.push(10, 1, 0);  // time 10, class 1, seq 0
  q.push(10, 0, 1);  // earlier class wins at same time
  q.push(9, 2, 2);   // earlier time wins regardless of class
  q.push(10, 0, 3);  // same (time, class) as #1 -> after it
  const std::vector<int> expected{2, 1, 3, 0};
  for (int want : expected) EXPECT_EQ(q.pop().payload, want);
}

TEST(EventQueue, NegativeTimesSupported) {
  EventQueue<int> q;
  q.push(-5, 0, 1);
  q.push(0, 0, 2);
  EXPECT_EQ(q.pop().payload, 1);
}

TEST(EventQueue, MovesPayloads) {
  EventQueue<std::unique_ptr<int>> q;
  q.push(1, 0, std::make_unique<int>(9));
  auto event = q.pop();
  ASSERT_TRUE(event.payload);
  EXPECT_EQ(*event.payload, 9);
}

}  // namespace
}  // namespace bfsim::sim
