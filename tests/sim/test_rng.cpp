#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace bfsim::sim {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoubleInHalfOpenUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, OpenDoubleNeverZero) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.next_open_double(), 0.0);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(-2, 3);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 3);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntApproximatelyUnbiased) {
  Rng rng{11};
  std::array<int, 5> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{5};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 0.5);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.log_uniform(10.0, 10000.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 10000.0);
  }
}

TEST(Rng, LogUniformMedianIsGeometricMean) {
  Rng rng{6};
  int below = 0;
  const int n = 100000;
  const double geo = std::sqrt(10.0 * 10000.0);  // 316.2
  for (int i = 0; i < n; ++i)
    if (rng.log_uniform(10.0, 10000.0) < geo) ++below;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{8};
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GammaMomentsMatch) {
  Rng rng{9};
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.1);         // 6
  EXPECT_NEAR(var, shape * scale * scale, 0.5);  // 12
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng{10};
  const double shape = 0.5, scale = 1.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape, scale);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GammaRejectsBadParameters) {
  Rng rng{1};
  EXPECT_THROW((void)rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.gamma(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, HyperGammaMixesComponents) {
  Rng rng{12};
  // p=0: always the second component.
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.hyper_gamma(0.0, 1.0, 1.0, 4.0, 5.0);
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{13};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng{14};
  const std::array<double, 3> weights{1.0, 2.0, 1.0};
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.25, 0.01);
}

TEST(Rng, DiscreteSkipsZeroWeights) {
  Rng rng{15};
  const std::array<double, 3> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.discrete(weights), 1u);
}

TEST(Rng, DiscreteRejectsAllZero) {
  Rng rng{15};
  const std::array<double, 2> weights{0.0, 0.0};
  EXPECT_THROW((void)rng.discrete(weights), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{77};
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a{77};
  Rng b{77};
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace bfsim::sim
