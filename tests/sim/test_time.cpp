// Overflow-contract tests for sim::Time (sim/time.hpp): every timestamp
// + duration sum on a hot path goes through saturating_add /
// saturating_sub, which must clamp instead of wrapping. These run under
// UBSan in CI, so a regression to plain `+`/`-` on attacker-sized
// operands fails twice: once here on the clamped values, and once as a
// signed-overflow report. (tools/bfsim_lint catches it a third time,
// statically.)
#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace bfsim::sim {
namespace {

TEST(SaturatingAdd, PlainSumsAreExact) {
  EXPECT_EQ(saturating_add(0, 0), 0);
  EXPECT_EQ(saturating_add(100, 23), 123);
  EXPECT_EQ(saturating_add(kDay, kWeek), kDay + kWeek);
  EXPECT_EQ(saturating_add(-50, 20), -30);
}

TEST(SaturatingAdd, ClampsAtTheFarFuture) {
  EXPECT_EQ(saturating_add(kTimeMax, 1), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax, kTimeMax), kTimeMax);
  EXPECT_EQ(saturating_add(1, kTimeMax), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax - 10, 10), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax - 10, 11), kTimeMax);
}

TEST(SaturatingAdd, ClampsBelowAsWell) {
  constexpr Time kMin = std::numeric_limits<Time>::min();
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  EXPECT_EQ(saturating_add(kMin + 5, -6), kMin);
}

TEST(SaturatingAdd, SaturatedValueActsAsInfinity) {
  // The contract the profile relies on: once clamped, adding more time
  // stays at kTimeMax, and kTimeMax compares at-or-after every
  // representable instant.
  const Time far = saturating_add(kTimeMax - 3, kWeek);
  EXPECT_EQ(far, kTimeMax);
  EXPECT_EQ(saturating_add(far, kDay), kTimeMax);
  EXPECT_GE(far, kTimeMax - 1);
}

TEST(SaturatingAdd, NeverDecreasesForNonNegativeAddend) {
  // Property: saturating_add(a, b) >= a whenever b >= 0 -- the shape of
  // every deadline computation (start + estimate, now + delay). A plain
  // `+` violates this exactly when it wraps.
  constexpr Time kMin = std::numeric_limits<Time>::min();
  const Time as[] = {kMin, kMin + 1, -kWeek, -1, 0,
                     1,    kDay,     kWeek,  kTimeMax - 1, kTimeMax};
  const Time bs[] = {0, 1, kSecond, kHour, kDay, kTimeMax - 1, kTimeMax};
  for (const Time a : as)
    for (const Time b : bs)
      EXPECT_GE(saturating_add(a, b), a) << "a=" << a << " b=" << b;
}

TEST(SaturatingSub, PlainDifferencesAreExact) {
  EXPECT_EQ(saturating_sub(0, 0), 0);
  EXPECT_EQ(saturating_sub(123, 23), 100);
  EXPECT_EQ(saturating_sub(kWeek, kDay), kWeek - kDay);
  EXPECT_EQ(saturating_sub(20, 50), -30);
  EXPECT_EQ(saturating_sub(-50, -20), -30);
}

TEST(SaturatingSub, ClampsBelow) {
  constexpr Time kMin = std::numeric_limits<Time>::min();
  EXPECT_EQ(saturating_sub(kMin, 1), kMin);
  EXPECT_EQ(saturating_sub(kMin, kTimeMax), kMin);
  EXPECT_EQ(saturating_sub(kMin + 5, 6), kMin);
  EXPECT_EQ(saturating_sub(-2, kTimeMax), kMin);
}

TEST(SaturatingSub, ClampsAtTheFarFutureForNegativeSubtrahend) {
  // Subtracting a negative duration is addition; near the top it must
  // pin at kTimeMax, not wrap to the distant past.
  constexpr Time kMin = std::numeric_limits<Time>::min();
  EXPECT_EQ(saturating_sub(kTimeMax, -1), kTimeMax);
  EXPECT_EQ(saturating_sub(kTimeMax - 10, -11), kTimeMax);
  EXPECT_EQ(saturating_sub(1, kMin), kTimeMax);
  EXPECT_EQ(saturating_sub(0, kMin), kTimeMax);
}

TEST(SaturatingSub, NeverIncreasesForNonNegativeSubtrahend) {
  // Mirror property: saturating_sub(a, b) <= a whenever b >= 0 -- the
  // shape of every wait-time computation (start - submit).
  constexpr Time kMin = std::numeric_limits<Time>::min();
  const Time as[] = {kMin, kMin + 1, -kWeek, -1, 0,
                     1,    kDay,     kWeek,  kTimeMax - 1, kTimeMax};
  const Time bs[] = {0, 1, kSecond, kHour, kDay, kTimeMax - 1, kTimeMax};
  for (const Time a : as)
    for (const Time b : bs)
      EXPECT_LE(saturating_sub(a, b), a) << "a=" << a << " b=" << b;
}

TEST(SaturatingSub, RoundTripsWithAddAwayFromTheRails) {
  // In the unsaturated interior, sub undoes add exactly.
  EXPECT_EQ(saturating_sub(saturating_add(kDay, kHour), kHour), kDay);
  EXPECT_EQ(saturating_add(saturating_sub(kWeek, kMinute), kMinute), kWeek);
}

TEST(CheckedSum, AccumulatesAndClamps) {
  checked::Sum acc{100};
  acc += 23;
  EXPECT_EQ(acc.value(), 123);
  acc -= 23;
  EXPECT_EQ(acc.value(), 100);
  acc += kTimeMax;
  EXPECT_EQ(acc.value(), kTimeMax);
  acc += kDay;  // pinned, not re-entering the representable range
  EXPECT_EQ(acc.value(), kTimeMax);
  acc -= 1;
  EXPECT_EQ(acc.value(), kTimeMax - 1);
}

TEST(CheckedAdd, FoldsLeftToRightWithSaturation) {
  EXPECT_EQ(checked::add(1, 2), 3);
  EXPECT_EQ(checked::add(1, 2, 3), 6);
  EXPECT_EQ(checked::add(1, 2, 3, 4), 10);
  // A chain that saturates stays pinned at kTimeMax even if later terms
  // are zero or the fold continues.
  EXPECT_EQ(checked::add(kTimeMax - 1, 5, 0), kTimeMax);
  EXPECT_EQ(checked::add(kTimeMax, kTimeMax, kTimeMax), kTimeMax);
}

TEST(CheckedSub, MatchesSaturatingSub) {
  EXPECT_EQ(checked::sub(50, 20), 30);
  EXPECT_EQ(checked::sub(std::numeric_limits<Time>::min(), 1),
            std::numeric_limits<Time>::min());
}

TEST(CheckedElapsed, FloorsAtZero) {
  EXPECT_EQ(checked::elapsed(100, 40), 60);
  EXPECT_EQ(checked::elapsed(40, 100), 0);  // clock inversion: no time
  EXPECT_EQ(checked::elapsed(0, kTimeMax), 0);
  EXPECT_EQ(checked::elapsed(kTimeMax, 0), kTimeMax);
  // kNoTime sentinels subtracted from real stamps must not produce a
  // bogus huge wait.
  EXPECT_EQ(checked::elapsed(kNoTime, 50), 0);
}

}  // namespace
}  // namespace bfsim::sim
