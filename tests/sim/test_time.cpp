// Overflow-contract tests for sim::Time (sim/time.hpp): every timestamp
// + duration sum on a hot path goes through saturating_add, which must
// clamp instead of wrapping. These run under UBSan in CI, so a
// regression to plain `+` on attacker-sized operands fails twice: once
// here on the clamped values, and once as a signed-overflow report.
#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace bfsim::sim {
namespace {

TEST(SaturatingAdd, PlainSumsAreExact) {
  EXPECT_EQ(saturating_add(0, 0), 0);
  EXPECT_EQ(saturating_add(100, 23), 123);
  EXPECT_EQ(saturating_add(kDay, kWeek), kDay + kWeek);
  EXPECT_EQ(saturating_add(-50, 20), -30);
}

TEST(SaturatingAdd, ClampsAtTheFarFuture) {
  EXPECT_EQ(saturating_add(kTimeMax, 1), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax, kTimeMax), kTimeMax);
  EXPECT_EQ(saturating_add(1, kTimeMax), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax - 10, 10), kTimeMax);
  EXPECT_EQ(saturating_add(kTimeMax - 10, 11), kTimeMax);
}

TEST(SaturatingAdd, ClampsBelowAsWell) {
  constexpr Time kMin = std::numeric_limits<Time>::min();
  EXPECT_EQ(saturating_add(kMin, -1), kMin);
  EXPECT_EQ(saturating_add(kMin, kMin), kMin);
  EXPECT_EQ(saturating_add(kMin + 5, -6), kMin);
}

TEST(SaturatingAdd, SaturatedValueActsAsInfinity) {
  // The contract the profile relies on: once clamped, adding more time
  // stays at kTimeMax, and kTimeMax compares at-or-after every
  // representable instant.
  const Time far = saturating_add(kTimeMax - 3, kWeek);
  EXPECT_EQ(far, kTimeMax);
  EXPECT_EQ(saturating_add(far, kDay), kTimeMax);
  EXPECT_GE(far, kTimeMax - 1);
}

}  // namespace
}  // namespace bfsim::sim
