#include "metrics/aggregate.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "test_support.hpp"

namespace bfsim::metrics {
namespace {

using core::JobOutcome;
using core::Trace;
using test::JobSpec;
using test::make_trace;

JobOutcome outcome(sim::Time submit, sim::Time start, sim::Time runtime,
                   int procs, sim::Time estimate = 0) {
  JobOutcome o;
  o.job.submit = submit;
  o.job.runtime = runtime;
  o.job.estimate = estimate == 0 ? runtime : estimate;
  o.job.procs = procs;
  o.start = start;
  o.end = start + std::min(o.job.runtime, o.job.estimate);
  o.killed = o.job.runtime > o.job.estimate;
  return o;
}

TEST(BoundedSlowdown, NoWaitIsOne) {
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(0, 0, 100, 1)), 1.0);
}

TEST(BoundedSlowdown, Formula) {
  // wait 100, runtime 100 -> (100 + 100) / 100 = 2.
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(0, 100, 100, 1)), 2.0);
}

TEST(BoundedSlowdown, ThresholdBoundsShortJobs) {
  // runtime 1 s, wait 9 s: unbounded slowdown would be 10;
  // bounded with tau=10: (9 + 10) / 10 = 1.9.
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(0, 9, 1, 1)), 1.9);
  // Custom threshold.
  EXPECT_DOUBLE_EQ(bounded_slowdown(outcome(0, 9, 1, 1), 1), 10.0);
}

TEST(BoundedSlowdown, UsesEffectiveRuntimeForKilledJobs) {
  // runtime 500, estimate 100 -> killed at 100; wait 50.
  const JobOutcome o = outcome(0, 50, 500, 1, 100);
  EXPECT_TRUE(o.killed);
  EXPECT_DOUBLE_EQ(bounded_slowdown(o), (50.0 + 100.0) / 100.0);
}

core::SimulationResult as_result(std::vector<JobOutcome> outcomes) {
  core::SimulationResult result;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    outcomes[i].job.id = static_cast<core::JobId>(i);
    result.makespan = std::max(result.makespan, outcomes[i].end);
  }
  result.outcomes = std::move(outcomes);
  return result;
}

TEST(Metrics, OverallAggregation) {
  const auto result = as_result({
      outcome(0, 0, 100, 2),    // slowdown 1, turnaround 100
      outcome(0, 100, 100, 2),  // slowdown 2, turnaround 200
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.overall.count(), 2u);
  EXPECT_DOUBLE_EQ(m.overall.slowdown.mean(), 1.5);
  EXPECT_DOUBLE_EQ(m.overall.turnaround.mean(), 150.0);
  EXPECT_DOUBLE_EQ(m.overall.turnaround.max(), 200.0);
  EXPECT_DOUBLE_EQ(m.overall.wait.mean(), 50.0);
  EXPECT_EQ(m.killed_jobs, 0u);
}

TEST(Metrics, CategoryBreakdown) {
  const auto result = as_result({
      outcome(0, 0, 100, 1),     // SN
      outcome(0, 0, 100, 64),    // SW
      outcome(0, 0, 7200, 2),    // LN
      outcome(0, 0, 7200, 64),   // LW
      outcome(0, 0, 7200, 64),   // LW
  });
  const Metrics m = compute_metrics(result, 128);
  EXPECT_EQ(m.category(workload::Category::ShortNarrow).count(), 1u);
  EXPECT_EQ(m.category(workload::Category::ShortWide).count(), 1u);
  EXPECT_EQ(m.category(workload::Category::LongNarrow).count(), 1u);
  EXPECT_EQ(m.category(workload::Category::LongWide).count(), 2u);
}

TEST(Metrics, EstimateQualityFromJobsByDefault) {
  const auto result = as_result({
      outcome(0, 0, 100, 1, 150),   // well (<= 2x)
      outcome(0, 0, 100, 1, 300),   // poor
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.estimate_class(workload::EstimateQuality::Well).count(), 1u);
  EXPECT_EQ(m.estimate_class(workload::EstimateQuality::Poor).count(), 1u);
}

TEST(Metrics, ExternalLabelsOverrideClassification) {
  const auto result = as_result({
      outcome(0, 0, 100, 1),  // exact estimate: would classify Well
      outcome(0, 0, 100, 1),
  });
  const std::vector<workload::EstimateQuality> labels{
      workload::EstimateQuality::Poor, workload::EstimateQuality::Poor};
  const Metrics m = compute_metrics(result, 4, {}, &labels);
  EXPECT_EQ(m.estimate_class(workload::EstimateQuality::Well).count(), 0u);
  EXPECT_EQ(m.estimate_class(workload::EstimateQuality::Poor).count(), 2u);
}

TEST(Metrics, LabelCountMismatchThrows) {
  const auto result = as_result({outcome(0, 0, 100, 1)});
  const std::vector<workload::EstimateQuality> labels;
  EXPECT_THROW((void)compute_metrics(result, 4, {}, &labels),
               std::invalid_argument);
}

TEST(Metrics, SkipHeadAndTailTrimsPopulation) {
  std::vector<JobOutcome> outcomes;
  for (int i = 0; i < 10; ++i) outcomes.push_back(outcome(i, i, 100, 1));
  const auto result = as_result(std::move(outcomes));
  MetricsOptions options;
  options.skip_head = 3;
  options.skip_tail = 2;
  const Metrics m = compute_metrics(result, 4, options);
  EXPECT_EQ(m.overall.count(), 5u);
}

TEST(Metrics, SkipMoreThanPopulationYieldsEmpty) {
  const auto result = as_result({outcome(0, 0, 100, 1)});
  MetricsOptions options;
  options.skip_head = 5;
  const Metrics m = compute_metrics(result, 4, options);
  EXPECT_EQ(m.overall.count(), 0u);
}

TEST(Metrics, KilledJobsCounted) {
  const auto result = as_result({
      outcome(0, 0, 500, 1, 100),  // killed
      outcome(0, 0, 100, 1),
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.killed_jobs, 1u);
}

TEST(Metrics, UtilizationAndMakespanForwarded) {
  const auto result = as_result({outcome(0, 0, 100, 2)});
  const Metrics m = compute_metrics(result, 4);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
  EXPECT_EQ(m.makespan, 100);
}

TEST(Metrics, EstimateLabelsHelper) {
  const Trace trace = make_trace({
      {.submit = 0, .runtime = 100, .procs = 1, .estimate = 100},
      {.submit = 1, .runtime = 100, .procs = 1, .estimate = 900},
  });
  const auto labels = estimate_labels(trace);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], workload::EstimateQuality::Well);
  EXPECT_EQ(labels[1], workload::EstimateQuality::Poor);
}

TEST(Metrics, BackfillRateCountsLeapfrogs) {
  // Submit order 0,1,2,3; job 2 starts before job 1 -> one leapfrog.
  const auto result = as_result({
      outcome(0, 0, 100, 1),     // starts 0
      outcome(10, 500, 100, 1),  // starts 500 (blocked)
      outcome(20, 30, 100, 1),   // starts 30 -> leapfrogs job 1
      outcome(30, 600, 100, 1),  // starts 600 -> in order
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.backfilled_jobs, 1u);
  EXPECT_DOUBLE_EQ(m.backfill_rate(), 0.25);
}

TEST(Metrics, BackfillRateZeroForInOrderStarts) {
  const auto result = as_result({
      outcome(0, 0, 100, 1),
      outcome(10, 100, 100, 1),
      outcome(20, 200, 100, 1),
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.backfilled_jobs, 0u);
  EXPECT_DOUBLE_EQ(m.backfill_rate(), 0.0);
}

TEST(Metrics, BackfillRateSeesLeapfrogsOverTrimmedHead) {
  // Job 0 is trimmed out of the statistics but still counts as the
  // earlier arrival that job 1 leapfrogs.
  const auto result = as_result({
      outcome(0, 900, 100, 1),  // trimmed, starts late
      outcome(10, 20, 100, 1),  // leapfrogs job 0
  });
  MetricsOptions options;
  options.skip_head = 1;
  const Metrics m = compute_metrics(result, 4, options);
  EXPECT_EQ(m.overall.count(), 1u);
  EXPECT_EQ(m.backfilled_jobs, 1u);
}

TEST(Metrics, SlowdownSampleMatchesRunningStats) {
  const auto result = as_result({
      outcome(0, 0, 100, 1),
      outcome(0, 100, 100, 1),
      outcome(0, 300, 100, 1),
  });
  const Metrics m = compute_metrics(result, 4);
  ASSERT_EQ(m.slowdowns.count(), 3u);
  EXPECT_NEAR(m.slowdowns.mean(), m.overall.slowdown.mean(), 1e-12);
  EXPECT_DOUBLE_EQ(m.slowdowns.max(), 4.0);  // (300+100)/100
  EXPECT_DOUBLE_EQ(m.slowdowns.median(), 2.0);
}

JobOutcome cancelled_outcome(sim::Time submit) {
  JobOutcome o;
  o.job.submit = submit;
  o.job.runtime = 100;
  o.job.estimate = 100;
  o.job.procs = 1;
  o.cancelled = true;  // start/end stay kNoTime
  return o;
}

TEST(Metrics, CancelledJobsCountedButNeverAggregated) {
  // A cancelled outcome has start == end == kNoTime; folding it into any
  // statistic would inject kNoTime - submit garbage. It must show up in
  // cancelled_jobs and nowhere else.
  const auto result = as_result({
      outcome(0, 0, 100, 1),
      cancelled_outcome(10),
      outcome(20, 120, 100, 1),
  });
  const Metrics m = compute_metrics(result, 4);
  EXPECT_EQ(m.cancelled_jobs, 1u);
  EXPECT_EQ(m.overall.count(), 2u);
  EXPECT_EQ(m.slowdowns.count(), 2u);
  EXPECT_GE(m.overall.wait.mean(), 0.0);
  EXPECT_GE(m.overall.slowdown.mean(), 1.0);
}

TEST(Metrics, CancelledJobsRespectTheWarmupWindow) {
  // Cancelled jobs inside the skipped head are context, not statistics:
  // neither aggregated nor counted.
  const auto result = as_result({
      cancelled_outcome(0),  // trimmed
      outcome(10, 10, 100, 1),
      cancelled_outcome(20),  // counted
  });
  MetricsOptions options;
  options.skip_head = 1;
  const Metrics m = compute_metrics(result, 4, options);
  EXPECT_EQ(m.cancelled_jobs, 1u);
  EXPECT_EQ(m.overall.count(), 1u);
}

TEST(Metrics, OutcomeAccessorsAssertOnJobsThatNeverRan) {
  // Debug builds make wait()/turnaround()/effective_runtime() on a
  // never-started outcome fatal instead of returning kNoTime - submit.
  const JobOutcome o = cancelled_outcome(10);
  EXPECT_DEBUG_DEATH((void)o.wait(), "never started");
  EXPECT_DEBUG_DEATH((void)o.turnaround(), "never finished");
  EXPECT_DEBUG_DEATH((void)o.effective_runtime(), "never ran");
}

TEST(Metrics, EmptyBackfillRateIsZero) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.backfill_rate(), 0.0);
}

TEST(Metrics, CustomSlowdownThreshold) {
  const auto result = as_result({outcome(0, 9, 1, 1)});
  MetricsOptions options;
  options.slowdown_threshold = 1;
  const Metrics m = compute_metrics(result, 4, options);
  EXPECT_DOUBLE_EQ(m.overall.slowdown.mean(), 10.0);
}

}  // namespace
}  // namespace bfsim::metrics
