#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "exp/runner.hpp"
#include "test_support.hpp"

namespace bfsim::metrics {
namespace {

Metrics sample_metrics() {
  const core::Trace trace = test::random_trace(300, 16, 42, true);
  const auto result = core::run_simulation(
      trace, core::SchedulerKind::Easy,
      core::SchedulerConfig{16, core::PriorityPolicy::Fcfs});
  return compute_metrics(result, 16);
}

TEST(Report, SummaryLineContainsKeyNumbers) {
  const Metrics m = sample_metrics();
  const std::string line = summary_line(m);
  EXPECT_NE(line.find("n=300"), std::string::npos);
  EXPECT_NE(line.find("slowdown="), std::string::npos);
  EXPECT_NE(line.find("turnaround="), std::string::npos);
  EXPECT_NE(line.find("util="), std::string::npos);
}

TEST(Report, BreakdownTableHasAllCategoriesAndTotal) {
  const Metrics m = sample_metrics();
  const util::Table table = breakdown_table(m, "test breakdown");
  const std::string out = table.str();
  for (const char* label : {"SN", "SW", "LN", "LW", "all"})
    EXPECT_NE(out.find(label), std::string::npos) << label;
  EXPECT_NE(out.find("test breakdown"), std::string::npos);
  EXPECT_EQ(table.row_count(), 5u);
}

TEST(Report, BreakdownHandlesEmptyCategories) {
  Metrics empty;
  const util::Table table = breakdown_table(empty, "empty");
  const std::string out = table.str();
  EXPECT_NE(out.find("-"), std::string::npos);  // placeholder cells
}

TEST(Report, TailSummaryContainsPercentiles) {
  const Metrics m = sample_metrics();
  const std::string line = tail_summary(m);
  for (const char* token : {"p50=", "p95=", "p99=", "max=", "backfilled="})
    EXPECT_NE(line.find(token), std::string::npos) << token;
}

TEST(Report, TailSummaryHandlesEmpty) {
  const Metrics empty;
  EXPECT_EQ(tail_summary(empty), "no jobs");
}

TEST(Report, RelativeChange) {
  EXPECT_DOUBLE_EQ(relative_change(10.0, 15.0), 0.5);
  EXPECT_DOUBLE_EQ(relative_change(10.0, 5.0), -0.5);
  EXPECT_DOUBLE_EQ(relative_change(0.0, 5.0), 0.0);  // guarded
}

}  // namespace
}  // namespace bfsim::metrics
