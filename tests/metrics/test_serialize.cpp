// metrics::encode_metrics / decode_metrics -- the exact-state codec
// under the sweep checkpoint journal. The property that matters is
// bit-exactness: a decoded Metrics must be indistinguishable from the
// original, both through metrics_json and through further merging.
#include "metrics/serialize.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "metrics/report.hpp"
#include "util/error.hpp"

namespace bfsim::metrics {
namespace {

Metrics sample_metrics(std::uint64_t seed) {
  exp::Scenario s;
  s.trace = exp::TraceKind::Sdsc;
  s.jobs = 120;
  s.load = exp::kHighLoad;
  s.scheduler = core::SchedulerKind::Easy;
  s.priority = core::PriorityPolicy::Fcfs;
  s.seed = seed;
  return exp::run_scenario(s, {});
}

TEST(MetricsSerialize, RoundTripIsByteIdenticalThroughJson) {
  const Metrics original = sample_metrics(1);
  const Metrics decoded = decode_metrics(encode_metrics(original));
  EXPECT_EQ(metrics_json(decoded), metrics_json(original));
  // And the codec itself is a fixed point: re-encoding the decoded
  // state reproduces the exact blob.
  EXPECT_EQ(encode_metrics(decoded), encode_metrics(original));
}

TEST(MetricsSerialize, DecodedMetricsMergeLikeTheOriginals) {
  const Metrics a = sample_metrics(1);
  const Metrics b = sample_metrics(2);
  Metrics merged_live;
  merged_live.merge(a);
  merged_live.merge(b);
  Metrics merged_replayed;
  merged_replayed.merge(decode_metrics(encode_metrics(a)));
  merged_replayed.merge(decode_metrics(encode_metrics(b)));
  EXPECT_EQ(metrics_json(merged_replayed), metrics_json(merged_live));
}

TEST(MetricsSerialize, EmptyMetricsRoundTrip) {
  const Metrics empty;
  const Metrics decoded = decode_metrics(encode_metrics(empty));
  EXPECT_EQ(metrics_json(decoded), metrics_json(empty));
  // A decoded empty accumulator must still merge as a no-op.
  Metrics target = sample_metrics(1);
  const std::string golden = metrics_json(target);
  target.merge(decoded);
  EXPECT_EQ(metrics_json(target), golden);
}

TEST(MetricsSerialize, MalformedInputThrowsParseError) {
  const std::string blob = encode_metrics(sample_metrics(1));
  EXPECT_THROW((void)decode_metrics(""), util::ParseError);
  EXPECT_THROW((void)decode_metrics(blob.substr(0, blob.size() / 2)),
               util::ParseError);
  EXPECT_THROW((void)decode_metrics(blob + " trailing"), util::ParseError);
  std::string garbled = blob;
  garbled[0] = 'x';
  EXPECT_THROW((void)decode_metrics(garbled), util::ParseError);
}

}  // namespace
}  // namespace bfsim::metrics
