// bfsim_replay -- replay client for the scheduling daemon.
//
// Drives a bfsim_served daemon from a job trace: arrivals, completions
// and cancellations become protocol frames, the daemon's decisions
// become starts, and the result is the same SimulationResult the
// in-process simulator produces. The trace comes from an SWF file
// (--swf, lenient ingest) or from the paper's synthetic generators
// (--trace ctc|sdsc|lublin with --jobs/--load/--seed/...).
//
//   bfsim_replay --connect /tmp/bfsim.sock --trace sdsc --jobs 2000
//       --scheduler easy --verify --json
//
// --verify additionally runs the identical trace through the
// in-process engine and demands a byte-identical schedule -- the
// command-line face of the served differential test wall.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/report.hpp"
#include "sim/failure.hpp"
#include "sim/rng.hpp"
#include "svc/client.hpp"
#include "workload/swf.hpp"
#include "workload/transforms.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: bfsim_replay --connect SOCKET [trace options] [run options]\n"
      "trace options:\n"
      "  --swf FILE            replay an SWF trace (lenient ingest)\n"
      "  --trace KIND          synthetic generator: ctc, sdsc, lublin\n"
      "  --jobs N              synthetic job count (default 2000)\n"
      "  --load RHO            offered load (<= 0 keeps generator arrivals)\n"
      "  --seed S              generator seed (default 1)\n"
      "  --estimate-factor R   systematic overestimate factor (default 1)\n"
      "  --cancel FRAC         cancel FRAC of queued jobs (default 0)\n"
      "run options:\n"
      "  --scheduler NAME      fcfs, easy, conservative, kres, selective, "
      "slack, plan\n"
      "  --priority NAME       fcfs, sjf, xfactor\n"
      "  --procs N             machine size override\n"
      "  --burst-buffer N      machine burst-buffer capacity in GB "
      "(default 0)\n"
      "  --failure-trace FILE  inject node outages from a failure-trace "
      "file\n"
      "  --requeue POLICY      kill-requeue policy: full, remaining "
      "(default full)\n"
      "  --audit               daemon-side schedule auditor\n"
      "  --verify              diff against the in-process engine\n"
      "  --json                print the run's metrics as JSON\n");
}

struct Args {
  std::string connect;
  std::string swf;
  bfsim::exp::Scenario scenario;
  double cancel_fraction = 0.0;
  int procs_override = 0;
  int burst_buffer = 0;
  std::string failure_trace;
  bfsim::sim::RequeuePolicy requeue = bfsim::sim::RequeuePolicy::kResubmitFull;
  bool audit = false;
  bool verify = false;
  bool json = false;
};

bool parse_args(int argc, char** argv, Args& args) {
  args.scenario.trace = bfsim::exp::TraceKind::Sdsc;
  args.scenario.jobs = 2000;
  args.scenario.load = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--connect") args.connect = value();
    else if (arg == "--swf") args.swf = value();
    else if (arg == "--trace")
      args.scenario.trace = bfsim::exp::trace_kind_from_string(value());
    else if (arg == "--jobs")
      args.scenario.jobs = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--load")
      args.scenario.load = std::strtod(value().c_str(), nullptr);
    else if (arg == "--seed")
      args.scenario.seed = std::strtoull(value().c_str(), nullptr, 10);
    else if (arg == "--estimate-factor") {
      args.scenario.estimates.factor = std::strtod(value().c_str(), nullptr);
      args.scenario.estimates.regime =
          bfsim::exp::EstimateRegime::Systematic;
    } else if (arg == "--cancel")
      args.cancel_fraction = std::strtod(value().c_str(), nullptr);
    else if (arg == "--scheduler")
      args.scenario.scheduler = bfsim::core::scheduler_kind_from_string(value());
    else if (arg == "--priority")
      args.scenario.priority = bfsim::core::priority_from_string(value());
    else if (arg == "--procs")
      args.procs_override = static_cast<int>(std::strtol(value().c_str(),
                                                         nullptr, 10));
    else if (arg == "--burst-buffer")
      args.burst_buffer = static_cast<int>(std::strtol(value().c_str(),
                                                       nullptr, 10));
    else if (arg == "--failure-trace") args.failure_trace = value();
    else if (arg == "--requeue")
      args.requeue = bfsim::sim::requeue_policy_from_string(value());
    else if (arg == "--audit") args.audit = true;
    else if (arg == "--verify") args.verify = true;
    else if (arg == "--json") args.json = true;
    else throw std::invalid_argument("unknown option " + arg);
  }
  return !args.connect.empty();
}

bfsim::workload::Trace build_trace(const Args& args, int& procs) {
  if (!args.swf.empty()) {
    bfsim::workload::SwfParseOptions options;
    options.lenient = true;
    bfsim::workload::SwfParseReport report;
    const bfsim::workload::SwfFile file =
        bfsim::workload::read_swf_file(args.swf, options, &report);
    if (report.quarantined > 0)
      std::fprintf(stderr, "bfsim_replay: quarantined %zu SWF records\n",
                   report.quarantined);
    bfsim::workload::Trace trace = bfsim::workload::swf_to_jobs(file);
    procs = args.procs_override > 0
                ? args.procs_override
                : (file.header.max_procs > 0
                       ? static_cast<int>(file.header.max_procs)
                       : 128);
    return trace;
  }
  procs = args.procs_override > 0 ? args.procs_override
                                  : args.scenario.procs();
  bfsim::workload::Trace trace = bfsim::exp::build_workload(args.scenario);
  if (args.cancel_fraction > 0.0) {
    // Seed offset keeps cancellation draws independent of the
    // generator's stream (same convention as the experiment runner).
    bfsim::sim::Rng rng{args.scenario.seed + 0x9e3779b9ULL};
    bfsim::workload::apply_cancellations(trace, args.cancel_fraction, 2.0,
                                         rng);
  }
  return trace;
}

int connect_socket(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    ::close(fd);
    return -1;
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
#else
  (void)path;
  return -1;
#endif
}

/// Byte-level schedule equality: every outcome field of every job.
bool identical(const bfsim::core::SimulationResult& a,
               const bfsim::core::SimulationResult& b) {
  if (a.outcomes.size() != b.outcomes.size() || a.makespan != b.makespan ||
      a.events != b.events || a.passes != b.passes ||
      a.passes_skipped != b.passes_skipped || a.wakeups != b.wakeups ||
      a.max_queue != b.max_queue || a.scheduler_name != b.scheduler_name)
    return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const bfsim::core::JobOutcome& x = a.outcomes[i];
    const bfsim::core::JobOutcome& y = b.outcomes[i];
    if (x.start != y.start || x.end != y.end || x.killed != y.killed ||
        x.cancelled != y.cancelled || x.requeues != y.requeues ||
        x.first_start != y.first_start || x.requeue_wait != y.requeue_wait)
      return false;
  }
  return a.outages == b.outages && a.repairs == b.repairs &&
         a.kills == b.kills;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  try {
    if (!parse_args(argc, argv, args)) {
      usage();
      return 2;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bfsim_replay: %s\n", error.what());
    usage();
    return 2;
  }

  try {
    int procs = 0;
    const bfsim::workload::Trace trace = build_trace(args, procs);
    bfsim::sim::FailureTrace failures;
    if (!args.failure_trace.empty()) {
      failures = bfsim::sim::read_failure_trace_file(args.failure_trace);
      bfsim::sim::validate_failure_trace(failures, procs, args.burst_buffer);
    }

    bfsim::svc::HelloRequest hello;
    hello.kind = args.scenario.scheduler;
    hello.config.procs = procs;
    hello.config.priority = args.scenario.priority;
    hello.config.burst_buffer = args.burst_buffer;
    hello.extras = args.scenario.extras;
    hello.requeue = args.requeue;
    hello.audit = args.audit;

    const int fd = connect_socket(args.connect);
    if (fd < 0) {
      std::fprintf(stderr, "bfsim_replay: cannot connect to '%s'\n",
                   args.connect.c_str());
      return 1;
    }
    bfsim::svc::FdChannel channel{fd, fd};
    const bfsim::core::SimulationResult served = bfsim::svc::served_run(
        trace, channel, hello,
        args.failure_trace.empty() ? nullptr : &failures);
#if defined(__unix__) || defined(__APPLE__)
    ::close(fd);
#endif

    if (args.verify) {
      bfsim::core::SimulationOptions options;
      if (!args.failure_trace.empty()) options.failures = &failures;
      options.requeue = args.requeue;
      const bfsim::core::SimulationResult local = bfsim::core::run_simulation(
          trace, args.scenario.scheduler, hello.config, hello.extras,
          options);
      if (!identical(served, local)) {
        std::fprintf(stderr,
                     "bfsim_replay: VERIFY FAILED -- served schedule "
                     "diverges from the in-process engine\n");
        return 1;
      }
      std::fprintf(stderr,
                   "bfsim_replay: verified byte-identical with the "
                   "in-process engine (%zu jobs)\n",
                   served.outcomes.size());
    }

    std::fprintf(stderr,
                 "bfsim_replay: %s scheduled %zu jobs, makespan %lld, "
                 "%llu events, %llu passes, %llu outages, %llu kills\n",
                 served.scheduler_name.c_str(), served.outcomes.size(),
                 static_cast<long long>(served.makespan),
                 static_cast<unsigned long long>(served.events),
                 static_cast<unsigned long long>(served.passes),
                 static_cast<unsigned long long>(served.outages),
                 static_cast<unsigned long long>(served.kills));
    if (args.json) {
      const bfsim::metrics::Metrics metrics =
          bfsim::metrics::compute_metrics(served, procs);
      std::printf("%s\n", bfsim::metrics::metrics_json(metrics).c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "bfsim_replay: %s\n", error.what());
    return 1;
  }
}
