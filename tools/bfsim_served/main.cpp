// bfsim_served -- the online scheduling daemon.
//
// Speaks the line-delimited JSON protocol (src/svc/protocol.hpp) over
// a Unix-domain socket or stdin/stdout. One daemon hosts one
// scheduling session: the first client's `hello` fixes the scheduler
// configuration, and --state makes the session crash-safe -- every
// accepted frame is journaled to the event log before its reply is
// sent, so a killed daemon relaunched with the same --state replays
// the log into an identical scheduler and greets the client with the
// sequence number to resume from.
//
//   bfsim_served --socket /tmp/bfsim.sock --state /tmp/bfsim.log
//   bfsim_served --stdio
//
// In socket mode the daemon serves connections sequentially (the
// session outlives a dropped connection; a reconnecting client simply
// re-sends `hello`) and exits after a clean `bye`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/server.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bfsim_served (--socket PATH | --stdio) [--state PATH]\n"
               "                    [--queue N]\n"
               "  --socket PATH  listen on a Unix-domain socket\n"
               "  --stdio        serve one session over stdin/stdout\n"
               "  --state PATH   crash-safe event log (enables resume)\n"
               "  --queue N      inbound frame-queue bound (default 64)\n");
}

void print_report(const bfsim::svc::Session& session) {
  const bfsim::svc::ProtocolReport& report = session.report();
  std::fprintf(stderr, "bfsim_served: %llu frames, %llu rejected\n",
               static_cast<unsigned long long>(report.frames),
               static_cast<unsigned long long>(report.rejected));
  for (const auto& [reason, count] : report.reasons)
    std::fprintf(stderr, "bfsim_served:   %s: %llu\n", reason.c_str(),
                 static_cast<unsigned long long>(count));
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  bfsim::svc::SessionOptions session_options;
  bfsim::svc::ServeOptions serve_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--state") {
      session_options.state_path = value();
    } else if (arg == "--queue") {
      serve_options.queue_capacity =
          static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
      if (serve_options.queue_capacity == 0) serve_options.queue_capacity = 1;
    } else {
      usage();
      return 2;
    }
  }
  if (stdio == !socket_path.empty()) {  // exactly one transport required
    usage();
    return 2;
  }

  bfsim::svc::Session session{session_options};

  if (stdio) {
    bfsim::svc::serve_connection(0, 1, session, serve_options);
    print_report(session);
    return 0;
  }

#if defined(__unix__) || defined(__APPLE__)
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("bfsim_served: socket");
    return 1;
  }
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof address.sun_path) {
    std::fprintf(stderr, "bfsim_served: socket path too long\n");
    return 1;
  }
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ::unlink(socket_path.c_str());  // a previous daemon's leftover node
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) < 0) {
    std::perror("bfsim_served: bind");
    return 1;
  }
  if (::listen(listener, 1) < 0) {
    std::perror("bfsim_served: listen");
    return 1;
  }
  // Serve connections until a client ends the session with `bye`. A
  // dropped connection (client crash, network blip) keeps the session:
  // the client reconnects, re-sends `hello`, and resumes.
  while (true) {
    const int connection = ::accept(listener, nullptr, nullptr);
    if (connection < 0) {
      std::perror("bfsim_served: accept");
      break;
    }
    const bfsim::svc::ServeResult result =
        bfsim::svc::serve_connection(connection, connection, session,
                                     serve_options);
    ::close(connection);
    if (result.clean_bye) break;
  }
  ::close(listener);
  ::unlink(socket_path.c_str());
  print_report(session);
  return 0;
#else
  std::fprintf(stderr, "bfsim_served: socket mode is POSIX-only\n");
  return 1;
#endif
}
