// bfsim_lint -- project-specific static analysis for bfsim.
//
// Usage:
//   bfsim_lint --compdb build/compile_commands.json --root .
//   bfsim_lint --root . --assume-scope all tests/lint/fixtures/foo.cpp
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. Every finding
// is an error -- the lint CI job treats a non-zero exit as a failure,
// the same -Werror discipline the compiler warnings get.
#include <cstring>
#include <iostream>
#include <string>

#include "bfsim_lint/driver.hpp"

namespace {

constexpr const char* kUsage = R"(bfsim_lint: machine-check bfsim's time-overflow and determinism contracts

usage: bfsim_lint [options] [file...]

options:
  --compdb <path>        compile_commands.json listing the translation units
                         (headers under src/, bench/, examples/ are added
                         automatically; without --compdb those directories
                         are walked for sources too)
  --root <path>          project root (default: current directory)
  --check <name>         run only the named check; repeatable
                         (raw-time-arithmetic, nondeterminism, smallfn-capture)
  --assume-scope <mode>  auto: derive checks from each file's path (default)
                         all:  run every selected check on every file
                         (fixture self-tests use `all`)
  --list-checks          print the available checks and exit
  --quiet                print findings only, no summary
  -h, --help             this text

escape hatch: an audited site is suppressed with a justified annotation on
the flagged line or the line above, e.g.
  // bfsim-lint: unchecked-time -- proc-count delta, not a timestamp
)";

}  // namespace

int main(int argc, char** argv) {
  using bfsim::lint::Check;
  bfsim::lint::DriverOptions options;
  bool quiet = false;
  bool any_check_selected = false;
  bfsim::lint::CheckConfig selected{false, false, false};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bfsim_lint: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--list-checks") {
      for (Check check : {Check::kRawTimeArithmetic, Check::kNondeterminism,
                          Check::kSmallFnCapture})
        std::cout << bfsim::lint::check_name(check) << " (hatch: bfsim-lint: "
                  << bfsim::lint::check_hatch_tag(check) << ")\n";
      return 0;
    }
    if (arg == "--compdb") {
      options.compdb = next();
      continue;
    }
    if (arg == "--root") {
      options.root = next();
      continue;
    }
    if (arg == "--check") {
      const std::string name = next();
      any_check_selected = true;
      if (name == "raw-time-arithmetic")
        selected.raw_time = true;
      else if (name == "nondeterminism")
        selected.nondeterminism = true;
      else if (name == "smallfn-capture")
        selected.smallfn = true;
      else {
        std::cerr << "bfsim_lint: unknown check '" << name
                  << "' (see --list-checks)\n";
        return 2;
      }
      continue;
    }
    if (arg == "--assume-scope") {
      const std::string mode = next();
      if (mode == "auto")
        options.scope = bfsim::lint::ScopePolicy::kAuto;
      else if (mode == "all")
        options.scope = bfsim::lint::ScopePolicy::kAll;
      else {
        std::cerr << "bfsim_lint: unknown scope mode '" << mode << "'\n";
        return 2;
      }
      continue;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bfsim_lint: unknown option '" << arg << "'\n"
                << kUsage;
      return 2;
    }
    options.files.push_back(arg);
  }
  if (any_check_selected) options.checks = selected;

  try {
    bfsim::lint::Driver driver{options};
    const std::vector<bfsim::lint::Finding> findings = driver.run();
    for (const bfsim::lint::Finding& finding : findings)
      std::cout << finding.to_string() << "\n";
    if (!quiet) {
      std::cerr << "bfsim_lint: " << driver.files_checked()
                << " files checked, " << findings.size() << " finding"
                << (findings.size() == 1 ? "" : "s") << "\n";
    }
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }
}
