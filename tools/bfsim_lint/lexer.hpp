// bfsim-lint -- a C++ token stream for project-contract checking.
//
// The linter does not need a full C++ parser: the contracts it enforces
// (saturating Time arithmetic, deterministic containers and clocks,
// SmallFn capture hygiene) are all expressible over the token stream
// plus a declaration-derived symbol table. The lexer therefore handles
// exactly the lexical layer a real front end would -- comments, string
// and character literals, raw strings, pp-numbers, multi-character
// punctuators, preprocessor lines with continuations -- and leaves the
// grammar to the checks. Comment text is retained per line because the
// `// bfsim-lint: <tag> -- <why>` escape hatch lives in comments, and
// `#include` targets are retained so a file's symbol scope can be the
// union of the project headers it actually includes.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace bfsim::lint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords alike
  kNumber,      ///< pp-number: integers, floats, digit separators
  kString,      ///< string literal (incl. raw strings), prefix dropped
  kCharacter,   ///< character literal
  kPunct,       ///< operator / punctuator, longest-match
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based
};

/// One lexed translation-unit-shaped file.
struct LexedFile {
  std::vector<Token> tokens;
  /// Comment text by 1-based line. A comment is recorded on every line
  /// it covers, so an escape hatch inside a multi-line block comment
  /// still attaches to the code line it precedes.
  std::unordered_map<int, std::string> comments;
  /// Include targets as written (`core/audit.hpp`, `vector`, ...), in
  /// order of appearance. Quoted and angle forms are not distinguished:
  /// project headers are resolved against the repo root either way.
  std::vector<std::string> includes;
};

/// Lex `text`. Never throws on malformed input: an unterminated literal
/// or comment simply ends at EOF -- the real compiler is the authority
/// on well-formedness, the linter only needs to stay in sync on valid
/// code.
[[nodiscard]] LexedFile lex(const std::string& text);

/// True for tokens that terminate a value expression on their left
/// (identifier, literal, `)`, `]`) -- used to classify `+`/`-` as
/// binary vs unary.
[[nodiscard]] bool ends_value(const Token& token);

/// C++ keywords that look like identifiers but can never be a value
/// operand (`return`, `case`, `throw`, ...).
[[nodiscard]] bool is_keyword(const std::string& word);

}  // namespace bfsim::lint
