#include "bfsim_lint/checks.hpp"

#include <array>
#include <cctype>
#include <map>
#include <optional>

namespace bfsim::lint {

const char* check_name(Check check) {
  switch (check) {
    case Check::kRawTimeArithmetic:
      return "raw-time-arithmetic";
    case Check::kNondeterminism:
      return "nondeterminism";
    case Check::kSmallFnCapture:
      return "smallfn-capture";
  }
  return "?";
}

const char* check_hatch_tag(Check check) {
  switch (check) {
    case Check::kRawTimeArithmetic:
      return "unchecked-time";
    case Check::kNondeterminism:
      return "nondeterminism";
    case Check::kSmallFnCapture:
      return "smallfn-capture";
  }
  return "?";
}

std::string Finding::to_string() const {
  return file + ":" + std::to_string(line) + ":" + std::to_string(col) +
         ": error: [" + check_name(check) + "] " + message;
}

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) {
  return t.kind == TokenKind::kIdentifier && !is_keyword(t.text);
}

// ---------------------------------------------------------------------
// Escape hatches
// ---------------------------------------------------------------------

struct Hatch {
  std::vector<std::string> tags;
  bool justified = false;
};

bool known_tag(const std::string& tag) {
  return tag == "unchecked-time" || tag == "nondeterminism" ||
         tag == "smallfn-capture";
}

/// Parse every `bfsim-lint: tag[, tag...] -- justification` marker.
std::map<int, std::vector<Hatch>> parse_hatches(const LexedFile& file) {
  std::map<int, std::vector<Hatch>> out;
  static const std::string kMarker = "bfsim-lint:";
  for (const auto& [line, text] : file.comments) {
    std::size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
      pos += kMarker.size();
      Hatch hatch;
      while (pos < text.size()) {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
          ++pos;
        std::string tag;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) != 0 ||
                text[pos] == '-') &&
               // A justification delimiter is "--"; a tag never starts
               // with '-'.
               !(tag.empty() && text[pos] == '-')) {
          tag += text[pos];
          ++pos;
        }
        if (tag.empty()) break;
        hatch.tags.push_back(tag);
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
          ++pos;
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
      // Justification: " -- <non-empty text>" after the tag list.
      while (pos < text.size() &&
             std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
      if (pos + 1 < text.size() && text[pos] == '-' && text[pos + 1] == '-') {
        pos += 2;
        std::size_t rest = pos;
        while (rest < text.size() &&
               std::isspace(static_cast<unsigned char>(text[rest])))
          ++rest;
        hatch.justified = rest < text.size();
      }
      if (!hatch.tags.empty()) out[line].push_back(hatch);
    }
  }
  return out;
}

enum class HatchState { kNone, kJustified, kUnjustified };

HatchState hatch_for(const std::map<int, std::vector<Hatch>>& hatches,
                     int line, const std::string& tag) {
  for (int probe : {line, line - 1}) {
    const auto it = hatches.find(probe);
    if (it == hatches.end()) continue;
    for (const Hatch& hatch : it->second)
      for (const std::string& t : hatch.tags)
        if (t == tag)
          return hatch.justified ? HatchState::kJustified
                                 : HatchState::kUnjustified;
  }
  return HatchState::kNone;
}

// ---------------------------------------------------------------------
// Token-walk helpers
// ---------------------------------------------------------------------

/// Index of the opener matching the closer at `i` (`)` or `]`), or npos.
std::size_t match_back(const std::vector<Token>& toks, std::size_t i) {
  const bool paren = toks[i].text == ")";
  const char* open = paren ? "(" : "[";
  const char* close = paren ? ")" : "]";
  int depth = 0;
  for (std::size_t k = i + 1; k-- > 0;) {
    if (is_punct(toks[k], close))
      ++depth;
    else if (is_punct(toks[k], open)) {
      if (--depth == 0) return k;
    }
  }
  return std::string::npos;
}

/// Index of the closer matching the opener at `i`, or toks.size().
std::size_t match_fwd(const std::vector<Token>& toks, std::size_t i) {
  const std::string& open = toks[i].text;
  const char* close = open == "(" ? ")" : (open == "[" ? "]" : "}");
  int depth = 0;
  for (std::size_t k = i; k < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kPunct) continue;
    if (toks[k].text == open)
      ++depth;
    else if (toks[k].text == close) {
      if (--depth == 0) return k;
    }
  }
  return toks.size();
}

bool is_cast_keyword(const std::string& word) {
  return word == "static_cast" || word == "const_cast" ||
         word == "reinterpret_cast" || word == "dynamic_cast";
}

struct Operand {
  bool is_time = false;
  std::string name;  ///< the name the verdict hinged on, for messages
};

/// A call to `name` yields Time only when some declaration says so and
/// no other declaration of the same name returns a different type --
/// without sema an overload-split name is ambiguous, and ambiguity must
/// not flag (a false positive here cannot be fixed at the call site).
bool returns_time(const SymbolTable& scope, const std::string& name) {
  return scope.time_funcs.contains(name) && !scope.other_funcs.contains(name);
}

bool chrono_qualifier(const std::string& name) {
  return name == "chrono" || name == "steady_clock" ||
         name == "system_clock" || name == "high_resolution_clock";
}

/// True if the `::`-qualifier chain ending just before token `i` (the
/// callee / name token) mentions std::chrono machinery -- such calls
/// yield time_points and durations, not sim::Time.
bool chrono_qualified(const std::vector<Token>& toks, std::size_t i) {
  while (i >= 2 && is_punct(toks[i - 1], "::") &&
         toks[i - 2].kind == TokenKind::kIdentifier) {
    if (chrono_qualifier(toks[i - 2].text)) return true;
    i -= 2;
  }
  return false;
}

/// Resolve the operand ending immediately left of token `i`.
Operand resolve_left(const std::vector<Token>& toks, const SymbolTable& scope,
                     std::size_t i) {
  if (i == 0) return {};
  std::size_t k = i - 1;
  if (is_punct(toks[k], ")")) {
    const std::size_t open = match_back(toks, k);
    if (open == std::string::npos || open == 0) return {};
    const Token& before = toks[open - 1];
    if (before.kind == TokenKind::kIdentifier) {
      if (before.text == "Time") return {true, "Time(...)"};
      if (is_keyword(before.text)) return {};
      if (chrono_qualified(toks, open - 1)) return {};
      return {returns_time(scope, before.text), before.text + "(...)"};
    }
    if (is_punct(before, ">")) {
      // Template-id call: `name<...>(args)`. The verdict keys on the
      // final template argument: `static_cast<Time>(x)` and
      // `std::max<Time>(a, b)` are both Time-valued.
      if (open >= 2 && toks[open - 2].kind == TokenKind::kIdentifier &&
          toks[open - 2].text == "Time")
        return {true, "<Time>(...)"};
    }
    return {};
  }
  if (is_punct(toks[k], "]")) return {};  // element type unknown
  if (is_ident(toks[k]))
    return {scope.time_vars.contains(toks[k].text), toks[k].text};
  return {};
}

/// Resolve the operand starting immediately right of token `i`.
Operand resolve_right(const std::vector<Token>& toks, const SymbolTable& scope,
                      std::size_t i) {
  std::size_t j = i + 1;
  // Unary prefixes that preserve Time-ness.
  while (j < toks.size() &&
         (is_punct(toks[j], "+") || is_punct(toks[j], "-")))
    ++j;
  if (j >= toks.size()) return {};
  if (toks[j].kind != TokenKind::kIdentifier) return {};
  if (is_keyword(toks[j].text)) return {};

  std::string name = toks[j].text;
  bool time = false;
  bool cast_time = false;
  bool chrono = chrono_qualifier(name);
  ++j;
  // Qualified-name chain (`sim::saturating_add`, `std::max`).
  while (j + 1 < toks.size() && is_punct(toks[j], "::") &&
         toks[j + 1].kind == TokenKind::kIdentifier) {
    name = toks[j + 1].text;
    chrono = chrono || chrono_qualifier(name);
    j += 2;
  }
  if (chrono) return {};  // time_point / duration, not sim::Time
  // Explicit template arguments: `static_cast<Time>` / `max<Time>`.
  if (j < toks.size() && is_punct(toks[j], "<") &&
      (is_cast_keyword(name) || scope.time_funcs.contains(name) ||
       name == "max" || name == "min" || name == "exchange")) {
    int depth = 0;
    std::size_t last_ident = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(toks[j], "<"))
        ++depth;
      else if (is_punct(toks[j], ">")) {
        if (--depth == 0) {
          ++j;
          break;
        }
      } else if (toks[j].kind == TokenKind::kIdentifier) {
        last_ident = j;
      }
    }
    cast_time = last_ident != 0 && toks[last_ident].text == "Time";
  }
  if (j < toks.size() && is_punct(toks[j], "(")) {
    time = cast_time || returns_time(scope, name) || name == "Time";
    j = match_fwd(toks, j) + 1;
  } else {
    time = scope.time_vars.contains(name);
  }
  // Trailing member chain: `rec.start`, `job->estimate`, `f().value()`.
  while (j + 1 < toks.size() &&
         (is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
         toks[j + 1].kind == TokenKind::kIdentifier) {
    name = toks[j + 1].text;
    j += 2;
    if (j < toks.size() && is_punct(toks[j], "(")) {
      time = returns_time(scope, name);
      j = match_fwd(toks, j) + 1;
    } else {
      time = scope.time_vars.contains(name);
    }
  }
  return {time, name};
}

// ---------------------------------------------------------------------
// Check 1: raw Time arithmetic
// ---------------------------------------------------------------------

void check_raw_time(const std::string& path, const LexedFile& file,
                    const SymbolTable& scope, std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kPunct) continue;
    const bool plain = tok.text == "+" || tok.text == "-";
    const bool compound = tok.text == "+=" || tok.text == "-=";
    if (!plain && !compound) continue;
    // `operator+` declarations are definitions of arithmetic, not uses.
    if (i > 0 && toks[i - 1].kind == TokenKind::kIdentifier &&
        toks[i - 1].text == "operator")
      continue;
    if (plain && (i == 0 || !ends_value(toks[i - 1]))) continue;  // unary

    const Operand left = resolve_left(toks, scope, i);
    // For compound assignment only the left side picks the operator; a
    // checked::Sum += Time is exactly the blessed pattern.
    Operand hit;
    if (left.is_time) {
      hit = left;
    } else if (plain) {
      const Operand right = resolve_right(toks, scope, i);
      if (right.is_time) hit = right;
    }
    if (!hit.is_time) continue;
    const char* fix = (tok.text == "+" || tok.text == "+=")
                          ? "sim::saturating_add"
                          : "sim::saturating_sub";
    out.push_back(
        {Check::kRawTimeArithmetic, path, tok.line, tok.col,
         "raw '" + tok.text + "' on sim::Time operand '" + hit.name +
             "' can wrap; use " + fix +
             " (or sim::checked), or annotate the audited site with "
             "'// bfsim-lint: unchecked-time -- <why>'"});
  }
}

// ---------------------------------------------------------------------
// Check 2: nondeterminism
// ---------------------------------------------------------------------

/// Resolve the range expression of a range-for (`: expr )`): returns a
/// non-empty name iff the ranged entity is a known unordered container.
Operand resolve_range(const std::vector<Token>& toks, const SymbolTable& scope,
                      std::size_t colon, std::size_t close) {
  std::size_t j = colon + 1;
  std::string name;
  bool unordered = false;
  while (j < close) {
    if (toks[j].kind == TokenKind::kIdentifier) {
      name = toks[j].text;
      unordered = scope.unordered_vars.contains(name);
      ++j;
      continue;
    }
    if (is_punct(toks[j], "::") || is_punct(toks[j], ".") ||
        is_punct(toks[j], "->")) {
      ++j;
      continue;
    }
    if (is_punct(toks[j], "(")) {
      // A call result: type unknown (sorted views come from calls).
      return {};
    }
    break;
  }
  if (!unordered) return {};
  return {false, name};
}

bool std_or_global_qualified(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0 || !is_punct(toks[i - 1], "::")) return true;  // unqualified
  if (i == 1) return true;                                  // `::rand`
  const Token& qual = toks[i - 2];
  return qual.kind == TokenKind::kIdentifier &&
         (qual.text == "std" || qual.text == "chrono");
}

void check_nondeterminism(const std::string& path, const LexedFile& file,
                          const SymbolTable& scope,
                          std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  const auto flag = [&](const Token& tok, const std::string& message) {
    out.push_back({Check::kNondeterminism, path, tok.line, tok.col,
                   message +
                       "; derive behavior from the scenario seed / "
                       "deterministic state, or annotate with "
                       "'// bfsim-lint: nondeterminism -- <why>'"});
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kIdentifier) continue;
    // Member access (`rng.rand(...)`) is somebody's deterministic API,
    // not the libc entropy source.
    const bool member_access =
        i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (member_access) continue;
    const bool call = i + 1 < toks.size() && is_punct(toks[i + 1], "(");

    if ((tok.text == "rand" || tok.text == "srand") && call &&
        std_or_global_qualified(toks, i)) {
      flag(tok, "'" + tok.text +
                    "()' draws from global libc state; sweep results must "
                    "be byte-identical across runs and shards");
      continue;
    }
    if (tok.text == "random_device" && std_or_global_qualified(toks, i)) {
      flag(tok, "'std::random_device' is a nondeterministic entropy source");
      continue;
    }
    if ((tok.text == "system_clock" || tok.text == "high_resolution_clock") &&
        std_or_global_qualified(toks, i)) {
      flag(tok, "'std::chrono::" + tok.text +
                    "' reads the wall clock; simulation behavior may only "
                    "depend on sim::Time");
      continue;
    }
    if ((tok.text == "time" || tok.text == "gettimeofday" ||
         tok.text == "clock_gettime" || tok.text == "localtime" ||
         tok.text == "gmtime" || tok.text == "mktime") &&
        call && std_or_global_qualified(toks, i)) {
      // `time(` must be the libc call, not a local named `time` being
      // constructed -- a Time-typed or project-declared name wins.
      if (tok.text == "time" && (scope.time_vars.contains("time") ||
                                 scope.time_funcs.contains("time")))
        continue;
      flag(tok, "'" + tok.text + "()' reads the wall clock");
      continue;
    }

    // Range-for over an unordered container: iteration order is a
    // function of the hash seed and allocation history.
    if (tok.text == "for" && call) {
      const std::size_t close = match_fwd(toks, i + 1);
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
            is_punct(toks[j], "{"))
          ++depth;
        else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
                 is_punct(toks[j], "}"))
          --depth;
        else if (depth == 1 && is_punct(toks[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        const Operand range = resolve_range(toks, scope, colon, close);
        if (!range.name.empty())
          flag(toks[i], "range-for over unordered container '" + range.name +
                            "' has hash-seed-dependent order; iterate a "
                            "sorted view when results can reach output or "
                            "merge paths");
      }
      continue;
    }

    // Explicit begin()/end() on an unordered container feeding an
    // algorithm has the same order hazard as range-for.
    if (scope.unordered_vars.contains(tok.text) && i + 2 < toks.size() &&
        (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
        toks[i + 2].kind == TokenKind::kIdentifier) {
      // `it == jobs_.end()` is lookup, not iteration: only a begin()
      // can start an order-dependent traversal.
      const std::string& member = toks[i + 2].text;
      if (member == "begin" || member == "cbegin" || member == "rbegin")
        flag(tok, "iteration over unordered container '" + tok.text +
                      "' has hash-seed-dependent order");
    }
  }
}

// ---------------------------------------------------------------------
// Check 3: SmallFn capture hygiene
// ---------------------------------------------------------------------

void analyze_capture_list(const std::string& path,
                          const std::vector<Token>& toks, std::size_t sink,
                          std::size_t open, std::size_t close,
                          std::vector<Finding>& out);

void check_smallfn(const std::string& path, const LexedFile& file,
                   const SymbolTable& scope, std::vector<Finding>& out) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !scope.smallfn_sinks.contains(toks[i].text))
      continue;
    if (i + 1 >= toks.size() ||
        !(is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "{")))
      continue;
    // Skip the declaration itself (its group mentions SmallFn).
    const std::size_t close = match_fwd(toks, i + 1);
    bool is_decl = false;
    for (std::size_t j = i + 2; j < close; ++j)
      if (toks[j].kind == TokenKind::kIdentifier && toks[j].text == "SmallFn")
        is_decl = true;
    if (is_decl) continue;

    // Walk top-level arguments; lambdas start with '['.
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "{"))
        ++depth;
      else if (is_punct(toks[j], ")") || is_punct(toks[j], "}"))
        --depth;
      else if (depth == 1 && is_punct(toks[j], "[") &&
               (j == i + 2 || is_punct(toks[j - 1], ",") ||
                is_punct(toks[j - 1], "(") || is_punct(toks[j - 1], "{"))) {
        const std::size_t cap_close = match_fwd(toks, j);
        analyze_capture_list(path, toks, i, j, cap_close, out);
        j = cap_close;
      }
    }
  }
}

void analyze_capture_list(const std::string& path,
                          const std::vector<Token>& toks, std::size_t sink,
                          std::size_t open, std::size_t close,
                          std::vector<Finding>& out) {
  const auto flag = [&](const Token& at, const std::string& what) {
    out.push_back(
        {Check::kSmallFnCapture, path, at.line, at.col,
         what + " in a lambda handed to SmallFn sink '" + toks[sink].text +
             "'; the engine invokes it after the enclosing frame is gone -- "
             "capture explicitly by value (box shared state behind a "
             "pointer), or annotate with "
             "'// bfsim-lint: smallfn-capture -- <why>'"});
  };
  std::size_t item_start = open + 1;
  int depth = 0;
  for (std::size_t j = open + 1; j <= close; ++j) {
    const bool at_end = j == close;
    if (!at_end) {
      if (is_punct(toks[j], "(") || is_punct(toks[j], "[") ||
          is_punct(toks[j], "{"))
        ++depth;
      else if (is_punct(toks[j], ")") || is_punct(toks[j], "]") ||
               is_punct(toks[j], "}"))
        --depth;
    }
    if (!at_end && !(depth == 0 && is_punct(toks[j], ","))) continue;
    // One capture item: [item_start, j).
    if (item_start < j) {
      const Token& first = toks[item_start];
      const std::size_t len = j - item_start;
      if (is_punct(first, "&")) {
        flag(first, len == 1 ? "default by-reference capture '[&]'"
                             : "by-reference capture '&" +
                                   toks[item_start + 1].text + "'");
      } else if (is_punct(first, "=") && len == 1) {
        flag(first,
             "default capture '[=]' (hides what is captured; the 16-byte "
             "trivially-copyable budget wants explicit captures)");
      } else if (is_punct(first, "*") && len >= 2 &&
                 toks[item_start + 1].text == "this") {
        flag(first, "'[*this]' copies the whole object");
      }
    }
    item_start = j + 1;
  }
}

}  // namespace

std::vector<Finding> run_checks(const std::string& path, const LexedFile& file,
                                const SymbolTable& scope,
                                const CheckConfig& config) {
  std::vector<Finding> raw;
  if (config.raw_time) check_raw_time(path, file, scope, raw);
  if (config.nondeterminism) check_nondeterminism(path, file, scope, raw);
  if (config.smallfn) check_smallfn(path, file, scope, raw);

  const std::map<int, std::vector<Hatch>> hatches = parse_hatches(file);
  std::vector<Finding> out;
  // A hatch tag nobody recognizes is a typo that would silently fail to
  // suppress after a rename -- surface it.
  for (const auto& [line, line_hatches] : hatches)
    for (const Hatch& hatch : line_hatches)
      for (const std::string& tag : hatch.tags)
        if (!known_tag(tag))
          out.push_back({Check::kRawTimeArithmetic, path, line, 1,
                         "unknown bfsim-lint escape-hatch tag '" + tag +
                             "' (known: unchecked-time, nondeterminism, "
                             "smallfn-capture)"});
  for (Finding& finding : raw) {
    const std::string tag = check_hatch_tag(finding.check);
    switch (hatch_for(hatches, finding.line, tag)) {
      case HatchState::kJustified:
        break;  // audited site: suppressed
      case HatchState::kUnjustified:
        finding.message = "escape hatch '" + tag +
                          "' lacks a justification; write '// bfsim-lint: " +
                          tag + " -- <why this site is safe>'";
        out.push_back(std::move(finding));
        break;
      case HatchState::kNone:
        out.push_back(std::move(finding));
        break;
    }
  }
  return out;
}

}  // namespace bfsim::lint
