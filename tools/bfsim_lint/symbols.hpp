// bfsim-lint -- declaration-derived symbol table.
//
// The raw-time-arithmetic check needs to know which names denote
// sim::Time values. A full front end would answer that with sema; the
// linter answers it the way a reviewer does: by reading declarations.
// Every `Time name`-shaped declaration (variable, member, parameter,
// constant) registers `name` as Time-typed, every `Time name(`-shaped
// declaration registers a Time-returning function, and the same scan
// over `std::unordered_{map,set}<...> name` feeds the determinism
// check. A file's effective scope is the union of its own declarations
// and those of every project header it transitively includes, so an
// `int start` in an unrelated subsystem cannot demote `JobRecord::
// start` -- and within one scope a name declared Time anywhere is
// treated as Time (flag-leaning: a false positive is an annotation, a
// false negative is a silent wrap).
#pragma once

#include <string>
#include <unordered_set>

#include "bfsim_lint/lexer.hpp"

namespace bfsim::lint {

struct SymbolTable {
  /// Names declared with type Time (variables, members, parameters).
  std::unordered_set<std::string> time_vars;
  /// Names declared with some other `Type name`-shaped type. A file's
  /// own other-typed declarations demote same-named Time symbols leaked
  /// into scope by included headers (`std::string out` in a report
  /// writer vs. a `Time out` local in somebody's inline function).
  std::unordered_set<std::string> other_vars;
  /// Function names declared to return Time.
  std::unordered_set<std::string> time_funcs;
  /// Function names declared to return some other type. A name in both
  /// sets (an overload set split across classes, like a Time-returning
  /// `get` on one type and a string-returning `get` on another) is
  /// ambiguous without sema, so call sites of such names are not
  /// flagged.
  std::unordered_set<std::string> other_funcs;
  /// Names declared as std::unordered_map / std::unordered_set.
  std::unordered_set<std::string> unordered_vars;
  /// Functions with a SmallFn-typed parameter (callback sinks).
  std::unordered_set<std::string> smallfn_sinks;

  void merge(const SymbolTable& other) {
    time_vars.insert(other.time_vars.begin(), other.time_vars.end());
    other_vars.insert(other.other_vars.begin(), other.other_vars.end());
    time_funcs.insert(other.time_funcs.begin(), other.time_funcs.end());
    other_funcs.insert(other.other_funcs.begin(), other.other_funcs.end());
    unordered_vars.insert(other.unordered_vars.begin(),
                          other.unordered_vars.end());
    smallfn_sinks.insert(other.smallfn_sinks.begin(),
                         other.smallfn_sinks.end());
  }
};

/// Scan one lexed file for contract-relevant declarations.
[[nodiscard]] SymbolTable collect_symbols(const LexedFile& file);

}  // namespace bfsim::lint
