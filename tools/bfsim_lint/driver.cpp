#include "bfsim_lint/driver.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace bfsim::lint {

namespace fs = std::filesystem;

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("bfsim_lint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Path of `path` relative to `root` with '/' separators, or empty if
/// `path` is not under `root`.
std::string rel_under(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  const fs::path canonical = fs::weakly_canonical(path, ec);
  const fs::path canonical_root = fs::weakly_canonical(root, ec);
  const std::string p = canonical.generic_string();
  const std::string r = canonical_root.generic_string();
  if (p.size() <= r.size() || p.compare(0, r.size(), r) != 0 ||
      p[r.size()] != '/')
    return {};
  return p.substr(r.size() + 1);
}

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool source_like(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

std::vector<std::string> compdb_files(const std::string& json_text) {
  std::vector<std::string> out;
  static const std::string kKey = "\"file\"";
  std::size_t pos = 0;
  while ((pos = json_text.find(kKey, pos)) != std::string::npos) {
    pos += kKey.size();
    while (pos < json_text.size() &&
           (json_text[pos] == ' ' || json_text[pos] == ':' ||
            json_text[pos] == '\t' || json_text[pos] == '\n'))
      ++pos;
    if (pos >= json_text.size() || json_text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < json_text.size() && json_text[pos] != '"') {
      if (json_text[pos] == '\\' && pos + 1 < json_text.size()) ++pos;
      value += json_text[pos];
      ++pos;
    }
    out.push_back(std::move(value));
  }
  return out;
}

Driver::Driver(DriverOptions options) : options_(std::move(options)) {
  if (options_.root.empty()) options_.root = fs::current_path();
}

const Driver::FileEntry& Driver::load(const fs::path& path) {
  const std::string key = fs::weakly_canonical(path).string();
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  FileEntry entry;
  entry.lexed = lex(read_file(path));
  entry.own = collect_symbols(entry.lexed);
  return cache_.emplace(key, std::move(entry)).first->second;
}

fs::path Driver::resolve_include(const fs::path& includer,
                                 const std::string& target) const {
  const std::array<fs::path, 3> candidates = {
      options_.root / "src" / target,
      includer.parent_path() / target,
      options_.root / target,
  };
  for (const fs::path& candidate : candidates) {
    std::error_code ec;
    if (fs::is_regular_file(candidate, ec) &&
        !rel_under(options_.root, candidate).empty())
      return fs::weakly_canonical(candidate);
  }
  return {};
}

void Driver::closure(const fs::path& path, SymbolTable& into,
                     std::vector<std::string>& visiting) {
  const std::string key = fs::weakly_canonical(path).string();
  if (std::find(visiting.begin(), visiting.end(), key) != visiting.end())
    return;
  visiting.push_back(key);
  const FileEntry& entry = load(path);
  into.merge(entry.own);
  for (const std::string& target : entry.lexed.includes) {
    const fs::path resolved = resolve_include(path, target);
    if (!resolved.empty()) closure(resolved, into, visiting);
  }
}

SymbolTable Driver::scope_for(const fs::path& path) {
  SymbolTable scope;
  std::vector<std::string> visiting;
  closure(path, scope, visiting);
  return scope;
}

CheckConfig Driver::config_for(const fs::path& path) const {
  CheckConfig config = options_.checks;
  if (options_.scope == ScopePolicy::kAll) return config;
  const std::string rel = rel_under(options_.root, path);
  // The contract's own implementation is the one place raw Time
  // arithmetic is legal.
  if (rel == "src/sim/time.hpp") config.raw_time = false;
  // The determinism contract covers the simulation core, the sweep
  // merge, and the scheduling service (a resumed daemon must replay
  // its event log into bit-identical state, so service code may not
  // consult wall clocks or unseeded randomness); util/metrics/workload
  // produce no merge-ordered output.
  const bool deterministic_zone = starts_with(rel, "src/core/") ||
                                  starts_with(rel, "src/sim/") ||
                                  starts_with(rel, "src/exp/") ||
                                  starts_with(rel, "src/svc/");
  if (!deterministic_zone) config.nondeterminism = false;
  return config;
}

std::vector<fs::path> Driver::discover() const {
  std::set<std::string> seen;
  std::vector<fs::path> out;
  const auto add = [&](const fs::path& path) {
    const std::string rel = rel_under(options_.root, path);
    if (rel.empty()) return;  // outside the project root
    if (!(starts_with(rel, "src/") || starts_with(rel, "bench/") ||
          starts_with(rel, "examples/")))
      return;
    if (!source_like(path)) return;
    const std::string key = fs::weakly_canonical(path).string();
    if (seen.insert(key).second) out.emplace_back(key);
  };

  if (!options_.compdb.empty()) {
    for (const std::string& file : compdb_files(read_file(options_.compdb)))
      add(file);
    if (out.empty())
      throw std::runtime_error(
          "bfsim_lint: no project translation units found in " +
          options_.compdb.string());
  }
  // Headers are not TUs; sources too when no compdb was given.
  for (const char* dir : {"src", "bench", "examples"}) {
    const fs::path base = options_.root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".h" || options_.compdb.empty()) add(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Finding> Driver::run() {
  std::vector<fs::path> files;
  if (!options_.files.empty()) {
    files.reserve(options_.files.size());
    for (const std::string& file : options_.files) files.emplace_back(file);
  } else {
    files = discover();
  }

  std::vector<Finding> findings;
  files_checked_ = 0;
  for (const fs::path& path : files) {
    const CheckConfig config = config_for(path);
    if (!config.raw_time && !config.nondeterminism && !config.smallfn)
      continue;
    SymbolTable scope = scope_for(path);
    const FileEntry& entry = load(path);
    // A file's own non-Time declarations beat Time symbols leaked into
    // scope from included headers: `std::string out` in this file means
    // its `out += ...` is string building, not time arithmetic.
    for (const std::string& name : entry.own.other_vars)
      if (!entry.own.time_vars.contains(name)) scope.time_vars.erase(name);
    const std::string display =
        options_.files.empty() ? rel_under(options_.root, path)
                               : path.string();
    std::vector<Finding> file_findings = run_checks(
        display.empty() ? path.string() : display, entry.lexed, scope,
        config);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
    ++files_checked_;
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.col < b.col;
            });
  return findings;
}

}  // namespace bfsim::lint
