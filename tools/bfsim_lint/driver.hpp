// bfsim-lint -- orchestration: file discovery, per-file symbol scopes,
// and check dispatch.
//
// Translation units come from compile_commands.json (the same database
// clang-tidy consumes; CMake exports it unconditionally). Headers are
// not TUs, so the driver additionally walks src/, bench/ and examples/
// for .hpp files -- the Time contract lives in headers as much as in
// sources. Each file is checked against a symbol scope built from its
// own declarations plus those of every project header it transitively
// includes, mirroring what the compiler itself would see.
#pragma once

#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "bfsim_lint/checks.hpp"

namespace bfsim::lint {

enum class ScopePolicy {
  kAuto,  ///< derive enabled checks from the path (production layout)
  kAll,   ///< run every enabled check regardless of path (fixtures)
};

struct DriverOptions {
  std::filesystem::path root;     ///< project root
  std::filesystem::path compdb;   ///< compile_commands.json (optional)
  std::vector<std::string> files; ///< explicit files (fixture mode)
  CheckConfig checks;             ///< globally enabled checks
  ScopePolicy scope = ScopePolicy::kAuto;
};

class Driver {
 public:
  explicit Driver(DriverOptions options);

  /// Lint everything in scope; returns all findings sorted by
  /// file/line/col. Throws std::runtime_error on I/O or compdb errors.
  [[nodiscard]] std::vector<Finding> run();

  /// Number of files actually checked by the last run().
  [[nodiscard]] std::size_t files_checked() const { return files_checked_; }

 private:
  struct FileEntry {
    LexedFile lexed;
    SymbolTable own;
  };

  const FileEntry& load(const std::filesystem::path& path);
  SymbolTable scope_for(const std::filesystem::path& path);
  void closure(const std::filesystem::path& path, SymbolTable& into,
               std::vector<std::string>& visiting);
  [[nodiscard]] std::filesystem::path resolve_include(
      const std::filesystem::path& includer, const std::string& target) const;
  [[nodiscard]] CheckConfig config_for(
      const std::filesystem::path& path) const;
  [[nodiscard]] std::vector<std::filesystem::path> discover() const;

  DriverOptions options_;
  std::unordered_map<std::string, FileEntry> cache_;
  std::size_t files_checked_ = 0;
};

/// Extract the "file" entries from a compile_commands.json. Tolerant,
/// single-purpose scan: the database is machine-written by CMake.
[[nodiscard]] std::vector<std::string> compdb_files(
    const std::string& json_text);

}  // namespace bfsim::lint
