#include "bfsim_lint/symbols.hpp"

namespace bfsim::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Skip a balanced template-argument group starting at `<`; returns the
/// index one past the matching `>`. `>>` closes two levels.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "<")
      ++depth;
    else if (toks[i].text == ">") {
      if (--depth == 0) return i + 1;
    } else if (toks[i].text == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (toks[i].text == ";") {
      // Not a template group after all (`a < b;`); bail out.
      return i;
    }
  }
  return i;
}

}  // namespace

SymbolTable collect_symbols(const LexedFile& file) {
  SymbolTable out;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokenKind::kIdentifier) continue;

    // --- Time-typed declarations -----------------------------------
    if (tok.text == "Time") {
      // Member access spelled `.Time` / `->Time` is not a type use.
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))
        continue;
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], "&")) ++j;
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier ||
          is_keyword(toks[j].text) || toks[j].text == "operator")
        continue;
      std::string name = toks[j].text;
      std::size_t k = j + 1;
      // Qualified definition: `Time Class::method(` -- the declared
      // entity is the last identifier of the chain.
      while (k + 1 < toks.size() && is_punct(toks[k], "::") &&
             toks[k + 1].kind == TokenKind::kIdentifier) {
        name = toks[k + 1].text;
        k += 2;
      }
      if (k >= toks.size()) continue;
      const Token& after = toks[k];
      if (is_punct(after, "("))
        out.time_funcs.insert(name);
      else if (is_punct(after, ";") || is_punct(after, "=") ||
               is_punct(after, ",") || is_punct(after, ")") ||
               is_punct(after, "{") || is_punct(after, "["))
        out.time_vars.insert(name);
      continue;
    }

    // --- other-typed declarations ----------------------------------
    // `Type name` adjacency with a declaration-shaped follower. Type
    // keywords (int, double, ...) count; statement keywords (return,
    // case, ...) cannot start a declaration of a value. `Type name(`
    // declares a function returning a non-Time type -- recorded so
    // call-site verdicts can recognize a name as overload-ambiguous.
    {
      static const std::unordered_set<std::string> kTypeKeywords = {
          "int",   "long",  "unsigned", "short", "char",
          "bool",  "float", "double",   "signed"};
      const bool type_like =
          !is_keyword(tok.text) || kTypeKeywords.contains(tok.text);
      if (type_like && i + 2 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier &&
          !is_keyword(toks[i + 1].text) && toks[i + 1].text != "operator" &&
          (i == 0 || !is_punct(toks[i - 1], ".")) &&
          (i == 0 || !is_punct(toks[i - 1], "->"))) {
        std::string name = toks[i + 1].text;
        std::size_t k = i + 2;
        // Qualified definition: `std::string Cli::get(` declares `get`.
        while (k + 1 < toks.size() && is_punct(toks[k], "::") &&
               toks[k + 1].kind == TokenKind::kIdentifier) {
          name = toks[k + 1].text;
          k += 2;
        }
        if (k < toks.size()) {
          const Token& after = toks[k];
          if (is_punct(after, "("))
            out.other_funcs.insert(name);
          else if (is_punct(after, ";") || is_punct(after, "=") ||
                   is_punct(after, ",") || is_punct(after, ")") ||
                   is_punct(after, "{") || is_punct(after, "["))
            out.other_vars.insert(name);
        }
      }
    }

    // --- type-revealing auto locals --------------------------------
    // Two `auto name = ...` shapes reveal a non-Time type without sema:
    // a std::chrono expression (time_point / duration), and a leading
    // `static_cast<T>` with T != Time. Register such names as
    // other-typed so a same-named Time symbol from a header cannot
    // claim them.
    if (tok.text == "auto" && i + 2 < toks.size() &&
        toks[i + 1].kind == TokenKind::kIdentifier &&
        is_punct(toks[i + 2], "=")) {
      bool other_typed = false;
      if (i + 4 < toks.size() && is_ident(toks[i + 3], "static_cast") &&
          is_punct(toks[i + 4], "<")) {
        std::string last_ident;
        for (std::size_t j = i + 5;
             j < toks.size() && !is_punct(toks[j], ">"); ++j)
          if (toks[j].kind == TokenKind::kIdentifier)
            last_ident = toks[j].text;
        other_typed = !last_ident.empty() && last_ident != "Time";
      }
      for (std::size_t j = i + 3; !other_typed && j < toks.size(); ++j) {
        if (is_punct(toks[j], ";")) break;
        if (toks[j].kind == TokenKind::kIdentifier &&
            (toks[j].text == "chrono" || toks[j].text == "steady_clock" ||
             toks[j].text == "system_clock" ||
             toks[j].text == "high_resolution_clock"))
          other_typed = true;
      }
      if (other_typed) out.other_vars.insert(toks[i + 1].text);
    }

    // --- unordered containers --------------------------------------
    if (tok.text == "unordered_map" || tok.text == "unordered_set" ||
        tok.text == "unordered_multimap" || tok.text == "unordered_multiset") {
      std::size_t j = i + 1;
      if (j >= toks.size() || !is_punct(toks[j], "<")) continue;
      j = skip_angles(toks, j);
      if (j < toks.size() && is_punct(toks[j], "&")) ++j;
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier &&
          !is_keyword(toks[j].text))
        out.unordered_vars.insert(toks[j].text);
      continue;
    }

    // --- SmallFn sinks ---------------------------------------------
    // An identifier whose following parenthesized group mentions
    // SmallFn is a declaration of a callback-taking function. Call
    // sites never spell the type, so they cannot self-register.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(") &&
        !is_keyword(tok.text)) {
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks[j], "("))
          ++depth;
        else if (is_punct(toks[j], ")")) {
          if (--depth == 0) break;
        } else if (depth == 1 && is_ident(toks[j], "SmallFn")) {
          out.smallfn_sinks.insert(tok.text);
          break;
        }
      }
    }
  }
  // Constructing a SmallFn directly from a lambda is itself a sink.
  out.smallfn_sinks.insert("SmallFn");
  return out;
}

}  // namespace bfsim::lint
