#include "bfsim_lint/lexer.hpp"

#include <array>
#include <cctype>
#include <unordered_set>

namespace bfsim::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character punctuators, longest first within each head char.
constexpr std::array<const char*, 21> kPuncts = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=",
    // NOTE: "&&"/"||"/"<<"/">>" are appended in match_punct below so the
    // array stays sorted longest-first per head character.
};

const std::array<const char*, 4> kPuncts2 = {"&&", "||", "<<", ">>"};

}  // namespace

bool is_keyword(const std::string& word) {
  static const std::unordered_set<std::string> kKeywords = {
      "alignas",   "alignof",  "asm",       "auto",       "bool",
      "break",     "case",     "catch",     "char",       "class",
      "co_await",  "co_return", "co_yield", "const",      "consteval",
      "constexpr", "constinit", "const_cast", "continue", "decltype",
      "default",   "delete",   "do",        "double",     "else",
      "enum",      "explicit", "export",    "extern",     "false",
      "float",     "for",      "friend",    "goto",       "if",
      "inline",    "int",      "long",      "mutable",    "namespace",
      "new",       "noexcept", "nullptr",   "operator",   "private",
      "protected", "public",   "register",  "requires",   "return",
      "short",     "signed",   "sizeof",    "static",     "struct",
      "switch",    "template", "this",      "throw",      "true",
      "try",       "typedef",  "typeid",    "typename",   "union",
      "unsigned",  "using",    "virtual",   "void",       "volatile",
      "while"};
  return kKeywords.contains(word);
}

bool ends_value(const Token& token) {
  switch (token.kind) {
    case TokenKind::kNumber:
    case TokenKind::kString:
    case TokenKind::kCharacter:
      return true;
    case TokenKind::kIdentifier:
      // `return x - y` / `case kFoo - 1:` -- the keyword cannot be the
      // left operand, so the following sign is unary-ish for our
      // purposes. `this` and literal keywords DO end a value.
      return token.text == "this" || token.text == "true" ||
             token.text == "false" || token.text == "nullptr" ||
             !is_keyword(token.text);
    case TokenKind::kPunct:
      return token.text == ")" || token.text == "]" || token.text == "++" ||
             token.text == "--";
  }
  return false;
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  LexedFile run() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        advance();
        at_line_start_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (ident_start(c)) {
        identifier_or_literal_prefix();
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        number();
        continue;
      }
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void add_comment_line(int line, const std::string& body) {
    std::string& slot = out_.comments[line];
    if (!slot.empty()) slot += ' ';
    slot += body;
  }

  void line_comment() {
    const int start_line = line_;
    std::string body;
    while (pos_ < text_.size() && text_[pos_] != '\n') {
      body += text_[pos_];
      advance();
    }
    add_comment_line(start_line, body);
  }

  void block_comment() {
    int current_line = line_;
    std::string body;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      if (text_[pos_] == '\n') {
        add_comment_line(current_line, body);
        body.clear();
        advance();
        current_line = line_;
        continue;
      }
      body += text_[pos_];
      advance();
    }
    add_comment_line(current_line, body);
  }

  /// Preprocessor directive: record includes, honor continuations, keep
  /// any trailing comment (escape hatches may sit on macro lines too).
  void directive() {
    std::string text;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          advance();
          continue;
        }
        break;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      text += c;
      advance();
    }
    at_line_start_ = true;
    // "# include <x>" / "#include \"x\""
    std::size_t i = 1;  // past '#'
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (text.compare(i, 7, "include") != 0) return;
    i += 7;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i >= text.size()) return;
    const char open = text[i];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;
    const std::size_t end = text.find(close, i + 1);
    if (end == std::string::npos) return;
    out_.includes.push_back(text.substr(i + 1, end - i - 1));
  }

  void identifier_or_literal_prefix() {
    const int tline = line_;
    const int tcol = col_;
    std::string word;
    while (pos_ < text_.size() && ident_char(text_[pos_])) {
      word += text_[pos_];
      advance();
    }
    // String/char literal prefixes: R"...", u8"...", L'x', ...
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'')) {
      const bool raw = !word.empty() && word.back() == 'R';
      const bool prefix = word == "R" || word == "L" || word == "u" ||
                          word == "U" || word == "u8" || word == "LR" ||
                          word == "uR" || word == "UR" || word == "u8R";
      if (prefix) {
        if (text_[pos_] == '"') {
          if (raw)
            raw_string(tline, tcol);
          else
            string_literal();
        } else {
          char_literal();
        }
        return;
      }
    }
    out_.tokens.push_back({TokenKind::kIdentifier, std::move(word), tline,
                           tcol});
  }

  void number() {
    const int tline = line_;
    const int tcol = col_;
    std::string word;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (ident_char(c) || c == '.' || c == '\'') {
        word += c;
        advance();
        // exponent signs belong to the pp-number
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (peek() == '+' || peek() == '-')) {
          word += text_[pos_];
          advance();
        }
        continue;
      }
      break;
    }
    out_.tokens.push_back({TokenKind::kNumber, std::move(word), tline, tcol});
  }

  void string_literal() {
    const int tline = line_;
    const int tcol = col_;
    std::string body;
    advance();  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        body += text_[pos_];
        advance();
      }
      if (pos_ < text_.size()) {
        body += text_[pos_];
        advance();
      }
    }
    if (pos_ < text_.size()) advance();  // closing quote
    out_.tokens.push_back({TokenKind::kString, std::move(body), tline, tcol});
  }

  void raw_string(int tline, int tcol) {
    advance();  // opening quote
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(') {
      delim += text_[pos_];
      advance();
    }
    const std::string closer = ")" + delim + "\"";
    std::string body;
    if (pos_ < text_.size()) advance();  // '('
    while (pos_ < text_.size()) {
      if (text_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        break;
      }
      body += text_[pos_];
      advance();
    }
    out_.tokens.push_back({TokenKind::kString, std::move(body), tline, tcol});
  }

  void char_literal() {
    const int tline = line_;
    const int tcol = col_;
    std::string body;
    advance();  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '\'') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        body += text_[pos_];
        advance();
      }
      if (pos_ < text_.size()) {
        body += text_[pos_];
        advance();
      }
    }
    if (pos_ < text_.size()) advance();
    out_.tokens.push_back({TokenKind::kCharacter, std::move(body), tline,
                           tcol});
  }

  void punct() {
    const int tline = line_;
    const int tcol = col_;
    for (const char* p : kPuncts) {
      const std::size_t n = std::string::traits_type::length(p);
      if (text_.compare(pos_, n, p) == 0) {
        for (std::size_t i = 0; i < n; ++i) advance();
        out_.tokens.push_back({TokenKind::kPunct, p, tline, tcol});
        return;
      }
    }
    for (const char* p : kPuncts2) {
      if (text_.compare(pos_, 2, p) == 0) {
        advance();
        advance();
        out_.tokens.push_back({TokenKind::kPunct, p, tline, tcol});
        return;
      }
    }
    std::string single(1, text_[pos_]);
    advance();
    out_.tokens.push_back({TokenKind::kPunct, std::move(single), tline, tcol});
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  LexedFile out_;
};

}  // namespace

LexedFile lex(const std::string& text) { return Lexer{text}.run(); }

}  // namespace bfsim::lint
