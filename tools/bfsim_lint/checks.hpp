// bfsim-lint -- the project-contract checks.
//
// Three contracts, one finding stream:
//
//   raw-time-arithmetic   every `+` `-` `+=` `-=` with a sim::Time
//                         operand outside src/sim/time.hpp must go
//                         through saturating_add / saturating_sub /
//                         sim::checked. Hatch: `unchecked-time`.
//   nondeterminism        no rand()/srand(), std::random_device,
//                         wall-clock (system_clock, time(), ...), or
//                         range-for over unordered_{map,set} inside
//                         src/core, src/sim, src/exp -- the
//                         byte-identical sweep merge depends on it.
//                         Hatch: `nondeterminism`.
//   smallfn-capture       lambdas handed to SmallFn-taking callbacks
//                         must use explicit by-value captures: no
//                         `[&]`, no `[=]`, no `&name` -- the engine
//                         invokes them after the enclosing frame is
//                         gone. Hatch: `smallfn-capture`.
//
// Escape hatches are comments of the form
//   // bfsim-lint: <tag> -- <justification>
// on the flagged line or the line above. A hatch without a
// justification is itself a finding: the annotation IS the audit
// record.
#pragma once

#include <string>
#include <vector>

#include "bfsim_lint/lexer.hpp"
#include "bfsim_lint/symbols.hpp"

namespace bfsim::lint {

enum class Check {
  kRawTimeArithmetic,
  kNondeterminism,
  kSmallFnCapture,
};

[[nodiscard]] const char* check_name(Check check);
[[nodiscard]] const char* check_hatch_tag(Check check);

struct Finding {
  Check check;
  std::string file;
  int line = 0;
  int col = 0;
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

struct CheckConfig {
  bool raw_time = true;
  bool nondeterminism = true;
  bool smallfn = true;
};

/// Run the enabled checks over one lexed file. `scope` must already be
/// the merged symbol table for the file (its own declarations plus its
/// transitively included project headers').
[[nodiscard]] std::vector<Finding> run_checks(const std::string& path,
                                              const LexedFile& file,
                                              const SymbolTable& scope,
                                              const CheckConfig& config);

}  // namespace bfsim::lint
