file(REMOVE_RECURSE
  "libbfsim_workload.a"
)
