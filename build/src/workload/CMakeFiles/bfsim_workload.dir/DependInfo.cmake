
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/categories.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/categories.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/categories.cpp.o.d"
  "/root/repo/src/workload/estimates.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/estimates.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/estimates.cpp.o.d"
  "/root/repo/src/workload/filters.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/filters.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/filters.cpp.o.d"
  "/root/repo/src/workload/swf.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/swf.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/swf.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/transforms.cpp" "src/workload/CMakeFiles/bfsim_workload.dir/transforms.cpp.o" "gcc" "src/workload/CMakeFiles/bfsim_workload.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
