file(REMOVE_RECURSE
  "CMakeFiles/bfsim_workload.dir/categories.cpp.o"
  "CMakeFiles/bfsim_workload.dir/categories.cpp.o.d"
  "CMakeFiles/bfsim_workload.dir/estimates.cpp.o"
  "CMakeFiles/bfsim_workload.dir/estimates.cpp.o.d"
  "CMakeFiles/bfsim_workload.dir/filters.cpp.o"
  "CMakeFiles/bfsim_workload.dir/filters.cpp.o.d"
  "CMakeFiles/bfsim_workload.dir/swf.cpp.o"
  "CMakeFiles/bfsim_workload.dir/swf.cpp.o.d"
  "CMakeFiles/bfsim_workload.dir/synthetic.cpp.o"
  "CMakeFiles/bfsim_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/bfsim_workload.dir/transforms.cpp.o"
  "CMakeFiles/bfsim_workload.dir/transforms.cpp.o.d"
  "libbfsim_workload.a"
  "libbfsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
