# Empty compiler generated dependencies file for bfsim_workload.
# This may be replaced when dependencies are built.
