
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/aggregate.cpp" "src/metrics/CMakeFiles/bfsim_metrics.dir/aggregate.cpp.o" "gcc" "src/metrics/CMakeFiles/bfsim_metrics.dir/aggregate.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/bfsim_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/bfsim_metrics.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bfsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bfsim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
