file(REMOVE_RECURSE
  "CMakeFiles/bfsim_metrics.dir/aggregate.cpp.o"
  "CMakeFiles/bfsim_metrics.dir/aggregate.cpp.o.d"
  "CMakeFiles/bfsim_metrics.dir/report.cpp.o"
  "CMakeFiles/bfsim_metrics.dir/report.cpp.o.d"
  "libbfsim_metrics.a"
  "libbfsim_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
