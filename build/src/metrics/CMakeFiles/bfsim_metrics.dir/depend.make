# Empty dependencies file for bfsim_metrics.
# This may be replaced when dependencies are built.
