file(REMOVE_RECURSE
  "libbfsim_metrics.a"
)
