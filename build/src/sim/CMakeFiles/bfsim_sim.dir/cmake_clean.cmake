file(REMOVE_RECURSE
  "CMakeFiles/bfsim_sim.dir/engine.cpp.o"
  "CMakeFiles/bfsim_sim.dir/engine.cpp.o.d"
  "CMakeFiles/bfsim_sim.dir/rng.cpp.o"
  "CMakeFiles/bfsim_sim.dir/rng.cpp.o.d"
  "CMakeFiles/bfsim_sim.dir/stats.cpp.o"
  "CMakeFiles/bfsim_sim.dir/stats.cpp.o.d"
  "libbfsim_sim.a"
  "libbfsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
