file(REMOVE_RECURSE
  "libbfsim_util.a"
)
