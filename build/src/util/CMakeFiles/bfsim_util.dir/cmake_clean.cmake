file(REMOVE_RECURSE
  "CMakeFiles/bfsim_util.dir/cli.cpp.o"
  "CMakeFiles/bfsim_util.dir/cli.cpp.o.d"
  "CMakeFiles/bfsim_util.dir/csv.cpp.o"
  "CMakeFiles/bfsim_util.dir/csv.cpp.o.d"
  "CMakeFiles/bfsim_util.dir/format.cpp.o"
  "CMakeFiles/bfsim_util.dir/format.cpp.o.d"
  "CMakeFiles/bfsim_util.dir/log.cpp.o"
  "CMakeFiles/bfsim_util.dir/log.cpp.o.d"
  "CMakeFiles/bfsim_util.dir/table.cpp.o"
  "CMakeFiles/bfsim_util.dir/table.cpp.o.d"
  "libbfsim_util.a"
  "libbfsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
