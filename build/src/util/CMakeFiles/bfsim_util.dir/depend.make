# Empty dependencies file for bfsim_util.
# This may be replaced when dependencies are built.
