
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conservative_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/conservative_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/conservative_scheduler.cpp.o.d"
  "/root/repo/src/core/easy_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/easy_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/easy_scheduler.cpp.o.d"
  "/root/repo/src/core/fcfs_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/fcfs_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/fcfs_scheduler.cpp.o.d"
  "/root/repo/src/core/gantt.cpp" "src/core/CMakeFiles/bfsim_core.dir/gantt.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/gantt.cpp.o.d"
  "/root/repo/src/core/kres_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/kres_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/kres_scheduler.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/core/CMakeFiles/bfsim_core.dir/priority.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/priority.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/core/CMakeFiles/bfsim_core.dir/profile.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/profile.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/selective_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/selective_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/selective_scheduler.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/bfsim_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/slack_scheduler.cpp" "src/core/CMakeFiles/bfsim_core.dir/slack_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/slack_scheduler.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/core/CMakeFiles/bfsim_core.dir/validator.cpp.o" "gcc" "src/core/CMakeFiles/bfsim_core.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bfsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
