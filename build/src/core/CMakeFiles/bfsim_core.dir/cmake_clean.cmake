file(REMOVE_RECURSE
  "CMakeFiles/bfsim_core.dir/conservative_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/conservative_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/easy_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/easy_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/fcfs_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/fcfs_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/gantt.cpp.o"
  "CMakeFiles/bfsim_core.dir/gantt.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/kres_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/kres_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/priority.cpp.o"
  "CMakeFiles/bfsim_core.dir/priority.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/profile.cpp.o"
  "CMakeFiles/bfsim_core.dir/profile.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/selective_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/selective_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/simulation.cpp.o"
  "CMakeFiles/bfsim_core.dir/simulation.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/slack_scheduler.cpp.o"
  "CMakeFiles/bfsim_core.dir/slack_scheduler.cpp.o.d"
  "CMakeFiles/bfsim_core.dir/validator.cpp.o"
  "CMakeFiles/bfsim_core.dir/validator.cpp.o.d"
  "libbfsim_core.a"
  "libbfsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
