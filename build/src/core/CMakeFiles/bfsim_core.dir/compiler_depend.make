# Empty compiler generated dependencies file for bfsim_core.
# This may be replaced when dependencies are built.
