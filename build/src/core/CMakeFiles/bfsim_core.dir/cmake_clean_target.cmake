file(REMOVE_RECURSE
  "libbfsim_core.a"
)
