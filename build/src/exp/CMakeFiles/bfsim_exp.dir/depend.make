# Empty dependencies file for bfsim_exp.
# This may be replaced when dependencies are built.
