file(REMOVE_RECURSE
  "libbfsim_exp.a"
)
