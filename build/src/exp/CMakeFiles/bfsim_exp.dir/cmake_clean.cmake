file(REMOVE_RECURSE
  "CMakeFiles/bfsim_exp.dir/runner.cpp.o"
  "CMakeFiles/bfsim_exp.dir/runner.cpp.o.d"
  "CMakeFiles/bfsim_exp.dir/scenario.cpp.o"
  "CMakeFiles/bfsim_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/bfsim_exp.dir/thread_pool.cpp.o"
  "CMakeFiles/bfsim_exp.dir/thread_pool.cpp.o.d"
  "libbfsim_exp.a"
  "libbfsim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
