# Empty compiler generated dependencies file for table4_worstcase.
# This may be replaced when dependencies are built.
