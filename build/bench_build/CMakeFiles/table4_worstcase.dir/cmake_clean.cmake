file(REMOVE_RECURSE
  "../bench/table4_worstcase"
  "../bench/table4_worstcase.pdb"
  "CMakeFiles/table4_worstcase.dir/table4_worstcase.cpp.o"
  "CMakeFiles/table4_worstcase.dir/table4_worstcase.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
