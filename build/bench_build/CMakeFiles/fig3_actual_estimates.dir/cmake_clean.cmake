file(REMOVE_RECURSE
  "../bench/fig3_actual_estimates"
  "../bench/fig3_actual_estimates.pdb"
  "CMakeFiles/fig3_actual_estimates.dir/fig3_actual_estimates.cpp.o"
  "CMakeFiles/fig3_actual_estimates.dir/fig3_actual_estimates.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_actual_estimates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
