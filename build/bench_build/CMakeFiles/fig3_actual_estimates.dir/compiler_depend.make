# Empty compiler generated dependencies file for fig3_actual_estimates.
# This may be replaced when dependencies are built.
