file(REMOVE_RECURSE
  "CMakeFiles/bfsim_bench_common.dir/common.cpp.o"
  "CMakeFiles/bfsim_bench_common.dir/common.cpp.o.d"
  "libbfsim_bench_common.a"
  "libbfsim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfsim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
