# Empty dependencies file for bfsim_bench_common.
# This may be replaced when dependencies are built.
