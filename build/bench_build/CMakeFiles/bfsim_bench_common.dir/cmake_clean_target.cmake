file(REMOVE_RECURSE
  "libbfsim_bench_common.a"
)
