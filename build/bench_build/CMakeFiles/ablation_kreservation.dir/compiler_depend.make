# Empty compiler generated dependencies file for ablation_kreservation.
# This may be replaced when dependencies are built.
