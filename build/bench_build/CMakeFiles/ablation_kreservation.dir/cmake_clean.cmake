file(REMOVE_RECURSE
  "../bench/ablation_kreservation"
  "../bench/ablation_kreservation.pdb"
  "CMakeFiles/ablation_kreservation.dir/ablation_kreservation.cpp.o"
  "CMakeFiles/ablation_kreservation.dir/ablation_kreservation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kreservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
