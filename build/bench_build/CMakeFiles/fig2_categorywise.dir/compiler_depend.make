# Empty compiler generated dependencies file for fig2_categorywise.
# This may be replaced when dependencies are built.
