
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_categorywise.cpp" "bench_build/CMakeFiles/fig2_categorywise.dir/fig2_categorywise.cpp.o" "gcc" "bench_build/CMakeFiles/fig2_categorywise.dir/fig2_categorywise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/bfsim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/bfsim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bfsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bfsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
