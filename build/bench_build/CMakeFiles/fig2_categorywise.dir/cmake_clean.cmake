file(REMOVE_RECURSE
  "../bench/fig2_categorywise"
  "../bench/fig2_categorywise.pdb"
  "CMakeFiles/fig2_categorywise.dir/fig2_categorywise.cpp.o"
  "CMakeFiles/fig2_categorywise.dir/fig2_categorywise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_categorywise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
