file(REMOVE_RECURSE
  "../bench/ablation_cancellations"
  "../bench/ablation_cancellations.pdb"
  "CMakeFiles/ablation_cancellations.dir/ablation_cancellations.cpp.o"
  "CMakeFiles/ablation_cancellations.dir/ablation_cancellations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cancellations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
