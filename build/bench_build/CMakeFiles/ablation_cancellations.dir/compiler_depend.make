# Empty compiler generated dependencies file for ablation_cancellations.
# This may be replaced when dependencies are built.
