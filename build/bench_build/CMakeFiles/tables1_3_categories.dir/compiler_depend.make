# Empty compiler generated dependencies file for tables1_3_categories.
# This may be replaced when dependencies are built.
