file(REMOVE_RECURSE
  "../bench/tables1_3_categories"
  "../bench/tables1_3_categories.pdb"
  "CMakeFiles/tables1_3_categories.dir/tables1_3_categories.cpp.o"
  "CMakeFiles/tables1_3_categories.dir/tables1_3_categories.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables1_3_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
