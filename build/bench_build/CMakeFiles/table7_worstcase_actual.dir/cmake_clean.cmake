file(REMOVE_RECURSE
  "../bench/table7_worstcase_actual"
  "../bench/table7_worstcase_actual.pdb"
  "CMakeFiles/table7_worstcase_actual.dir/table7_worstcase_actual.cpp.o"
  "CMakeFiles/table7_worstcase_actual.dir/table7_worstcase_actual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_worstcase_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
