# Empty compiler generated dependencies file for table7_worstcase_actual.
# This may be replaced when dependencies are built.
