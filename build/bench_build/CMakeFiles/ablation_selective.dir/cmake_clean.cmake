file(REMOVE_RECURSE
  "../bench/ablation_selective"
  "../bench/ablation_selective.pdb"
  "CMakeFiles/ablation_selective.dir/ablation_selective.cpp.o"
  "CMakeFiles/ablation_selective.dir/ablation_selective.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
