# Empty dependencies file for ablation_selective.
# This may be replaced when dependencies are built.
