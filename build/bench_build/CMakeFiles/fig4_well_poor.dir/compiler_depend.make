# Empty compiler generated dependencies file for fig4_well_poor.
# This may be replaced when dependencies are built.
