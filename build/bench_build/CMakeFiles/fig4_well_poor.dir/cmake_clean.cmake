file(REMOVE_RECURSE
  "../bench/fig4_well_poor"
  "../bench/fig4_well_poor.pdb"
  "CMakeFiles/fig4_well_poor.dir/fig4_well_poor.cpp.o"
  "CMakeFiles/fig4_well_poor.dir/fig4_well_poor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_well_poor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
