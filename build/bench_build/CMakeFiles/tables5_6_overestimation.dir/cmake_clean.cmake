file(REMOVE_RECURSE
  "../bench/tables5_6_overestimation"
  "../bench/tables5_6_overestimation.pdb"
  "CMakeFiles/tables5_6_overestimation.dir/tables5_6_overestimation.cpp.o"
  "CMakeFiles/tables5_6_overestimation.dir/tables5_6_overestimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables5_6_overestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
