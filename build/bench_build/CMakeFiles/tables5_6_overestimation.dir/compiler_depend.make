# Empty compiler generated dependencies file for tables5_6_overestimation.
# This may be replaced when dependencies are built.
