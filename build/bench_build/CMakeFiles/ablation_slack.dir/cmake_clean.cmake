file(REMOVE_RECURSE
  "../bench/ablation_slack"
  "../bench/ablation_slack.pdb"
  "CMakeFiles/ablation_slack.dir/ablation_slack.cpp.o"
  "CMakeFiles/ablation_slack.dir/ablation_slack.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
