# Empty compiler generated dependencies file for ablation_slack.
# This may be replaced when dependencies are built.
