# Empty dependencies file for fig1_overall.
# This may be replaced when dependencies are built.
