file(REMOVE_RECURSE
  "../bench/fig1_overall"
  "../bench/fig1_overall.pdb"
  "CMakeFiles/fig1_overall.dir/fig1_overall.cpp.o"
  "CMakeFiles/fig1_overall.dir/fig1_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
