# Empty compiler generated dependencies file for bfsim_tests.
# This may be replaced when dependencies are built.
