
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_conservative_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_conservative_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_conservative_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_easy_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_easy_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_easy_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_fcfs_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_fcfs_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_fcfs_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_gantt.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_gantt.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_gantt.cpp.o.d"
  "/root/repo/tests/core/test_kres_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_kres_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_kres_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_priority.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_priority.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_priority.cpp.o.d"
  "/root/repo/tests/core/test_profile.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_profile.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_profile.cpp.o.d"
  "/root/repo/tests/core/test_selective_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_selective_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_selective_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_simulation.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_simulation.cpp.o.d"
  "/root/repo/tests/core/test_slack_scheduler.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_slack_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_slack_scheduler.cpp.o.d"
  "/root/repo/tests/core/test_validator.cpp" "tests/CMakeFiles/bfsim_tests.dir/core/test_validator.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/core/test_validator.cpp.o.d"
  "/root/repo/tests/exp/test_runner.cpp" "tests/CMakeFiles/bfsim_tests.dir/exp/test_runner.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/exp/test_runner.cpp.o.d"
  "/root/repo/tests/exp/test_scenario.cpp" "tests/CMakeFiles/bfsim_tests.dir/exp/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/exp/test_scenario.cpp.o.d"
  "/root/repo/tests/exp/test_thread_pool.cpp" "tests/CMakeFiles/bfsim_tests.dir/exp/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/exp/test_thread_pool.cpp.o.d"
  "/root/repo/tests/integration/test_cancellation.cpp" "tests/CMakeFiles/bfsim_tests.dir/integration/test_cancellation.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/integration/test_cancellation.cpp.o.d"
  "/root/repo/tests/integration/test_paper_trends.cpp" "tests/CMakeFiles/bfsim_tests.dir/integration/test_paper_trends.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/integration/test_paper_trends.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/bfsim_tests.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/metrics/test_aggregate.cpp" "tests/CMakeFiles/bfsim_tests.dir/metrics/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/metrics/test_aggregate.cpp.o.d"
  "/root/repo/tests/metrics/test_report.cpp" "tests/CMakeFiles/bfsim_tests.dir/metrics/test_report.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/metrics/test_report.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/bfsim_tests.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/bfsim_tests.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/bfsim_tests.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/bfsim_tests.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/sim/test_stats.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/bfsim_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/util/test_cli.cpp" "tests/CMakeFiles/bfsim_tests.dir/util/test_cli.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/util/test_cli.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/bfsim_tests.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_format.cpp" "tests/CMakeFiles/bfsim_tests.dir/util/test_format.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/util/test_format.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/bfsim_tests.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/bfsim_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/workload/test_categories.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_categories.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_categories.cpp.o.d"
  "/root/repo/tests/workload/test_estimates.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_estimates.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_estimates.cpp.o.d"
  "/root/repo/tests/workload/test_filters.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_filters.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_filters.cpp.o.d"
  "/root/repo/tests/workload/test_swf.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_swf.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_swf.cpp.o.d"
  "/root/repo/tests/workload/test_synthetic.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_synthetic.cpp.o.d"
  "/root/repo/tests/workload/test_transforms.cpp" "tests/CMakeFiles/bfsim_tests.dir/workload/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/bfsim_tests.dir/workload/test_transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/bfsim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bfsim_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bfsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bfsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bfsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bfsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
