# Empty compiler generated dependencies file for estimate_advisor.
# This may be replaced when dependencies are built.
