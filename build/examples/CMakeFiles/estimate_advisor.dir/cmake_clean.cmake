file(REMOVE_RECURSE
  "CMakeFiles/estimate_advisor.dir/estimate_advisor.cpp.o"
  "CMakeFiles/estimate_advisor.dir/estimate_advisor.cpp.o.d"
  "estimate_advisor"
  "estimate_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
