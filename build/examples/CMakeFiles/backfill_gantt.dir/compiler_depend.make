# Empty compiler generated dependencies file for backfill_gantt.
# This may be replaced when dependencies are built.
