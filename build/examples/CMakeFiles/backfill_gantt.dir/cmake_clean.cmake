file(REMOVE_RECURSE
  "CMakeFiles/backfill_gantt.dir/backfill_gantt.cpp.o"
  "CMakeFiles/backfill_gantt.dir/backfill_gantt.cpp.o.d"
  "backfill_gantt"
  "backfill_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backfill_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
