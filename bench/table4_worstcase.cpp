// Regenerates Table 4: worst-case turnaround time (seconds) under
// conservative vs. EASY backfilling for each priority policy, CTC trace,
// exact user estimates.
//
// Paper shape: the worst-case turnaround under EASY is worse than under
// conservative -- EASY's lack of a guarantee for non-head jobs lets
// individual (typically wide) jobs be delayed without bound.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "table4_worstcase",
          "Table 4: worst-case turnaround time, CTC, exact estimates",
          options))
    return 0;

  bench::Grid grid{options};
  for (const auto priority : core::kPaperPolicies)
    for (const auto kind : {SchedulerKind::Conservative, SchedulerKind::Easy})
      (void)grid.add(exp::TraceKind::Ctc, kind, priority);
  grid.run();

  util::Table t{
      "Table 4 -- worst-case turnaround time (s), CTC, exact estimates"};
  t.set_header({"priority", "conservative", "EASY"});

  bool easy_worse_somewhere = false;
  for (const auto priority : core::kPaperPolicies) {
    const double cons =
        grid.max(grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                          priority),
                 exp::worst_turnaround);
    const double easy = grid.max(
        grid.add(exp::TraceKind::Ctc, SchedulerKind::Easy, priority),
        exp::worst_turnaround);
    t.add_row({to_string(priority),
               util::format_count(static_cast<std::int64_t>(cons)),
               util::format_count(static_cast<std::int64_t>(easy))});
    if (priority != PriorityPolicy::Fcfs) easy_worse_somewhere |= easy > cons;
  }
  std::fputs(t.str().c_str(), stdout);
  bench::report_expectation(
      "worst-case turnaround under EASY exceeds conservative "
      "(SJF/XFactor)",
      easy_worse_somewhere);
  return 0;
}
