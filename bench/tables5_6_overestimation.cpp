// Regenerates Tables 5 and 6: average bounded slowdown under systematic
// overestimation of user runtimes (estimate = R x runtime) for R = 1, 2
// and 4, under conservative (Table 5) and EASY (Table 6) backfilling,
// for each priority policy, CTC trace.
//
// Paper shape: overestimation *reduces* the overall slowdown (early
// completions open holes that backfilling exploits), and the reduction
// is larger under conservative -- EASY already enjoys good backfilling
// opportunities at R = 1.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "tables5_6_overestimation",
          "Tables 5-6: systematic overestimation R in {1,2,4}, CTC",
          options))
    return 0;

  const double factors[] = {1.0, 2.0, 4.0};

  bench::Grid grid{options};
  for (const auto kind : {SchedulerKind::Conservative, SchedulerKind::Easy})
    for (const auto priority : core::kPaperPolicies)
      for (const double factor : factors)
        (void)grid.add(
            exp::TraceKind::Ctc, kind, priority,
            exp::EstimateSpec{exp::EstimateRegime::Systematic, factor});
  grid.run();

  double slowdown[2][3][3];  // [scheme][priority][factor]

  int si = 0;
  for (const auto kind :
       {SchedulerKind::Conservative, SchedulerKind::Easy}) {
    util::Table t{std::string("Table ") + (si == 0 ? "5" : "6") +
                  " -- avg slowdown with systematic overestimation: " +
                  to_string(kind) + ", CTC"};
    t.set_header({"priority", "R=1", "R=2", "R=4"});
    int pi = 0;
    for (const auto priority : core::kPaperPolicies) {
      std::vector<std::string> row{to_string(priority)};
      for (int fi = 0; fi < 3; ++fi) {
        const auto cell = grid.add(
            exp::TraceKind::Ctc, kind, priority,
            exp::EstimateSpec{exp::EstimateRegime::Systematic, factors[fi]});
        slowdown[si][pi][fi] = grid.mean(cell, exp::overall_slowdown);
        row.push_back(util::format_fixed(slowdown[si][pi][fi]));
      }
      t.add_row(row);
      ++pi;
    }
    std::fputs(t.str().c_str(), stdout);
    std::fputs("\n", stdout);
    ++si;
  }

  bool cons_improves = true;
  for (int p = 0; p < 3; ++p)
    cons_improves = cons_improves &&
                    slowdown[0][p][1] < slowdown[0][p][0] &&
                    slowdown[0][p][2] < slowdown[0][p][0];
  bench::report_expectation(
      "overestimation lowers conservative slowdown for every priority",
      cons_improves);

  const auto gain = [&](int s, int p, int f) {
    return (slowdown[s][p][0] - slowdown[s][p][f]) / slowdown[s][p][0];
  };
  // "With [EASY] backfilling, the difference is less significant":
  // EASY's relative change at R=4 is smaller in magnitude than
  // conservative's improvement, for every priority.
  bool easy_less_significant = true;
  for (int p = 0; p < 3; ++p)
    easy_less_significant = easy_less_significant &&
                            std::abs(gain(1, p, 2)) < gain(0, p, 2);
  bench::report_expectation(
      "the effect is less significant under EASY (|change| smaller, R=4)",
      easy_less_significant);
  return 0;
}
