// Ablation A3 -- load sensitivity. The paper ran under "normal" and
// "high" load (inter-arrival shrinking) and reports that the trends are
// the same but pronounced under high load. Sweeps the offered load and
// tracks the conservative-vs-EASY-SJF gap.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

constexpr double kLoads[] = {0.70, 0.78, 0.84, 0.88, 0.92, 0.96};

/// Load-varying cells bypass the grid-wide --load: each declares a full
/// scenario with its own offered load, keyed on scheme + load.
std::size_t declare(bench::Grid& grid, SchedulerKind kind,
                    PriorityPolicy priority, double load) {
  exp::Scenario base;
  base.trace = exp::TraceKind::Ctc;
  base.jobs = grid.options().jobs;
  base.load = load;
  base.scheduler = kind;
  base.priority = priority;
  return grid.add_scenario(base, "a3/" + bench::scheme_label(kind, priority) +
                                     "/load=" + util::format_fixed(load));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_load_sweep",
          "A3: offered-load sweep (normal -> high load)", options))
    return 0;

  bench::Grid grid{options};
  for (const double load : kLoads) {
    (void)declare(grid, SchedulerKind::Conservative, PriorityPolicy::Fcfs,
                  load);
    (void)declare(grid, SchedulerKind::Easy, PriorityPolicy::Sjf, load);
  }
  grid.run();

  util::Table t{"A3 -- CTC, exact estimates: slowdown vs offered load"};
  t.set_header({"offered load", "conservative-fcfs", "easy-sjf",
                "EASY advantage"});

  double first_gap = 0.0, last_gap = 0.0;
  bool easy_always_ahead = true;
  for (const double load : kLoads) {
    const double cons =
        grid.mean(declare(grid, SchedulerKind::Conservative,
                          PriorityPolicy::Fcfs, load),
                  exp::overall_slowdown);
    const double easy = grid.mean(
        declare(grid, SchedulerKind::Easy, PriorityPolicy::Sjf, load),
        exp::overall_slowdown);
    const double gap = cons - easy;
    t.add_row({util::format_fixed(load), util::format_fixed(cons),
               util::format_fixed(easy), util::format_fixed(gap)});
    if (first_gap == 0.0) first_gap = gap;
    last_gap = gap;
    easy_always_ahead = easy_always_ahead && easy < cons;
  }
  std::fputs(t.str().c_str(), stdout);

  bench::report_expectation(
      "EASY-SJF beats conservative at every load level",
      easy_always_ahead);
  bench::report_expectation(
      "the gap is pronounced under high load (grows with load)",
      last_gap > first_gap);
  return 0;
}
