// Ablation A3 -- load sensitivity. The paper ran under "normal" and
// "high" load (inter-arrival shrinking) and reports that the trends are
// the same but pronounced under high load. Sweeps the offered load and
// tracks the conservative-vs-EASY-SJF gap.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_load_sweep",
          "A3: offered-load sweep (normal -> high load)", options))
    return 0;

  util::Table t{"A3 -- CTC, exact estimates: slowdown vs offered load"};
  t.set_header({"offered load", "conservative-fcfs", "easy-sjf",
                "EASY advantage"});

  double first_gap = 0.0, last_gap = 0.0;
  bool easy_always_ahead = true;
  for (const double load : {0.70, 0.78, 0.84, 0.88, 0.92, 0.96}) {
    bench::BenchOptions cell = options;
    cell.load = load;
    const double cons = exp::mean_of(
        bench::run_cell(cell, exp::TraceKind::Ctc,
                        SchedulerKind::Conservative, PriorityPolicy::Fcfs),
        exp::overall_slowdown);
    const double easy = exp::mean_of(
        bench::run_cell(cell, exp::TraceKind::Ctc, SchedulerKind::Easy,
                        PriorityPolicy::Sjf),
        exp::overall_slowdown);
    const double gap = cons - easy;
    t.add_row({util::format_fixed(load), util::format_fixed(cons),
               util::format_fixed(easy), util::format_fixed(gap)});
    if (first_gap == 0.0) first_gap = gap;
    last_gap = gap;
    easy_always_ahead = easy_always_ahead && easy < cons;
  }
  std::fputs(t.str().c_str(), stdout);

  bench::report_expectation(
      "EASY-SJF beats conservative at every load level",
      easy_always_ahead);
  bench::report_expectation(
      "the gap is pronounced under high load (grows with load)",
      last_gap > first_gap);
  return 0;
}
