// Ablation A2 -- the reservation-depth spectrum. Depth K interpolates
// between pure no-guarantee backfilling (K = 0), EASY (K = 1) and
// conservative-like protection (large K).
//
// Expected shape (FCFS priority, where guarantees go to the
// longest-waiting jobs): growing K trades mean slowdown for worst-case
// turnaround, exactly the Section 6 trade-off between the paper's two
// schemes. A second panel runs the sweep under SJF, where the picture
// inverts instructively: reservations chase the *shortest* queued jobs
// -- which never needed protection -- so extra depth buys nothing for
// the worst case. This motivates the paper's selective strategy, which
// targets guarantees by need instead of by queue position.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

constexpr int kDepths[] = {0, 1, 2, 4, 8, 16, 64};
const exp::EstimateSpec kActual{exp::EstimateRegime::Actual, 1.0};

struct SweepPoint {
  int depth;
  double slowdown;
  double worst;
};

core::SchedulerExtras depth_extras(int depth) {
  core::SchedulerExtras extras;
  extras.reservation_depth = depth;
  return extras;
}

void declare(bench::Grid& grid, PriorityPolicy priority) {
  for (const int depth : kDepths)
    (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::KReservation,
                   priority, kActual, depth_extras(depth));
}

std::vector<SweepPoint> sweep(bench::Grid& grid, PriorityPolicy priority) {
  std::vector<SweepPoint> points;
  util::Table t{"A2 -- reservation depth K, CTC, " + to_string(priority) +
                " priority, actual estimates"};
  t.set_header({"K", "avg slowdown", "worst turnaround (s)"});
  for (const int depth : kDepths) {
    const auto cell =
        grid.add(exp::TraceKind::Ctc, SchedulerKind::KReservation,
                 priority, kActual, depth_extras(depth));
    const SweepPoint point{depth, grid.mean(cell, exp::overall_slowdown),
                           grid.max(cell, exp::worst_turnaround)};
    t.add_row({std::to_string(depth), util::format_fixed(point.slowdown),
               util::format_count(static_cast<std::int64_t>(point.worst))});
    points.push_back(point);
  }
  std::fputs(t.str().c_str(), stdout);
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_kreservation",
          "A2: reservation-depth spectrum between EASY and conservative",
          options))
    return 0;

  bench::Grid grid{options};
  declare(grid, PriorityPolicy::Fcfs);
  declare(grid, PriorityPolicy::Sjf);
  grid.run();

  const auto fcfs = sweep(grid, PriorityPolicy::Fcfs);
  const SweepPoint& k0 = fcfs.front();   // greedy
  const SweepPoint& k1 = fcfs[1];        // EASY
  const SweepPoint& kmax = fcfs.back();  // conservative-like
  bench::report_expectation(
      "one guarantee (K=1) improves the worst case over none (K=0)",
      k1.worst < k0.worst);
  bench::report_expectation(
      "deep guarantees keep cutting the worst case (K=64 < K=1)",
      kmax.worst < k1.worst);
  bench::report_expectation(
      "deep guarantees cost mean slowdown (K=64 > K=1)",
      kmax.slowdown > k1.slowdown);
  std::fputs("\n", stdout);

  const auto sjf = sweep(grid, PriorityPolicy::Sjf);
  // Under SJF the reservations land on the shortest jobs, which backfill
  // fine anyway: depth should NOT buy a meaningfully better worst case.
  bench::report_expectation(
      "under SJF, depth fails to cut the worst case (K=64 >= 0.8 x K=1)",
      sjf.back().worst >= 0.8 * sjf[1].worst);
  return 0;
}
