// Ablation A4 -- slack-based backfilling (Talby & Feitelson, the
// paper's citation [13]). The slack factor bounds how far an existing
// reservation may be displaced by a newcomer: 0 gives
// conservative-strength guarantees, larger values approach aggressive
// backfilling while keeping starvation bounded.
//
// Expected shape: the sweep traces the same mean-slowdown /
// worst-turnaround frontier as the paper's two schemes -- slack 0
// anchors the conservative end, large slack approaches EASY's mean.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

constexpr double kFactors[] = {0.0, 0.5, 1.0, 2.0, 5.0, 20.0};
const exp::EstimateSpec kActual{exp::EstimateRegime::Actual, 1.0};

core::SchedulerExtras slack_extras(double factor) {
  core::SchedulerExtras extras;
  extras.slack_factor = factor;
  return extras;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_slack",
          "A4: slack-based backfilling factor sweep", options))
    return 0;

  bench::Grid grid{options};
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                 PriorityPolicy::Sjf, kActual);
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Easy,
                 PriorityPolicy::Sjf, kActual);
  for (const double factor : kFactors)
    (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Slack,
                   PriorityPolicy::Sjf, kActual, slack_extras(factor));
  // Exact-estimate pair for the slack-0 == conservative identity check.
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                 PriorityPolicy::Sjf);
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Slack,
                 PriorityPolicy::Sjf, {}, slack_extras(0.0));
  grid.run();

  util::Table t{
      "A4 -- slack-based backfilling, CTC, SJF priority, actual estimates"};
  t.set_header({"scheduler", "avg slowdown", "worst turnaround (s)"});

  const auto cell = [&](SchedulerKind kind, core::SchedulerExtras extras,
                        const std::string& label) {
    const auto handle = grid.add(exp::TraceKind::Ctc, kind,
                                 PriorityPolicy::Sjf, kActual, extras);
    const double slowdown = grid.mean(handle, exp::overall_slowdown);
    const double worst = grid.max(handle, exp::worst_turnaround);
    t.add_row({label, util::format_fixed(slowdown),
               util::format_count(static_cast<std::int64_t>(worst))});
    return std::pair{slowdown, worst};
  };

  const auto cons = cell(SchedulerKind::Conservative, {}, "conservative");
  const auto easy = cell(SchedulerKind::Easy, {}, "easy");
  t.add_rule();

  std::pair<double, double> slack0{}, slack_big{};
  for (const double factor : kFactors) {
    const auto point = cell(SchedulerKind::Slack, slack_extras(factor),
                            "slack x" + util::format_fixed(factor, 1));
    if (factor == 0.0) slack0 = point;
    slack_big = point;
  }
  std::fputs(t.str().c_str(), stdout);

  // With exact estimates (no compression gains to re-trade), slack 0 is
  // schedule-identical to conservative; with actual estimates it may
  // only *re-push* jobs back toward their original arrival guarantee,
  // so it tracks or beats conservative.
  const double cons_exact =
      grid.mean(grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                         PriorityPolicy::Sjf),
                exp::overall_slowdown);
  const double slack0_exact =
      grid.mean(grid.add(exp::TraceKind::Ctc, SchedulerKind::Slack,
                         PriorityPolicy::Sjf, {}, slack_extras(0.0)),
                exp::overall_slowdown);
  bench::report_expectation(
      "slack 0 == conservative exactly under exact estimates",
      slack0_exact == cons_exact);
  bench::report_expectation(
      "slack 0 never does worse than conservative (actual estimates)",
      slack0.first <= cons.first);
  bench::report_expectation(
      "large slack beats conservative's mean slowdown",
      slack_big.first < cons.first);
  bench::report_expectation(
      "slack 0's worst case beats EASY-SJF's",
      slack0.second < easy.second);
  return 0;
}
