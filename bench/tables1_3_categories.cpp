// Regenerates Tables 1-3: the job categorization criteria and the
// category distribution of the CTC-like and SDSC-like workloads.
//
// Paper reference values (reconstructed from the OCR text, see
// DESIGN.md): CTC  SN 45.06  SW 11.84  LN 30.26  LW 12.84 (%)
//             SDSC SN 47.24  SW 21.44  LN 20.94  LW 10.38 (%)
#include "common.hpp"

#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

using namespace bfsim;

namespace {

void print_table1() {
  util::Table t{"Table 1 -- categorization of jobs by runtime and width"};
  t.set_header({"", "<= 8 processors", "> 8 processors"});
  t.add_row({"<= 1 hr", "SN (Short Narrow)", "SW (Short Wide)"});
  t.add_row({"> 1 hr", "LN (Long Narrow)", "LW (Long Wide)"});
  std::fputs(t.str().c_str(), stdout);
  std::fputs("\n", stdout);
}

/// Workload-only cell: generates the trace for its seed and records the
/// category mix in the auxiliary value slots -- no simulation runs. The
/// trace RNG derives from the scenario seed, so the measurement matches
/// the workload every simulating bench sees for that seed.
void mix_cell(const exp::Scenario& scenario,
              const core::SimulationOptions& /*sim_options*/,
              exp::CellResult& result) {
  const workload::Trace trace = exp::build_workload(scenario);
  const auto params = scenario.trace == exp::TraceKind::Ctc
                          ? workload::CategoryMixModel::ctc()
                          : workload::CategoryMixModel::sdsc();
  const auto mix = workload::category_mix(trace, params.thresholds);
  result.values.assign(mix.begin(), mix.end());
}

std::size_t declare(bench::Grid& grid, exp::TraceKind trace) {
  exp::Scenario base;
  base.trace = trace;
  base.jobs = grid.options().jobs;
  base.load = grid.options().load;
  return grid.add_custom(base, "mix/" + exp::to_string(trace), mix_cell);
}

void print_distribution(bench::Grid& grid, const char* title,
                        exp::TraceKind trace,
                        const workload::CategoryMixParams& params) {
  const auto cell = declare(grid, trace);
  util::Table t{title};
  t.set_header({"category", "generated", "paper target"});
  bool all_close = true;
  for (const auto cat : workload::kAllCategories) {
    const auto i = static_cast<std::size_t>(cat);
    const double mix = grid.mean_value(cell, i);
    t.add_row({workload::code(cat), util::format_percent(mix),
               util::format_percent(params.mix[i])});
    all_close = all_close && std::abs(mix - params.mix[i]) < 0.02;
  }
  std::fputs(t.str().c_str(), stdout);
  bench::report_expectation(
      std::string(params.name) + " mix within 2% of the paper's table",
      all_close);
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(argc, argv, "tables1_3_categories",
                                  "Tables 1-3: job categorization and mix",
                                  options))
    return 0;

  bench::Grid grid{options};
  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc})
    (void)declare(grid, trace);
  grid.run();

  print_table1();
  print_distribution(grid, "Table 2 -- CTC trace job distribution (430 procs)",
                     exp::TraceKind::Ctc, workload::CategoryMixModel::ctc());
  print_distribution(grid,
                     "Table 3 -- SDSC trace job distribution (128 procs)",
                     exp::TraceKind::Sdsc, workload::CategoryMixModel::sdsc());
  return 0;
}
