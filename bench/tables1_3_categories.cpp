// Regenerates Tables 1-3: the job categorization criteria and the
// category distribution of the CTC-like and SDSC-like workloads.
//
// Paper reference values (reconstructed from the OCR text, see
// DESIGN.md): CTC  SN 45.06  SW 11.84  LN 30.26  LW 12.84 (%)
//             SDSC SN 47.24  SW 21.44  LN 20.94  LW 10.38 (%)
#include "common.hpp"

#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

using namespace bfsim;

namespace {

void print_table1() {
  util::Table t{"Table 1 -- categorization of jobs by runtime and width"};
  t.set_header({"", "<= 8 processors", "> 8 processors"});
  t.add_row({"<= 1 hr", "SN (Short Narrow)", "SW (Short Wide)"});
  t.add_row({"> 1 hr", "LN (Long Narrow)", "LW (Long Wide)"});
  std::fputs(t.str().c_str(), stdout);
  std::fputs("\n", stdout);
}

void print_distribution(const char* title,
                        const workload::CategoryMixParams& params,
                        const bench::BenchOptions& options) {
  const workload::CategoryMixModel model{params};
  // Aggregate the mix over all replication seeds.
  std::array<double, 4> mix{};
  for (std::size_t rep = 0; rep < options.seeds; ++rep) {
    sim::Rng rng{(rep + 1) * 0x9e3779b97f4a7c15ULL + 1};
    const workload::Trace trace = model.generate(options.jobs, rng);
    const auto one = workload::category_mix(trace, params.thresholds);
    for (std::size_t c = 0; c < 4; ++c) mix[c] += one[c];
  }
  for (double& m : mix) m /= static_cast<double>(options.seeds);

  util::Table t{title};
  t.set_header({"category", "generated", "paper target"});
  bool all_close = true;
  for (const auto cat : workload::kAllCategories) {
    const auto i = static_cast<std::size_t>(cat);
    t.add_row({workload::code(cat), util::format_percent(mix[i]),
               util::format_percent(params.mix[i])});
    all_close = all_close && std::abs(mix[i] - params.mix[i]) < 0.02;
  }
  std::fputs(t.str().c_str(), stdout);
  bench::report_expectation(
      std::string(params.name) + " mix within 2% of the paper's table",
      all_close);
  std::fputs("\n", stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(argc, argv, "tables1_3_categories",
                                  "Tables 1-3: job categorization and mix",
                                  options))
    return 0;

  print_table1();
  print_distribution("Table 2 -- CTC trace job distribution (430 procs)",
                     workload::CategoryMixModel::ctc(), options);
  print_distribution("Table 3 -- SDSC trace job distribution (128 procs)",
                     workload::CategoryMixModel::sdsc(), options);
  return 0;
}
