// Regenerates Figure 3: overall average bounded slowdown with *actual*
// (inaccurate) user estimates, conservative vs. EASY under each priority
// policy, both traces. The exact-estimate slowdown is printed alongside
// so the Section 5.2 deterioration is visible.
//
// Paper shape: with actual estimates the overall slowdown deteriorates
// relative to exact estimates (unlike uniform overestimation, which
// helps), and EASY keeps a lower overall slowdown than conservative.
// Known deviation: on the synthetic SDSC mix the FCFS-priority pair is
// within noise of even -- see EXPERIMENTS.md.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "fig3_actual_estimates",
          "Fig. 3: overall slowdown with actual user estimates", options))
    return 0;

  const exp::EstimateSpec actual{exp::EstimateRegime::Actual, 1.0};

  bench::Grid grid{options};
  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc})
    for (const auto kind : {SchedulerKind::Conservative, SchedulerKind::Easy})
      for (const auto priority : core::kPaperPolicies) {
        (void)grid.add(trace, kind, priority);
        (void)grid.add(trace, kind, priority, actual);
      }
  grid.run();

  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc}) {
    util::Table t{"Fig. 3 -- " + to_string(trace) +
                  ": avg slowdown, actual vs exact user estimates"};
    t.set_header({"scheme", "exact", "actual", "change"});

    bool deteriorates = true;
    bool easy_ahead = true;
    for (const auto kind :
         {SchedulerKind::Conservative, SchedulerKind::Easy}) {
      for (const auto priority : core::kPaperPolicies) {
        const double exact = grid.mean(grid.add(trace, kind, priority),
                                       exp::overall_slowdown);
        const double act = grid.mean(grid.add(trace, kind, priority, actual),
                                     exp::overall_slowdown);
        t.add_row({bench::scheme_label(kind, priority),
                   util::format_fixed(exact), util::format_fixed(act),
                   util::format_signed_percent(
                       metrics::relative_change(exact, act))});
        if (kind == SchedulerKind::Conservative &&
            priority == PriorityPolicy::Fcfs)
          deteriorates = act > exact;
      }
      t.add_rule();
    }
    // Per-priority EASY vs conservative comparison under actual
    // estimates (SJF and XFactor carry the paper's headline claim).
    for (const auto priority :
         {PriorityPolicy::Sjf, PriorityPolicy::XFactor}) {
      const double cons = grid.mean(
          grid.add(trace, SchedulerKind::Conservative, priority, actual),
          exp::overall_slowdown);
      const double easy = grid.mean(
          grid.add(trace, SchedulerKind::Easy, priority, actual),
          exp::overall_slowdown);
      easy_ahead = easy_ahead && easy < cons;
    }
    std::fputs(t.str().c_str(), stdout);
    bench::report_expectation(
        "actual estimates deteriorate conservative-FCFS slowdown vs exact",
        deteriorates);
    bench::report_expectation(
        "EASY stays below conservative under actual estimates (SJF/XF)",
        easy_ahead);
    std::fputs("\n", stdout);
  }
  return 0;
}
