// Regenerates Figure 4: average slowdown of well-estimated jobs
// (estimate <= 2 x runtime) and poorly-estimated jobs, under actual user
// estimates, compared against the *same* jobs when every estimate is
// exact. Conservative and EASY, CTC trace, FCFS priority.
//
// Paper shape: well-estimated jobs gain (they exploit the holes the
// poorly-estimated jobs leave behind), poorly-estimated jobs lose (their
// inflated requests make them look long, so they cannot backfill), and
// both effects are more pronounced under conservative backfilling.
#include "common.hpp"

#include "core/simulation.hpp"
#include "metrics/aggregate.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;
using workload::EstimateQuality;

namespace {

struct GroupMeans {
  double well_exact = 0, well_actual = 0, poor_exact = 0, poor_actual = 0;
};

GroupMeans measure(SchedulerKind kind, const bench::BenchOptions& options) {
  GroupMeans sums;
  for (std::uint64_t seed = 1; seed <= options.seeds; ++seed) {
    exp::Scenario actual;
    actual.trace = exp::TraceKind::Ctc;
    actual.jobs = options.jobs;
    actual.load = options.load;
    actual.seed = seed;
    actual.estimates.regime = exp::EstimateRegime::Actual;
    exp::Scenario exact = actual;
    exact.estimates.regime = exp::EstimateRegime::Exact;

    // Identical jobs; only the estimates differ. The grouping labels come
    // from the actual-estimate trace in both runs.
    const auto actual_trace = exp::build_workload(actual);
    const auto exact_trace = exp::build_workload(exact);
    const auto labels = metrics::estimate_labels(actual_trace);

    const core::SchedulerConfig config{actual.procs(), PriorityPolicy::Fcfs};
    const auto metric_options =
        exp::experiment_metrics_options(options.jobs);
    const auto m_actual = metrics::compute_metrics(
        core::run_simulation(actual_trace, kind, config), config.procs,
        metric_options, &labels);
    const auto m_exact = metrics::compute_metrics(
        core::run_simulation(exact_trace, kind, config), config.procs,
        metric_options, &labels);

    sums.well_actual +=
        m_actual.estimate_class(EstimateQuality::Well).slowdown.mean();
    sums.well_exact +=
        m_exact.estimate_class(EstimateQuality::Well).slowdown.mean();
    sums.poor_actual +=
        m_actual.estimate_class(EstimateQuality::Poor).slowdown.mean();
    sums.poor_exact +=
        m_exact.estimate_class(EstimateQuality::Poor).slowdown.mean();
  }
  const auto n = static_cast<double>(options.seeds);
  return {sums.well_exact / n, sums.well_actual / n, sums.poor_exact / n,
          sums.poor_actual / n};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "fig4_well_poor",
          "Fig. 4: well vs poorly estimated jobs, exact vs actual",
          options))
    return 0;

  GroupMeans by_kind[2];
  int ki = 0;
  for (const auto kind :
       {SchedulerKind::Conservative, SchedulerKind::Easy}) {
    const GroupMeans g = measure(kind, options);
    by_kind[ki++] = g;

    util::Table t{"Fig. 4 -- " + to_string(kind) +
                  " backfill, CTC: avg slowdown by estimate quality"};
    t.set_header({"job group", "all-exact run", "actual-estimates run",
                  "change"});
    t.add_row({"well estimated", util::format_fixed(g.well_exact),
               util::format_fixed(g.well_actual),
               util::format_signed_percent(metrics::relative_change(
                   g.well_exact, g.well_actual))});
    t.add_row({"poorly estimated", util::format_fixed(g.poor_exact),
               util::format_fixed(g.poor_actual),
               util::format_signed_percent(metrics::relative_change(
                   g.poor_exact, g.poor_actual))});
    std::fputs(t.str().c_str(), stdout);

    bench::report_expectation("well-estimated jobs improve",
                              g.well_actual < g.well_exact);
    bench::report_expectation("poorly-estimated jobs deteriorate",
                              g.poor_actual > g.poor_exact);
    std::fputs("\n", stdout);
  }

  const auto spread = [](const GroupMeans& g) {
    return metrics::relative_change(g.poor_exact, g.poor_actual) -
           metrics::relative_change(g.well_exact, g.well_actual);
  };
  bench::report_expectation(
      "the well/poor split is more pronounced under conservative",
      spread(by_kind[0]) > spread(by_kind[1]));
  return 0;
}
