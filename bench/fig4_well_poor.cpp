// Regenerates Figure 4: average slowdown of well-estimated jobs
// (estimate <= 2 x runtime) and poorly-estimated jobs, under actual user
// estimates, compared against the *same* jobs when every estimate is
// exact. Conservative and EASY, CTC trace, FCFS priority.
//
// Paper shape: well-estimated jobs gain (they exploit the holes the
// poorly-estimated jobs leave behind), poorly-estimated jobs lose (their
// inflated requests make them look long, so they cannot backfill), and
// both effects are more pronounced under conservative backfilling.
#include "common.hpp"

#include "core/simulation.hpp"
#include "metrics/aggregate.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;
using workload::EstimateQuality;

namespace {

struct GroupMeans {
  double well_exact = 0, well_actual = 0, poor_exact = 0, poor_actual = 0;
};

/// Value slots of the paired-run cell (exp::CellResult::values).
enum Slot : std::size_t { kWellExact, kWellActual, kPoorExact, kPoorActual };

/// One seed's paired measurement: identical jobs simulated twice (exact
/// and actual estimates), both aggregated with the estimate-quality
/// grouping of the *actual* trace. Hermetic: everything derives from
/// the scenario, so it shards over the sweep like any other cell.
void paired_estimate_cell(const exp::Scenario& scenario,
                          const core::SimulationOptions& sim_options,
                          exp::CellResult& result) {
  exp::Scenario exact = scenario;
  exact.estimates.regime = exp::EstimateRegime::Exact;

  // Identical jobs; only the estimates differ. The grouping labels come
  // from the actual-estimate trace in both runs.
  const auto actual_trace = exp::build_workload(scenario);
  const auto exact_trace = exp::build_workload(exact);
  const auto labels = metrics::estimate_labels(actual_trace);

  const core::SchedulerConfig config{scenario.procs(), scenario.priority};
  const auto metric_options = exp::experiment_metrics_options(scenario.jobs);
  const auto m_actual = metrics::compute_metrics(
      core::run_simulation(actual_trace, scenario.scheduler, config, {},
                           sim_options),
      config.procs, metric_options, &labels);
  const auto m_exact = metrics::compute_metrics(
      core::run_simulation(exact_trace, scenario.scheduler, config, {},
                           sim_options),
      config.procs, metric_options, &labels);

  result.metrics = m_actual;
  result.values.assign(4, 0.0);
  result.values[kWellExact] =
      m_exact.estimate_class(EstimateQuality::Well).slowdown.mean();
  result.values[kWellActual] =
      m_actual.estimate_class(EstimateQuality::Well).slowdown.mean();
  result.values[kPoorExact] =
      m_exact.estimate_class(EstimateQuality::Poor).slowdown.mean();
  result.values[kPoorActual] =
      m_actual.estimate_class(EstimateQuality::Poor).slowdown.mean();
}

std::size_t declare(bench::Grid& grid, SchedulerKind kind) {
  exp::Scenario base;
  base.trace = exp::TraceKind::Ctc;
  base.jobs = grid.options().jobs;
  base.load = grid.options().load;
  base.scheduler = kind;
  base.priority = PriorityPolicy::Fcfs;
  base.estimates.regime = exp::EstimateRegime::Actual;
  return grid.add_custom(base, "fig4/" + core::to_string(kind),
                         paired_estimate_cell);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "fig4_well_poor",
          "Fig. 4: well vs poorly estimated jobs, exact vs actual",
          options))
    return 0;

  bench::Grid grid{options};
  for (const auto kind : {SchedulerKind::Conservative, SchedulerKind::Easy})
    (void)declare(grid, kind);
  grid.run();

  GroupMeans by_kind[2];
  int ki = 0;
  for (const auto kind :
       {SchedulerKind::Conservative, SchedulerKind::Easy}) {
    const auto cell = declare(grid, kind);
    const GroupMeans g{grid.mean_value(cell, kWellExact),
                       grid.mean_value(cell, kWellActual),
                       grid.mean_value(cell, kPoorExact),
                       grid.mean_value(cell, kPoorActual)};
    by_kind[ki++] = g;

    util::Table t{"Fig. 4 -- " + to_string(kind) +
                  " backfill, CTC: avg slowdown by estimate quality"};
    t.set_header({"job group", "all-exact run", "actual-estimates run",
                  "change"});
    t.add_row({"well estimated", util::format_fixed(g.well_exact),
               util::format_fixed(g.well_actual),
               util::format_signed_percent(metrics::relative_change(
                   g.well_exact, g.well_actual))});
    t.add_row({"poorly estimated", util::format_fixed(g.poor_exact),
               util::format_fixed(g.poor_actual),
               util::format_signed_percent(metrics::relative_change(
                   g.poor_exact, g.poor_actual))});
    std::fputs(t.str().c_str(), stdout);

    bench::report_expectation("well-estimated jobs improve",
                              g.well_actual < g.well_exact);
    bench::report_expectation("poorly-estimated jobs deteriorate",
                              g.poor_actual > g.poor_exact);
    std::fputs("\n", stdout);
  }

  const auto spread = [](const GroupMeans& g) {
    return metrics::relative_change(g.poor_exact, g.poor_actual) -
           metrics::relative_change(g.well_exact, g.well_actual);
  };
  bench::report_expectation(
      "the well/poor split is more pronounced under conservative",
      spread(by_kind[0]) > spread(by_kind[1]));
  return 0;
}
