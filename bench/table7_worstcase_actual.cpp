// Regenerates Table 7: worst-case turnaround time (seconds) under
// conservative vs. EASY backfilling for each priority policy, CTC trace,
// *actual* (inaccurate) user estimates.
//
// Paper shape: as with exact estimates (Table 4), the worst-case
// turnaround under EASY is worse than under conservative -- reservations
// for every queued job bound the damage a single job can take.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "table7_worstcase_actual",
          "Table 7: worst-case turnaround, CTC, actual estimates",
          options))
    return 0;

  const exp::EstimateSpec actual{exp::EstimateRegime::Actual, 1.0};

  bench::Grid grid{options};
  for (const auto priority : core::kPaperPolicies)
    for (const auto kind : {SchedulerKind::Conservative, SchedulerKind::Easy})
      (void)grid.add(exp::TraceKind::Ctc, kind, priority, actual);
  grid.run();

  util::Table t{
      "Table 7 -- worst-case turnaround time (s), CTC, actual estimates"};
  t.set_header({"priority", "conservative", "EASY"});

  bool easy_worse_somewhere = false;
  for (const auto priority : core::kPaperPolicies) {
    const double cons =
        grid.max(grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                          priority, actual),
                 exp::worst_turnaround);
    const double easy = grid.max(
        grid.add(exp::TraceKind::Ctc, SchedulerKind::Easy, priority, actual),
        exp::worst_turnaround);
    t.add_row({to_string(priority),
               util::format_count(static_cast<std::int64_t>(cons)),
               util::format_count(static_cast<std::int64_t>(easy))});
    if (priority != PriorityPolicy::Fcfs) easy_worse_somewhere |= easy > cons;
  }
  std::fputs(t.str().c_str(), stdout);
  bench::report_expectation(
      "worst-case turnaround under EASY exceeds conservative "
      "(SJF/XFactor)",
      easy_worse_somewhere);
  return 0;
}
