// Ablation A5 -- queued-job cancellations. Section 4 of the paper
// motivates its exact-estimate baseline by noting that "aborted jobs and
// the poorly estimated jobs can skew the average slowdown". This sweep
// quantifies the skew: a growing fraction of impatient users withdraw
// queued jobs, which (a) removes exactly the jobs that were waiting
// longest from the statistics and (b) punches holes into conservative's
// reservation book that compression must exploit.
#include "common.hpp"

#include "core/simulation.hpp"
#include "workload/transforms.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

struct Cell {
  double slowdown = 0.0;
  double cancelled = 0.0;
};

Cell run_cell(const bench::BenchOptions& options, SchedulerKind kind,
              double fraction) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= options.seeds; ++seed) {
    exp::Scenario s;
    s.trace = exp::TraceKind::Ctc;
    s.jobs = options.jobs;
    s.load = options.load;
    s.seed = seed;
    s.estimates.regime = exp::EstimateRegime::Actual;
    workload::Trace trace = exp::build_workload(s);
    sim::Rng rng{seed * 0xa076bc9d85f6e357ULL + 3};
    // Impatient users: give up after waiting one estimated runtime.
    workload::apply_cancellations(trace, fraction, 1.0, rng);
    const core::SchedulerConfig config{s.procs(), PriorityPolicy::Fcfs};
    const auto result = core::run_simulation(trace, kind, config);
    const auto m = metrics::compute_metrics(
        result, config.procs,
        exp::experiment_metrics_options(trace.size()));
    cell.slowdown += m.overall.slowdown.mean();
    cell.cancelled += static_cast<double>(m.cancelled_jobs) /
                      static_cast<double>(m.overall.count() +
                                          m.cancelled_jobs);
  }
  const auto n = static_cast<double>(options.seeds);
  return {cell.slowdown / n, cell.cancelled / n};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_cancellations",
          "A5: impact of queued-job cancellations on the averages",
          options))
    return 0;

  util::Table t{
      "A5 -- cancellations, CTC, FCFS priority, actual estimates "
      "(impatience: give up after 1 x estimate of waiting)"};
  t.set_header({"cancel-prone users", "realized cancellations",
                "conservative slowdown", "easy slowdown"});

  double cons_first = 0, cons_last = 0;
  bool monotone_context = true;
  double prev_cons = -1.0;
  for (const double fraction : {0.0, 0.1, 0.2, 0.4}) {
    const Cell cons = run_cell(options, SchedulerKind::Conservative, fraction);
    const Cell easy = run_cell(options, SchedulerKind::Easy, fraction);
    t.add_row({util::format_percent(fraction, 0),
               util::format_percent(cons.cancelled, 1),
               util::format_fixed(cons.slowdown),
               util::format_fixed(easy.slowdown)});
    if (fraction == 0.0) cons_first = cons.slowdown;
    cons_last = cons.slowdown;
    if (prev_cons >= 0.0 && cons.slowdown > prev_cons)
      monotone_context = false;
    prev_cons = cons.slowdown;
  }
  std::fputs(t.str().c_str(), stdout);

  bench::report_expectation(
      "cancellations skew the average slowdown downward (they remove the "
      "longest waiters)",
      cons_last < cons_first && monotone_context);
  return 0;
}
