// Ablation A5 -- queued-job cancellations. Section 4 of the paper
// motivates its exact-estimate baseline by noting that "aborted jobs and
// the poorly estimated jobs can skew the average slowdown". This sweep
// quantifies the skew: a growing fraction of impatient users withdraw
// queued jobs, which (a) removes exactly the jobs that were waiting
// longest from the statistics and (b) punches holes into conservative's
// reservation book that compression must exploit.
#include "common.hpp"

#include "core/simulation.hpp"
#include "workload/transforms.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

/// Value slot: realized fraction of jobs cancelled (exp::CellResult).
constexpr std::size_t kRealizedCancellations = 0;

/// The cancellation transform is seeded from the scenario seed with its
/// own stream constant, so the set of impatient users is independent of
/// the workload draw but reproducible per cell.
exp::CellRunner cancellation_cell(double fraction) {
  return [fraction](const exp::Scenario& scenario,
                    const core::SimulationOptions& sim_options,
                    exp::CellResult& result) {
    workload::Trace trace = exp::build_workload(scenario);
    sim::Rng rng{scenario.seed * 0xa076bc9d85f6e357ULL + 3};
    // Impatient users: give up after waiting one estimated runtime.
    workload::apply_cancellations(trace, fraction, 1.0, rng);
    const core::SchedulerConfig config{scenario.procs(), scenario.priority};
    const auto sim_result = core::run_simulation(trace, scenario.scheduler,
                                                 config, {}, sim_options);
    result.metrics = metrics::compute_metrics(
        sim_result, config.procs,
        exp::experiment_metrics_options(trace.size()));
    result.values.assign(1, 0.0);
    result.values[kRealizedCancellations] =
        static_cast<double>(result.metrics.cancelled_jobs) /
        static_cast<double>(result.metrics.overall.count() +
                            result.metrics.cancelled_jobs);
  };
}

std::size_t declare(bench::Grid& grid, SchedulerKind kind, double fraction) {
  exp::Scenario base;
  base.trace = exp::TraceKind::Ctc;
  base.jobs = grid.options().jobs;
  base.load = grid.options().load;
  base.scheduler = kind;
  base.priority = PriorityPolicy::Fcfs;
  base.estimates.regime = exp::EstimateRegime::Actual;
  return grid.add_custom(base,
                         "a5/" + core::to_string(kind) +
                             "/cancel=" + util::format_percent(fraction, 0),
                         cancellation_cell(fraction));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_cancellations",
          "A5: impact of queued-job cancellations on the averages",
          options))
    return 0;

  const double fractions[] = {0.0, 0.1, 0.2, 0.4};

  bench::Grid grid{options};
  for (const double fraction : fractions)
    for (const auto kind :
         {SchedulerKind::Conservative, SchedulerKind::Easy})
      (void)declare(grid, kind, fraction);
  grid.run();

  util::Table t{
      "A5 -- cancellations, CTC, FCFS priority, actual estimates "
      "(impatience: give up after 1 x estimate of waiting)"};
  t.set_header({"cancel-prone users", "realized cancellations",
                "conservative slowdown", "easy slowdown"});

  double cons_first = 0, cons_last = 0;
  bool monotone_context = true;
  double prev_cons = -1.0;
  for (const double fraction : fractions) {
    const auto cons_cell =
        declare(grid, SchedulerKind::Conservative, fraction);
    const auto easy_cell = declare(grid, SchedulerKind::Easy, fraction);
    const double cons = grid.mean(cons_cell, exp::overall_slowdown);
    const double easy = grid.mean(easy_cell, exp::overall_slowdown);
    t.add_row({util::format_percent(fraction, 0),
               util::format_percent(
                   grid.mean_value(cons_cell, kRealizedCancellations), 1),
               util::format_fixed(cons), util::format_fixed(easy)});
    if (fraction == 0.0) cons_first = cons;
    cons_last = cons;
    if (prev_cons >= 0.0 && cons > prev_cons) monotone_context = false;
    prev_cons = cons;
  }
  std::fputs(t.str().c_str(), stdout);

  bench::report_expectation(
      "cancellations skew the average slowdown downward (they remove the "
      "longest waiters)",
      cons_last < cons_first && monotone_context);
  return 0;
}
