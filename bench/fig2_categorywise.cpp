// Regenerates Figure 2: category-wise relative change in average
// slowdown of EASY backfilling vs. conservative backfilling (negative =
// EASY better), under FCFS, SJF and XFactor, with exact estimates.
//
// Paper shape (CTC): LN benefits from EASY under all priorities; SW
// benefits from conservative under FCFS; under SJF and XFactor the short
// categories (SN, SW) also swing to EASY. SN and LW show no strong,
// consistent trend under FCFS.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;
using workload::Category;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "fig2_categorywise",
          "Fig. 2: per-category slowdown change, EASY vs conservative",
          options))
    return 0;

  // Declaration pass: the whole grid runs as one sweep; the render pass
  // re-requests the same cells (Grid::add memoizes).
  bench::Grid grid{options};
  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc})
    for (const auto priority : core::kPaperPolicies)
      for (const auto kind :
           {SchedulerKind::Conservative, SchedulerKind::Easy})
        (void)grid.add(trace, kind, priority);
  grid.run();

  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc}) {
    util::Table t{"Fig. 2 -- " + to_string(trace) +
                  ": % change in slowdown, EASY vs conservative "
                  "(negative = EASY better)"};
    t.set_header({"priority", "SN", "SW", "LN", "LW", "overall"});

    double ln_change[3] = {};
    double sw_fcfs = 0.0, sn_sjf = 0.0, sw_sjf = 0.0;
    int pi = 0;
    for (const auto priority : core::kPaperPolicies) {
      const auto cons = grid.add(trace, SchedulerKind::Conservative, priority);
      const auto easy = grid.add(trace, SchedulerKind::Easy, priority);
      std::vector<std::string> row{to_string(priority)};
      for (const auto cat : workload::kAllCategories) {
        const double c = grid.mean(cons, [cat](const metrics::Metrics& m) {
          return exp::category_slowdown(m, cat);
        });
        const double e = grid.mean(easy, [cat](const metrics::Metrics& m) {
          return exp::category_slowdown(m, cat);
        });
        const double change = metrics::relative_change(c, e);
        row.push_back(util::format_signed_percent(change));
        if (cat == Category::LongNarrow) ln_change[pi] = change;
        if (cat == Category::ShortWide &&
            priority == PriorityPolicy::Fcfs)
          sw_fcfs = change;
        if (priority == PriorityPolicy::Sjf) {
          if (cat == Category::ShortNarrow) sn_sjf = change;
          if (cat == Category::ShortWide) sw_sjf = change;
        }
      }
      row.push_back(util::format_signed_percent(metrics::relative_change(
          grid.mean(cons, exp::overall_slowdown),
          grid.mean(easy, exp::overall_slowdown))));
      t.add_row(row);
      ++pi;
    }
    std::fputs(t.str().c_str(), stdout);

    bench::report_expectation(
        "LN jobs benefit from EASY under every priority policy",
        ln_change[0] < 0 && ln_change[1] < 0 && ln_change[2] < 0);
    if (trace == exp::TraceKind::Ctc)
      bench::report_expectation(
          "SW jobs benefit from conservative under FCFS", sw_fcfs > 0);
    bench::report_expectation(
        "short jobs (SN, SW) benefit from EASY under SJF",
        sn_sjf < 0 && sw_sjf < 0);
    std::fputs("\n", stdout);
  }
  return 0;
}
