// P1 -- performance measurement of the simulator substrate.
//
// Two personalities in one binary:
//
//   * default: google-benchmark microbenchmarks of profile operations,
//     full scheduler runs (events/second), workload generation and the
//     RNG -- interactive regression hunting;
//   * --profile-report [--jobs N] [--out FILE]: machine-readable numbers
//     for the profile hot path on CTC-shaped synthetic high-load traces
//     (events/sec per scheduler, ns per anchor on a fragmented profile,
//     breakpoint counts during a conservative run), written as JSON to
//     BENCH_profile.json;
//   * --smoke [--baseline FILE]: CI guard. Re-measures the conservative
//     *cost factor* (EASY events/sec divided by conservative events/sec
//     -- a same-machine ratio, so it normalizes out hardware speed) and
//     exits 1 if it regressed more than 2x against the checked-in
//     bench/perf_baseline.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/conservative_scheduler.hpp"
#include "core/decision_core.hpp"
#include "core/multi_profile.hpp"
#include "core/profile.hpp"
#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace {

using namespace bfsim;

// ---------------------------------------------------------------------------
// Microbenchmarks (google-benchmark).
// ---------------------------------------------------------------------------

void BM_ProfileReserveRelease(benchmark::State& state) {
  core::Profile profile{128};
  sim::Rng rng{1};
  std::int64_t t = 0;
  for (auto _ : state) {
    const sim::Time begin = t % 100000;
    const sim::Time end = sim::checked::add(begin, 1, t % 500);
    profile.reserve(begin, end, 16);
    profile.release(begin, end, 16);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileReserveRelease);

void BM_ProfileEarliestAnchor(benchmark::State& state) {
  // A realistically fragmented profile with ~64 live reservations.
  core::Profile profile{128};
  sim::Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const sim::Time begin = rng.uniform_int(0, 50000);
    profile.reserve(begin,
                    sim::saturating_add(begin, rng.uniform_int(100, 5000)),
                    static_cast<int>(rng.uniform_int(1, 32)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_anchor(
        static_cast<int>(rng.uniform_int(1, 64)), rng.uniform_int(10, 2000),
        rng.uniform_int(0, 40000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileEarliestAnchor);

void BM_ProfileFindAndReserve(benchmark::State& state) {
  // The fused hot-path call the schedulers actually make: search and
  // reserve in one traversal, then undo so the profile shape is stable.
  core::Profile profile{128};
  sim::Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const sim::Time begin = rng.uniform_int(0, 50000);
    profile.reserve(begin,
                    sim::saturating_add(begin, rng.uniform_int(100, 5000)),
                    static_cast<int>(rng.uniform_int(1, 32)));
  }
  for (auto _ : state) {
    const int procs = static_cast<int>(rng.uniform_int(1, 64));
    const sim::Time dur = rng.uniform_int(10, 2000);
    const sim::Time anchor =
        profile.find_and_reserve(procs, dur, rng.uniform_int(0, 40000));
    benchmark::DoNotOptimize(anchor);
    profile.release(anchor, sim::saturating_add(anchor, dur), procs);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileFindAndReserve);

void BM_MultiProfileFindAndReserveAxis0(benchmark::State& state) {
  // The generalized profile on a procs-only workload (bb = 0): must
  // track BM_ProfileFindAndReserve -- the axis-0 no-regression claim
  // the smoke guard checks as a ratio.
  core::MultiProfile profile{128};
  sim::Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const sim::Time begin = rng.uniform_int(0, 50000);
    profile.reserve(begin,
                    sim::saturating_add(begin, rng.uniform_int(100, 5000)),
                    static_cast<int>(rng.uniform_int(1, 32)), 0);
  }
  for (auto _ : state) {
    const int procs = static_cast<int>(rng.uniform_int(1, 64));
    const sim::Time dur = rng.uniform_int(10, 2000);
    const sim::Time anchor =
        profile.find_and_reserve(procs, 0, dur, rng.uniform_int(0, 40000));
    benchmark::DoNotOptimize(anchor);
    profile.release(anchor, sim::saturating_add(anchor, dur), procs, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiProfileFindAndReserveAxis0);

void BM_MultiProfileFindAndReserveTwoAxis(benchmark::State& state) {
  // Both axes live: the second axis adds one comparison per segment.
  core::MultiProfile profile{128, 1024};
  sim::Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const sim::Time begin = rng.uniform_int(0, 50000);
    profile.reserve(begin,
                    sim::saturating_add(begin, rng.uniform_int(100, 5000)),
                    static_cast<int>(rng.uniform_int(1, 32)),
                    static_cast<int>(rng.uniform_int(0, 256)));
  }
  for (auto _ : state) {
    const int procs = static_cast<int>(rng.uniform_int(1, 64));
    const int bb = static_cast<int>(rng.uniform_int(0, 256));
    const sim::Time dur = rng.uniform_int(10, 2000);
    const sim::Time anchor =
        profile.find_and_reserve(procs, bb, dur, rng.uniform_int(0, 40000));
    benchmark::DoNotOptimize(anchor);
    profile.release(anchor, sim::saturating_add(anchor, dur), procs, bb);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MultiProfileFindAndReserveTwoAxis);

workload::Trace bench_trace(exp::TraceKind kind, std::size_t jobs) {
  exp::Scenario scenario;
  scenario.trace = kind;
  scenario.jobs = jobs;
  scenario.load = exp::kHighLoad;
  scenario.seed = 7;
  return exp::build_workload(scenario);
}

void BM_SimulateEasy(benchmark::State& state) {
  const auto trace =
      bench_trace(exp::TraceKind::Sdsc, static_cast<std::size_t>(state.range(0)));
  const core::SchedulerConfig config{128, core::PriorityPolicy::Sjf};
  for (auto _ : state) {
    auto result =
        core::run_simulation(trace, core::SchedulerKind::Easy, config);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()) * 2);
  state.SetLabel("events");
}
BENCHMARK(BM_SimulateEasy)->Arg(1000)->Arg(4000);

void BM_SimulateConservative(benchmark::State& state) {
  const auto trace =
      bench_trace(exp::TraceKind::Sdsc, static_cast<std::size_t>(state.range(0)));
  const core::SchedulerConfig config{128, core::PriorityPolicy::Fcfs};
  for (auto _ : state) {
    auto result = core::run_simulation(
        trace, core::SchedulerKind::Conservative, config);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()) * 2);
  state.SetLabel("events");
}
BENCHMARK(BM_SimulateConservative)->Arg(1000)->Arg(4000);

void BM_GenerateWorkload(benchmark::State& state) {
  const workload::CategoryMixModel model{workload::CategoryMixModel::ctc()};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Rng rng{seed++};
    auto trace = model.generate(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateWorkload)->Arg(10000);

void BM_RngGamma(benchmark::State& state) {
  sim::Rng rng{3};
  for (auto _ : state) benchmark::DoNotOptimize(rng.gamma(2.5, 100.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngGamma);

// ---------------------------------------------------------------------------
// --profile-report / --smoke: machine-readable numbers for the hot path.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SimPoint {
  std::string scheme;
  std::uint64_t events = 0;
  std::uint64_t passes = 0;          ///< select_starts cycles executed
  std::uint64_t passes_skipped = 0;  ///< batches the driver proved no-op
  std::uint64_t wakeups = 0;         ///< timer events for reservations
  double seconds = 0.0;
  double events_per_sec = 0.0;
};

/// Best-of-five timed simulation runs (first run doubles as warm-up).
/// Minimum, not mean: on shared hardware the distribution is the true
/// cost plus one-sided interference noise, so the fastest rep is the
/// least-contaminated estimate.
SimPoint measure_sim(const workload::Trace& trace, core::SchedulerKind kind,
                     core::PriorityPolicy priority, int procs) {
  const core::SchedulerConfig config{procs, priority};
  SimPoint point;
  point.scheme =
      core::to_string(kind) + "-" + core::to_string(priority);
  point.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = Clock::now();
    auto result = core::run_simulation(trace, kind, config);
    const double elapsed = seconds_since(start);
    benchmark::DoNotOptimize(result.makespan);
    point.events = result.events;
    point.passes = result.passes;
    point.passes_skipped = result.passes_skipped;
    point.wakeups = result.wakeups;
    point.seconds = std::min(point.seconds, elapsed);
  }
  point.events_per_sec =
      static_cast<double>(point.events) / point.seconds;
  return point;
}

struct AnchorStats {
  std::size_t breakpoints = 0;  ///< segments in the fragmented profile
  double ns_per_anchor = 0.0;
  double ns_per_find_and_reserve = 0.0;
  /// Same queries against a MultiProfile with the buffer axis absent
  /// (total_bb = 0, demands 0).
  double ns_per_find_and_reserve_multi = 0.0;
  /// multi / single-axis cost: the generalization's axis-0 overhead
  /// (1.0 = free). The smoke guard bands this ratio.
  double multi_axis0_ratio = 1.0;
};

/// Time anchor searches against a CTC-shaped fragmented profile: one
/// rectangle per job from the head of the trace, staggered in time.
AnchorStats measure_anchors(const workload::Trace& trace, int procs) {
  core::Profile profile{procs};
  sim::Rng rng{11};
  sim::Time clock = 0;
  for (std::size_t i = 0; i < trace.size() && i < 400; ++i) {
    const workload::Job& job = trace[i];
    clock = sim::saturating_add(clock, rng.uniform_int(0, 2000));
    const sim::Time begin =
        profile.earliest_anchor(job.procs, job.estimate, clock);
    profile.reserve(begin, sim::saturating_add(begin, job.estimate),
                    job.procs);
  }
  AnchorStats stats;
  stats.breakpoints = profile.segments().size();

  constexpr int kQueries = 200000;
  struct Query {
    int procs;
    sim::Time dur, from;
  };
  std::vector<Query> queries(kQueries);
  for (Query& q : queries) {
    q.procs = static_cast<int>(rng.uniform_int(1, procs));
    q.dur = rng.uniform_int(10, 20000);
    q.from = rng.uniform_int(0, clock);
  }

  auto start = Clock::now();
  for (const Query& q : queries)
    benchmark::DoNotOptimize(profile.earliest_anchor(q.procs, q.dur, q.from));
  stats.ns_per_anchor = seconds_since(start) * 1e9 / kQueries;

  // Best of three for both sides of the ratio below: the same noise
  // model as measure_sim, and a fair denominator.
  double best_single = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    start = Clock::now();
    for (const Query& q : queries) {
      const sim::Time anchor =
          profile.find_and_reserve(q.procs, q.dur, q.from);
      benchmark::DoNotOptimize(anchor);
      profile.release(anchor, sim::saturating_add(anchor, q.dur), q.procs);
    }
    best_single = std::min(best_single, seconds_since(start) * 1e9 / kQueries);
  }
  stats.ns_per_find_and_reserve = best_single;

  // The same fragmented timeline and query stream against the
  // generalized profile with the buffer axis absent: the procs-only
  // no-regression measurement.
  core::MultiProfile multi{procs};
  {
    sim::Rng rebuild{11};
    sim::Time t = 0;
    for (std::size_t i = 0; i < trace.size() && i < 400; ++i) {
      const workload::Job& job = trace[i];
      t = sim::saturating_add(t, rebuild.uniform_int(0, 2000));
      const sim::Time begin = multi.earliest_anchor(job.procs, 0,
                                                    job.estimate, t);
      multi.reserve(begin, sim::saturating_add(begin, job.estimate),
                    job.procs, 0);
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    start = Clock::now();
    for (const Query& q : queries) {
      const sim::Time anchor =
          multi.find_and_reserve(q.procs, 0, q.dur, q.from);
      benchmark::DoNotOptimize(anchor);
      multi.release(anchor, sim::saturating_add(anchor, q.dur), q.procs, 0);
    }
    best = std::min(best, seconds_since(start) * 1e9 / kQueries);
  }
  stats.ns_per_find_and_reserve_multi = best;
  stats.multi_axis0_ratio =
      stats.ns_per_find_and_reserve_multi / stats.ns_per_find_and_reserve;
  return stats;
}

struct BreakpointStats {
  std::size_t peak = 0;
  double mean = 0.0;
};

/// Replay the trace through a conservative scheduler by hand (the same
/// event discipline as core::run_simulation) and sample the profile's
/// breakpoint count after every event batch.
BreakpointStats measure_breakpoints(const workload::Trace& trace, int procs) {
  core::ConservativeScheduler scheduler{
      core::SchedulerConfig{procs, core::PriorityPolicy::Fcfs}};
  // priority_class 0 = finish, 1 = submit (completions first, as in the
  // production event loop); payload = job id.
  sim::EventQueue<std::size_t> events;
  for (std::size_t i = 0; i < trace.size(); ++i)
    events.push(trace[i].submit, 1, i);

  BreakpointStats stats;
  double sum = 0.0;
  std::size_t samples = 0;
  while (!events.empty()) {
    const sim::Time now = events.top().time;
    while (!events.empty() && events.top().time == now) {
      const auto event = events.pop();
      if (event.priority_class() == 0) {
        scheduler.job_finished(event.payload, now);
      } else {
        scheduler.job_submitted(trace[event.payload], now);
      }
    }
    for (const core::Job& job : scheduler.select_starts(now))
      events.push(sim::saturating_add(now, std::min(job.runtime, job.estimate)),
                  0, job.id);
    const std::size_t size = scheduler.profile().segments().size();
    stats.peak = std::max(stats.peak, size);
    sum += static_cast<double>(size);
    ++samples;
  }
  stats.mean = samples == 0 ? 0.0 : sum / static_cast<double>(samples);
  return stats;
}

struct DecisionLatencyStats {
  double submit_p50_ns = 0.0;  ///< one on_submit through the seam
  double submit_p99_ns = 0.0;
  double finish_p50_ns = 0.0;  ///< one on_finish through the seam
  double finish_p99_ns = 0.0;
  double seam_seconds = 0.0;    ///< full replay through DecisionCore
  double direct_seconds = 0.0;  ///< same events via raw scheduler hooks
  /// Seam cost relative to bare hooks (1.0 = free). The seam's skip
  /// accounting can push this *below* 1: the direct path runs a pass
  /// per batch, the seam proves most of them no-ops.
  double seam_overhead = 1.0;
};

double percentile(std::vector<double>& sorted_into, double p) {
  if (sorted_into.empty()) return 0.0;
  std::sort(sorted_into.begin(), sorted_into.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_into.size() - 1) + 0.5);
  return sorted_into[std::min(index, sorted_into.size() - 1)];
}

/// Latency of the decision-core seam itself: the same event sequence
/// replayed (a) through DecisionCore -- lifecycle table, stats, skip
/// accounting -- and (b) through bare Scheduler hooks with a pass per
/// batch, the pre-seam driver's discipline. (a) additionally samples
/// per-call latency of every on_submit/on_finish for p50/p99.
DecisionLatencyStats measure_decision_latency(const workload::Trace& trace,
                                              int procs) {
  const core::SchedulerConfig config{procs, core::PriorityPolicy::Fcfs};
  // Event classes mirror the replay front: finish=0, submit=1, wake=2.
  const auto run_seam = [&](std::vector<double>* submit_ns,
                            std::vector<double>* finish_ns) {
    const auto scheduler =
        core::make_scheduler(core::SchedulerKind::Easy, config);
    core::DecisionCore core{*scheduler};
    core.reserve_jobs(trace.size());
    sim::EventQueue<std::size_t> events;
    for (std::size_t i = 0; i < trace.size(); ++i)
      events.push(trace[i].submit, 1, i);
    while (!events.empty()) {
      const sim::Time now = events.top().time;
      while (!events.empty() && events.top().time == now) {
        const auto event = events.pop();
        if (event.priority_class() == 0) {
          const auto start = Clock::now();
          core.on_finish(static_cast<workload::JobId>(event.payload), now);
          if (finish_ns != nullptr)
            finish_ns->push_back(seconds_since(start) * 1e9);
        } else if (event.priority_class() == 1) {
          const auto start = Clock::now();
          core.on_submit(trace[event.payload], now);
          if (submit_ns != nullptr)
            submit_ns->push_back(seconds_since(start) * 1e9);
        } else {
          core.on_wake(now);
        }
      }
      const core::CycleDecision decision = core.end_cycle(now);
      for (const workload::JobId id : decision.starts) {
        const workload::Job& job = trace[id];
        events.push(
            sim::saturating_add(now, std::min(job.runtime, job.estimate)), 0,
            id);
      }
      if (decision.next_wakeup != sim::kNoTime &&
          (events.empty() || events.top().time > decision.next_wakeup))
        events.push(decision.next_wakeup, 2, 0);
    }
  };
  const auto run_direct = [&] {
    const auto scheduler =
        core::make_scheduler(core::SchedulerKind::Easy, config);
    sim::EventQueue<std::size_t> events;
    for (std::size_t i = 0; i < trace.size(); ++i)
      events.push(trace[i].submit, 1, i);
    std::vector<core::Job> starts;
    while (!events.empty()) {
      const sim::Time now = events.top().time;
      while (!events.empty() && events.top().time == now) {
        const auto event = events.pop();
        if (event.priority_class() == 0)
          scheduler->job_finished(event.payload, now);
        else
          scheduler->job_submitted(trace[event.payload], now);
      }
      starts.clear();
      scheduler->select_starts(now, starts);
      for (const core::Job& job : starts)
        events.push(
            sim::saturating_add(now, std::min(job.runtime, job.estimate)), 0,
            job.id);
    }
  };

  DecisionLatencyStats stats;
  stats.seam_seconds = std::numeric_limits<double>::infinity();
  stats.direct_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    auto start = Clock::now();
    run_seam(nullptr, nullptr);
    stats.seam_seconds = std::min(stats.seam_seconds, seconds_since(start));
    start = Clock::now();
    run_direct();
    stats.direct_seconds =
        std::min(stats.direct_seconds, seconds_since(start));
  }
  stats.seam_overhead = stats.seam_seconds / stats.direct_seconds;
  // One instrumented replay for the per-hook percentiles (the per-call
  // clock reads would distort the timed reps above).
  std::vector<double> submit_ns;
  std::vector<double> finish_ns;
  run_seam(&submit_ns, &finish_ns);
  stats.submit_p50_ns = percentile(submit_ns, 0.50);
  stats.submit_p99_ns = percentile(submit_ns, 0.99);
  stats.finish_p50_ns = percentile(finish_ns, 0.50);
  stats.finish_p99_ns = percentile(finish_ns, 0.99);
  return stats;
}

struct SweepPoint {
  std::size_t threads = 0;  ///< requested worker count
  double seconds = 0.0;
  double cells_per_sec = 0.0;
  double speedup = 1.0;  ///< vs the 1-thread run of the same grid
};

struct SweepStats {
  std::size_t cells = 0;
  std::vector<SweepPoint> points;
  /// Merged metrics JSON byte-identical across every thread count --
  /// the exp::Sweep determinism contract, re-checked on real hardware.
  bool deterministic = true;
};

/// Throughput of the grid-level sweep engine: a bench-shaped grid (all
/// six schedulers x 4 seeds) timed at 1, N/2 and N worker threads.
SweepStats measure_sweep(std::size_t jobs) {
  // Cells sized so the whole grid stays a few seconds of work: the
  // point is scheduling overhead and scaling, not simulator speed.
  const std::size_t cell_jobs = std::max<std::size_t>(250, jobs / 8);
  exp::Sweep sweep;
  for (const core::SchedulerKind kind :
       {core::SchedulerKind::Conservative, core::SchedulerKind::Easy,
        core::SchedulerKind::Fcfs, core::SchedulerKind::KReservation,
        core::SchedulerKind::Selective, core::SchedulerKind::Slack}) {
    exp::Scenario base;
    base.trace = exp::TraceKind::Ctc;
    base.jobs = cell_jobs;
    base.load = exp::kHighLoad;
    base.scheduler = kind;
    base.priority = core::PriorityPolicy::Fcfs;
    (void)sweep.add_replications(base, 4, core::to_string(kind));
  }

  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  std::vector<std::size_t> counts{1};
  if (hw / 2 > 1) counts.push_back(hw / 2);
  if (hw > counts.back()) counts.push_back(hw);

  SweepStats stats;
  stats.cells = sweep.size();
  std::string reference_json;
  double serial_seconds = 0.0;
  for (const std::size_t threads : counts) {
    exp::SweepOptions options;
    options.threads = threads;
    double best = std::numeric_limits<double>::infinity();
    std::string merged_json;
    for (int rep = 0; rep < 2; ++rep) {
      const exp::SweepReport report = sweep.run(options);
      best = std::min(best, report.seconds);
      merged_json = metrics::metrics_json(report.merged);
    }
    if (threads == 1) {
      reference_json = merged_json;
      serial_seconds = best;
    } else if (merged_json != reference_json) {
      stats.deterministic = false;
    }
    SweepPoint point;
    point.threads = threads;
    point.seconds = best;
    point.cells_per_sec = static_cast<double>(sweep.size()) / best;
    point.speedup = serial_seconds / best;
    stats.points.push_back(point);
  }
  return stats;
}

struct ReportOptions {
  bool report = false;
  bool smoke = false;
  std::size_t jobs = 4000;
  std::string out = "BENCH_profile.json";
  std::string baseline = "bench/perf_baseline.json";
};

struct Report {
  std::size_t jobs = 0;
  std::vector<SimPoint> sims;
  double conservative_cost_factor = 0.0;
  AnchorStats anchors;
  BreakpointStats breakpoints;
  DecisionLatencyStats decision;
  SweepStats sweep;
};

Report build_report(std::size_t jobs) {
  const int procs = exp::machine_procs(exp::TraceKind::Ctc);
  const auto trace = bench_trace(exp::TraceKind::Ctc, jobs);
  Report report;
  report.jobs = jobs;
  // All six schedulers under FCFS priority; conservative/easy/nobackfill
  // stay first so older baseline readers keep working.
  for (const core::SchedulerKind kind :
       {core::SchedulerKind::Conservative, core::SchedulerKind::Easy,
        core::SchedulerKind::Fcfs, core::SchedulerKind::KReservation,
        core::SchedulerKind::Selective, core::SchedulerKind::Slack})
    report.sims.push_back(
        measure_sim(trace, kind, core::PriorityPolicy::Fcfs, procs));
  // EASY holds at most one reservation, so its throughput is almost
  // independent of the profile hot path that conservative hammers; the
  // ratio isolates the reservation/compression cost while normalizing
  // out absolute machine speed. (Plain FCFS is no use as the reference:
  // with no backfilling it saturates at this load and its giant backlog
  // dominates its own runtime.) The same normalization yields one cost
  // factor per scheduler -- EASY events/sec over that scheduler's --
  // which the smoke guard compares against the checked-in baseline.
  report.conservative_cost_factor =
      report.sims[1].events_per_sec / report.sims[0].events_per_sec;
  report.anchors = measure_anchors(trace, procs);
  report.breakpoints = measure_breakpoints(trace, procs);
  report.decision = measure_decision_latency(trace, procs);
  report.sweep = measure_sweep(jobs);
  return report;
}

/// EASY-normalized relative cost of one measured scheduler (1.0 = as
/// fast as EASY; higher = slower). Hardware speed cancels out.
double cost_factor(const Report& report, const SimPoint& point) {
  return report.sims[1].events_per_sec / point.events_per_sec;
}

void write_json(const Report& report, const std::string& path) {
  std::ofstream out{path};
  out.precision(6);
  out << "{\n"
      << "  \"bench\": \"profile\",\n"
      << "  \"trace\": \"ctc\",\n"
      << "  \"load\": " << exp::kHighLoad << ",\n"
      << "  \"jobs\": " << report.jobs << ",\n"
      << "  \"schedulers\": [\n";
  for (std::size_t i = 0; i < report.sims.size(); ++i) {
    const SimPoint& p = report.sims[i];
    out << "    {\"scheme\": \"" << p.scheme << "\", \"events\": " << p.events
        << ", \"passes\": " << p.passes
        << ", \"passes_skipped\": " << p.passes_skipped
        << ", \"wakeups\": " << p.wakeups << ", \"seconds\": " << p.seconds
        << ", \"events_per_sec\": " << p.events_per_sec << "}"
        << (i + 1 < report.sims.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Flat per-scheduler cost and events/s keys so the smoke guard can
  // read them with the same single-number extractor as
  // conservative_cost_factor.
  for (const SimPoint& p : report.sims)
    out << "  \"cost_" << p.scheme << "\": " << cost_factor(report, p)
        << ",\n";
  for (const SimPoint& p : report.sims)
    out << "  \"eps_" << p.scheme << "\": " << p.events_per_sec << ",\n";
  out << "  \"conservative_cost_factor\": " << report.conservative_cost_factor
      << ",\n"
      << "  \"anchor\": {\"breakpoints\": " << report.anchors.breakpoints
      << ", \"ns_per_anchor\": " << report.anchors.ns_per_anchor
      << ", \"ns_per_find_and_reserve\": "
      << report.anchors.ns_per_find_and_reserve
      << ", \"ns_per_find_and_reserve_multi\": "
      << report.anchors.ns_per_find_and_reserve_multi << "},\n"
      // Flat key for the smoke guard's single-number extractor.
      << "  \"multi_axis0_ratio\": " << report.anchors.multi_axis0_ratio
      << ",\n"
      << "  \"profile_breakpoints\": {\"peak\": " << report.breakpoints.peak
      << ", \"mean\": " << report.breakpoints.mean << "},\n"
      // Flat keys so the smoke guard's single-number extractor reads
      // them like the cost_* band.
      << "  \"decision_submit_p50_ns\": " << report.decision.submit_p50_ns
      << ",\n"
      << "  \"decision_submit_p99_ns\": " << report.decision.submit_p99_ns
      << ",\n"
      << "  \"decision_finish_p50_ns\": " << report.decision.finish_p50_ns
      << ",\n"
      << "  \"decision_finish_p99_ns\": " << report.decision.finish_p99_ns
      << ",\n"
      << "  \"decision_seam_overhead\": " << report.decision.seam_overhead
      << ",\n"
      << "  \"sweep\": {\"cells\": " << report.sweep.cells
      << ", \"deterministic\": "
      << (report.sweep.deterministic ? "true" : "false") << ", \"points\": [";
  for (std::size_t i = 0; i < report.sweep.points.size(); ++i) {
    const SweepPoint& p = report.sweep.points[i];
    out << (i ? ", " : "") << "{\"threads\": " << p.threads
        << ", \"seconds\": " << p.seconds
        << ", \"cells_per_sec\": " << p.cells_per_sec
        << ", \"speedup\": " << p.speedup << "}";
  }
  out << "]}\n"
      << "}\n";
}

void print_report(const Report& report) {
  for (const SimPoint& p : report.sims)
    std::printf("%-22s %9.0f events/sec  (%llu events, %llu passes + %llu "
                "skipped, %llu wakeups, %.3fs)\n",
                p.scheme.c_str(), p.events_per_sec,
                static_cast<unsigned long long>(p.events),
                static_cast<unsigned long long>(p.passes),
                static_cast<unsigned long long>(p.passes_skipped),
                static_cast<unsigned long long>(p.wakeups), p.seconds);
  std::printf("conservative cost factor: %.2fx EASY\n",
              report.conservative_cost_factor);
  std::printf("anchor search: %.1f ns (find+reserve %.1f ns) over %zu "
              "breakpoints\n",
              report.anchors.ns_per_anchor,
              report.anchors.ns_per_find_and_reserve,
              report.anchors.breakpoints);
  std::printf("multi-profile axis-0 find+reserve: %.1f ns (%.2fx the "
              "single-axis profile)\n",
              report.anchors.ns_per_find_and_reserve_multi,
              report.anchors.multi_axis0_ratio);
  std::printf("conservative run breakpoints: peak %zu, mean %.1f\n",
              report.breakpoints.peak, report.breakpoints.mean);
  std::printf("decision seam: on_submit p50 %.0f ns p99 %.0f ns, on_finish "
              "p50 %.0f ns p99 %.0f ns, overhead %.2fx bare hooks\n",
              report.decision.submit_p50_ns, report.decision.submit_p99_ns,
              report.decision.finish_p50_ns, report.decision.finish_p99_ns,
              report.decision.seam_overhead);
  for (const SweepPoint& p : report.sweep.points)
    std::printf("sweep throughput (%zu cells, %zu threads): %6.1f cells/sec "
                "(%.3fs, %.2fx)\n",
                report.sweep.cells, p.threads, p.cells_per_sec, p.seconds,
                p.speedup);
  std::printf("sweep merge deterministic across thread counts: %s\n",
              report.sweep.deterministic ? "yes" : "NO");
}

/// Minimal extraction of a numeric field from a flat JSON file; good
/// enough for the baseline file this binary writes itself.
bool read_json_number(const std::string& path, const std::string& key,
                      double& value) {
  std::ifstream in{path};
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return false;
  value = std::strtod(text.c_str() + pos + needle.size(), nullptr);
  return true;
}

int run_smoke(const ReportOptions& options) {
  double baseline = 0.0;
  if (!read_json_number(options.baseline, "conservative_cost_factor",
                        baseline) ||
      baseline <= 0.0) {
    std::fprintf(stderr, "perf smoke: cannot read baseline %s\n",
                 options.baseline.c_str());
    return 1;
  }
  const Report report = build_report(options.jobs);
  print_report(report);
  bool ok = true;
  const double limit = 2.0 * baseline;
  std::printf("perf smoke: cost factor %.2f, baseline %.2f, limit %.2f -- ",
              report.conservative_cost_factor, baseline, limit);
  if (report.conservative_cost_factor > limit) {
    std::printf("FAIL\n");
    ok = false;
  } else {
    std::printf("OK\n");
  }
  for (const SimPoint& p : report.sims) {
    // The event-driven driver's whole point: on a saturated workload
    // most batches provably start nothing, so strictly fewer passes run
    // than events are delivered -- for every scheduler.
    if (p.passes + p.wakeups >= p.events) {
      std::printf("perf smoke: %s ran %llu passes for %llu events -- "
                  "pass skipping is broken -- FAIL\n",
                  p.scheme.c_str(),
                  static_cast<unsigned long long>(p.passes + p.wakeups),
                  static_cast<unsigned long long>(p.events));
      ok = false;
    }
    // Per-scheduler EASY-normalized cost against the baseline, when the
    // baseline records it (older baselines only carried conservative).
    double base_cost = 0.0;
    if (!read_json_number(options.baseline, "cost_" + p.scheme, base_cost) ||
        base_cost <= 0.0)
      continue;
    const double cost = cost_factor(report, p);
    std::printf("perf smoke: cost_%s %.3f, baseline %.3f, limit %.3f -- ",
                p.scheme.c_str(), cost, base_cost, 2.0 * base_cost);
    if (cost > 2.0 * base_cost) {
      std::printf("FAIL\n");
      ok = false;
    } else {
      std::printf("OK\n");
    }
  }
  // Absolute events/s against the recorded baseline, when it carries
  // the eps_* keys. The cost factors above are the sharp guard (they
  // normalize hardware out); this band exists to catch catastrophic
  // absolute regressions that scale every scheduler equally -- a slow
  // engine loop, a debug build sneaking into CI. The tolerance is wide
  // on purpose: the baseline is recorded on one machine and checked on
  // another, and shared runners add one-sided noise well past 2x.
  constexpr double kEpsTolerance = 0.35;  ///< fail below 35% of baseline
  for (const SimPoint& p : report.sims) {
    double base_eps = 0.0;
    if (!read_json_number(options.baseline, "eps_" + p.scheme, base_eps) ||
        base_eps <= 0.0)
      continue;
    const double floor = kEpsTolerance * base_eps;
    std::printf(
        "perf smoke: eps_%s %.0f events/s, baseline %.0f, floor %.0f -- ",
        p.scheme.c_str(), p.events_per_sec, base_eps, floor);
    if (p.events_per_sec < floor) {
      std::printf("FAIL\n");
      ok = false;
    } else {
      std::printf("OK\n");
    }
  }
  // The axis-0 no-regression band: the generalized MultiProfile on a
  // procs-only query stream, relative to the single-axis Profile on the
  // identical stream. A same-machine ratio like the cost factors, so
  // hardware normalizes out; banded at 2x the recorded baseline (when
  // the baseline carries the key).
  double base_ratio = 0.0;
  if (read_json_number(options.baseline, "multi_axis0_ratio", base_ratio) &&
      base_ratio > 0.0) {
    const double ratio_limit = 2.0 * base_ratio;
    std::printf("perf smoke: multi_axis0_ratio %.3f, baseline %.3f, "
                "limit %.3f -- ",
                report.anchors.multi_axis0_ratio, base_ratio, ratio_limit);
    if (report.anchors.multi_axis0_ratio > ratio_limit) {
      std::printf("FAIL\n");
      ok = false;
    } else {
      std::printf("OK\n");
    }
  }
  // The seam's own band: the decision-core bookkeeping (lifecycle
  // table, stats, skip proofs) must stay within 2x of its recorded
  // relative cost over bare scheduler hooks -- same contract as the
  // per-scheduler cost factors, and like them it normalizes hardware
  // speed out by being a same-machine ratio.
  double base_overhead = 0.0;
  if (read_json_number(options.baseline, "decision_seam_overhead",
                       base_overhead) &&
      base_overhead > 0.0) {
    const double seam_limit = 2.0 * base_overhead;
    std::printf(
        "perf smoke: decision_seam_overhead %.3f, baseline %.3f, "
        "limit %.3f -- ",
        report.decision.seam_overhead, base_overhead, seam_limit);
    if (report.decision.seam_overhead > seam_limit) {
      std::printf("FAIL\n");
      ok = false;
    } else {
      std::printf("OK\n");
    }
  }
  // A correctness gate, not a throughput gate: parallel efficiency varies
  // with the CI machine, but the merged metrics must never depend on the
  // worker count.
  if (!report.sweep.deterministic) {
    std::printf("perf smoke: sweep merged metrics differ across thread "
                "counts -- FAIL\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

int run_report_mode(const ReportOptions& options) {
  const Report report = build_report(options.jobs);
  print_report(report);
  write_json(report, options.out);
  std::printf("wrote %s\n", options.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ReportOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--profile-report") {
      options.report = true;
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::strtoull(argv[++i],
                                                            nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      options.baseline = argv[++i];
    } else if (options.report || options.smoke) {
      std::fprintf(stderr, "unknown report option: %s\n", arg.c_str());
      return 1;
    }
  }
  if (options.smoke || options.report) {
    if (options.jobs == 0) {
      std::fprintf(stderr, "--jobs must be a positive integer\n");
      return 1;
    }
    return options.smoke ? run_smoke(options) : run_report_mode(options);
  }

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
