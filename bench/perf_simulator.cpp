// P1 -- google-benchmark microbenchmarks of the simulator substrate:
// profile operations, full scheduler runs (events/second), workload
// generation and the RNG. These guard against performance regressions
// in the data structures the experiment harness hammers.
#include <benchmark/benchmark.h>

#include "core/profile.hpp"
#include "core/simulation.hpp"
#include "exp/scenario.hpp"
#include "sim/rng.hpp"
#include "workload/synthetic.hpp"
#include "workload/transforms.hpp"

namespace {

using namespace bfsim;

void BM_ProfileReserveRelease(benchmark::State& state) {
  core::Profile profile{128};
  sim::Rng rng{1};
  std::int64_t t = 0;
  for (auto _ : state) {
    const sim::Time begin = t % 100000;
    const sim::Time end = begin + 1 + t % 500;
    profile.reserve(begin, end, 16);
    profile.release(begin, end, 16);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileReserveRelease);

void BM_ProfileEarliestAnchor(benchmark::State& state) {
  // A realistically fragmented profile with ~64 live reservations.
  core::Profile profile{128};
  sim::Rng rng{2};
  for (int i = 0; i < 64; ++i) {
    const sim::Time begin = rng.uniform_int(0, 50000);
    profile.reserve(begin, begin + rng.uniform_int(100, 5000),
                    static_cast<int>(rng.uniform_int(1, 32)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.earliest_anchor(
        static_cast<int>(rng.uniform_int(1, 64)), rng.uniform_int(10, 2000),
        rng.uniform_int(0, 40000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileEarliestAnchor);

workload::Trace bench_trace(std::size_t jobs) {
  exp::Scenario scenario;
  scenario.trace = exp::TraceKind::Sdsc;
  scenario.jobs = jobs;
  scenario.load = 0.88;
  scenario.seed = 7;
  return exp::build_workload(scenario);
}

void BM_SimulateEasy(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  const core::SchedulerConfig config{128, core::PriorityPolicy::Sjf};
  for (auto _ : state) {
    auto result =
        core::run_simulation(trace, core::SchedulerKind::Easy, config);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()) * 2);
  state.SetLabel("events");
}
BENCHMARK(BM_SimulateEasy)->Arg(1000)->Arg(4000);

void BM_SimulateConservative(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  const core::SchedulerConfig config{128, core::PriorityPolicy::Fcfs};
  for (auto _ : state) {
    auto result = core::run_simulation(
        trace, core::SchedulerKind::Conservative, config);
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()) * 2);
  state.SetLabel("events");
}
BENCHMARK(BM_SimulateConservative)->Arg(1000)->Arg(4000);

void BM_GenerateWorkload(benchmark::State& state) {
  const workload::CategoryMixModel model{workload::CategoryMixModel::ctc()};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::Rng rng{seed++};
    auto trace = model.generate(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateWorkload)->Arg(10000);

void BM_RngGamma(benchmark::State& state) {
  sim::Rng rng{3};
  for (auto _ : state) benchmark::DoNotOptimize(rng.gamma(2.5, 100.0));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngGamma);

}  // namespace

BENCHMARK_MAIN();
