// Regenerates Figure 1: overall average bounded slowdown and average
// turnaround time for conservative vs. EASY backfilling under the FCFS,
// SJF and XFactor priority policies, on both traces, with exact user
// estimates. The non-backfilling FCFS baseline is included for context.
//
// Paper shape: (a) under conservative backfilling all priority policies
// produce the identical schedule (Section 4.1); (b) EASY with SJF or
// XFactor clearly outperforms every conservative variant on both
// metrics.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

constexpr SchedulerKind kKinds[] = {SchedulerKind::Fcfs,
                                    SchedulerKind::Conservative,
                                    SchedulerKind::Easy};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "fig1_overall",
          "Fig. 1: overall slowdown and turnaround, conservative vs EASY",
          options))
    return 0;

  // Declaration pass: the full grid runs as one sweep; the render pass
  // below re-requests the same cells (Grid::add memoizes).
  bench::Grid grid{options};
  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc})
    for (const auto kind : kKinds)
      for (const auto priority : core::kPaperPolicies)
        (void)grid.add(trace, kind, priority);
  grid.run();

  for (const auto trace : {exp::TraceKind::Ctc, exp::TraceKind::Sdsc}) {
    util::Table t{"Fig. 1 -- " + to_string(trace) +
                  " trace, exact estimates, high load"};
    t.set_header({"scheme", "avg slowdown", "avg turnaround"});

    double cons_slowdown[3] = {};
    double best_cons = 0.0, easy_sjf = 0.0, easy_xf = 0.0;
    int pi = 0;
    for (const auto kind : kKinds) {
      for (const auto priority : core::kPaperPolicies) {
        const auto cell = grid.add(trace, kind, priority);
        const double slowdown = grid.mean(cell, exp::overall_slowdown);
        const double turnaround = grid.mean(cell, exp::overall_turnaround);
        t.add_row({bench::scheme_label(kind, priority),
                   util::format_fixed(slowdown),
                   util::format_duration(static_cast<sim::Time>(turnaround))});
        if (kind == SchedulerKind::Conservative) {
          cons_slowdown[pi++] = slowdown;
          best_cons = best_cons == 0.0 ? slowdown
                                       : std::min(best_cons, slowdown);
        }
        if (kind == SchedulerKind::Easy) {
          if (priority == PriorityPolicy::Sjf) easy_sjf = slowdown;
          if (priority == PriorityPolicy::XFactor) easy_xf = slowdown;
        }
      }
      t.add_rule();
    }
    std::fputs(t.str().c_str(), stdout);

    bench::report_expectation(
        "Section 4.1: conservative slowdown identical for all priorities",
        cons_slowdown[0] == cons_slowdown[1] &&
            cons_slowdown[1] == cons_slowdown[2]);
    bench::report_expectation(
        "EASY-SJF beats every conservative variant on slowdown",
        easy_sjf < best_cons);
    bench::report_expectation(
        "EASY-XFactor beats every conservative variant on slowdown",
        easy_xf < best_cons);
    std::fputs("\n", stdout);
  }
  return 0;
}
