// Availability grid -- which backfilling strategy degrades most
// gracefully when the machine itself fails underneath the schedule?
//
// Every scheduler runs the same CTC workload three ways: on a perfectly
// reliable machine, and against one seeded failure trace (mean six
// hours up, one hour to repair, up to a quarter of the machine lost per
// outage) under each kill-requeue policy. Failures hurt twice: capacity
// shrinks while nodes are down, and every kill re-runs work -- all of
// it under resubmit-full, only the remainder under resubmit-remaining.
// Reported per cell: mean bounded slowdown, utilization of *available*
// capacity (busy processor-seconds over up processor-seconds, so the
// outage holes themselves are not charged to the scheduler), mean
// requeue wait of killed jobs, and the kill count. The degradation
// ratio (outage slowdown over clean slowdown) is the graceful-
// degradation headline.
#include "common.hpp"

#include <cstdint>

#include "core/simulation.hpp"
#include "sim/failure.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

/// The three availability regimes of the grid.
enum class Regime { kClean, kOutageFull, kOutageRemaining };

const char* regime_label(Regime regime) {
  switch (regime) {
    case Regime::kClean: return "clean";
    case Regime::kOutageFull: return "outage/full";
    case Regime::kOutageRemaining: return "outage/remaining";
  }
  return "?";
}

/// The grid's failure scenario, seeded per replication: mean six hours
/// up, one hour down, losing up to a quarter of the machine, over a
/// horizon long enough to cover full-size (10k-job) runs.
sim::FailureTrace build_failures(int procs, std::uint64_t seed) {
  sim::FailureModel model;
  model.mean_uptime = 6.0 * static_cast<double>(sim::kHour);
  model.mean_repair = 1.0 * static_cast<double>(sim::kHour);
  model.max_procs_lost = procs / 4;
  model.horizon = 365 * sim::kDay;
  return generate_failures(model, procs, 0, seed * 31 + 7);
}

/// Processor-seconds lost to outages within [0, makespan].
double down_proc_seconds(const sim::FailureTrace& failures,
                         sim::Time makespan) {
  double lost = 0.0;
  for (const sim::Outage& outage : failures.outages) {
    const sim::Time begin = std::min(outage.down_at, makespan);
    const sim::Time end = std::min(outage.repair_at, makespan);
    lost += static_cast<double>(outage.procs) *
            static_cast<double>(sim::saturating_sub(end, begin));
  }
  return lost;
}

/// Auxiliary value slots stashed by the cell runner.
enum AuxValue : std::size_t {
  kUtilAvailable = 0,  ///< busy / (total - down) processor-seconds
  kRequeueWait = 1,    ///< mean requeue_wait of killed jobs (s)
  kKills = 2,          ///< kill count
};

exp::CellRunner availability_cell(Regime regime) {
  return [regime](const exp::Scenario& scenario,
                  const core::SimulationOptions& sim_options,
                  exp::CellResult& result) {
    const workload::Trace trace = exp::build_workload(scenario);
    const core::SchedulerConfig config{scenario.procs(), scenario.priority};
    const sim::FailureTrace failures =
        regime == Regime::kClean
            ? sim::FailureTrace{}
            : build_failures(config.procs, scenario.seed);
    core::SimulationOptions options = sim_options;
    options.failures = &failures;
    options.requeue = regime == Regime::kOutageRemaining
                          ? sim::RequeuePolicy::kResubmitRemaining
                          : sim::RequeuePolicy::kResubmitFull;
    const auto sim_result = core::run_simulation(trace, scenario.scheduler,
                                                 config, {}, options);
    result.metrics = metrics::compute_metrics(
        sim_result, config.procs,
        exp::experiment_metrics_options(trace.size()));

    const double total = static_cast<double>(config.procs) *
                         static_cast<double>(sim_result.makespan);
    const double available =
        total - down_proc_seconds(failures, sim_result.makespan);
    double requeue_wait = 0.0;
    std::size_t requeued = 0;
    for (const core::JobOutcome& outcome : sim_result.outcomes)
      if (outcome.requeues > 0) {
        requeue_wait += static_cast<double>(outcome.requeue_wait);
        ++requeued;
      }
    result.values.assign(3, 0.0);
    result.values[kUtilAvailable] =
        available > 0.0 ? result.metrics.utilization * total / available : 0.0;
    result.values[kRequeueWait] =
        requeued > 0 ? requeue_wait / static_cast<double>(requeued) : 0.0;
    result.values[kKills] = static_cast<double>(sim_result.kills);
  };
}

std::size_t declare(bench::Grid& grid, SchedulerKind kind, Regime regime) {
  exp::Scenario base;
  base.trace = exp::TraceKind::Ctc;
  base.jobs = grid.options().jobs;
  base.load = grid.options().load;
  base.scheduler = kind;
  base.priority = PriorityPolicy::Fcfs;
  base.estimates = {exp::EstimateRegime::Systematic, 3.0};
  return grid.add_custom(base,
                         "avail/" + core::to_string(kind) + "/" +
                             regime_label(regime),
                         availability_cell(regime));
}

struct Claim {
  std::string text;
  bool holds = false;
};

void print_claims_json(const std::vector<Claim>& claims) {
  std::string out = "{\"bench\":\"perf_availability\",\"claims\":[";
  for (std::size_t i = 0; i < claims.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"claim\":\"" + claims[i].text + "\",\"pass\":" +
           (claims[i].holds ? "true" : "false") + "}";
  }
  out += "]}\n";
  std::fputs(out.c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "perf_availability",
          "graceful degradation under node failures: every scheduler vs "
          "one seeded outage trace under both kill-requeue policies",
          options))
    return 0;

  const SchedulerKind kinds[] = {
      SchedulerKind::Fcfs,         SchedulerKind::Easy,
      SchedulerKind::Conservative, SchedulerKind::KReservation,
      SchedulerKind::Selective,    SchedulerKind::Slack,
      SchedulerKind::Plan,
  };
  const Regime regimes[] = {Regime::kClean, Regime::kOutageFull,
                            Regime::kOutageRemaining};

  bench::Grid grid{options};
  for (const SchedulerKind kind : kinds)
    for (const Regime regime : regimes) (void)declare(grid, kind, regime);
  grid.run();

  util::Table t{
      "Availability grid -- CTC, FCFS priority, R = 3 estimates; outages: "
      "mean 6 h up / 1 h repair, <= 1/4 machine per failure"};
  t.set_header({"scheme", "regime", "slowdown", "degradation",
                "util (avail)", "requeue wait (s)", "kills"});
  for (const SchedulerKind kind : kinds) {
    const double clean =
        grid.mean(declare(grid, kind, Regime::kClean), exp::overall_slowdown);
    for (const Regime regime : regimes) {
      const std::size_t cell = declare(grid, kind, regime);
      const double slowdown = grid.mean(cell, exp::overall_slowdown);
      t.add_row({core::to_string(kind), regime_label(regime),
                 util::format_fixed(slowdown),
                 regime == Regime::kClean
                     ? "--"
                     : util::format_fixed(clean > 0.0 ? slowdown / clean : 0.0),
                 util::format_fixed(grid.mean_value(cell, kUtilAvailable)),
                 util::format_fixed(grid.mean_value(cell, kRequeueWait)),
                 util::format_fixed(grid.mean_value(cell, kKills))});
    }
  }
  std::fputs(t.str().c_str(), stdout);

  // Machine-checked claims, aggregated across the scheduler pool so a
  // single scheme's noise cannot flip them.
  double clean_slowdown = 0.0, full_slowdown = 0.0, remaining_slowdown = 0.0;
  double full_util = 0.0, remaining_util = 0.0, total_kills = 0.0;
  bool util_is_fraction = true;
  const auto pool = static_cast<double>(std::size(kinds));
  for (const SchedulerKind kind : kinds) {
    clean_slowdown +=
        grid.mean(declare(grid, kind, Regime::kClean), exp::overall_slowdown);
    const std::size_t full = declare(grid, kind, Regime::kOutageFull);
    const std::size_t remaining =
        declare(grid, kind, Regime::kOutageRemaining);
    full_slowdown += grid.mean(full, exp::overall_slowdown);
    remaining_slowdown += grid.mean(remaining, exp::overall_slowdown);
    full_util += grid.mean_value(full, kUtilAvailable);
    remaining_util += grid.mean_value(remaining, kUtilAvailable);
    total_kills += grid.mean_value(full, kKills) +
                   grid.mean_value(remaining, kKills);
    for (const Regime regime : regimes) {
      const double util =
          grid.mean_value(declare(grid, kind, regime), kUtilAvailable);
      util_is_fraction &= util > 0.0 && util <= 1.0;
    }
  }

  std::vector<Claim> claims;
  claims.push_back({"the outage grid kills running jobs (victim path "
                    "exercised, not scheduled around)",
                    total_kills > 0.0});
  claims.push_back({"node failures degrade pooled mean slowdown under "
                    "resubmit-full",
                    full_slowdown / pool > clean_slowdown / pool});
  claims.push_back({"resubmit-remaining degrades more gracefully than "
                    "resubmit-full (pooled mean slowdown)",
                    remaining_slowdown <= full_slowdown});
  claims.push_back({"utilization of available capacity is a proper "
                    "fraction in every cell",
                    util_is_fraction});
  for (const Claim& claim : claims)
    bench::report_expectation(claim.text, claim.holds);
  print_claims_json(claims);
  return 0;
}
