// bfsim bench -- shared plumbing for the table/figure regeneration
// binaries. Every binary accepts --jobs/--seeds/--load/--threads/
// --audit/--json so the full-size runs recorded in EXPERIMENTS.md can
// be reproduced, scaled down, or parallelized uniformly.
//
// The binaries are two-pass: a declaration pass registers every
// scenario cell of the table/figure in a Grid, Grid::run() executes the
// whole grid in one exp::Sweep (sharded over --threads), and a render
// pass reads the per-cell results back through the same add() calls --
// Grid::add memoizes on the cell key, so declaring twice yields the
// same handle.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace bfsim::bench {

struct BenchOptions {
  std::string name;  ///< binary name (set by parse_bench_options)
  std::size_t jobs = 10000;
  std::size_t seeds = 5;
  double load = exp::kHighLoad;
  /// Attach the schedule auditor (core/audit.hpp) to every simulation:
  /// any invariant violation aborts the run with a diagnostic instead of
  /// producing a figure from an infeasible schedule. Costs time; run it
  /// once before trusting any new number.
  bool audit = false;
  /// Worker threads for the cell sweep: 1 = serial (default),
  /// 0 = hardware concurrency, n = exactly n. Any value produces
  /// byte-identical tables (see exp::Sweep's determinism contract).
  std::size_t threads = 1;
  /// After the sweep, print the grid's canonical JSON report (per-cell
  /// and merged metrics, %.17g doubles) before the human tables.
  bool json = false;
  /// Per-cell retry budget: a failed cell reruns up to this many extra
  /// times (deterministic backoff) before counting as failed.
  std::size_t retries = 0;
  /// Per-cell watchdog deadline in seconds; 0 disables the watchdog.
  double cell_timeout = 0.0;
  /// Checkpoint journal path: completed cells are appended (fsync'd) as
  /// they finish, and a relaunch with the same path replays them
  /// byte-identically, running only the cells the crash interrupted.
  std::string resume;
  /// Degraded-results mode: cells that fail after their retry budget
  /// become structured failure entries instead of aborting the grid.
  bool partial = false;
};

/// Parse the standard bench options; on --help or parse error returns
/// false and the binary should exit 0/1 respectively.
[[nodiscard]] bool parse_bench_options(int argc, const char* const* argv,
                                       const std::string& name,
                                       const std::string& description,
                                       BenchOptions& options);

/// "conservative-fcfs" / "easy-sjf" style label.
[[nodiscard]] std::string scheme_label(core::SchedulerKind kind,
                                       core::PriorityPolicy priority);

/// Print a PASS/FAIL line for a shape expectation from the paper.
void report_expectation(const std::string& claim, bool holds);

/// One bench binary's whole scenario grid, executed as one exp::Sweep.
///
/// Each add() declares a *scheme cell* that the Grid expands into
/// --seeds replication cells (consecutive seeds from 1); handles are
/// stable across repeated identical add() calls, before and after
/// run(). Accessors require run() to have completed.
class Grid {
 public:
  explicit Grid(const BenchOptions& options) : options_(options) {}

  /// Declare a standard scheme cell on the grid's jobs/load.
  std::size_t add(exp::TraceKind trace, core::SchedulerKind kind,
                  core::PriorityPolicy priority,
                  exp::EstimateSpec estimates = {},
                  core::SchedulerExtras extras = {});

  /// Declare a cell from a full base scenario (seed is overwritten by
  /// the replication expansion). `tag` is the memoization key.
  std::size_t add_scenario(exp::Scenario base, const std::string& tag);

  /// Declare a cell computed by a custom runner (paired runs, workload
  /// statistics, ...). The runner must derive all randomness from the
  /// scenario seed; see exp::CellRunner.
  std::size_t add_custom(exp::Scenario base, const std::string& tag,
                         exp::CellRunner runner);

  /// Run every declared cell over --threads workers; emits the JSON
  /// report when --json. Must be called exactly once, after all cells
  /// are declared and before any accessor.
  void run();

  /// Per-seed metrics of one scheme cell, in seed order.
  [[nodiscard]] const std::vector<metrics::Metrics>& reps(
      std::size_t handle) const;

  /// Permanently failed cells of the sweep (--partial mode only; empty
  /// otherwise, since without --partial a failure aborts the binary).
  [[nodiscard]] const std::vector<exp::CellFailure>& failures() const;

  /// mean_of / max_of over the cell's replications.
  [[nodiscard]] double mean(
      std::size_t handle,
      const std::function<double(const metrics::Metrics&)>& extract) const;
  [[nodiscard]] double max(
      std::size_t handle,
      const std::function<double(const metrics::Metrics&)>& extract) const;

  /// Mean over seeds of a custom runner's auxiliary value #index.
  [[nodiscard]] double mean_value(std::size_t handle,
                                  std::size_t index) const;

  [[nodiscard]] const BenchOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::size_t declare(exp::Scenario base, const std::string& key,
                                    exp::CellRunner runner);

  struct SchemeCell {
    std::string key;
    std::size_t first = 0;  ///< index of the seed-1 cell in the sweep
  };

  BenchOptions options_;
  exp::Sweep sweep_;
  std::map<std::string, std::size_t> by_key_;
  std::vector<SchemeCell> cells_;
  std::optional<exp::SweepReport> report_;
  mutable std::vector<std::vector<metrics::Metrics>> reps_cache_;
};

}  // namespace bfsim::bench
