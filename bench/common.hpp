// bfsim bench -- shared plumbing for the table/figure regeneration
// binaries. Every binary accepts --jobs/--seeds/--load so the full-size
// runs recorded in EXPERIMENTS.md can be reproduced or scaled down.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "metrics/report.hpp"
#include "util/cli.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace bfsim::bench {

struct BenchOptions {
  std::size_t jobs = 10000;
  std::size_t seeds = 5;
  double load = exp::kHighLoad;
  /// Attach the schedule auditor (core/audit.hpp) to every simulation:
  /// any invariant violation aborts the run with a diagnostic instead of
  /// producing a figure from an infeasible schedule. Costs time; run it
  /// once before trusting any new number.
  bool audit = false;
};

/// Parse the standard bench options; on --help or parse error returns
/// false and the binary should exit 0/1 respectively.
[[nodiscard]] bool parse_bench_options(int argc, const char* const* argv,
                                       const std::string& name,
                                       const std::string& description,
                                       BenchOptions& options);

/// "conservative-fcfs" / "easy-sjf" style label.
[[nodiscard]] std::string scheme_label(core::SchedulerKind kind,
                                       core::PriorityPolicy priority);

/// Print a PASS/FAIL line for a shape expectation from the paper.
void report_expectation(const std::string& claim, bool holds);

/// Mean-of-replications for one scenario cell.
[[nodiscard]] std::vector<metrics::Metrics> run_cell(
    const BenchOptions& options, exp::TraceKind trace,
    core::SchedulerKind kind, core::PriorityPolicy priority,
    exp::EstimateSpec estimates = {},
    core::SchedulerExtras extras = {});

}  // namespace bfsim::bench
