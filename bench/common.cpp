#include "common.hpp"

namespace bfsim::bench {

bool parse_bench_options(int argc, const char* const* argv,
                         const std::string& name,
                         const std::string& description,
                         BenchOptions& options) {
  util::CliParser cli{name, description};
  cli.add_option("jobs", "jobs per simulated trace",
                 std::to_string(options.jobs));
  cli.add_option("seeds", "replications (consecutive seeds)",
                 std::to_string(options.seeds));
  cli.add_option("load", "offered load (paper high load = 0.88)",
                 util::format_fixed(options.load, 2));
  cli.add_flag("audit",
               "attach the schedule-invariant auditor to every run "
               "(violations abort with a diagnostic)");
  if (!cli.parse(argc, argv)) return false;
  options.jobs = static_cast<std::size_t>(cli.get_int64("jobs"));
  options.seeds = static_cast<std::size_t>(cli.get_int64("seeds"));
  options.load = cli.get_double("load");
  options.audit = cli.get_flag("audit");
  return true;
}

std::string scheme_label(core::SchedulerKind kind,
                         core::PriorityPolicy priority) {
  return to_string(kind) + "-" + to_string(priority);
}

void report_expectation(const std::string& claim, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim.c_str());
}

std::vector<metrics::Metrics> run_cell(const BenchOptions& options,
                                       exp::TraceKind trace,
                                       core::SchedulerKind kind,
                                       core::PriorityPolicy priority,
                                       exp::EstimateSpec estimates,
                                       core::SchedulerExtras extras) {
  exp::Scenario scenario;
  scenario.trace = trace;
  scenario.jobs = options.jobs;
  scenario.load = options.load;
  scenario.scheduler = kind;
  scenario.priority = priority;
  scenario.estimates = estimates;
  scenario.extras = extras;
  scenario.seed = 1;
  return exp::run_replications(scenario, options.seeds, nullptr,
                               {.audit = options.audit});
}

}  // namespace bfsim::bench
