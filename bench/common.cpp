#include "common.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace bfsim::bench {

bool parse_bench_options(int argc, const char* const* argv,
                         const std::string& name,
                         const std::string& description,
                         BenchOptions& options) {
  util::CliParser cli{name, description};
  cli.add_option("jobs", "jobs per simulated trace",
                 std::to_string(options.jobs));
  cli.add_option("seeds", "replications (consecutive seeds)",
                 std::to_string(options.seeds));
  cli.add_option("load", "offered load (paper high load = 0.88)",
                 util::format_fixed(options.load, 2));
  cli.add_option("threads",
                 "sweep worker threads (1 = serial, 0 = hardware); the "
                 "output is identical for any value",
                 std::to_string(options.threads));
  cli.add_flag("audit",
               "attach the schedule-invariant auditor to every run "
               "(violations abort with a diagnostic)");
  cli.add_flag("json",
               "print the grid's canonical JSON report (per-cell and "
               "merged metrics) before the tables");
  cli.add_option("retries",
                 "per-cell retry budget before a cell counts as failed",
                 std::to_string(options.retries));
  cli.add_option("cell-timeout",
                 "per-cell watchdog deadline in seconds (0 = no watchdog)",
                 util::format_fixed(options.cell_timeout, 1));
  cli.add_option("resume",
                 "checkpoint journal path: completed cells are journaled "
                 "as they finish and replayed byte-identically on relaunch",
                 options.resume);
  cli.add_flag("partial",
               "degraded-results mode: report failed cells as structured "
               "entries instead of aborting the grid");
  if (!cli.parse(argc, argv)) return false;
  options.name = name;
  options.jobs = static_cast<std::size_t>(cli.get_int64("jobs"));
  options.seeds = static_cast<std::size_t>(cli.get_int64("seeds"));
  options.load = cli.get_double("load");
  options.threads = static_cast<std::size_t>(cli.get_int64("threads"));
  options.audit = cli.get_flag("audit");
  options.json = cli.get_flag("json");
  options.retries = static_cast<std::size_t>(cli.get_int64("retries"));
  options.cell_timeout = cli.get_double("cell-timeout");
  options.resume = cli.get("resume");
  options.partial = cli.get_flag("partial");
  return true;
}

std::string scheme_label(core::SchedulerKind kind,
                         core::PriorityPolicy priority) {
  return to_string(kind) + "-" + to_string(priority);
}

void report_expectation(const std::string& claim, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim.c_str());
}

namespace {

/// Minimal JSON string escaping for failure tags/messages (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

/// Cell-key discriminator for the tuning knobs Scenario::label() omits.
std::string extras_label(const core::SchedulerExtras& extras) {
  return "/k=" + std::to_string(extras.reservation_depth) +
         "/xf=" + util::format_fixed(extras.xfactor_threshold, 2) +
         (extras.selective_adaptive ? "a" : "") +
         "/slack=" + util::format_fixed(extras.slack_factor, 2);
}

}  // namespace

std::size_t Grid::add(exp::TraceKind trace, core::SchedulerKind kind,
                      core::PriorityPolicy priority,
                      exp::EstimateSpec estimates,
                      core::SchedulerExtras extras) {
  exp::Scenario base;
  base.trace = trace;
  base.jobs = options_.jobs;
  base.load = options_.load;
  base.scheduler = kind;
  base.priority = priority;
  base.estimates = estimates;
  base.extras = extras;
  base.seed = 1;
  return declare(base, base.label() + extras_label(extras), {});
}

std::size_t Grid::add_scenario(exp::Scenario base, const std::string& tag) {
  base.seed = 1;
  return declare(base, tag, {});
}

std::size_t Grid::add_custom(exp::Scenario base, const std::string& tag,
                             exp::CellRunner runner) {
  base.seed = 1;
  return declare(base, tag, std::move(runner));
}

std::size_t Grid::declare(exp::Scenario base, const std::string& key,
                          exp::CellRunner runner) {
  const auto found = by_key_.find(key);
  if (found != by_key_.end()) return found->second;
  if (report_)
    throw std::logic_error("Grid: new cell '" + key +
                           "' declared after run()");
  const std::size_t first = sweep_.size();
  for (std::size_t i = 0; i < options_.seeds; ++i) {
    exp::Scenario scenario = base;
    scenario.seed = base.seed + i;
    (void)sweep_.add(scenario, key + "/seed=" + std::to_string(scenario.seed),
                     runner);
  }
  cells_.push_back({key, first});
  const std::size_t handle = cells_.size() - 1;
  by_key_.emplace(key, handle);
  return handle;
}

void Grid::run() {
  if (report_) throw std::logic_error("Grid: run() called twice");
  exp::SweepOptions sweep_options;
  sweep_options.threads = options_.threads;
  sweep_options.audit = options_.audit;
  sweep_options.policy.retries = static_cast<int>(options_.retries);
  sweep_options.policy.backoff_base_ms = options_.retries > 0 ? 50 : 0;
  sweep_options.policy.cell_timeout_ms =
      static_cast<std::uint64_t>(options_.cell_timeout * 1000.0);
  sweep_options.policy.partial = options_.partial;
  sweep_options.journal = options_.resume;
  report_ = sweep_.run(sweep_options);
  reps_cache_.assign(cells_.size(), {});

  // stderr (and Info, i.e. silent by default): the stdout report must
  // stay byte-identical between a fresh run and a --resume relaunch.
  if (report_->replayed > 0)
    util::log_message(util::LogLevel::Info,
                      options_.name + ": " +
                          std::to_string(report_->replayed) + "/" +
                          std::to_string(report_->cells.size()) +
                          " cells replayed from " + options_.resume);
  for (const exp::CellFailure& failure : report_->failures)
    util::log_limited(util::LogLevel::Error, "grid-cell-failure",
                      options_.name + ": cell #" +
                          std::to_string(failure.cell) + " [" + failure.tag +
                          "] failed after " +
                          std::to_string(failure.attempts) + " attempt(s) (" +
                          util::to_string(failure.kind) +
                          "): " + failure.message);

  if (!options_.json) return;
  // Canonical JSON report: every scheme cell with its per-seed and
  // seed-merged metrics, then the whole-grid merge. Byte-identical for
  // any --threads (see exp::Sweep).
  std::string out = "{\"bench\":\"" + options_.name +
                    "\",\"jobs\":" + std::to_string(options_.jobs) +
                    ",\"seeds\":" + std::to_string(options_.seeds) +
                    ",\"load\":" + util::format_fixed(options_.load, 4) +
                    ",\"threads\":" + std::to_string(report_->threads_used) +
                    ",\"cells\":[";
  for (std::size_t h = 0; h < cells_.size(); ++h) {
    if (h > 0) out += ',';
    out += "{\"key\":\"" + cells_[h].key + "\",\"merged\":" +
           metrics::metrics_json(metrics::merged_metrics(reps(h))) + "}";
  }
  out += "],\"failures\":[";
  for (std::size_t f = 0; f < report_->failures.size(); ++f) {
    const exp::CellFailure& failure = report_->failures[f];
    if (f > 0) out += ',';
    out += "{\"cell\":" + std::to_string(failure.cell) + ",\"tag\":\"" +
           json_escape(failure.tag) + "\",\"kind\":\"" +
           util::to_string(failure.kind) +
           "\",\"attempts\":" + std::to_string(failure.attempts) +
           ",\"message\":\"" + json_escape(failure.message) + "\"}";
  }
  out += "],\"merged\":" + metrics::metrics_json(report_->merged) + "}\n";
  std::fputs(out.c_str(), stdout);
}

const std::vector<exp::CellFailure>& Grid::failures() const {
  if (!report_) throw std::logic_error("Grid: failures() before run()");
  return report_->failures;
}

const std::vector<metrics::Metrics>& Grid::reps(std::size_t handle) const {
  if (!report_) throw std::logic_error("Grid: reps() before run()");
  auto& cache = reps_cache_[handle];
  if (cache.empty() && options_.seeds > 0) {
    cache.reserve(options_.seeds);
    for (std::size_t i = 0; i < options_.seeds; ++i)
      cache.push_back(report_->cells[cells_[handle].first + i].metrics);
  }
  return cache;
}

double Grid::mean(
    std::size_t handle,
    const std::function<double(const metrics::Metrics&)>& extract) const {
  return exp::mean_of(reps(handle), extract);
}

double Grid::max(
    std::size_t handle,
    const std::function<double(const metrics::Metrics&)>& extract) const {
  return exp::max_of(reps(handle), extract);
}

double Grid::mean_value(std::size_t handle, std::size_t index) const {
  if (!report_) throw std::logic_error("Grid: mean_value() before run()");
  if (options_.seeds == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < options_.seeds; ++i) {
    const auto& values = report_->cells[cells_[handle].first + i].values;
    if (index >= values.size())
      throw std::out_of_range("Grid: cell '" + cells_[handle].key +
                              "' has no value #" + std::to_string(index));
    sum += values[index];
  }
  return sum / static_cast<double>(options_.seeds);
}

}  // namespace bfsim::bench
