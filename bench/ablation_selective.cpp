// Ablation A1 -- selective backfilling (the paper's Section 6 future
// work): jobs receive a reservation only once their expected slowdown
// (expansion factor) crosses a threshold. Sweeps the threshold and
// compares against conservative (every job reserved) and EASY (head
// only) under actual user estimates.
//
// Expected shape: with a judicious threshold, selective backfilling
// approaches EASY's mean slowdown while pulling the worst-case
// turnaround down toward conservative -- the best of both worlds the
// paper anticipates.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_selective",
          "A1: selective backfilling threshold sweep (Section 6)",
          options))
    return 0;

  const exp::EstimateSpec actual{exp::EstimateRegime::Actual, 1.0};
  util::Table t{
      "A1 -- selective backfilling, CTC, FCFS priority, actual estimates"};
  t.set_header({"scheduler", "avg slowdown", "worst turnaround (s)",
                "avg turnaround"});

  const auto add = [&](const std::string& label, SchedulerKind kind,
                       core::SchedulerExtras extras) {
    const auto reps =
        bench::run_cell(options, exp::TraceKind::Ctc, kind,
                        PriorityPolicy::Fcfs, actual, extras);
    t.add_row({label,
               util::format_fixed(exp::mean_of(reps, exp::overall_slowdown)),
               util::format_count(static_cast<std::int64_t>(
                   exp::max_of(reps, exp::worst_turnaround))),
               util::format_duration(static_cast<sim::Time>(
                   exp::mean_of(reps, exp::overall_turnaround)))});
    return reps;
  };

  const auto cons =
      add("conservative", SchedulerKind::Conservative, {});
  const auto easy = add("easy", SchedulerKind::Easy, {});
  t.add_rule();

  double best_selective_slowdown = 0.0;
  double best_selective_worst = 0.0;
  const auto track = [&](const std::vector<metrics::Metrics>& reps) {
    const double slowdown = exp::mean_of(reps, exp::overall_slowdown);
    const double worst = exp::max_of(reps, exp::worst_turnaround);
    if (best_selective_slowdown == 0.0 ||
        slowdown < best_selective_slowdown)
      best_selective_slowdown = slowdown;
    if (best_selective_worst == 0.0 || worst < best_selective_worst)
      best_selective_worst = worst;
  };
  for (const double threshold : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    core::SchedulerExtras extras;
    extras.xfactor_threshold = threshold;
    track(add("selective xf>=" + util::format_fixed(threshold, 1),
              SchedulerKind::Selective, extras));
  }
  // Adaptive variant (Srinivasan et al., JSSPP 2002): the promotion bar
  // tracks the mean bounded slowdown of completed jobs.
  {
    core::SchedulerExtras extras;
    extras.xfactor_threshold = 1.5;  // floor
    extras.selective_adaptive = true;
    track(add("selective adaptive", SchedulerKind::Selective, extras));
  }
  std::fputs(t.str().c_str(), stdout);

  const double cons_slowdown = exp::mean_of(cons, exp::overall_slowdown);
  const double easy_worst = exp::max_of(easy, exp::worst_turnaround);
  bench::report_expectation(
      "some selective threshold beats conservative's mean slowdown",
      best_selective_slowdown < cons_slowdown);
  bench::report_expectation(
      "some selective threshold beats EASY's worst-case turnaround",
      best_selective_worst < easy_worst);
  return 0;
}
