// Ablation A1 -- selective backfilling (the paper's Section 6 future
// work): jobs receive a reservation only once their expected slowdown
// (expansion factor) crosses a threshold. Sweeps the threshold and
// compares against conservative (every job reserved) and EASY (head
// only) under actual user estimates.
//
// Expected shape: with a judicious threshold, selective backfilling
// approaches EASY's mean slowdown while pulling the worst-case
// turnaround down toward conservative -- the best of both worlds the
// paper anticipates.
#include "common.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

const exp::EstimateSpec kActual{exp::EstimateRegime::Actual, 1.0};

std::vector<std::pair<std::string, core::SchedulerExtras>>
selective_variants() {
  std::vector<std::pair<std::string, core::SchedulerExtras>> variants;
  for (const double threshold : {1.5, 2.0, 3.0, 5.0, 10.0}) {
    core::SchedulerExtras extras;
    extras.xfactor_threshold = threshold;
    variants.emplace_back(
        "selective xf>=" + util::format_fixed(threshold, 1), extras);
  }
  // Adaptive variant (Srinivasan et al., JSSPP 2002): the promotion bar
  // tracks the mean bounded slowdown of completed jobs.
  core::SchedulerExtras adaptive;
  adaptive.xfactor_threshold = 1.5;  // floor
  adaptive.selective_adaptive = true;
  variants.emplace_back("selective adaptive", adaptive);
  return variants;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "ablation_selective",
          "A1: selective backfilling threshold sweep (Section 6)",
          options))
    return 0;

  const auto variants = selective_variants();

  bench::Grid grid{options};
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Conservative,
                 PriorityPolicy::Fcfs, kActual);
  (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Easy,
                 PriorityPolicy::Fcfs, kActual);
  for (const auto& [label, extras] : variants)
    (void)grid.add(exp::TraceKind::Ctc, SchedulerKind::Selective,
                   PriorityPolicy::Fcfs, kActual, extras);
  grid.run();

  util::Table t{
      "A1 -- selective backfilling, CTC, FCFS priority, actual estimates"};
  t.set_header({"scheduler", "avg slowdown", "worst turnaround (s)",
                "avg turnaround"});

  const auto add = [&](const std::string& label, SchedulerKind kind,
                       core::SchedulerExtras extras) {
    const auto cell = grid.add(exp::TraceKind::Ctc, kind,
                               PriorityPolicy::Fcfs, kActual, extras);
    const double slowdown = grid.mean(cell, exp::overall_slowdown);
    const double worst = grid.max(cell, exp::worst_turnaround);
    t.add_row({label, util::format_fixed(slowdown),
               util::format_count(static_cast<std::int64_t>(worst)),
               util::format_duration(static_cast<sim::Time>(
                   grid.mean(cell, exp::overall_turnaround)))});
    return std::pair{slowdown, worst};
  };

  const auto [cons_slowdown, cons_worst] =
      add("conservative", SchedulerKind::Conservative, {});
  const auto [easy_slowdown, easy_worst] =
      add("easy", SchedulerKind::Easy, {});
  (void)cons_worst;
  (void)easy_slowdown;
  t.add_rule();

  double best_selective_slowdown = 0.0;
  double best_selective_worst = 0.0;
  for (const auto& [label, extras] : variants) {
    const auto [slowdown, worst] =
        add(label, SchedulerKind::Selective, extras);
    if (best_selective_slowdown == 0.0 ||
        slowdown < best_selective_slowdown)
      best_selective_slowdown = slowdown;
    if (best_selective_worst == 0.0 || worst < best_selective_worst)
      best_selective_worst = worst;
  }
  std::fputs(t.str().c_str(), stdout);

  bench::report_expectation(
      "some selective threshold beats conservative's mean slowdown",
      best_selective_slowdown < cons_slowdown);
  bench::report_expectation(
      "some selective threshold beats EASY's worst-case turnaround",
      best_selective_worst < easy_worst);
  return 0;
}
