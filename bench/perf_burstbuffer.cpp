// Burst-buffer contention grid -- the multi-resource extension's
// headline experiment. Jobs demand a second resource (burst-buffer GB)
// next to processors; narrow jobs are buffer-hungry (staging-heavy
// pre/post-processing), wide jobs mostly compute. Under backfilling,
// the stream of narrow buffer-hungry jobs keeps the buffer drained, so
// a wide job's two-axis anchor slips even when its processors are free:
// the starvation the paper's wide-job categories (SW/LW) make visible.
// A plan-based scheduler (Kopanski & Rzadca) re-optimizes every queued
// job's planned start at each event, so wide jobs hold guarantees that
// compress forward on early finishes instead of being repeatedly
// leapfrogged.
//
// Grid: {easy, conservative, plan} x {no buffer axis, contended
// buffer}, CTC machine, FCFS priority, systematic 3x overestimates
// (replanning only pays when estimates are wrong). Reported per cell:
// overall and wide-job (SW+LW pooled) mean bounded slowdown.
#include "common.hpp"

#include "core/simulation.hpp"
#include "workload/categories.hpp"

using namespace bfsim;
using core::PriorityPolicy;
using core::SchedulerKind;

namespace {

/// Machine burst-buffer capacity (GB) for the contended cells.
constexpr int kBufferGb = 1024;

/// Deterministic demand model, drawn from the scenario seed: narrow
/// jobs stage data (bb ~ U[kBufferGb/8, kBufferGb/2]), wide jobs are
/// compute-bound (bb ~ U[0, kBufferGb/16]).
void assign_demands(workload::Trace& trace, int procs, std::uint64_t seed) {
  sim::Rng rng{seed * 0x9e3779b97f4a7c15ULL + 11};
  for (workload::Job& job : trace) {
    const bool narrow = job.procs < procs / 4;
    job.bb = narrow
                 ? static_cast<int>(rng.uniform_int(kBufferGb / 8,
                                                    kBufferGb / 2))
                 : static_cast<int>(rng.uniform_int(0, kBufferGb / 16));
  }
}

exp::CellRunner contention_cell(bool contended) {
  return [contended](const exp::Scenario& scenario,
                     const core::SimulationOptions& sim_options,
                     exp::CellResult& result) {
    workload::Trace trace = exp::build_workload(scenario);
    core::SchedulerConfig config{scenario.procs(), scenario.priority};
    if (contended) {
      assign_demands(trace, config.procs, scenario.seed);
      config.burst_buffer = kBufferGb;
    }
    const auto sim_result = core::run_simulation(trace, scenario.scheduler,
                                                 config, {}, sim_options);
    result.metrics = metrics::compute_metrics(
        sim_result, config.procs,
        exp::experiment_metrics_options(trace.size()));
  };
}

std::size_t declare(bench::Grid& grid, SchedulerKind kind, bool contended) {
  exp::Scenario base;
  base.trace = exp::TraceKind::Ctc;
  base.jobs = grid.options().jobs;
  base.load = grid.options().load;
  base.scheduler = kind;
  base.priority = PriorityPolicy::Fcfs;
  base.estimates = {exp::EstimateRegime::Systematic, 3.0};
  return grid.add_custom(base,
                         "bb/" + core::to_string(kind) +
                             (contended ? "/contended" : "/procs-only"),
                         contention_cell(contended));
}

/// SW and LW pooled: mean bounded slowdown of every wide job.
double wide_slowdown(const metrics::Metrics& m) {
  const metrics::MetricSet& sw = m.category(workload::Category::ShortWide);
  const metrics::MetricSet& lw = m.category(workload::Category::LongWide);
  const auto count =
      static_cast<double>(sw.count()) + static_cast<double>(lw.count());
  if (count == 0.0) return 0.0;
  return (static_cast<double>(sw.count()) * sw.slowdown.mean() +
          static_cast<double>(lw.count()) * lw.slowdown.mean()) /
         count;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options;
  if (!bench::parse_bench_options(
          argc, argv, "perf_burstbuffer",
          "burst-buffer contention: backfilling starves wide jobs when a "
          "second resource axis binds; plan-based scheduling mitigates",
          options))
    return 0;

  const SchedulerKind kinds[] = {SchedulerKind::Easy,
                                 SchedulerKind::Conservative,
                                 SchedulerKind::Plan};

  bench::Grid grid{options};
  for (const SchedulerKind kind : kinds)
    for (const bool contended : {false, true})
      (void)declare(grid, kind, contended);
  grid.run();

  util::Table t{
      "Burst-buffer contention -- CTC, FCFS priority, R = 3 estimates, "
      "capacity " +
      std::to_string(kBufferGb) + " GB (narrow jobs buffer-hungry)"};
  t.set_header({"scheme", "buffer axis", "overall slowdown",
                "wide-job slowdown"});
  for (const SchedulerKind kind : kinds) {
    for (const bool contended : {false, true}) {
      const std::size_t cell = declare(grid, kind, contended);
      t.add_row({core::to_string(kind), contended ? "contended" : "off",
                 util::format_fixed(grid.mean(cell, exp::overall_slowdown)),
                 util::format_fixed(grid.mean(cell, wide_slowdown))});
    }
  }
  std::fputs(t.str().c_str(), stdout);

  const double easy_off =
      grid.mean(declare(grid, SchedulerKind::Easy, false), wide_slowdown);
  const double easy_on =
      grid.mean(declare(grid, SchedulerKind::Easy, true), wide_slowdown);
  const double cons_off = grid.mean(
      declare(grid, SchedulerKind::Conservative, false), wide_slowdown);
  const double cons_on = grid.mean(
      declare(grid, SchedulerKind::Conservative, true), wide_slowdown);
  const double plan_on =
      grid.mean(declare(grid, SchedulerKind::Plan, true), wide_slowdown);

  bench::report_expectation(
      "buffer contention inflates EASY's wide-job slowdown",
      easy_on > easy_off);
  bench::report_expectation(
      "buffer contention inflates conservative's wide-job slowdown",
      cons_on > cons_off);
  bench::report_expectation(
      "under contention the plan scheduler beats EASY for wide jobs",
      plan_on < easy_on);
  return 0;
}
