// bfsim -- simulation time base.
//
// Overflow contract: simulation timestamps are non-negative and bounded
// by kTimeMax; durations (runtimes, estimates, delays) are non-negative.
// Any sum or difference of Time values outside this header must go
// through saturating_add / saturating_sub (or the sim::checked helpers
// below): the result clamps at kTimeMax instead of wrapping, so a
// hostile input (e.g. an SWF record carrying a runtime near INT64_MAX)
// degrades to "the far future" rather than signed-overflow UB. kTimeMax
// itself acts as +infinity -- the availability profile's final segment
// extends to it, so a saturated window end means "covered by the fully-
// free tail", which is exactly the semantics an unbounded window should
// have.
//
// The contract is machine-checked: tools/bfsim_lint flags every raw
// `+`/`-`/`+=`/`-=` whose operand is Time-typed outside this file.
// Audited sites that must stay raw carry a
// `// bfsim-lint: unchecked-time -- <why>` annotation.
#pragma once

#include <cstdint>
#include <limits>

namespace bfsim::sim {

/// Simulation time in whole seconds since trace start. Signed so that
/// differences and "not yet" sentinels are representable.
using Time = std::int64_t;

inline constexpr Time kNoTime = -1;

/// The far future; the saturation point of saturating_add.
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

inline constexpr Time kSecond = 1;
inline constexpr Time kMinute = 60;
inline constexpr Time kHour = 3600;
inline constexpr Time kDay = 86400;
inline constexpr Time kWeek = 7 * kDay;

/// lhs + rhs clamped into [numeric_limits<Time>::min(), kTimeMax]
/// instead of wrapping. Compiles to an add plus a conditional move on
/// overflow, so it is free to use on hot paths (Profile::anchor_from,
/// the engine's timer arithmetic) where either operand may be
/// attacker-sized.
[[nodiscard]] constexpr Time saturating_add(Time lhs, Time rhs) {
  Time clamped = 0;
  if (__builtin_add_overflow(lhs, rhs, &clamped))
    return rhs > 0 ? kTimeMax : std::numeric_limits<Time>::min();
  return clamped;
}

/// lhs - rhs clamped into [numeric_limits<Time>::min(), kTimeMax]
/// instead of wrapping. The mirror of saturating_add for differences:
/// wait times, remaining-runtime computations, and window widths where
/// either operand may be attacker-sized (kTimeMax-anchored reservations
/// minus an arbitrary submit time, for instance).
[[nodiscard]] constexpr Time saturating_sub(Time lhs, Time rhs) {
  Time clamped = 0;
  if (__builtin_sub_overflow(lhs, rhs, &clamped))
    return rhs < 0 ? kTimeMax : std::numeric_limits<Time>::min();
  return clamped;
}

/// Strong-typed saturating arithmetic over Time. Multi-term expressions
/// written as nested saturating_add/saturating_sub calls read inside
/// out; the checked helpers keep them left-to-right:
///
///   sim::checked::add(start, estimate, grace)     // fold of sat adds
///   sim::checked::Sum acc{now}; acc += est; acc -= used;
///
/// Every operation clamps, so a chain that saturates stays pinned at
/// kTimeMax instead of re-entering the representable range, and
/// tools/bfsim_lint recognizes these forms as satisfying the overflow
/// contract.
namespace checked {

/// Saturating accumulator: a Time that only exposes clamped compound
/// assignment, for running sums built up across statements or loop
/// iterations.
class Sum {
 public:
  constexpr explicit Sum(Time initial = 0) : value_(initial) {}

  constexpr Sum& operator+=(Time delta) {
    value_ = saturating_add(value_, delta);
    return *this;
  }

  constexpr Sum& operator-=(Time delta) {
    value_ = saturating_sub(value_, delta);
    return *this;
  }

  [[nodiscard]] constexpr Time value() const { return value_; }

 private:
  Time value_;
};

[[nodiscard]] constexpr Time add(Time lhs, Time rhs) {
  return saturating_add(lhs, rhs);
}

/// Left-to-right saturating fold: add(x, y, z) == sat(sat(x, y), z).
template <typename... Rest>
[[nodiscard]] constexpr Time add(Time lhs, Time rhs, Rest... rest) {
  return add(saturating_add(lhs, rhs), static_cast<Time>(rest)...);
}

[[nodiscard]] constexpr Time sub(Time lhs, Time rhs) {
  return saturating_sub(lhs, rhs);
}

/// later - earlier, floored at zero: the shape of every wait-time /
/// elapsed-time computation, where a clock inversion (or saturated
/// sentinel) must degrade to "no time elapsed", never to a huge
/// positive value from wraparound.
[[nodiscard]] constexpr Time elapsed(Time later, Time earlier) {
  const Time diff = saturating_sub(later, earlier);
  return diff < 0 ? 0 : diff;
}

}  // namespace checked

}  // namespace bfsim::sim
