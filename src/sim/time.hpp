// bfsim -- simulation time base.
#pragma once

#include <cstdint>

namespace bfsim::sim {

/// Simulation time in whole seconds since trace start. Signed so that
/// differences and "not yet" sentinels are representable.
using Time = std::int64_t;

inline constexpr Time kNoTime = -1;

inline constexpr Time kSecond = 1;
inline constexpr Time kMinute = 60;
inline constexpr Time kHour = 3600;
inline constexpr Time kDay = 86400;
inline constexpr Time kWeek = 7 * kDay;

}  // namespace bfsim::sim
