// bfsim -- simulation time base.
//
// Overflow contract: simulation timestamps are non-negative and bounded
// by kTimeMax; durations (runtimes, estimates, delays) are non-negative.
// Any sum of a timestamp and a duration on a hot path must go through
// saturating_add: the result clamps at kTimeMax instead of wrapping,
// so a hostile input (e.g. an SWF record carrying a runtime near
// INT64_MAX) degrades to "the far future" rather than signed-overflow
// UB. kTimeMax itself acts as +infinity -- the availability profile's
// final segment extends to it, so a saturated window end means "covered
// by the fully-free tail", which is exactly the semantics an unbounded
// window should have.
#pragma once

#include <cstdint>
#include <limits>

namespace bfsim::sim {

/// Simulation time in whole seconds since trace start. Signed so that
/// differences and "not yet" sentinels are representable.
using Time = std::int64_t;

inline constexpr Time kNoTime = -1;

/// The far future; the saturation point of saturating_add.
inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

inline constexpr Time kSecond = 1;
inline constexpr Time kMinute = 60;
inline constexpr Time kHour = 3600;
inline constexpr Time kDay = 86400;
inline constexpr Time kWeek = 7 * kDay;

/// a + b clamped into [numeric_limits<Time>::min(), kTimeMax] instead of
/// wrapping. Compiles to an add plus a conditional move on overflow, so
/// it is free to use on hot paths (Profile::anchor_from, the engine's
/// timer arithmetic) where either operand may be attacker-sized.
[[nodiscard]] constexpr Time saturating_add(Time a, Time b) {
  Time out = 0;
  if (__builtin_add_overflow(a, b, &out))
    return b > 0 ? kTimeMax : std::numeric_limits<Time>::min();
  return out;
}

}  // namespace bfsim::sim
