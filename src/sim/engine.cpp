#include "sim/engine.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace bfsim::sim {

void Engine::schedule_at(Time when, Action action, int priority_class) {
  if (when < now_)
    throw std::invalid_argument("Engine::schedule_at: time is in the past");
  queue_.push(when, priority_class, std::move(action));
}

void Engine::schedule_in(Time delay, Action action, int priority_class) {
  if (delay < 0)
    throw std::invalid_argument("Engine::schedule_in: negative delay");
  queue_.push(now_ + delay, priority_class, std::move(action));
}

Time Engine::run() { return run_until(std::numeric_limits<Time>::max()); }

Time Engine::run_until(Time horizon) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().time > horizon) break;
    auto event = queue_.pop();
    now_ = event.time;
    ++processed_;
    event.payload();
  }
  return now_;
}

}  // namespace bfsim::sim
