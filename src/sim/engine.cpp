#include "sim/engine.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace bfsim::sim {

void Engine::schedule_at(Time when, Action action, int priority_class) {
  if (when < now_)
    throw std::invalid_argument("Engine::schedule_at: time is in the past");
  queue_.push(when, priority_class, std::move(action));
}

void Engine::schedule_in(Time delay, Action action, int priority_class) {
  if (delay < 0)
    throw std::invalid_argument("Engine::schedule_in: negative delay");
  // Saturate: a far-future delay parks the event at kTimeMax instead of
  // wrapping negative and firing in the past (or throwing from a clock
  // that has advanced). run() still drains it; run_until() never will.
  queue_.push(saturating_add(now_, delay), priority_class, std::move(action));
}

void Engine::arm_stream(Time when) {
  if (!stream_action_)
    throw std::logic_error("Engine::arm_stream: no stream installed");
  if (stream_time_ != kNoTime)
    throw std::logic_error("Engine::arm_stream: stream already armed");
  if (when < now_)
    throw std::invalid_argument("Engine::arm_stream: time is in the past");
  stream_time_ = when;
}

Time Engine::run() { return run_until(std::numeric_limits<Time>::max()); }

Time Engine::run_until(Time horizon) {
  stop_requested_ = false;
  while (!stop_requested_) {
    // Pick the earlier of the heap top and the stream head under the
    // (time, priority class) order; the heap wins exact ties, so stream
    // events behave as if pushed after every already-queued event of
    // their class. Firing the stream skips the heap entirely -- for an
    // arrival-dominated simulation that halves the heap traffic.
    bool take_stream;
    if (queue_.empty()) {
      if (stream_time_ == kNoTime) break;
      take_stream = true;
    } else if (stream_time_ == kNoTime) {
      take_stream = false;
    } else {
      const auto& top = queue_.top();
      take_stream = stream_time_ < top.time ||
                    (stream_time_ == top.time &&
                     stream_class_ < top.priority_class());
    }
    if (take_stream) {
      if (stream_time_ > horizon) break;
      now_ = stream_time_;
      stream_time_ = kNoTime;
      ++processed_;
      stream_action_();
    } else {
      if (queue_.top().time > horizon) break;
      auto event = queue_.pop();
      now_ = event.time;
      ++processed_;
      event.payload();
    }
    // Batch boundary: the clock is about to move (or everything
    // drained). Handlers may have pushed or armed same-time events;
    // those extend the batch.
    if (batch_end_ && (!pending() || next_time() != now_)) batch_end_();
  }
  return now_;
}

}  // namespace bfsim::sim
