// bfsim -- streaming statistics used by the metrics layer and by tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace bfsim::sim {

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  /// The raw accumulator state, exposed for exact (bit-for-bit)
  /// serialization: the sweep checkpoint journal must replay a cell's
  /// statistics byte-identically, so it persists this state verbatim
  /// rather than re-deriving it from rounded outputs.
  struct State {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x);

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other);

  [[nodiscard]] State state() const;
  [[nodiscard]] static RunningStats from_state(const State& state);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean; 0 when count < 2.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact quantiles over a stored sample (the job populations here are at
/// most a few hundred thousand values, so storing them is fine).
class Sample {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;  // a value appended after a quantile query
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  /// Quantile q in [0,1] with linear interpolation; requires count() > 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// edge bins. Used for reporting distribution shapes of slowdowns etc.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render as ASCII bars, one bin per line.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace bfsim::sim
