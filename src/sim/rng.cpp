#include "sim/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bfsim::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& s : state_) s = sm.next();
  // All-zero state would be degenerate; SplitMix64 cannot produce four
  // consecutive zeros for any seed, but keep the guard for clarity.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_open_double() { return 1.0 - next_double(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::log_uniform(double lo, double hi) {
  assert(lo > 0.0 && lo <= hi);
  return lo * std::exp(next_double() * std::log(hi / lo));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  return -mean * std::log(next_open_double());
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape, double scale) {
  if (!(shape > 0.0) || !(scale > 0.0))
    throw std::invalid_argument("Rng::gamma: shape and scale must be > 0");
  if (shape < 1.0) {
    // Boost: X ~ Gamma(k+1) * U^(1/k) is Gamma(k).
    const double u = next_open_double();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = next_open_double();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return scale * d * v;
  }
}

double Rng::hyper_gamma(double p, double k1, double t1, double k2, double t2) {
  return bernoulli(p) ? gamma(k1, t1) : gamma(k2, t2);
}

std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("Rng::discrete: weights sum to zero");
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge case
}

Rng Rng::split() {
  Rng child = *this;
  child.jump();
  // Keep the spare-normal cache out of the child to make split()
  // independent of prior normal() parity.
  child.has_spare_normal_ = false;
  // Perturb so parent and child diverge even after parent jumps too.
  child.state_[0] ^= next_u64();
  child.state_[1] ^= next_u64();
  if ((child.state_[0] | child.state_[1] | child.state_[2] |
       child.state_[3]) == 0)
    child.state_[0] = 1;
  return child;
}

void Rng::jump() {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace bfsim::sim
