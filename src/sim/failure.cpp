#include "sim/failure.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"
#include "util/error.hpp"

namespace bfsim::sim {

namespace {

[[noreturn]] void trace_fail(std::size_t index, const std::string& what) {
  throw std::invalid_argument("failure-trace: outage " +
                              std::to_string(index) + ": " + what);
}

}  // namespace

void validate_failure_trace(const FailureTrace& trace, int machine_procs,
                            int machine_bb) {
  if (machine_procs < 1)
    throw std::invalid_argument("failure-trace: machine_procs must be >= 1");
  if (machine_bb < 0)
    throw std::invalid_argument("failure-trace: machine_bb must be >= 0");
  for (std::size_t i = 0; i < trace.outages.size(); ++i) {
    const Outage& o = trace.outages[i];
    if (o.id != static_cast<OutageId>(i))
      trace_fail(i, "id " + std::to_string(o.id) + " is not dense");
    if (o.down_at < 0) trace_fail(i, "down_at is negative");
    if (o.repair_at <= o.down_at) trace_fail(i, "repair_at <= down_at");
    if (o.procs < 0) trace_fail(i, "procs is negative");
    if (o.bb < 0) trace_fail(i, "bb is negative");
    if (o.procs == 0 && o.bb == 0) trace_fail(i, "loses no capacity");
    if (o.procs > machine_procs)
      trace_fail(i, "procs exceed the machine");
    if (o.bb > machine_bb) trace_fail(i, "bb exceeds the machine");
    if (i > 0 && o.down_at < trace.outages[i - 1].down_at)
      trace_fail(i, "not sorted by down_at");
  }
  // Sweep line over the concurrent losses: at every instant the summed
  // down capacity must fit the machine on both axes. Repairs at t sort
  // before downs at t -- the engine delivers repair events first.
  struct Edge {
    Time at;
    bool down;  // false == repair (frees capacity)
    int procs;
    int bb;
  };
  std::vector<Edge> edges;
  edges.reserve(trace.outages.size() * 2);
  for (const Outage& o : trace.outages) {
    edges.push_back({o.down_at, true, o.procs, o.bb});
    edges.push_back({o.repair_at, false, o.procs, o.bb});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return !a.down && b.down;
                   });
  int down_procs = 0;
  int down_bb = 0;
  for (const Edge& e : edges) {
    if (e.down) {
      down_procs += e.procs;
      down_bb += e.bb;
      if (down_procs > machine_procs || down_bb > machine_bb)
        throw std::invalid_argument(
            "failure-trace: concurrent losses at t=" + std::to_string(e.at) +
            " exceed the machine");
    } else {
      down_procs -= e.procs;
      down_bb -= e.bb;
    }
  }
}

std::string to_string(RequeuePolicy policy) {
  switch (policy) {
    case RequeuePolicy::kResubmitFull: return "full";
    case RequeuePolicy::kResubmitRemaining: return "remaining";
  }
  return "full";
}

RequeuePolicy requeue_policy_from_string(const std::string& name) {
  if (name == "full") return RequeuePolicy::kResubmitFull;
  if (name == "remaining") return RequeuePolicy::kResubmitRemaining;
  throw std::invalid_argument("requeue_policy_from_string: unknown policy '" +
                              name + "'");
}

FailureTrace generate_failures(const FailureModel& model, int machine_procs,
                               int machine_bb, std::uint64_t seed) {
  if (machine_procs < 1)
    throw std::invalid_argument("generate_failures: machine_procs must be >= 1");
  if (machine_bb < 0)
    throw std::invalid_argument("generate_failures: machine_bb must be >= 0");
  if (!(model.mean_uptime > 0.0) || !(model.mean_repair > 0.0))
    throw std::invalid_argument(
        "generate_failures: means must be positive");
  if (model.horizon < 1)
    throw std::invalid_argument("generate_failures: horizon must be >= 1");
  if (model.max_procs_lost < 0 || model.max_bb_lost < 0)
    throw std::invalid_argument("generate_failures: losses must be >= 0");
  if (model.max_procs_lost == 0 && model.max_bb_lost == 0)
    throw std::invalid_argument("generate_failures: nothing to lose");

  Rng rng(seed);
  FailureTrace trace;
  Time clock = 0;
  while (true) {
    Time gap = static_cast<Time>(std::llround(rng.exponential(model.mean_uptime)));
    if (gap < 1) gap = 1;
    clock = saturating_add(clock, gap);
    if (clock >= model.horizon) break;
    Time duration =
        static_cast<Time>(std::llround(rng.exponential(model.mean_repair)));
    if (duration < 1) duration = 1;
    int procs = model.max_procs_lost > 0
                    ? static_cast<int>(rng.uniform_int(1, model.max_procs_lost))
                    : 0;
    int bb = 0;
    if (model.max_bb_lost > 0)
      bb = static_cast<int>(
          rng.uniform_int(procs > 0 ? 0 : 1, model.max_bb_lost));
    procs = std::min(procs, machine_procs);
    bb = std::min(bb, machine_bb);
    Outage outage;
    outage.id = static_cast<OutageId>(trace.outages.size());
    outage.down_at = clock;
    outage.repair_at = saturating_add(clock, duration);
    outage.procs = procs;
    outage.bb = bb;
    trace.outages.push_back(outage);
    // Sequential model: the machine heals before it fails again, so
    // concurrent losses never stack beyond one outage.
    clock = outage.repair_at;
    if (clock >= model.horizon) break;
  }
  return trace;
}

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& what) {
  throw util::ParseError("failure-trace: line " + std::to_string(line) + ": " +
                         what);
}

std::int64_t parse_field(const std::string& token, std::size_t line,
                         const char* name) {
  try {
    std::size_t used = 0;
    const long long value = std::stoll(token, &used);
    if (used != token.size()) parse_fail(line, std::string(name) + " is not an integer");
    return value;
  } catch (const util::ParseError&) {
    throw;
  } catch (const std::exception&) {
    parse_fail(line, std::string(name) + " is not an integer");
  }
}

}  // namespace

FailureTrace parse_failure_trace(std::istream& in) {
  FailureTrace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) {
      if (token.front() == '#' || token.front() == ';') break;
      tokens.push_back(token);
    }
    if (tokens.empty()) continue;
    if (tokens.size() < 3 || tokens.size() > 4)
      parse_fail(line_no, "expected 3 or 4 fields, got " +
                              std::to_string(tokens.size()));
    Outage outage;
    outage.id = static_cast<OutageId>(trace.outages.size());
    outage.down_at = parse_field(tokens[0], line_no, "down_at");
    outage.repair_at = parse_field(tokens[1], line_no, "repair_at");
    const std::int64_t procs = parse_field(tokens[2], line_no, "procs");
    if (procs < 0 || procs > std::numeric_limits<int>::max())
      parse_fail(line_no, "procs out of range");
    outage.procs = static_cast<int>(procs);
    if (tokens.size() == 4) {
      const std::int64_t bb = parse_field(tokens[3], line_no, "bb");
      if (bb < 0 || bb > std::numeric_limits<int>::max())
        parse_fail(line_no, "bb out of range");
      outage.bb = static_cast<int>(bb);
    }
    if (outage.down_at < 0) parse_fail(line_no, "down_at is negative");
    if (outage.repair_at <= outage.down_at)
      parse_fail(line_no, "repair_at <= down_at");
    if (outage.procs == 0 && outage.bb == 0)
      parse_fail(line_no, "loses no capacity");
    trace.outages.push_back(outage);
  }
  return trace;
}

FailureTrace read_failure_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw util::ParseError("failure-trace: cannot open '" + path + "'");
  return parse_failure_trace(in);
}

void write_failure_trace(std::ostream& out, const FailureTrace& trace) {
  out << "# bfsim failure trace: down_at repair_at procs [bb]\n";
  for (const Outage& o : trace.outages) {
    out << o.down_at << ' ' << o.repair_at << ' ' << o.procs;
    if (o.bb > 0) out << ' ' << o.bb;
    out << '\n';
  }
}

}  // namespace bfsim::sim
