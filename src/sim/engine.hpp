// bfsim -- a small callback-driven discrete-event simulation engine.
//
// This is the single event loop of the system: core::run_simulation
// schedules its typed finish/submit/cancel/wake events here, and the
// same engine backs auxiliary models (arrival processes, failure
// injection in tests, example programs). The DES unit tests exercise it
// as the reference semantics for event ordering.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace bfsim::sim {

/// Discrete-event engine: schedule callbacks at absolute or relative
/// times, then run until the event queue drains (or a horizon is hit).
/// Callbacks are SmallFn (sim/small_fn.hpp): trivially copyable, at
/// most 16 bytes of captures -- the heap the engine runs on moves its
/// elements constantly, and this keeps every move a memcpy.
class Engine {
 public:
  using Action = SmallFn;

  /// Schedule `action` at absolute time `when` (>= now). Events scheduled
  /// for the same time fire in (priority_class, insertion) order.
  void schedule_at(Time when, Action action, int priority_class = 0);

  /// Schedule `action` `delay` seconds from now (delay >= 0).
  void schedule_in(Time delay, Action action, int priority_class = 0);

  /// Install the engine's *stream*: a side-channel for one externally
  /// ordered, monotone sequence of events (canonically: trace arrivals,
  /// which the caller already holds sorted by time). Stream events merge
  /// with heap events by (time, priority class) -- heap events win exact
  /// ties -- but never touch the heap: firing the head of the stream is
  /// a comparison and a call, not a push, sift, and pop. The caller arms
  /// one element at a time with arm_stream(); when the head comes due
  /// the engine disarms it and invokes `action`, which re-arms for the
  /// successor (or leaves the stream exhausted). Pass a
  /// default-constructed Action to remove the stream.
  void set_stream(int priority_class, Action action) {
    stream_class_ = priority_class;
    stream_action_ = std::move(action);
    if (!stream_action_) stream_time_ = kNoTime;
  }

  /// Set the stream head to absolute time `when` (>= now). Requires a
  /// stream (set_stream) and an unarmed head -- the stream holds at most
  /// one pending element by construction.
  void arm_stream(Time when);

  [[nodiscard]] bool stream_armed() const { return stream_time_ != kNoTime; }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool pending() const {
    return !queue_.empty() || stream_time_ != kNoTime;
  }

  /// Time of the next pending event (heap or stream head). Callable only
  /// while pending(): drivers use it inside an event callback to detect
  /// the end of a batch of same-time events.
  [[nodiscard]] Time next_time() const {
    if (stream_time_ == kNoTime) return queue_.top().time;
    if (queue_.empty()) return stream_time_;
    const Time top = queue_.top().time;
    return stream_time_ < top ? stream_time_ : top;
  }

  /// Install a hook that runs once after each *batch* -- a maximal run
  /// of events sharing one timestamp -- instead of after every event.
  /// The engine drains all same-time events (including ones the
  /// handlers themselves add at the current instant) and only then
  /// invokes the hook, so a finish burst of N completions costs one
  /// hook call, not N. If the hook schedules more events at the current
  /// time, they form a fresh batch and the hook fires again after it.
  /// Pass a default-constructed Action to clear.
  void set_batch_end(Action hook) { batch_end_ = std::move(hook); }

  /// Run until the queue is empty. Returns the final clock value.
  Time run();

  /// Run until the queue is empty or the next event is strictly after
  /// `horizon`; later events stay queued. Returns the clock.
  Time run_until(Time horizon);

  /// Stop after the currently executing event (callable from actions).
  void stop() { stop_requested_ = true; }

 private:
  EventQueue<Action> queue_;
  Action batch_end_;
  Action stream_action_;
  Time now_ = 0;
  Time stream_time_ = kNoTime;  ///< armed stream head, kNoTime = none
  int stream_class_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace bfsim::sim
