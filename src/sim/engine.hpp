// bfsim -- a small callback-driven discrete-event simulation engine.
//
// The scheduler simulation in core/ drives its own typed event loop for
// speed; this generic engine backs auxiliary models (arrival processes,
// failure injection in tests, example programs) and is exercised by the
// DES unit tests as the reference semantics for event ordering.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace bfsim::sim {

/// Discrete-event engine: schedule callbacks at absolute or relative
/// times, then run until the event queue drains (or a horizon is hit).
class Engine {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when` (>= now). Events scheduled
  /// for the same time fire in (priority_class, insertion) order.
  void schedule_at(Time when, Action action, int priority_class = 0);

  /// Schedule `action` `delay` seconds from now (delay >= 0).
  void schedule_in(Time delay, Action action, int priority_class = 0);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool pending() const { return !queue_.empty(); }

  /// Run until the queue is empty. Returns the final clock value.
  Time run();

  /// Run until the queue is empty or the next event is strictly after
  /// `horizon`; later events stay queued. Returns the clock.
  Time run_until(Time horizon);

  /// Stop after the currently executing event (callable from actions).
  void stop() { stop_requested_ = true; }

 private:
  EventQueue<Action> queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace bfsim::sim
