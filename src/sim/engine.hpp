// bfsim -- a small callback-driven discrete-event simulation engine.
//
// This is the single event loop of the system: core::run_simulation
// schedules its typed finish/submit/cancel/wake events here, and the
// same engine backs auxiliary models (arrival processes, failure
// injection in tests, example programs). The DES unit tests exercise it
// as the reference semantics for event ordering.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace bfsim::sim {

/// Discrete-event engine: schedule callbacks at absolute or relative
/// times, then run until the event queue drains (or a horizon is hit).
/// Callbacks are SmallFn (sim/small_fn.hpp): trivially copyable, at
/// most 16 bytes of captures -- the heap the engine runs on moves its
/// elements constantly, and this keeps every move a memcpy.
class Engine {
 public:
  using Action = SmallFn;

  /// Schedule `action` at absolute time `when` (>= now). Events scheduled
  /// for the same time fire in (priority_class, insertion) order.
  void schedule_at(Time when, Action action, int priority_class = 0);

  /// Schedule `action` `delay` seconds from now (delay >= 0).
  void schedule_in(Time delay, Action action, int priority_class = 0);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] bool pending() const { return !queue_.empty(); }

  /// Time of the next pending event. Callable only while pending():
  /// drivers use it inside an event callback to detect the end of a
  /// batch of same-time events.
  [[nodiscard]] Time next_time() const { return queue_.top().time; }

  /// Run until the queue is empty. Returns the final clock value.
  Time run();

  /// Run until the queue is empty or the next event is strictly after
  /// `horizon`; later events stay queued. Returns the clock.
  Time run_until(Time horizon);

  /// Stop after the currently executing event (callable from actions).
  void stop() { stop_requested_ = true; }

 private:
  EventQueue<Action> queue_;
  Time now_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace bfsim::sim
