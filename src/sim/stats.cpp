#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace bfsim::sim {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats::State RunningStats::state() const {
  return {count_, mean_, m2_, sum_, min_, max_};
}

RunningStats RunningStats::from_state(const State& state) {
  RunningStats stats;
  stats.count_ = state.count;
  stats.mean_ = state.mean;
  stats.m2_ = state.m2;
  stats.sum_ = state.sum;
  // An empty accumulator keeps its +/-infinity sentinels so later add()
  // calls behave identically to a fresh instance.
  if (state.count > 0) {
    stats.min_ = state.min;
    stats.max_ = state.max;
  }
  return stats;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void Sample::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Sample::quantile(double q) const {
  if (values_.empty())
    throw std::logic_error("Sample::quantile on an empty sample");
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (values_.size() == 1) return values_[0];
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(
                        static_cast<double>(counts_[i]) /
                        static_cast<double>(peak) * static_cast<double>(width));
    out << util::pad_left(util::format_fixed(bin_lo(i), 1), 10) << " | "
        << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace bfsim::sim
