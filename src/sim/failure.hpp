// bfsim -- deterministic node failure / repair model.
//
// An Outage is a contiguous loss of machine capacity: `procs` processors
// (and optionally `bb` burst-buffer GB) leave service at `down_at` and
// return at `repair_at`. A FailureTrace is the full availability
// scenario for one run -- explicit records, sorted by down time, with
// dense ids so both the replay front (index lookup) and the wire
// protocol (id-keyed validation) can address them cheaply.
//
// Determinism contract: the trace is data, never sampled during the
// run. The seeded generator below produces sequential (non-overlapping)
// outages from a sim::Rng stream, so the same (model, seed) pair yields
// the same trace on every platform; hand-written traces may overlap as
// long as the concurrent loss never exceeds the machine on either axis
// (validate_failure_trace enforces this with a sweep line).
//
// Within one simulation instant the event order is
//   finish < repair < down < submit < cancel < wake
// so a job finishing exactly at down_at completes normally, a repair
// restores capacity before a same-instant failure takes more, and
// arrivals always observe the post-outage machine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace bfsim::sim {

/// Identifies one outage within a trace / session. Dense: trace record
/// i has id i, and the wire protocol validates ids against the same
/// bound the decision core tracks.
using OutageId = std::uint32_t;

/// One capacity-loss interval [down_at, repair_at).
struct Outage {
  OutageId id = 0;
  Time down_at = 0;
  Time repair_at = 0;
  int procs = 0;  ///< processors lost for the interval
  int bb = 0;     ///< burst-buffer GB lost for the interval

  friend bool operator==(const Outage&, const Outage&) = default;
};

/// The availability scenario of one run. Empty trace == the always-
/// healthy machine every pre-availability differential was built on.
struct FailureTrace {
  std::vector<Outage> outages;

  [[nodiscard]] bool empty() const { return outages.empty(); }
  [[nodiscard]] std::size_t size() const { return outages.size(); }

  friend bool operator==(const FailureTrace&, const FailureTrace&) = default;
};

/// Reject malformed traces before simulation: ids must be dense
/// (record i has id i), down_at >= 0, repair_at > down_at, per-axis
/// losses in [0, machine] with procs + bb >= 1, records sorted by
/// (down_at, id), and at no instant may the concurrently-down capacity
/// exceed the machine on either axis (a repair at t frees capacity
/// before a down at t takes it, matching the engine's event order).
/// Throws std::invalid_argument with a "failure-trace:" prefix.
void validate_failure_trace(const FailureTrace& trace, int machine_procs,
                            int machine_bb = 0);

/// What happens to a job killed by an outage when it re-enters the
/// queue (always with its original submit time, so priority ties are
/// preserved):
///   kResubmitFull      restart from scratch -- full runtime and the
///                      original user estimate
///   kResubmitRemaining checkpointed resume -- completed work is kept;
///                      runtime and estimate both shrink by the time
///                      already executed
enum class RequeuePolicy : int {
  kResubmitFull = 0,
  kResubmitRemaining = 1,
};

[[nodiscard]] std::string to_string(RequeuePolicy policy);

/// Parse "full" / "remaining" (case-sensitive). Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] RequeuePolicy requeue_policy_from_string(
    const std::string& name);

/// Parameters of the seeded generator. Uptime gaps and repair
/// durations are exponential (rounded to whole seconds, floored at 1);
/// per-outage losses are uniform on [1, max]. Outages are sequential:
/// the next failure arrives after the previous repair, so any machine
/// with machine_procs >= max_procs_lost accepts the result.
struct FailureModel {
  double mean_uptime = 4.0 * static_cast<double>(kDay);
  double mean_repair = 2.0 * static_cast<double>(kHour);
  int max_procs_lost = 1;
  int max_bb_lost = 0;
  Time horizon = 30 * kDay;  ///< no outage begins at or after this
};

/// Deterministically sample a FailureTrace from `model` with its own
/// Rng stream; per-outage losses clamp to the machine. The result
/// always passes validate_failure_trace for this machine. Throws
/// std::invalid_argument on nonsensical models (non-positive means or
/// horizon, no axis to lose).
[[nodiscard]] FailureTrace generate_failures(const FailureModel& model,
                                             int machine_procs,
                                             int machine_bb,
                                             std::uint64_t seed);

/// Text form, one outage per line: "<down_at> <repair_at> <procs>[ <bb>]",
/// '#' and ';' comment lines and blank lines ignored. Ids are assigned
/// densely in file order. Throws util::ParseError with a
/// "failure-trace:" prefix on malformed input.
[[nodiscard]] FailureTrace parse_failure_trace(std::istream& in);

/// Read and parse a failure-trace file; util::ParseError when the file
/// cannot be opened or parsed.
[[nodiscard]] FailureTrace read_failure_trace_file(const std::string& path);

/// Inverse of parse_failure_trace (bb column written only when > 0).
void write_failure_trace(std::ostream& out, const FailureTrace& trace);

}  // namespace bfsim::sim
