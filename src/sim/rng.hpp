// bfsim -- deterministic random number generation for reproducible
// simulation studies.
//
// We implement our own generator (xoshiro256**, seeded via SplitMix64)
// rather than relying on std::mt19937 + std::*_distribution, because the
// standard distributions are not specified bit-exactly across library
// implementations; every result in EXPERIMENTS.md must be reproducible
// from a seed alone on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bfsim::sim {

/// SplitMix64 -- used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) -- fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double();

  /// Uniform double in (0, 1] -- safe as an argument to log().
  double next_open_double();

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Log-uniform double in [lo, hi); requires 0 < lo <= hi.
  double log_uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given mean (= 1/rate); mean > 0.
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Gamma(shape k > 0, scale theta > 0) via Marsaglia-Tsang, with the
  /// standard boost for k < 1.
  double gamma(double shape, double scale);

  /// Two-component hyper-gamma: Gamma(k1,t1) w.p. p, else Gamma(k2,t2).
  /// Used by the Lublin-style runtime model.
  double hyper_gamma(double p, double k1, double t1, double k2, double t2);

  /// Sample an index from a discrete distribution given by non-negative
  /// weights (need not be normalized; at least one must be positive).
  std::size_t discrete(std::span<const double> weights);

  /// Derive an independent child generator (for parallel replications).
  [[nodiscard]] Rng split();

  /// Long-jump equivalent: advance by 2^128 next_u64() calls.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_{};
  // Cached second value from the polar method.
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace bfsim::sim
