// bfsim -- a trivially copyable small-callable wrapper.
//
// The event engine stores one callback per scheduled event inside a
// binary heap, where every sift moves the element. std::function makes
// each of those moves an indirect call into its manager function; for
// the tiny capture lists events actually carry (a driver pointer and a
// job id) that overhead dominates the heap operation itself. SmallFn
// trades generality for speed: callables must be trivially copyable and
// fit 16 bytes, making SmallFn itself trivially copyable -- heap sifts
// degrade to plain memcpy. Larger or non-trivial callables fail to
// compile with a static_assert naming the limit; box the state behind a
// pointer if you hit it.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bfsim::sim {

class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
  SmallFn(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_trivially_copyable_v<Fn>,
                  "SmallFn requires a trivially copyable callable; box "
                  "non-trivial state behind a pointer");
    static_assert(sizeof(Fn) <= kStorage,
                  "SmallFn callables are limited to 16 bytes of captures; "
                  "box larger state behind a pointer");
    static_assert(alignof(Fn) <= alignof(void*),
                  "SmallFn storage is pointer-aligned; callables with "
                  "extended alignment need their own home");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* storage) {
      (*std::launder(reinterpret_cast<Fn*>(storage)))();
    };
  }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

 private:
  static constexpr std::size_t kStorage = 16;

  // Pointer alignment (not max_align_t) keeps SmallFn at 24 bytes, and
  // the engine's heap Event within half a cache line; event captures are
  // pointers and small ints.
  void (*invoke_)(void*) = nullptr;
  alignas(void*) unsigned char storage_[kStorage];
};

static_assert(std::is_trivially_copyable_v<SmallFn>,
              "SmallFn must stay trivially copyable: the event queue "
              "relies on memcpy-cheap heap sifts");

}  // namespace bfsim::sim
