// bfsim -- a deterministic discrete-event queue.
//
// Events are ordered by (time, priority class, insertion sequence); the
// sequence number makes simultaneous events pop in insertion order, so a
// simulation run is a pure function of its inputs.
//
// The heap is a hand-rolled 4-ary min-heap rather than
// std::priority_queue. The queue is the single hottest structure in the
// simulator (every event is one push and one pop), and the 4-ary layout
// halves the tree depth while keeping all four children of a node in one
// cache line's reach; pop re-inserts the displaced tail element by
// sifting an empty hole to a leaf first (no element-vs-child compare per
// level) and then bubbling the tail up from the bottom, which is cheaper
// because the tail almost always belongs near the leaves. The priority
// class and sequence number are packed into one 64-bit tie-break key, so
// an event is ordered by two machine words. The ordering is a total
// order (seq breaks all ties), so ANY conforming heap pops the exact
// same sequence -- swapping the implementation cannot change simulation
// results.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bfsim::sim {

/// Min-heap event queue with stable FIFO ordering among equal keys.
///
/// `Payload` is the event body; `priority_class` orders simultaneous
/// events of different kinds (lower pops first) -- e.g. job completions
/// before job arrivals at the same timestamp. Classes must fit
/// [0, 65535] (checked); the insertion sequence is bounded at 2^48
/// events per queue lifetime, far beyond any simulated trace.
template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time time;
    std::uint64_t key;  ///< priority_class << 48 | insertion sequence
    Payload payload;

    [[nodiscard]] int priority_class() const {
      return static_cast<int>(key >> kSeqBits);
    }
    [[nodiscard]] std::uint64_t seq() const {
      return key & ((std::uint64_t{1} << kSeqBits) - 1);
    }
  };

  void push(Time time, int priority_class, Payload payload) {
    assert(priority_class >= 0 && priority_class <= 0xffff &&
           "EventQueue priority classes must fit [0, 65535]");
    const std::uint64_t key =
        (static_cast<std::uint64_t>(priority_class) << kSeqBits) | seq_++;
    heap_.push_back(Event{time, key, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    assert(!heap_.empty());
    return heap_.front();
  }

  Event pop() {
    assert(!heap_.empty());
    Event out = std::move(heap_.front());
    if (heap_.size() > 1) {
      // Sift the root hole straight down to a leaf (picking the earliest
      // child each level, no compares against the tail), then place the
      // tail element there and bubble it up. The tail came from the
      // bottom of the heap, so it rarely moves back up more than a step.
      std::size_t hole = 0;
      const std::size_t end = heap_.size() - 1;
      for (;;) {
        const std::size_t first = 4 * hole + 1;
        if (first >= end) break;
        std::size_t best = first;
        const std::size_t last = first + 4 < end ? first + 4 : end;
        for (std::size_t c = first + 1; c < last; ++c)
          if (earlier(heap_[c], heap_[best])) best = c;
        heap_[hole] = std::move(heap_[best]);
        hole = best;
      }
      if (hole != end) {
        heap_[hole] = std::move(heap_[end]);
        sift_up(hole);
      }
    }
    heap_.pop_back();
    return out;
  }

 private:
  static constexpr unsigned kSeqBits = 48;

  /// The total event order: (time, priority class, sequence). The
  /// packed key compares both tie-breaks in one machine word.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::size_t pos) {
    if (pos == 0 || !earlier(heap_[pos], heap_[(pos - 1) / 4])) return;
    // Hole technique: lift the element out once, slide parents down,
    // drop it in its final slot -- one move per level instead of a swap.
    Event tmp = std::move(heap_[pos]);
    do {
      const std::size_t parent = (pos - 1) / 4;
      heap_[pos] = std::move(heap_[parent]);
      pos = parent;
    } while (pos != 0 && earlier(tmp, heap_[(pos - 1) / 4]));
    heap_[pos] = std::move(tmp);
  }

  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace bfsim::sim
