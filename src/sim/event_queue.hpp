// bfsim -- a deterministic discrete-event queue.
//
// Events are ordered by (time, priority class, insertion sequence); the
// sequence number makes simultaneous events pop in insertion order, so a
// simulation run is a pure function of its inputs.
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace bfsim::sim {

/// Min-heap event queue with stable FIFO ordering among equal keys.
///
/// `Payload` is the event body; `priority_class` orders simultaneous
/// events of different kinds (lower pops first) -- e.g. job completions
/// before job arrivals at the same timestamp.
template <typename Payload>
class EventQueue {
 public:
  struct Event {
    Time time;
    int priority_class;
    std::uint64_t seq;
    Payload payload;
  };

  void push(Time time, int priority_class, Payload payload) {
    heap_.push(Event{time, priority_class, seq_++, std::move(payload)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] const Event& top() const {
    assert(!heap_.empty());
    return heap_.top();
  }

  Event pop() {
    assert(!heap_.empty());
    // priority_queue::top() is const; moving out right before pop() is
    // safe (the moved-from element is removed immediately) and lets the
    // queue carry move-only payloads.
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.priority_class != b.priority_class)
        return a.priority_class > b.priority_class;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace bfsim::sim
