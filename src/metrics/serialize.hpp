// bfsim -- exact (bit-for-bit) Metrics serialization for the sweep
// checkpoint journal.
//
// metrics_json (report.hpp) is the canonical *output* format; it prints
// derived statistics (stddev, quantiles) and cannot be parsed back into
// the accumulator state. The journal needs the inverse property: a cell
// replayed from disk must merge into the grid report byte-identically
// to the original run, down to the last bit of every pooled double. So
// this module persists the raw accumulator state (Welford count/mean/
// m2/sum/min/max, the full slowdown sample, the counters) with C99 hex
// floats ("%a"), which round-trip every finite double exactly and parse
// locale-independently with strtod.
#pragma once

#include <string>
#include <string_view>

#include "metrics/aggregate.hpp"

namespace bfsim::metrics {

/// One line of space-separated tokens, no newline. Stable across
/// platforms with IEEE-754 doubles.
[[nodiscard]] std::string encode_metrics(const Metrics& metrics);

/// Inverse of encode_metrics. Throws util::ParseError on malformed
/// input (wrong token count, unparseable number, trailing garbage).
[[nodiscard]] Metrics decode_metrics(std::string_view text);

}  // namespace bfsim::metrics
