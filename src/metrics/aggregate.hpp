// bfsim -- performance metrics over simulated schedules.
//
// The paper's metrics: average turnaround time and average *bounded
// slowdown*,
//     (wait + max(runtime, tau)) / max(runtime, tau),  tau = 10 s,
// the threshold limiting the influence of very short jobs. Both are
// reported overall and per job category (SN/SW/LN/LW), plus worst-case
// turnaround (Tables 4 and 7) and the well/poorly-estimated split of
// Section 5.2.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/simulation.hpp"
#include "core/types.hpp"
#include "sim/stats.hpp"
#include "workload/categories.hpp"

namespace bfsim::metrics {

/// Bounded slowdown of one finished job.
[[nodiscard]] double bounded_slowdown(const core::JobOutcome& outcome,
                                      sim::Time threshold = 10);

/// One population's worth of accumulated metrics.
struct MetricSet {
  sim::RunningStats slowdown;    ///< bounded slowdown
  sim::RunningStats turnaround;  ///< end - submit (s)
  sim::RunningStats wait;        ///< start - submit (s)

  [[nodiscard]] std::size_t count() const { return slowdown.count(); }
  void add(const core::JobOutcome& outcome, sim::Time threshold);
  /// Pool another population in (parallel-sweep reduction).
  void merge(const MetricSet& other);
};

struct MetricsOptions {
  sim::Time slowdown_threshold = 10;
  workload::CategoryThresholds categories{};
  /// Exclude the first/last jobs (by id order) from all statistics to
  /// avoid empty-machine warm-up and drain-out cool-down artifacts.
  std::size_t skip_head = 0;
  std::size_t skip_tail = 0;
};

/// All aggregates for one simulation run.
struct Metrics {
  MetricSet overall;
  std::array<MetricSet, 4> by_category;        ///< indexed by Category
  std::array<MetricSet, 2> by_estimate;        ///< indexed by EstimateQuality
  /// Full slowdown distribution (for tail percentiles; overall only).
  sim::Sample slowdowns;
  double utilization = 0.0;
  sim::Time makespan = 0;
  std::size_t killed_jobs = 0;
  /// Jobs withdrawn from the queue before starting (excluded from every
  /// other statistic; cancelled jobs have no wait or slowdown).
  std::size_t cancelled_jobs = 0;
  /// Jobs that started ahead of an earlier-arrived, still-waiting job --
  /// i.e. jobs that were backfilled past someone.
  std::size_t backfilled_jobs = 0;

  /// Fraction of (counted) jobs that leapfrogged an earlier arrival.
  [[nodiscard]] double backfill_rate() const {
    return overall.count() == 0
               ? 0.0
               : static_cast<double>(backfilled_jobs) /
                     static_cast<double>(overall.count());
  }

  [[nodiscard]] const MetricSet& category(workload::Category c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const MetricSet& estimate_class(
      workload::EstimateQuality q) const {
    return by_estimate[static_cast<std::size_t>(q)];
  }

  /// Pool another run's aggregates into this one: statistics merge as if
  /// both job populations had been accumulated together, utilization
  /// becomes the job-count-weighted mean, makespan the max, and the
  /// counters sum. Merging is deterministic but not commutative at the
  /// bit level (floating-point pooling is order-sensitive), so reducers
  /// that promise byte-identical output must merge in a fixed order --
  /// exp::Sweep merges in cell-declaration order.
  void merge(const Metrics& other);
};

/// Fold a run sequence left-to-right into one pooled Metrics.
[[nodiscard]] Metrics merged_metrics(const std::vector<Metrics>& runs);

/// Aggregate a simulation result.
///
/// `estimate_labels`, when given, overrides the per-job estimate-quality
/// classification (one label per job, same order). The paper's Fig. 4
/// needs this: it compares the *same* well/poor populations between an
/// accurate-estimate run (where every job trivially classifies as well
/// estimated) and an actual-estimate run of the identical jobs.
[[nodiscard]] Metrics compute_metrics(
    const core::SimulationResult& result, int procs,
    const MetricsOptions& options = {},
    const std::vector<workload::EstimateQuality>* estimate_labels = nullptr);

/// Estimate-quality labels of a trace (input to compute_metrics above).
[[nodiscard]] std::vector<workload::EstimateQuality> estimate_labels(
    const core::Trace& trace);

}  // namespace bfsim::metrics
