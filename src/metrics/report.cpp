#include "metrics/report.hpp"

#include <cstdio>

#include "util/format.hpp"

namespace bfsim::metrics {

std::string summary_line(const Metrics& metrics) {
  return "n=" + std::to_string(metrics.overall.count()) +
         " slowdown=" + util::format_fixed(metrics.overall.slowdown.mean()) +
         " turnaround=" +
         util::format_duration(
             static_cast<sim::Time>(metrics.overall.turnaround.mean())) +
         " util=" + util::format_percent(metrics.utilization, 1);
}

util::Table breakdown_table(const Metrics& metrics, const std::string& title) {
  util::Table table{title};
  table.set_header({"category", "jobs", "avg slowdown", "avg turnaround",
                    "avg wait", "max turnaround"});
  const auto row = [&](const std::string& label, const MetricSet& set) {
    if (set.count() == 0) {
      table.add_row({label, "0", "-", "-", "-", "-"});
      return;
    }
    table.add_row(
        {label, util::format_count(static_cast<std::int64_t>(set.count())),
         util::format_fixed(set.slowdown.mean()),
         util::format_duration(static_cast<sim::Time>(set.turnaround.mean())),
         util::format_duration(static_cast<sim::Time>(set.wait.mean())),
         util::format_duration(static_cast<sim::Time>(set.turnaround.max()))});
  };
  for (const auto cat : workload::kAllCategories)
    row(workload::code(cat), metrics.category(cat));
  table.add_rule();
  row("all", metrics.overall);
  return table;
}

std::string tail_summary(const Metrics& metrics) {
  if (metrics.slowdowns.count() == 0) return "no jobs";
  return "p50=" + util::format_fixed(metrics.slowdowns.quantile(0.50)) +
         " p95=" + util::format_fixed(metrics.slowdowns.quantile(0.95)) +
         " p99=" + util::format_fixed(metrics.slowdowns.quantile(0.99)) +
         " max=" + util::format_fixed(metrics.slowdowns.max()) +
         " backfilled=" + util::format_percent(metrics.backfill_rate(), 1);
}

double relative_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a;
}

namespace {

/// %.17g round-trips every finite double exactly and never consults the
/// locale, so equal bits produce equal text and vice versa.
std::string exact(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void append_stats(std::string& out, const char* name,
                  const sim::RunningStats& stats) {
  out += '"';
  out += name;
  out += "\":{\"count\":" + std::to_string(stats.count()) +
         ",\"mean\":" + exact(stats.mean()) +
         ",\"stddev\":" + exact(stats.stddev()) +
         ",\"min\":" + exact(stats.min()) + ",\"max\":" + exact(stats.max()) +
         ",\"sum\":" + exact(stats.sum()) + "}";
}

void append_set(std::string& out, const std::string& name,
                const MetricSet& set) {
  out += '"';
  out += name;
  out += "\":{";
  append_stats(out, "slowdown", set.slowdown);
  out += ',';
  append_stats(out, "turnaround", set.turnaround);
  out += ',';
  append_stats(out, "wait", set.wait);
  out += '}';
}

}  // namespace

std::string metrics_json(const Metrics& metrics) {
  std::string out = "{";
  append_set(out, "overall", metrics.overall);
  for (const auto cat : workload::kAllCategories) {
    out += ',';
    append_set(out, workload::code(cat), metrics.category(cat));
  }
  out += ',';
  append_set(out, "well", metrics.estimate_class(workload::EstimateQuality::Well));
  out += ',';
  append_set(out, "poor", metrics.estimate_class(workload::EstimateQuality::Poor));
  out += ",\"slowdown_tail\":{\"count\":" +
         std::to_string(metrics.slowdowns.count());
  if (metrics.slowdowns.count() > 0) {
    out += ",\"p50\":" + exact(metrics.slowdowns.quantile(0.50)) +
           ",\"p95\":" + exact(metrics.slowdowns.quantile(0.95)) +
           ",\"p99\":" + exact(metrics.slowdowns.quantile(0.99)) +
           ",\"max\":" + exact(metrics.slowdowns.max());
  }
  out += "},\"utilization\":" + exact(metrics.utilization) +
         ",\"makespan\":" + std::to_string(metrics.makespan) +
         ",\"killed\":" + std::to_string(metrics.killed_jobs) +
         ",\"cancelled\":" + std::to_string(metrics.cancelled_jobs) +
         ",\"backfilled\":" + std::to_string(metrics.backfilled_jobs) + "}";
  return out;
}

}  // namespace bfsim::metrics
