#include "metrics/report.hpp"

#include "util/format.hpp"

namespace bfsim::metrics {

std::string summary_line(const Metrics& metrics) {
  return "n=" + std::to_string(metrics.overall.count()) +
         " slowdown=" + util::format_fixed(metrics.overall.slowdown.mean()) +
         " turnaround=" +
         util::format_duration(
             static_cast<sim::Time>(metrics.overall.turnaround.mean())) +
         " util=" + util::format_percent(metrics.utilization, 1);
}

util::Table breakdown_table(const Metrics& metrics, const std::string& title) {
  util::Table table{title};
  table.set_header({"category", "jobs", "avg slowdown", "avg turnaround",
                    "avg wait", "max turnaround"});
  const auto row = [&](const std::string& label, const MetricSet& set) {
    if (set.count() == 0) {
      table.add_row({label, "0", "-", "-", "-", "-"});
      return;
    }
    table.add_row(
        {label, util::format_count(static_cast<std::int64_t>(set.count())),
         util::format_fixed(set.slowdown.mean()),
         util::format_duration(static_cast<sim::Time>(set.turnaround.mean())),
         util::format_duration(static_cast<sim::Time>(set.wait.mean())),
         util::format_duration(static_cast<sim::Time>(set.turnaround.max()))});
  };
  for (const auto cat : workload::kAllCategories)
    row(workload::code(cat), metrics.category(cat));
  table.add_rule();
  row("all", metrics.overall);
  return table;
}

std::string tail_summary(const Metrics& metrics) {
  if (metrics.slowdowns.count() == 0) return "no jobs";
  return "p50=" + util::format_fixed(metrics.slowdowns.quantile(0.50)) +
         " p95=" + util::format_fixed(metrics.slowdowns.quantile(0.95)) +
         " p99=" + util::format_fixed(metrics.slowdowns.quantile(0.99)) +
         " max=" + util::format_fixed(metrics.slowdowns.max()) +
         " backfilled=" + util::format_percent(metrics.backfill_rate(), 1);
}

double relative_change(double a, double b) {
  if (a == 0.0) return 0.0;
  return (b - a) / a;
}

}  // namespace bfsim::metrics
