#include "metrics/aggregate.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/validator.hpp"

namespace bfsim::metrics {

double bounded_slowdown(const core::JobOutcome& outcome, sim::Time threshold) {
  const auto bound = static_cast<double>(
      std::max(outcome.effective_runtime(), threshold));
  const auto wait = static_cast<double>(outcome.wait());
  return (wait + bound) / bound;
}

void MetricSet::add(const core::JobOutcome& outcome, sim::Time threshold) {
  slowdown.add(bounded_slowdown(outcome, threshold));
  turnaround.add(static_cast<double>(outcome.turnaround()));
  wait.add(static_cast<double>(outcome.wait()));
}

void MetricSet::merge(const MetricSet& other) {
  slowdown.merge(other.slowdown);
  turnaround.merge(other.turnaround);
  wait.merge(other.wait);
}

void Metrics::merge(const Metrics& other) {
  // Weighted before the counts change underneath us.
  const auto w_self = static_cast<double>(overall.count());
  const auto w_other = static_cast<double>(other.overall.count());
  if (w_self + w_other > 0.0)
    utilization = (utilization * w_self + other.utilization * w_other) /
                  (w_self + w_other);
  overall.merge(other.overall);
  for (std::size_t c = 0; c < by_category.size(); ++c)
    by_category[c].merge(other.by_category[c]);
  for (std::size_t q = 0; q < by_estimate.size(); ++q)
    by_estimate[q].merge(other.by_estimate[q]);
  for (const double v : other.slowdowns.values()) slowdowns.add(v);
  makespan = std::max(makespan, other.makespan);
  killed_jobs += other.killed_jobs;
  cancelled_jobs += other.cancelled_jobs;
  backfilled_jobs += other.backfilled_jobs;
}

Metrics merged_metrics(const std::vector<Metrics>& runs) {
  Metrics merged;
  for (const Metrics& run : runs) merged.merge(run);
  return merged;
}

Metrics compute_metrics(
    const core::SimulationResult& result, int procs,
    const MetricsOptions& options,
    const std::vector<workload::EstimateQuality>* estimate_labels) {
  if (estimate_labels && estimate_labels->size() != result.outcomes.size())
    throw std::invalid_argument(
        "compute_metrics: label count does not match outcome count");

  Metrics m;
  m.utilization = core::utilization(result.outcomes, procs);
  m.makespan = result.makespan;

  const std::size_t n = result.outcomes.size();
  const std::size_t first = std::min(options.skip_head, n);
  const std::size_t last = n - std::min(options.skip_tail, n - first);
  m.slowdowns.reserve(last - first);
  // Outcomes are in submit order (ids == indices); a job was backfilled
  // iff some earlier arrival starts after it.
  sim::Time latest_earlier_start = std::numeric_limits<sim::Time>::min();
  for (std::size_t i = 0; i < last; ++i) {
    const core::JobOutcome& o = result.outcomes[i];
    // Cancelled jobs never ran: start/end are kNoTime and every accessor
    // (wait/turnaround/slowdown) would assert in debug builds and return
    // garbage in release ones. They are counted, never aggregated.
    if (o.cancelled) {
      if (i >= first) ++m.cancelled_jobs;
      continue;
    }
    if (o.start == sim::kNoTime) continue;  // defensive; driver forbids it
    const bool leapfrogged = o.start < latest_earlier_start;
    latest_earlier_start = std::max(latest_earlier_start, o.start);
    if (i < first) continue;  // warm-up window: context only
    if (leapfrogged) ++m.backfilled_jobs;
    if (o.killed) ++m.killed_jobs;
    m.overall.add(o, options.slowdown_threshold);
    m.slowdowns.add(bounded_slowdown(o, options.slowdown_threshold));
    const auto cat = workload::classify(o.job, options.categories);
    m.by_category[static_cast<std::size_t>(cat)].add(
        o, options.slowdown_threshold);
    const auto quality = estimate_labels
                             ? (*estimate_labels)[i]
                             : workload::classify_estimate(o.job);
    m.by_estimate[static_cast<std::size_t>(quality)].add(
        o, options.slowdown_threshold);
  }
  return m;
}

std::vector<workload::EstimateQuality> estimate_labels(
    const core::Trace& trace) {
  std::vector<workload::EstimateQuality> labels;
  labels.reserve(trace.size());
  for (const core::Job& job : trace)
    labels.push_back(workload::classify_estimate(job));
  return labels;
}

}  // namespace bfsim::metrics
