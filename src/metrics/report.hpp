// bfsim -- rendering Metrics into report tables.
#pragma once

#include <string>
#include <vector>

#include "metrics/aggregate.hpp"
#include "util/table.hpp"

namespace bfsim::metrics {

/// One-line summary: "n=9800 slowdown=3.42 turnaround=04:11:02 util=81.3%".
[[nodiscard]] std::string summary_line(const Metrics& metrics);

/// Full per-category breakdown table for one run.
[[nodiscard]] util::Table breakdown_table(const Metrics& metrics,
                                          const std::string& title);

/// Tail view of one run: median / p95 / p99 / max slowdown plus the
/// backfill rate ("p50=1.2 p95=14.0 p99=88.3 max=412.0 backfilled=31%").
[[nodiscard]] std::string tail_summary(const Metrics& metrics);

/// Relative change of `b` vs. baseline `a` ((b-a)/a); 0 when a == 0.
[[nodiscard]] double relative_change(double a, double b);

/// Canonical machine-readable serialization of a Metrics value: fixed
/// key order, no locale dependence, doubles printed with %.17g (exact
/// round-trip). Two runs aggregate to byte-identical Metrics iff their
/// metrics_json strings compare equal -- the sweep determinism tests
/// and the bench --json mode are built on this.
[[nodiscard]] std::string metrics_json(const Metrics& metrics);

}  // namespace bfsim::metrics
