#include "metrics/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/error.hpp"

namespace bfsim::metrics {

namespace {

/// "%a" prints the exact binary value of a double (hex mantissa +
/// binary exponent); strtod parses it back to identical bits. Infinity
/// and NaN render as "inf"/"nan", which strtod also accepts.
void append_double(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  out += buffer;
  out += ' ';
}

void append_size(std::string& out, std::size_t value) {
  out += std::to_string(value);
  out += ' ';
}

void append_stats(std::string& out, const sim::RunningStats& stats) {
  const sim::RunningStats::State s = stats.state();
  append_size(out, s.count);
  append_double(out, s.mean);
  append_double(out, s.m2);
  append_double(out, s.sum);
  append_double(out, s.min);
  append_double(out, s.max);
}

void append_set(std::string& out, const MetricSet& set) {
  append_stats(out, set.slowdown);
  append_stats(out, set.turnaround);
  append_stats(out, set.wait);
}

/// Token cursor over the encoded text; every take_* throws ParseError
/// with a positional diagnostic on malformed input.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  std::string_view next_token() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
    if (pos_ >= text_.size())
      throw util::ParseError("metrics decode: unexpected end of input");
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ') ++pos_;
    return text_.substr(start, pos_ - start);
  }

  std::size_t take_size() {
    const std::string token{next_token()};
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size())
      throw util::ParseError("metrics decode: bad count '" + token + "'");
    return static_cast<std::size_t>(value);
  }

  double take_double() {
    const std::string token{next_token()};
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size())
      throw util::ParseError("metrics decode: bad number '" + token + "'");
    return value;
  }

  void expect_end() {
    while (pos_ < text_.size() && text_[pos_] == ' ') ++pos_;
    if (pos_ != text_.size())
      throw util::ParseError("metrics decode: trailing garbage");
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

sim::RunningStats take_stats(Cursor& cursor) {
  sim::RunningStats::State s;
  s.count = cursor.take_size();
  s.mean = cursor.take_double();
  s.m2 = cursor.take_double();
  s.sum = cursor.take_double();
  s.min = cursor.take_double();
  s.max = cursor.take_double();
  return sim::RunningStats::from_state(s);
}

MetricSet take_set(Cursor& cursor) {
  MetricSet set;
  set.slowdown = take_stats(cursor);
  set.turnaround = take_stats(cursor);
  set.wait = take_stats(cursor);
  return set;
}

}  // namespace

std::string encode_metrics(const Metrics& metrics) {
  std::string out;
  out.reserve(512 + 24 * metrics.slowdowns.count());
  append_set(out, metrics.overall);
  for (const MetricSet& set : metrics.by_category) append_set(out, set);
  for (const MetricSet& set : metrics.by_estimate) append_set(out, set);
  append_double(out, metrics.utilization);
  out += std::to_string(metrics.makespan);
  out += ' ';
  append_size(out, metrics.killed_jobs);
  append_size(out, metrics.cancelled_jobs);
  append_size(out, metrics.backfilled_jobs);
  // The slowdown sample is persisted in insertion order so replayed
  // metrics are indistinguishable from live ones even to code that
  // inspects values() directly.
  append_size(out, metrics.slowdowns.count());
  for (const double v : metrics.slowdowns.values()) append_double(out, v);
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

Metrics decode_metrics(std::string_view text) {
  Cursor cursor{text};
  Metrics metrics;
  metrics.overall = take_set(cursor);
  for (MetricSet& set : metrics.by_category) set = take_set(cursor);
  for (MetricSet& set : metrics.by_estimate) set = take_set(cursor);
  metrics.utilization = cursor.take_double();
  {
    const std::string token{cursor.next_token()};
    char* end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size())
      throw util::ParseError("metrics decode: bad makespan '" + token + "'");
    metrics.makespan = static_cast<sim::Time>(value);
  }
  metrics.killed_jobs = cursor.take_size();
  metrics.cancelled_jobs = cursor.take_size();
  metrics.backfilled_jobs = cursor.take_size();
  const std::size_t samples = cursor.take_size();
  metrics.slowdowns.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i)
    metrics.slowdowns.add(cursor.take_double());
  cursor.expect_end();
  return metrics;
}

}  // namespace bfsim::metrics
