// bfsim -- the rigid-job model.
//
// Parallel job scheduling is viewed as packing rectangles into a 2D chart
// (processors x time). A Job is one rectangle: `procs` wide, `runtime`
// tall, arriving at `submit`; schedulers only ever see `estimate`, the
// user-supplied wall-clock limit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace bfsim::workload {

/// Dense job identifier; equals the job's index in its trace.
using JobId = std::uint32_t;

inline constexpr JobId kInvalidJob = static_cast<JobId>(-1);

/// One rigid parallel job.
struct Job {
  JobId id = kInvalidJob;
  sim::Time submit = 0;    ///< arrival time (seconds from trace start)
  sim::Time runtime = 1;   ///< actual runtime; the scheduler never sees this
  sim::Time estimate = 1;  ///< user-estimated runtime (wall-clock limit)
  int procs = 1;           ///< processors requested (held exclusively)
  /// Burst-buffer demand in GB, held exclusively for the job's whole
  /// residence like processors (Kopanski-Rzadca model). 0 = the job does
  /// not touch the buffer; procs-only traces leave this at 0 everywhere.
  int bb = 0;
  /// If set (>= 0), the user withdraws the job at this time unless it
  /// has already started -- queued-job cancellation, a routine event in
  /// the archive traces. kNoTime = never cancelled.
  sim::Time cancel_at = sim::kNoTime;

  /// Work area of the rectangle, in processor-seconds of real usage.
  [[nodiscard]] std::int64_t work() const {
    return static_cast<std::int64_t>(runtime) * procs;
  }

  /// Area the scheduler must budget for (estimate-based).
  [[nodiscard]] std::int64_t estimated_work() const {
    return static_cast<std::int64_t>(estimate) * procs;
  }

  friend bool operator==(const Job&, const Job&) = default;
};

using Trace = std::vector<Job>;

}  // namespace bfsim::workload
