#include "workload/estimates.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/format.hpp"

namespace bfsim::workload {

sim::Time ExactEstimate::estimate_for(const Job& job, sim::Rng&) const {
  return job.runtime;
}

SystematicOverestimate::SystematicOverestimate(double factor)
    : factor_(factor) {
  if (!(factor >= 1.0))
    throw std::invalid_argument(
        "SystematicOverestimate: factor must be >= 1");
}

sim::Time SystematicOverestimate::estimate_for(const Job& job,
                                               sim::Rng&) const {
  const double est = static_cast<double>(job.runtime) * factor_;
  return static_cast<sim::Time>(std::llround(est));
}

std::string SystematicOverestimate::name() const {
  return "overestimate-R" +
         util::format_fixed(factor_, factor_ == std::floor(factor_) ? 0 : 1);
}

ActualEstimateModel::ActualEstimateModel(ActualEstimateParams params)
    : params_(std::move(params)) {
  if (params_.exact_fraction < 0 || params_.mild_fraction < 0 ||
      params_.exact_fraction + params_.mild_fraction > 1.0)
    throw std::invalid_argument(
        "ActualEstimateModel: fractions must be >= 0 and sum to <= 1");
  if (params_.limits.empty())
    throw std::invalid_argument("ActualEstimateModel: limits must be given");
  for (std::size_t i = 0; i < params_.limits.size(); ++i) {
    if (params_.limits[i] < 1 ||
        (i > 0 && params_.limits[i] <= params_.limits[i - 1]))
      throw std::invalid_argument(
          "ActualEstimateModel: limits must be positive and ascending");
  }
  if (params_.round_to < 1)
    throw std::invalid_argument("ActualEstimateModel: round_to must be >= 1");
}

sim::Time ActualEstimateModel::estimate_for(const Job& job,
                                            sim::Rng& rng) const {
  const double u = rng.next_double();
  if (u < params_.exact_fraction) return job.runtime;
  if (u < params_.exact_fraction + params_.mild_fraction) {
    // Mild overestimate, rounded *up* to the user's granularity --
    // rounding down could turn it into an underestimate.
    const double est = static_cast<double>(job.runtime) * rng.uniform(1.0, 2.0);
    const double granularity = static_cast<double>(params_.round_to);
    return static_cast<sim::Time>(std::ceil(est / granularity) * granularity);
  }
  // Gross tail: the user requests a round queue limit that covers the
  // runtime, picked uniformly among the qualifying limits. A 2-minute
  // job may well request 18 hours -- exactly the estimate structure of
  // the archive traces.
  const auto first_ok = std::lower_bound(params_.limits.begin(),
                                         params_.limits.end(), job.runtime);
  if (first_ok == params_.limits.end()) return job.runtime;  // beyond limits
  const auto count =
      static_cast<std::int64_t>(params_.limits.end() - first_ok);
  return *(first_ok + rng.uniform_int(0, count - 1));
}

void apply_estimates(Trace& trace, const EstimateModel& model, sim::Rng& rng) {
  for (Job& job : trace) {
    const sim::Time est = model.estimate_for(job, rng);
    job.estimate = std::max<sim::Time>({est, job.runtime, 1});
  }
}

}  // namespace bfsim::workload
