#include "workload/filters.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "workload/transforms.hpp"

namespace bfsim::workload {

std::size_t drop_failed_records(SwfFile& file) {
  const std::size_t before = file.records.size();
  std::erase_if(file.records, [](const SwfRecord& r) {
    return r.status == 0 || r.status == 5;
  });
  return before - file.records.size();
}

std::size_t remove_flurries(SwfFile& file, sim::Time window,
                            std::size_t max_burst) {
  if (window < 1 || max_burst < 1)
    throw std::invalid_argument(
        "remove_flurries: window and max_burst must be >= 1");
  // Per-user burst state: last submit time and jobs in the current burst.
  struct Burst {
    std::int64_t last_submit = 0;
    std::size_t size = 0;
  };
  std::map<std::int64_t, Burst> bursts;
  const std::size_t before = file.records.size();
  // Records are processed in submit order; the archive files are sorted,
  // but sort defensively (stable to keep equal-time records in place).
  std::stable_sort(file.records.begin(), file.records.end(),
                   [](const SwfRecord& a, const SwfRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  std::erase_if(file.records, [&](const SwfRecord& r) {
    if (r.user_id < 0) return false;
    Burst& burst = bursts[r.user_id];
    if (burst.size == 0 || r.submit_time - burst.last_submit >= window) {
      burst.size = 1;  // a new burst begins
      burst.last_submit = r.submit_time;
      return false;
    }
    burst.last_submit = r.submit_time;
    if (burst.size < max_burst) {
      ++burst.size;
      return false;
    }
    return true;  // flurry overflow: drop
  });
  return before - file.records.size();
}

std::size_t clamp_widths(Trace& trace, int max_procs) {
  if (max_procs < 1)
    throw std::invalid_argument("clamp_widths: max_procs must be >= 1");
  std::size_t changed = 0;
  for (Job& job : trace) {
    const int clamped = std::clamp(job.procs, 1, max_procs);
    if (clamped != job.procs) {
      job.procs = clamped;
      ++changed;
    }
  }
  return changed;
}

std::size_t cap_estimates(Trace& trace, sim::Time max_estimate) {
  if (max_estimate < 1)
    throw std::invalid_argument("cap_estimates: max_estimate must be >= 1");
  std::size_t changed = 0;
  for (Job& job : trace) {
    const sim::Time capped =
        std::max(std::min(job.estimate, max_estimate), job.runtime);
    if (capped != job.estimate) {
      job.estimate = capped;
      ++changed;
    }
  }
  return changed;
}

std::size_t drop_malformed(Trace& trace) {
  const std::size_t before = trace.size();
  std::erase_if(trace, [](const Job& job) {
    return job.runtime < 1 || job.estimate < 1 || job.procs < 1;
  });
  finalize(trace);
  return before - trace.size();
}

}  // namespace bfsim::workload
