// bfsim -- job categorization along the paper's two axes (Table 1).
//
// The paper's central methodological point: overall averages hide
// consistent trends that appear once jobs are grouped by length
// (Short <= 1 h < Long) and width (Narrow <= 8 procs < Wide), and by the
// accuracy of the user's runtime estimate (well: est <= 2x runtime).
#pragma once

#include <array>
#include <string>

#include "workload/job.hpp"

namespace bfsim::workload {

/// The four length x width categories of Table 1.
enum class Category : int {
  ShortNarrow = 0,
  ShortWide = 1,
  LongNarrow = 2,
  LongWide = 3,
};

inline constexpr std::array<Category, 4> kAllCategories{
    Category::ShortNarrow, Category::ShortWide, Category::LongNarrow,
    Category::LongWide};

/// Estimate-accuracy classes of Section 5.2.
enum class EstimateQuality : int {
  Well = 0,  ///< estimate <= 2 x runtime
  Poor = 1,  ///< estimate  > 2 x runtime
};

/// Classification thresholds (Table 1 defaults).
struct CategoryThresholds {
  sim::Time long_runtime = 3600;  ///< runtime >  this => Long
  int wide_procs = 8;             ///< procs   >  this => Wide

  friend bool operator==(const CategoryThresholds&,
                         const CategoryThresholds&) = default;
};

[[nodiscard]] Category classify(const Job& job,
                                const CategoryThresholds& t = {});

/// Classification by the *actual* runtime vs. the user estimate.
[[nodiscard]] EstimateQuality classify_estimate(const Job& job);

[[nodiscard]] std::string to_string(Category c);
[[nodiscard]] std::string to_string(EstimateQuality q);

/// Short two-letter code used in tables ("SN", "SW", "LN", "LW").
[[nodiscard]] std::string code(Category c);

/// Fraction of trace jobs in each category, indexed by Category
/// (Tables 2 and 3). Returns all-zero for an empty trace.
[[nodiscard]] std::array<double, 4> category_mix(
    const Trace& trace, const CategoryThresholds& t = {});

/// Job counts per category, indexed by Category.
[[nodiscard]] std::array<std::size_t, 4> category_counts(
    const Trace& trace, const CategoryThresholds& t = {});

}  // namespace bfsim::workload
