#include "workload/swf.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"
#include "util/log.hpp"

namespace bfsim::workload {

namespace {

/// Internal parse failure carrying its quarantine-reason key, so the
/// lenient path can count per reason while the strict path rethrows.
class LineParseError : public util::ParseError {
 public:
  LineParseError(std::string reason, const std::string& what)
      : util::ParseError(what), reason_(std::move(reason)) {}

  [[nodiscard]] const std::string& reason() const { return reason_; }

 private:
  std::string reason_;
};

/// Split a line into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::int64_t parse_int(std::string_view token, std::size_t line_no) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec == std::errc{} && ptr == token.data() + token.size()) return value;
  // SWF files in the wild sometimes carry "-1.0" or scientific notation in
  // integer columns; accept anything that parses as a double.
  try {
    return static_cast<std::int64_t>(std::stod(std::string(token)));
  } catch (const std::exception&) {
    throw LineParseError("bad-integer-field",
                         "swf: line " + std::to_string(line_no) +
                             ": bad integer field '" + std::string(token) +
                             "'");
  }
}

double parse_double(std::string_view token, std::size_t line_no) {
  try {
    return std::stod(std::string(token));
  } catch (const std::exception&) {
    throw LineParseError("bad-numeric-field",
                         "swf: line " + std::to_string(line_no) +
                             ": bad numeric field '" + std::string(token) +
                             "'");
  }
}

/// Parse "; Key: value" header lines into the typed header fields.
void absorb_header_line(SwfHeader& header, const std::string& line) {
  header.raw_lines.push_back(line);
  std::string body = line.substr(1);  // strip ';'
  const auto colon = body.find(':');
  if (colon == std::string::npos) return;
  std::string key = body.substr(0, colon);
  std::string value = body.substr(colon + 1);
  const auto trim = [](std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    const auto e = s.find_last_not_of(" \t\r");
    s = b == std::string::npos ? "" : s.substr(b, e - b + 1);
  };
  trim(key);
  trim(value);
  const auto to_int = [&]() -> std::int64_t {
    try {
      return std::stoll(value);
    } catch (const std::exception&) {
      return -1;
    }
  };
  if (key == "Computer") header.computer = value;
  else if (key == "Installation") header.installation = value;
  else if (key == "MaxProcs") header.max_procs = to_int();
  else if (key == "MaxJobs") header.max_jobs = to_int();
  else if (key == "MaxRuntime") header.max_runtime = to_int();
}

/// Parse one data line -- 18 classic fields, optionally followed by the
/// burst-buffer extension column -- throwing LineParseError on malformed
/// or sentinel-valued content (the caller decides strict/lenient policy).
SwfRecord parse_record(const std::string& line, std::size_t line_no) {
  const auto tokens = tokenize(line);
  if (tokens.size() != 18 && tokens.size() != 19)
    throw LineParseError("bad-field-count",
                         "swf: line " + std::to_string(line_no) +
                             ": expected 18 or 19 fields, got " +
                             std::to_string(tokens.size()));
  SwfRecord r;
  r.job_number = parse_int(tokens[0], line_no);
  r.submit_time = parse_int(tokens[1], line_no);
  r.wait_time = parse_int(tokens[2], line_no);
  r.run_time = parse_int(tokens[3], line_no);
  r.used_procs = parse_int(tokens[4], line_no);
  r.avg_cpu_time = parse_double(tokens[5], line_no);
  r.used_memory = parse_double(tokens[6], line_no);
  r.requested_procs = parse_int(tokens[7], line_no);
  r.requested_time = parse_int(tokens[8], line_no);
  r.requested_memory = parse_double(tokens[9], line_no);
  r.status = parse_int(tokens[10], line_no);
  r.user_id = parse_int(tokens[11], line_no);
  r.group_id = parse_int(tokens[12], line_no);
  r.app_id = parse_int(tokens[13], line_no);
  r.queue_id = parse_int(tokens[14], line_no);
  r.partition_id = parse_int(tokens[15], line_no);
  r.preceding_job = parse_int(tokens[16], line_no);
  r.think_time = parse_int(tokens[17], line_no);
  if (tokens.size() == 19) {
    r.burst_buffer = parse_int(tokens[18], line_no);
    // -1 is the spec-wide "unknown" sentinel; anything below it is not a
    // sentinel but garbage (e.g. a sign-flipped demand).
    if (r.burst_buffer < -1)
      throw LineParseError("negative-burst-buffer",
                           "swf: line " + std::to_string(line_no) +
                               ": negative burst-buffer demand " +
                               std::to_string(r.burst_buffer));
  }
  return r;
}

/// Sentinel screens applied only in lenient mode: records a simulation
/// could never use, which the strict pipeline silently drops much later
/// (or not at all). Valid cancelled-before-start records (run_time -1,
/// status 5) pass -- they are real SWF and swf_to_jobs handles them.
const char* sentinel_reason(const SwfRecord& r) {
  if (r.requested_procs <= 0 && r.used_procs <= 0) return "no-processors";
  if (r.submit_time < 0) return "negative-submit";
  return nullptr;
}

}  // namespace

SwfFile read_swf(std::istream& in) { return read_swf(in, {}, nullptr); }

SwfFile read_swf(std::istream& in, const SwfParseOptions& options,
                 SwfParseReport* report) {
  SwfFile file;
  SwfParseReport local;
  SwfParseReport& out = report != nullptr ? *report : local;
  out = {};
  const auto quarantine = [&](const std::string& reason,
                              const std::string& what) {
    ++out.quarantined;
    ++out.reasons[reason];
    util::log_limited(util::LogLevel::Warn, "swf-quarantine",
                      what + " (quarantined: " + reason + ")");
  };
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == ';') {
      absorb_header_line(file.header, line);
      continue;
    }
    SwfRecord r;
    try {
      r = parse_record(line, line_no);
    } catch (const LineParseError& error) {
      if (!options.lenient) throw;
      quarantine(error.reason(), error.what());
      continue;
    }
    // The time bound is checked in BOTH modes (unlike the sentinel
    // screens below): an absurd runtime/estimate is corruption that
    // strict-mode reproduction pipelines must refuse, not a sentinel
    // that downstream conversion knows how to interpret.
    if (options.max_time > 0 &&
        (r.run_time > options.max_time ||
         r.requested_time > options.max_time)) {
      const std::string what =
          "swf: line " + std::to_string(line_no) +
          ": run/requested time exceeds max_time bound of " +
          std::to_string(options.max_time) + "s";
      if (!options.lenient) throw util::ParseError(what);
      quarantine("excessive-time", what);
      continue;
    }
    // Same corruption argument as the time bound, on the second axis:
    // an absurd buffer demand would pin every profile window, so it is
    // refused in both modes rather than screened as a sentinel.
    if (options.max_burst_buffer > 0 &&
        r.burst_buffer > options.max_burst_buffer) {
      const std::string what =
          "swf: line " + std::to_string(line_no) +
          ": burst-buffer demand exceeds max_burst_buffer bound of " +
          std::to_string(options.max_burst_buffer) + " GB";
      if (!options.lenient) throw util::ParseError(what);
      quarantine("excessive-burst-buffer", what);
      continue;
    }
    if (options.lenient) {
      if (const char* reason = sentinel_reason(r); reason != nullptr) {
        quarantine(reason, "swf: line " + std::to_string(line_no) +
                               ": sentinel-valued record");
        continue;
      }
    }
    // Status accounting happens in every mode: the tallies measure the
    // trace's organic failure/cancellation rate even when the policy
    // keeps the records.
    if (r.status == 1) ++out.status_completed;
    else if (r.status == 0) ++out.status_failed;
    else if (r.status == 5) ++out.status_cancelled;
    if (options.status == SwfStatusMode::kQuarantine &&
        (r.status == 0 || r.status == 5)) {
      // Policy filtering, not corruption: quarantine in strict mode too
      // rather than throwing.
      quarantine(r.status == 0 ? "status-failed" : "status-cancelled",
                 "swf: line " + std::to_string(line_no) +
                     (r.status == 0 ? ": failed-status record"
                                    : ": cancelled-status record"));
      continue;
    }
    ++out.parsed;
    file.records.push_back(r);
  }
  return file;
}

SwfFile read_swf_file(const std::string& path) {
  return read_swf_file(path, {}, nullptr);
}

SwfFile read_swf_file(const std::string& path, const SwfParseOptions& options,
                      SwfParseReport* report) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("swf: cannot open '" + path + "'");
  return read_swf(in, options, report);
}

void write_swf(std::ostream& out, const SwfFile& file) {
  if (file.header.raw_lines.empty()) {
    if (!file.header.computer.empty())
      out << "; Computer: " << file.header.computer << '\n';
    if (file.header.max_procs > 0)
      out << "; MaxProcs: " << file.header.max_procs << '\n';
    if (file.header.max_jobs > 0)
      out << "; MaxJobs: " << file.header.max_jobs << '\n';
  } else {
    for (const std::string& raw : file.header.raw_lines) out << raw << '\n';
  }
  for (const SwfRecord& r : file.records) {
    out << r.job_number << ' ' << r.submit_time << ' ' << r.wait_time << ' '
        << r.run_time << ' ' << r.used_procs << ' ' << r.avg_cpu_time << ' '
        << r.used_memory << ' ' << r.requested_procs << ' '
        << r.requested_time << ' ' << r.requested_memory << ' ' << r.status
        << ' ' << r.user_id << ' ' << r.group_id << ' ' << r.app_id << ' '
        << r.queue_id << ' ' << r.partition_id << ' ' << r.preceding_job
        << ' ' << r.think_time;
    // The extension column appears only when set, so classic 18-column
    // files round-trip byte-exactly.
    if (r.burst_buffer >= 0) out << ' ' << r.burst_buffer;
    out << '\n';
  }
}

Trace swf_to_jobs(const SwfFile& file, const SwfToJobsOptions& options) {
  Trace jobs;
  jobs.reserve(file.records.size());
  sim::Time first_submit = std::numeric_limits<sim::Time>::max();
  for (const SwfRecord& r : file.records) {
    const std::int64_t procs =
        r.requested_procs > 0 ? r.requested_procs : r.used_procs;
    if (procs <= 0) continue;
    if (options.drop_unstarted && r.run_time <= 0) continue;
    Job job;
    job.id = static_cast<JobId>(jobs.size());
    job.submit = std::max<std::int64_t>(r.submit_time, 0);
    job.runtime = std::max<std::int64_t>(r.run_time, 1);
    job.procs = static_cast<int>(procs);
    if (r.requested_time > 0) job.estimate = r.requested_time;
    else if (options.estimate_fallback_to_runtime) job.estimate = job.runtime;
    else continue;
    // Extension column 19: the -1 "unknown" sentinel means no demand.
    if (r.burst_buffer > 0) job.bb = static_cast<int>(r.burst_buffer);
    // Schedulers kill jobs at their wall-clock limit; an archive runtime
    // above the request reflects logging slop, so align the two.
    job.estimate = std::max(job.estimate, job.runtime);
    first_submit = std::min(first_submit, job.submit);
    jobs.push_back(job);
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (options.rebase_time && !jobs.empty())
      jobs[i].submit = sim::saturating_sub(jobs[i].submit, first_submit);
    jobs[i].id = static_cast<JobId>(i);
  }
  return jobs;
}

SwfFile jobs_to_swf(const Trace& jobs, int machine_procs,
                    const std::string& computer) {
  SwfFile file;
  file.header.computer = computer;
  file.header.max_procs = machine_procs;
  file.header.max_jobs = static_cast<std::int64_t>(jobs.size());
  file.records.reserve(jobs.size());
  for (const Job& job : jobs) {
    SwfRecord r;
    r.job_number = static_cast<std::int64_t>(job.id) + 1;
    r.submit_time = job.submit;
    r.run_time = job.runtime;
    r.used_procs = job.procs;
    r.requested_procs = job.procs;
    r.requested_time = job.estimate;
    r.status = 1;
    if (job.bb > 0) r.burst_buffer = job.bb;
    file.records.push_back(r);
  }
  return file;
}

}  // namespace bfsim::workload
