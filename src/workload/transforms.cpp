#include "workload/transforms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bfsim::workload {

void finalize(Trace& trace) {
  std::stable_sort(
      trace.begin(), trace.end(),
      [](const Job& a, const Job& b) { return a.submit < b.submit; });
  for (std::size_t i = 0; i < trace.size(); ++i)
    trace[i].id = static_cast<JobId>(i);
}

void rebase(Trace& trace) {
  if (trace.empty()) return;
  sim::Time first = trace.front().submit;
  for (const Job& job : trace) first = std::min(first, job.submit);
  for (Job& job : trace) job.submit = sim::saturating_sub(job.submit, first);
}

void scale_interarrival(Trace& trace, double factor) {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_interarrival: factor must be > 0");
  if (trace.size() < 2) return;
  finalize(trace);
  const sim::Time base = trace.front().submit;
  double carried = static_cast<double>(base);
  sim::Time prev_original = base;
  for (Job& job : trace) {
    const auto gap =
        static_cast<double>(sim::saturating_sub(job.submit, prev_original));
    prev_original = job.submit;
    carried += gap * factor;
    job.submit = static_cast<sim::Time>(std::llround(carried));
  }
  finalize(trace);
}

double offered_load(const Trace& trace, int procs) {
  if (trace.size() < 2 || procs <= 0) return 0.0;
  sim::Time first = trace.front().submit;
  sim::Time last = trace.front().submit;
  double work = 0.0;
  for (const Job& job : trace) {
    first = std::min(first, job.submit);
    last = std::max(last, job.submit);
    work += static_cast<double>(job.work());
  }
  const auto span = static_cast<double>(sim::saturating_sub(last, first));
  if (span <= 0.0) return 0.0;
  return work / (static_cast<double>(procs) * span);
}

void set_offered_load(Trace& trace, int procs, double rho) {
  if (!(rho > 0.0))
    throw std::invalid_argument("set_offered_load: rho must be > 0");
  const double current = offered_load(trace, procs);
  if (current <= 0.0) return;
  scale_interarrival(trace, current / rho);
}

void truncate(Trace& trace, std::size_t count) {
  finalize(trace);
  if (trace.size() > count) trace.resize(count);
}

void apply_cancellations(Trace& trace, double fraction, double patience,
                         sim::Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument(
        "apply_cancellations: fraction must be in [0, 1]");
  if (!(patience > 0.0))
    throw std::invalid_argument(
        "apply_cancellations: patience must be > 0");
  for (Job& job : trace) {
    if (!rng.bernoulli(fraction)) continue;
    const auto wait_budget = static_cast<sim::Time>(
        std::llround(patience * static_cast<double>(job.estimate)));
    job.cancel_at =
        sim::saturating_add(job.submit, std::max<sim::Time>(wait_budget, 1));
  }
}

TraceStats compute_stats(const Trace& trace, int procs,
                         const CategoryThresholds& t) {
  TraceStats s;
  s.jobs = trace.size();
  if (trace.empty()) return s;
  sim::Time first = trace.front().submit;
  sim::Time last = trace.front().submit;
  double runtime_sum = 0.0, procs_sum = 0.0, over_sum = 0.0;
  for (const Job& job : trace) {
    first = std::min(first, job.submit);
    last = std::max(last, job.submit);
    runtime_sum += static_cast<double>(job.runtime);
    procs_sum += static_cast<double>(job.procs);
    over_sum += static_cast<double>(job.estimate) /
                static_cast<double>(std::max<sim::Time>(job.runtime, 1));
  }
  const auto n = static_cast<double>(trace.size());
  s.span = sim::saturating_sub(last, first);
  s.mean_runtime = runtime_sum / n;
  s.mean_procs = procs_sum / n;
  s.mean_interarrival =
      trace.size() > 1 ? static_cast<double>(s.span) / (n - 1.0) : 0.0;
  s.offered_load = offered_load(trace, procs);
  s.mean_overestimate = over_sum / n;
  s.mix = category_mix(trace, t);
  return s;
}

}  // namespace bfsim::workload
