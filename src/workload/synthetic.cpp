#include "workload/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace bfsim::workload {

namespace {

/// Powers of two in (lo, hi], ascending.
std::vector<int> powers_of_two_in(int lo, int hi) {
  std::vector<int> out;
  for (int p = 1; p <= hi; p *= 2)
    if (p > lo) out.push_back(p);
  return out;
}

/// Exponential arrival process with an optional sinusoidal daily cycle
/// (rate modulation via thinning), shared by both generators.
Trace attach_arrivals(std::vector<Job> shapes, double mean_gap,
                      double daily_amplitude, sim::Rng& rng) {
  if (!(mean_gap > 0.0))
    throw std::invalid_argument("workload: mean_interarrival must be > 0");
  if (daily_amplitude < 0.0 || daily_amplitude > 0.95)
    throw std::invalid_argument(
        "workload: daily_cycle_amplitude must be in [0, 0.95]");
  double t = 0.0;
  const double peak_rate = (1.0 + daily_amplitude) / mean_gap;
  for (Job& job : shapes) {
    if (daily_amplitude == 0.0) {
      t += rng.exponential(mean_gap);
    } else {
      // Thinning (Lewis & Shedler): propose at the peak rate, accept with
      // probability rate(t)/peak_rate.
      for (;;) {
        t += rng.exponential(1.0 / peak_rate);
        const double phase =
            2.0 * std::numbers::pi * t / static_cast<double>(sim::kDay);
        const double rate =
            (1.0 + daily_amplitude * std::sin(phase)) / mean_gap;
        if (rng.next_double() < rate / peak_rate) break;
      }
    }
    job.submit = static_cast<sim::Time>(std::llround(t));
  }
  for (std::size_t i = 0; i < shapes.size(); ++i)
    shapes[i].id = static_cast<JobId>(i);
  return shapes;
}

}  // namespace

CategoryMixModel::CategoryMixModel(CategoryMixParams params)
    : params_(std::move(params)) {
  double total = 0.0;
  for (double p : params_.mix) {
    if (p < 0.0)
      throw std::invalid_argument("CategoryMixModel: negative mix entry");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6)
    throw std::invalid_argument("CategoryMixModel: mix must sum to 1");
  if (params_.machine_procs <= params_.thresholds.wide_procs)
    throw std::invalid_argument(
        "CategoryMixModel: machine must be wider than the narrow/wide split");
  if (params_.min_runtime < 1 ||
      params_.min_runtime > params_.thresholds.long_runtime ||
      params_.thresholds.long_runtime >= params_.max_runtime)
    throw std::invalid_argument(
        "CategoryMixModel: need 1 <= min_runtime <= long split < max_runtime");
  if (params_.max_width == 0) params_.max_width = params_.machine_procs;
  if (params_.max_width <= params_.thresholds.wide_procs ||
      params_.max_width > params_.machine_procs)
    throw std::invalid_argument("CategoryMixModel: bad max_width");
}

int CategoryMixModel::sample_width(Category cat, sim::Rng& rng) const {
  const bool wide = cat == Category::ShortWide || cat == Category::LongWide;
  const int lo = wide ? params_.thresholds.wide_procs : 0;
  const int hi = wide ? params_.max_width : params_.thresholds.wide_procs;
  if (rng.bernoulli(params_.pow2_fraction)) {
    const auto powers = powers_of_two_in(lo, hi);
    if (!powers.empty()) {
      // Wider jobs are rarer: geometric decay across the available powers.
      std::vector<double> weights(powers.size());
      double w = 1.0;
      for (std::size_t i = 0; i < powers.size(); ++i, w *= 0.55)
        weights[i] = w;
      return powers[rng.discrete(weights)];
    }
  }
  return static_cast<int>(rng.uniform_int(lo + 1, hi));
}

sim::Time CategoryMixModel::sample_runtime(Category cat,
                                           sim::Rng& rng) const {
  const bool is_long =
      cat == Category::LongNarrow || cat == Category::LongWide;
  const auto lo = static_cast<double>(
      is_long ? sim::saturating_add(params_.thresholds.long_runtime, 1)
              : params_.min_runtime);
  const auto hi = static_cast<double>(
      is_long ? params_.max_runtime : params_.thresholds.long_runtime);
  const double r = rng.log_uniform(lo, hi);
  return std::clamp<sim::Time>(static_cast<sim::Time>(std::llround(r)),
                               static_cast<sim::Time>(lo),
                               static_cast<sim::Time>(hi));
}

Job CategoryMixModel::sample_shape(sim::Rng& rng) const {
  const auto cat =
      static_cast<Category>(rng.discrete(std::span<const double>(
          params_.mix.data(), params_.mix.size())));
  Job job;
  job.procs = sample_width(cat, rng);
  job.runtime = sample_runtime(cat, rng);
  job.estimate = job.runtime;
  return job;
}

Trace CategoryMixModel::generate(std::size_t count, sim::Rng& rng) const {
  std::vector<Job> shapes;
  shapes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shapes.push_back(sample_shape(rng));
  return attach_arrivals(std::move(shapes), params_.mean_interarrival,
                         params_.daily_cycle_amplitude, rng);
}

CategoryMixParams CategoryMixModel::ctc() {
  CategoryMixParams p;
  p.name = "CTC";
  p.machine_procs = 430;
  p.mix = {0.4506, 0.1184, 0.3026, 0.1284};  // Table 2
  p.max_runtime = 18 * sim::kHour;                 // CTC queue limit
  p.max_width = 336;                         // largest CTC batch request
  return p;
}

CategoryMixParams CategoryMixModel::sdsc() {
  CategoryMixParams p;
  p.name = "SDSC";
  p.machine_procs = 128;
  p.mix = {0.4724, 0.2144, 0.2094, 0.1038};  // Table 3
  p.max_runtime = 36 * sim::kHour;
  p.max_width = 128;
  return p;
}

LublinStyleModel::LublinStyleModel(LublinStyleParams params)
    : params_(std::move(params)) {
  if (params_.machine_procs < 2)
    throw std::invalid_argument("LublinStyleModel: machine too small");
  if (params_.serial_fraction < 0.0 || params_.serial_fraction > 1.0 ||
      params_.hg_p < 0.0 || params_.hg_p > 1.0)
    throw std::invalid_argument("LublinStyleModel: probabilities in [0,1]");
}

Job LublinStyleModel::sample_shape(sim::Rng& rng) const {
  Job job;
  if (rng.bernoulli(params_.serial_fraction)) {
    job.procs = 1;
  } else {
    // Log-uniform parallelism over [2, P], optionally snapped to the
    // nearest power of two (users overwhelmingly request powers of two).
    const double w =
        rng.log_uniform(2.0, static_cast<double>(params_.machine_procs));
    int width = static_cast<int>(std::llround(w));
    if (rng.bernoulli(params_.pow2_fraction)) {
      const double l2 = std::log2(static_cast<double>(width));
      width = 1 << static_cast<int>(std::llround(l2));
    }
    job.procs = std::clamp(width, 2, params_.machine_procs);
  }
  const double r =
      rng.hyper_gamma(params_.hg_p, params_.hg_shape1, params_.hg_scale1,
                      params_.hg_shape2, params_.hg_scale2);
  job.runtime = std::clamp<sim::Time>(static_cast<sim::Time>(std::llround(r)),
                                      1, params_.max_runtime);
  job.estimate = job.runtime;
  return job;
}

Trace LublinStyleModel::generate(std::size_t count, sim::Rng& rng) const {
  std::vector<Job> shapes;
  shapes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) shapes.push_back(sample_shape(rng));
  return attach_arrivals(std::move(shapes), params_.mean_interarrival, 0.0,
                         rng);
}

}  // namespace bfsim::workload
