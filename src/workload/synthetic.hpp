// bfsim -- synthetic workload models.
//
// The paper's experiments run on the CTC SP2 (430 batch nodes) and SDSC
// SP2 (128 nodes) archive traces. Those logs cannot ship with this repo,
// so we substitute generators calibrated to the published machine sizes
// and to the category mixes of Tables 2-3; DESIGN.md section 2 documents
// why this preserves the paper's conclusions. A Lublin-style model is
// also provided for workload-robustness ablations.
#pragma once

#include <array>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workload/categories.hpp"
#include "workload/job.hpp"

namespace bfsim::workload {

/// Parameters of the category-mix generator: jobs are drawn from the four
/// Table-1 categories with fixed probabilities; within a category the
/// runtime is log-uniform and the width is power-of-two biased, matching
/// the coarse shape of the SP2 logs.
struct CategoryMixParams {
  std::string name = "synthetic";
  int machine_procs = 128;

  /// P(SN), P(SW), P(LN), P(LW) -- indexed by Category; must sum to ~1.
  std::array<double, 4> mix{0.40, 0.15, 0.30, 0.15};

  CategoryThresholds thresholds{};     ///< short/long + narrow/wide splits
  sim::Time min_runtime = 30;          ///< shortest short job
  sim::Time max_runtime = 18 * sim::kHour;   ///< queue limit (18 h on the CTC SP2)
  double pow2_fraction = 0.75;         ///< widths snapped to powers of two
  int max_width = 0;                   ///< 0 => machine_procs

  /// Mean inter-arrival gap in seconds. Experiments normally override the
  /// resulting load with transforms::set_offered_load.
  double mean_interarrival = 600.0;

  /// Sinusoidal daily arrival cycle: rate(t) = base*(1 + a*sin(2*pi*t/day)).
  double daily_cycle_amplitude = 0.0;
};

/// Draws jobs per CategoryMixParams. Widths within Narrow are 1..8 and
/// within Wide are (8, max_width], both biased toward powers of two;
/// runtimes are log-uniform within the category's band.
class CategoryMixModel {
 public:
  explicit CategoryMixModel(CategoryMixParams params);

  /// Sample runtime and width for one job (submit left at 0).
  [[nodiscard]] Job sample_shape(sim::Rng& rng) const;

  /// Generate `count` jobs with exponential (optionally daily-modulated)
  /// arrivals, sorted by submit time, ids = index, estimate == runtime.
  [[nodiscard]] Trace generate(std::size_t count, sim::Rng& rng) const;

  [[nodiscard]] const CategoryMixParams& params() const { return params_; }

  /// Preset calibrated to the CTC trace: 430 processors, Table-2 mix
  /// {SN 45.06%, SW 11.84%, LN 30.26%, LW 12.84%}.
  [[nodiscard]] static CategoryMixParams ctc();

  /// Preset calibrated to the SDSC SP2 trace: 128 processors, Table-3 mix
  /// {SN 47.24%, SW 21.44%, LN 20.94%, LW 10.38%}.
  [[nodiscard]] static CategoryMixParams sdsc();

 private:
  CategoryMixParams params_;

  [[nodiscard]] int sample_width(Category cat, sim::Rng& rng) const;
  [[nodiscard]] sim::Time sample_runtime(Category cat, sim::Rng& rng) const;
};

/// Parameters of the Lublin-style model (Lublin & Feitelson, JPDC 2003,
/// simplified): a serial-job mass, log-uniform power-of-two-biased
/// parallelism, and hyper-gamma runtimes. Not calibrated to a specific
/// machine; used for robustness ablations.
struct LublinStyleParams {
  std::string name = "lublin-style";
  int machine_procs = 128;
  double serial_fraction = 0.24;
  double pow2_fraction = 0.75;
  /// Hyper-gamma runtime: Gamma(k1,t1) w.p. p, else Gamma(k2,t2), clamped
  /// to [1, max_runtime]. Defaults give a short-body/long-tail mixture.
  double hg_p = 0.65;
  double hg_shape1 = 2.0, hg_scale1 = 500.0;    ///< short component
  double hg_shape2 = 8.0, hg_scale2 = 4000.0;   ///< long component
  sim::Time max_runtime = 36 * sim::kHour;
  double mean_interarrival = 600.0;
};

/// Lublin-style generator; same Trace contract as CategoryMixModel.
class LublinStyleModel {
 public:
  explicit LublinStyleModel(LublinStyleParams params);

  [[nodiscard]] Job sample_shape(sim::Rng& rng) const;
  [[nodiscard]] Trace generate(std::size_t count, sim::Rng& rng) const;

  [[nodiscard]] const LublinStyleParams& params() const { return params_; }

 private:
  LublinStyleParams params_;
};

}  // namespace bfsim::workload
