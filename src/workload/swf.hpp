// bfsim -- Standard Workload Format (SWF) v2 reader / writer.
//
// The paper drives its simulations from the CTC and SDSC SP2 logs of the
// Parallel Workloads Archive, which are distributed in SWF: one job per
// line, 18 whitespace-separated fields, ';' comment/header lines. This
// module parses the full record so that a user with the real archive
// traces can reproduce the paper's original pipeline verbatim; the
// simulator consumes the reduced `Job` view.
//
// Field reference: Chapin et al., "Benchmarks and standards for the
// evaluation of parallel job schedulers" (JSSPP 1999);
// https://www.cs.huji.ac.il/labs/parallel/workload/swf.html
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace bfsim::workload {

/// One full 18-field SWF record. Missing/unknown values are -1 per spec.
/// An optional 19th extension column carries the job's burst-buffer
/// demand (GB) for multi-resource experiments; plain 18-column archive
/// files leave it at the -1 sentinel.
struct SwfRecord {
  std::int64_t job_number = -1;        // 1
  std::int64_t submit_time = -1;       // 2  (s since log start)
  std::int64_t wait_time = -1;         // 3  (s)
  std::int64_t run_time = -1;          // 4  (s)
  std::int64_t used_procs = -1;        // 5
  double avg_cpu_time = -1.0;          // 6  (s)
  double used_memory = -1.0;           // 7  (KB/proc)
  std::int64_t requested_procs = -1;   // 8
  std::int64_t requested_time = -1;    // 9  (user estimate, s)
  double requested_memory = -1.0;      // 10 (KB/proc)
  std::int64_t status = -1;            // 11 (1 completed, 0 failed, 5 cancelled)
  std::int64_t user_id = -1;           // 12
  std::int64_t group_id = -1;          // 13
  std::int64_t app_id = -1;            // 14
  std::int64_t queue_id = -1;          // 15
  std::int64_t partition_id = -1;      // 16
  std::int64_t preceding_job = -1;     // 17
  std::int64_t think_time = -1;        // 18 (s)
  std::int64_t burst_buffer = -1;      // 19 (GB; extension, absent = -1)

  friend bool operator==(const SwfRecord&, const SwfRecord&) = default;
};

/// Header metadata from ';' comment lines ("; MaxProcs: 430" etc.).
struct SwfHeader {
  std::string computer;
  std::string installation;
  std::int64_t max_procs = -1;
  std::int64_t max_jobs = -1;
  std::int64_t max_runtime = -1;
  std::vector<std::string> raw_lines;  ///< every header line, verbatim
};

/// A parsed SWF file.
struct SwfFile {
  SwfHeader header;
  std::vector<SwfRecord> records;
};

/// How the reader treats malformed input. Archive files in the wild
/// carry truncated lines, stray text and sentinel-riddled records; a
/// production ingest must survive them, while the test/repro pipeline
/// wants to fail loudly on the first oddity.
/// Default SwfParseOptions::max_time: ten years in seconds, comfortably
/// above every real archive trace (the longest logged runtimes are
/// weeks) and comfortably below where estimates stop meaning anything.
inline constexpr std::int64_t kDefaultMaxSwfTime = 315'360'000;

/// How ingestion treats the SWF status column (11): 1 completed, 0
/// failed, 5 cancelled, -1 unknown. The archive logs a failed job's
/// *actual* (truncated) runtime, so failed/cancelled records are valid
/// simulator input -- but an availability study that injects its own
/// failures (sim/failure.hpp) usually wants the trace scrubbed of the
/// archive's organic ones, and a workload model wants them counted.
enum class SwfStatusMode {
  /// Status never affects acceptance (the historic behavior). The
  /// report still tallies failed/cancelled records seen.
  kIgnore,
  /// Failed (0) and cancelled (5) records are quarantined under
  /// "status-failed" / "status-cancelled" -- in BOTH strict and
  /// lenient mode, since a non-1 status is well-formed data being
  /// filtered by policy, not corruption worth throwing over.
  kQuarantine,
};

struct SwfParseOptions {
  /// Strict (default): the first malformed data line throws
  /// util::ParseError (a std::runtime_error). Lenient: malformed and
  /// sentinel-valued records are quarantined -- dropped, counted per
  /// reason in the SwfParseReport, and warned about through the
  /// rate-limited logger -- and parsing continues.
  bool lenient = false;
  /// Upper bound (seconds) on run_time and requested_time. Archive logs
  /// top out at days to weeks; anything beyond this bound is a corrupt
  /// or hostile record whose estimate would park a reservation in the
  /// absurd far future (sim::Time arithmetic saturates instead of
  /// overflowing -- see sim/time.hpp -- but a "runs for 30,000 years"
  /// rectangle still poisons every profile window it touches). Strict
  /// mode throws on such records; lenient mode quarantines them under
  /// "excessive-time". Set <= 0 to disable the bound.
  std::int64_t max_time = kDefaultMaxSwfTime;
  /// Upper bound (GB) on the burst-buffer extension column. The same
  /// corruption argument as max_time applies on the second resource
  /// axis: a "wants 10^15 GB of buffer" record would pin every profile
  /// window forever. Strict mode throws; lenient mode quarantines under
  /// "excessive-burst-buffer". Set <= 0 to disable the bound.
  std::int64_t max_burst_buffer = 1'000'000;
  /// Status-column policy; see SwfStatusMode.
  SwfStatusMode status = SwfStatusMode::kIgnore;
};

/// What lenient ingestion did: per-reason quarantine counts. Reasons:
///   "bad-field-count"    line did not have exactly 18 or 19 fields
///   "bad-integer-field"  an integer column failed to parse
///   "bad-numeric-field"  a floating-point column failed to parse
///   "no-processors"      neither requested nor used processors > 0
///   "negative-submit"    submit time below zero (sentinel -1)
///   "excessive-time"     run/requested time above SwfParseOptions::max_time
///   "negative-burst-buffer"   extension column 19 below the -1 sentinel
///   "excessive-burst-buffer"  column 19 above SwfParseOptions::max_burst_buffer
///   "status-failed"      status column 0 under SwfStatusMode::kQuarantine
///   "status-cancelled"   status column 5 under SwfStatusMode::kQuarantine
struct SwfParseReport {
  std::size_t parsed = 0;       ///< records accepted
  std::size_t quarantined = 0;  ///< records dropped (sum of reasons)
  std::map<std::string, std::size_t> reasons;
  // Status-column accounting, filled in EVERY mode (kIgnore included):
  // how many well-formed records carried each terminal status, whether
  // or not the policy then dropped them. The counts let an ingest
  // measure a trace's organic failure rate before deciding to scrub it.
  std::size_t status_completed = 0;  ///< column 11 == 1
  std::size_t status_failed = 0;     ///< column 11 == 0
  std::size_t status_cancelled = 0;  ///< column 11 == 5

  [[nodiscard]] bool clean() const { return quarantined == 0; }
};

/// Parse SWF from a stream. Strict mode throws util::ParseError (a
/// std::runtime_error) on malformed data lines (wrong field count,
/// non-numeric fields).
[[nodiscard]] SwfFile read_swf(std::istream& in);

/// Parse with explicit strict/lenient policy; `report`, when given,
/// receives the quarantine accounting (lenient mode fills it, strict
/// mode reports parsed counts only).
[[nodiscard]] SwfFile read_swf(std::istream& in,
                               const SwfParseOptions& options,
                               SwfParseReport* report = nullptr);

/// Parse SWF from a file path. Throws std::runtime_error when the file
/// cannot be opened or parsed.
[[nodiscard]] SwfFile read_swf_file(const std::string& path);
[[nodiscard]] SwfFile read_swf_file(const std::string& path,
                                    const SwfParseOptions& options,
                                    SwfParseReport* report = nullptr);

/// Serialize records (with minimal header) back to SWF.
void write_swf(std::ostream& out, const SwfFile& file);

/// Options controlling SwfRecord -> Job conversion.
struct SwfToJobsOptions {
  /// Drop cancelled jobs that never ran (runtime <= 0).
  bool drop_unstarted = true;
  /// When the requested (estimated) time is missing, fall back to the
  /// actual runtime (i.e. treat the estimate as exact).
  bool estimate_fallback_to_runtime = true;
  /// Shift submit times so the first job arrives at t = 0.
  bool rebase_time = true;
};

/// Reduce SWF records to simulator jobs: submit, runtime, estimate and
/// width (requested processors; falls back to used processors). Records
/// without a positive width are dropped. Estimates are raised to at least
/// the runtime: the archive logs the *actual* runtime even when it
/// exceeded the request, while our simulator models the scheduler-enforced
/// kill at the estimate. The burst-buffer extension column maps to
/// Job::bb (the -1 sentinel becomes 0: no demand).
[[nodiscard]] Trace swf_to_jobs(const SwfFile& file,
                                const SwfToJobsOptions& options = {});

/// Build an SWF file (records + header) from simulator jobs; inverse of
/// swf_to_jobs for the fields the simulator knows about. Jobs with a
/// positive burst-buffer demand set the extension column (write_swf then
/// emits 19-column lines); procs-only traces round-trip byte-exactly
/// through the classic 18-column format.
[[nodiscard]] SwfFile jobs_to_swf(const Trace& jobs, int machine_procs,
                                  const std::string& computer = "bfsim");

}  // namespace bfsim::workload
