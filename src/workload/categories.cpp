#include "workload/categories.hpp"

namespace bfsim::workload {

Category classify(const Job& job, const CategoryThresholds& t) {
  const bool is_long = job.runtime > t.long_runtime;
  const bool is_wide = job.procs > t.wide_procs;
  if (is_long) return is_wide ? Category::LongWide : Category::LongNarrow;
  return is_wide ? Category::ShortWide : Category::ShortNarrow;
}

EstimateQuality classify_estimate(const Job& job) {
  return job.estimate <= 2 * job.runtime ? EstimateQuality::Well
                                         : EstimateQuality::Poor;
}

std::string to_string(Category c) {
  switch (c) {
    case Category::ShortNarrow: return "Short Narrow";
    case Category::ShortWide: return "Short Wide";
    case Category::LongNarrow: return "Long Narrow";
    case Category::LongWide: return "Long Wide";
  }
  return "?";
}

std::string to_string(EstimateQuality q) {
  return q == EstimateQuality::Well ? "well estimated" : "poorly estimated";
}

std::string code(Category c) {
  switch (c) {
    case Category::ShortNarrow: return "SN";
    case Category::ShortWide: return "SW";
    case Category::LongNarrow: return "LN";
    case Category::LongWide: return "LW";
  }
  return "?";
}

std::array<std::size_t, 4> category_counts(const Trace& trace,
                                           const CategoryThresholds& t) {
  std::array<std::size_t, 4> counts{};
  for (const Job& job : trace)
    ++counts[static_cast<std::size_t>(classify(job, t))];
  return counts;
}

std::array<double, 4> category_mix(const Trace& trace,
                                   const CategoryThresholds& t) {
  std::array<double, 4> mix{};
  if (trace.empty()) return mix;
  const auto counts = category_counts(trace, t);
  for (std::size_t i = 0; i < 4; ++i)
    mix[i] = static_cast<double>(counts[i]) /
             static_cast<double>(trace.size());
  return mix;
}

}  // namespace bfsim::workload
