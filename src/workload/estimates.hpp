// bfsim -- user runtime-estimate models (Section 5 of the paper).
//
// Schedulers only see the user's wall-clock request, never the true
// runtime. The paper studies three regimes:
//   * exact estimates               (Section 4)
//   * systematic overestimation     (estimate = R x runtime, Section 5.1)
//   * actual, inaccurate estimates  (Section 5.2)
// The real traces record actual estimates; offline we substitute a
// calibrated mixture (ActualEstimateModel) reproducing the archive's
// estimate structure: a mass of exact requests, a body of mild
// overestimates, and -- crucially -- a tail of jobs whose request is a
// round absolute queue limit ("18 hours") unrelated to the runtime. The
// limit-shaped tail is what makes short poorly-estimated jobs look like
// day-long monsters to the scheduler; it drives the paper's Section 5.2
// result that actual estimates *deteriorate* overall slowdown even
// though uniform overestimation (Section 5.1) improves it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace bfsim::workload {

/// Strategy interface: produce the user's estimate for one job.
class EstimateModel {
 public:
  virtual ~EstimateModel() = default;

  /// The estimate the user submits for `job`. Must be >= 1; the caller
  /// raises it to at least the runtime (jobs are killed at the limit, so
  /// an underestimate would silently truncate the job).
  [[nodiscard]] virtual sim::Time estimate_for(const Job& job,
                                               sim::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exact user estimates: estimate == runtime.
class ExactEstimate final : public EstimateModel {
 public:
  [[nodiscard]] sim::Time estimate_for(const Job& job,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "exact"; }
};

/// Systematic overestimation: estimate = R x runtime (R >= 1).
/// R = 1 reduces to ExactEstimate; the paper evaluates R in {1, 2, 4}.
class SystematicOverestimate final : public EstimateModel {
 public:
  explicit SystematicOverestimate(double factor);

  [[nodiscard]] sim::Time estimate_for(const Job& job,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double factor() const { return factor_; }

 private:
  double factor_;
};

/// Parameters of the actual-estimate mixture. With the defaults roughly
/// 60% of jobs end up "well estimated" (estimate <= 2 x runtime, the
/// paper's split) and the rest carry limit-shaped gross overestimates.
struct ActualEstimateParams {
  double exact_fraction = 0.20;  ///< estimate == runtime
  double mild_fraction = 0.35;   ///< estimate = runtime x U(1, 2)
  /// The queue/wall-clock limits users pick from for the gross tail:
  /// 15 m, 30 m, 1 h, 2 h, 4 h, 6 h, 12 h and 18 h (the CTC maximum).
  /// Must be positive and strictly ascending. A tail job requests a
  /// uniformly chosen limit that covers its runtime; when even the
  /// largest limit is too small the estimate falls back to the runtime.
  std::vector<sim::Time> limits{900,   1800,  3600,  7200,
                                14400, 21600, 43200, 64800};
  sim::Time round_to = 60;  ///< users request whole minutes (mild branch)
};

/// Inaccurate "actual" user estimates, modelled as a three-way mixture.
class ActualEstimateModel final : public EstimateModel {
 public:
  explicit ActualEstimateModel(ActualEstimateParams params = {});

  [[nodiscard]] sim::Time estimate_for(const Job& job,
                                       sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "actual"; }
  [[nodiscard]] const ActualEstimateParams& params() const { return params_; }

 private:
  ActualEstimateParams params_;
};

/// Overwrite `estimate` on every job in the trace by sampling `model`.
/// Estimates are clamped to >= runtime (>= 1). Deterministic given `rng`.
void apply_estimates(Trace& trace, const EstimateModel& model, sim::Rng& rng);

}  // namespace bfsim::workload
