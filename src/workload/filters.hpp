// bfsim -- workload cleaning filters.
//
// Archive traces need scrubbing before simulation: failed/cancelled
// records, users flooding the queue with thousands of identical jobs
// ("workload flurries", Tsafrir & Feitelson), impossible widths, and
// runaway estimates all skew the averages the paper studies ("aborted
// jobs and the poorly estimated jobs can skew the average slowdown",
// Section 4). Each filter returns how many records it touched so
// cleaning runs are auditable.
#pragma once

#include <cstddef>

#include "workload/job.hpp"
#include "workload/swf.hpp"

namespace bfsim::workload {

/// Remove SWF records that never ran usefully: failed (status 0) and
/// cancelled (status 5) records. Returns the number removed.
std::size_t drop_failed_records(SwfFile& file);

/// Tame workload flurries: for each user, within any burst of
/// submissions spaced < `window` seconds apart, keep at most
/// `max_burst` records and drop the rest. Records with unknown user
/// (-1) are left alone. Returns the number removed.
std::size_t remove_flurries(SwfFile& file, sim::Time window,
                            std::size_t max_burst);

/// Clamp widths into [1, max_procs]; returns how many jobs changed.
std::size_t clamp_widths(Trace& trace, int max_procs);

/// Cap estimates at `max_estimate` (never below the runtime -- jobs are
/// killed at the estimate); returns how many jobs changed.
std::size_t cap_estimates(Trace& trace, sim::Time max_estimate);

/// Drop jobs a simulator cannot run (runtime, estimate or width < 1).
/// Re-sorts and renumbers the survivors. Returns the number removed.
std::size_t drop_malformed(Trace& trace);

}  // namespace bfsim::workload
