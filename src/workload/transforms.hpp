// bfsim -- trace transforms: load scaling, normalization, statistics.
//
// "A high load condition was simulated by shrinking the inter-arrival
// times of jobs" (Section 3) -- scale_interarrival / set_offered_load
// implement exactly that knob.
#pragma once

#include <array>
#include <cstddef>

#include "workload/categories.hpp"
#include "sim/rng.hpp"
#include "workload/job.hpp"

namespace bfsim::workload {

/// Re-sort by submit time (stable) and renumber ids to match indices.
/// Every transform below preserves this invariant; call it after any
/// manual edit to a trace.
void finalize(Trace& trace);

/// Shift submit times so the first job arrives at t = 0.
void rebase(Trace& trace);

/// Multiply every inter-arrival gap by `factor` (> 0). factor < 1 raises
/// the load (the paper's "high load"), factor > 1 lowers it.
void scale_interarrival(Trace& trace, double factor);

/// Offered load rho = total work / (procs x arrival span): the mean
/// fraction of the machine the workload demands. Returns 0 for traces
/// with fewer than two jobs or a zero arrival span.
[[nodiscard]] double offered_load(const Trace& trace, int procs);

/// Rescale inter-arrival gaps uniformly so that offered_load() == rho.
/// This is the calibrated version of the paper's load knob: it makes
/// "high load" mean the same pressure on the 430-node CTC and the
/// 128-node SDSC configurations. No-op on traces where offered_load()
/// is 0. Requires 0 < rho.
void set_offered_load(Trace& trace, int procs, double rho);

/// Keep only the first `count` jobs (by submit order).
void truncate(Trace& trace, std::size_t count);

/// Mark a random `fraction` of jobs as cancelled-while-queued: each
/// chosen job is withdrawn `patience x estimate` seconds after
/// submission unless it has started by then (impatient users giving up,
/// a routine event in the archive traces). Deterministic given `rng`.
void apply_cancellations(Trace& trace, double fraction, double patience,
                         sim::Rng& rng);

/// Summary statistics used by reports and generator-calibration tests.
struct TraceStats {
  std::size_t jobs = 0;
  sim::Time span = 0;              ///< last submit - first submit
  double mean_runtime = 0.0;
  double mean_procs = 0.0;
  double mean_interarrival = 0.0;
  double offered_load = 0.0;       ///< vs. the given machine size
  double mean_overestimate = 0.0;  ///< mean(estimate / runtime)
  std::array<double, 4> mix{};     ///< category fractions (Table 2/3 view)
};

[[nodiscard]] TraceStats compute_stats(const Trace& trace, int procs,
                                       const CategoryThresholds& t = {});

}  // namespace bfsim::workload
