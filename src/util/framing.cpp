#include "util/framing.hpp"

#include <cstdio>
#include <cstdlib>

namespace bfsim::util {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string escape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\t': out += "%09"; break;
      case '\n': out += "%0a"; break;
      case '\r': out += "%0d"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const std::string hex{text.substr(i + 1, 2)};
      char* end = nullptr;
      const long value = std::strtol(hex.c_str(), &end, 16);
      if (end == hex.c_str() + 2) {
        out += static_cast<char>(value);
        i += 2;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool verify_frame(const std::string& line, std::string* body) {
  const std::size_t hash_sep = line.rfind('\t');
  if (hash_sep == std::string::npos) return false;
  std::string head = line.substr(0, hash_sep);
  if (hash_hex(fnv1a64(head)) != line.substr(hash_sep + 1)) return false;
  if (body != nullptr) *body = std::move(head);
  return true;
}

std::string seal_frame(const std::string& body) {
  return body + '\t' + hash_hex(fnv1a64(body));
}

}  // namespace bfsim::util
