#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bfsim::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  if (options_.emplace(name, Option{help, default_value, false}).second)
    order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  if (options_.emplace(name, Option{help, "false", true}).second)
    order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool CliParser::parse(const std::vector<std::string>& args) {
  error_.clear();
  values_.clear();
  positional_.clear();
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      error_ = "unknown option --" + name;
      std::fprintf(stderr, "%s: %s (see --help)\n", program_.c_str(),
                   error_.c_str());
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + name + " does not take a value";
        std::fprintf(stderr, "%s: %s\n", program_.c_str(), error_.c_str());
        return false;
      }
      values_[name] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= args.size()) {
        error_ = "option --" + name + " requires a value";
        std::fprintf(stderr, "%s: %s\n", program_.c_str(), error_.c_str());
        return false;
      }
      value = args[++i];
    }
    values_[name] = value;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end())
    return it->second;
  if (const auto it = options_.find(name); it != options_.end())
    return it->second.default_value;
  throw std::invalid_argument("CliParser: undeclared option --" + name);
}

int CliParser::get_int(const std::string& name) const {
  return static_cast<int>(get_int64(name));
}

std::int64_t CliParser::get_int64(const std::string& name) const {
  return std::stoll(get(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool CliParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::string CliParser::help() const {
  std::ostringstream out;
  out << program_ << " -- " << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Option& opt = options_.at(name);
    out << "  --" << name;
    if (!opt.is_flag) out << " <value>";
    out << "\n      " << opt.help;
    if (!opt.is_flag) out << " (default: " << opt.default_value << ")";
    out << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace bfsim::util
