// bfsim -- the failure taxonomy of the fault-tolerant experiment layer.
//
// Every failure a sweep cell (or a workload ingestion step) can suffer
// is classified into one of six kinds so that degraded-results reports,
// retry policies and operators all speak the same vocabulary:
//
//   ParseError         malformed input data (SWF lines, config values,
//                      failure-trace files)
//   AuditViolation     the schedule-invariant auditor or the physical
//                      validator rejected the run -- never retried away:
//                      a deterministic cell that violates an invariant
//                      once violates it every time
//   OutageViolation    the decision core rejected a node-down/node-up
//                      event (sim/failure.hpp availability layer): the
//                      injected failure trace contradicts the machine
//                      state. Deterministic like AuditViolation, but
//                      the fix is the experiment's failure trace, not
//                      the scheduler -- lumping the two (or either into
//                      Internal) sends an operator to the wrong layer
//   Timeout            the cell's watchdog deadline expired
//   ResourceExhausted  allocation failure (std::bad_alloc) or similar
//   Internal           everything else (the "unknown unknown" bucket)
//
// classify_failure maps an in-flight exception onto the taxonomy; the
// typed exceptions below exist so throw sites can pick their kind
// explicitly instead of relying on message sniffing.
#pragma once

#include <exception>
#include <stdexcept>
#include <string>

namespace bfsim::util {

enum class FailureKind : int {
  ParseError = 0,
  AuditViolation = 1,
  Timeout = 2,
  ResourceExhausted = 3,
  Internal = 4,
  OutageViolation = 5,
};

[[nodiscard]] std::string to_string(FailureKind kind);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] FailureKind failure_kind_from_string(const std::string& name);

/// Malformed input data. Derives from std::runtime_error so existing
/// catch sites (and tests) that expect runtime_error keep working.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// A watchdog deadline expired. Thrown by the sweep's timed attempt
/// path; classify_failure maps it to FailureKind::Timeout.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& what) : std::runtime_error(what) {}
};

/// Classify a caught exception. Typed exceptions map directly; for
/// untyped ones the message is sniffed for the auditor/validator
/// prefixes ("schedule audit", "validator"), the decision core's
/// node-down/node-up contract markers ("DecisionCore::on_node_down",
/// "DecisionCore::on_node_up" -> OutageViolation), and the parser
/// prefixes ("swf:", "failure-trace:"); anything unrecognized is
/// Internal.
[[nodiscard]] FailureKind classify_failure(const std::exception& error);

/// Classify the in-flight exception of a catch(...) block; non-standard
/// exceptions classify as Internal.
[[nodiscard]] FailureKind classify_current_exception();

}  // namespace bfsim::util
