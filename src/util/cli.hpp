// bfsim -- a tiny GNU-style command line parser for examples and benches.
//
// Supports `--name value`, `--name=value`, boolean flags (`--verbose`),
// typed accessors with defaults, and an auto-generated --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bfsim::util {

/// Declarative command-line parser.
///
///   CliParser cli{"quickstart", "Run a small scheduling simulation"};
///   cli.add_option("jobs", "number of jobs to generate", "1000");
///   cli.add_flag("verbose", "print every job record");
///   if (!cli.parse(argc, argv)) return 1;           // prints error/help
///   const int jobs = cli.get_int("jobs");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register a valued option with a default. The default also documents
  /// the expected form in --help.
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Register a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false (after printing a message) on error or when
  /// --help was requested; callers should then exit.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Parse from a pre-split vector (used by tests).
  [[nodiscard]] bool parse(const std::vector<std::string>& args);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::string help() const;

  /// The most recent parse error ("" when parse succeeded or help asked).
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Option {
    std::string help;
    std::string default_value;
    bool is_flag = false;
  };

  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // declaration order for --help
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace bfsim::util
