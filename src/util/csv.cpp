#include "util/csv.hpp"

namespace bfsim::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (!header_written_ && !header_.empty()) {
    header_written_ = true;
    const std::vector<std::string> header = header_;
    row(header);
  }
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << csv_escape(f);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace bfsim::util
