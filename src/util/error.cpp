#include "util/error.hpp"

#include <new>

namespace bfsim::util {

std::string to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::ParseError: return "parse-error";
    case FailureKind::AuditViolation: return "audit-violation";
    case FailureKind::Timeout: return "timeout";
    case FailureKind::ResourceExhausted: return "resource-exhausted";
    case FailureKind::Internal: return "internal";
    case FailureKind::OutageViolation: return "outage-violation";
  }
  return "internal";
}

FailureKind failure_kind_from_string(const std::string& name) {
  if (name == "parse-error") return FailureKind::ParseError;
  if (name == "audit-violation") return FailureKind::AuditViolation;
  if (name == "timeout") return FailureKind::Timeout;
  if (name == "resource-exhausted") return FailureKind::ResourceExhausted;
  if (name == "internal") return FailureKind::Internal;
  if (name == "outage-violation") return FailureKind::OutageViolation;
  throw std::invalid_argument("failure_kind_from_string: unknown kind '" +
                              name + "'");
}

namespace {

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

}  // namespace

FailureKind classify_failure(const std::exception& error) {
  if (dynamic_cast<const TimeoutError*>(&error) != nullptr)
    return FailureKind::Timeout;
  if (dynamic_cast<const ParseError*>(&error) != nullptr)
    return FailureKind::ParseError;
  if (dynamic_cast<const std::bad_alloc*>(&error) != nullptr)
    return FailureKind::ResourceExhausted;
  // The auditor and the physical validator throw std::logic_error with
  // stable message markers (core/audit.cpp, core/simulation.cpp); the
  // swf reader prefixes every diagnostic with "swf:".
  const std::string what = error.what();
  // Outage-contract rejections outrank the generic audit sniff: the
  // decision core's node-down kill path can mention auditor vocabulary
  // in its detail, but the failing layer is the injected availability
  // input, not the schedule.
  if (starts_with(what, "DecisionCore::on_node_down") ||
      starts_with(what, "DecisionCore::on_node_up"))
    return FailureKind::OutageViolation;
  if (what.find("schedule audit") != std::string::npos ||
      what.find("invalid schedule") != std::string::npos)
    return FailureKind::AuditViolation;
  if (starts_with(what, "swf:")) return FailureKind::ParseError;
  if (starts_with(what, "failure-trace:")) return FailureKind::ParseError;
  return FailureKind::Internal;
}

FailureKind classify_current_exception() {
  try {
    throw;
  } catch (const std::exception& error) {
    return classify_failure(error);
  } catch (...) {
    return FailureKind::Internal;
  }
}

}  // namespace bfsim::util
