// bfsim -- shared line/field framing for the crash-safe append logs.
//
// Two subsystems persist state as append-only text files with one
// checksummed record per line: the sweep checkpoint journal
// (exp/journal.hpp) and the scheduling service's event log
// (svc/eventlog.hpp). Both need the same primitives -- a cheap
// corruption-detecting hash so a torn tail reads as "not yet written",
// and %-escaping of the characters that would break the TAB/newline
// framing -- so they live here once instead of drifting apart.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bfsim::util {

/// FNV-1a 64-bit over the record body; cheap, dependency-free, and
/// plenty to reject a torn tail (this is corruption *detection* after
/// a crash, not an adversarial integrity check).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// Fixed-width lowercase hex of a 64-bit hash (16 characters).
[[nodiscard]] std::string hash_hex(std::uint64_t hash);

/// %-escape the characters that would break the line/field framing
/// ('%', TAB, CR, LF).
[[nodiscard]] std::string escape_field(std::string_view text);

/// Inverse of escape_field; malformed escapes pass through verbatim
/// (the checksum, not the unescaper, is the corruption gate).
[[nodiscard]] std::string unescape_field(std::string_view text);

/// Split a record line on TABs; always returns at least one field.
[[nodiscard]] std::vector<std::string> split_fields(const std::string& line);

/// True when `line` ends with a TAB plus the hex FNV-1a of everything
/// before it -- the shared record-integrity convention. On success,
/// `body` (when non-null) receives the pre-hash portion.
[[nodiscard]] bool verify_frame(const std::string& line, std::string* body);

/// `body` + TAB + hex hash: the line to append for one record.
[[nodiscard]] std::string seal_frame(const std::string& body);

}  // namespace bfsim::util
