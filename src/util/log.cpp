#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace bfsim::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

struct LimitState {
  std::size_t emitted = 0;
  std::size_t suppressed = 0;
};
std::mutex g_limits_mutex;
std::map<std::string, LimitState> g_limits;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

bool log_limited(LogLevel level, const std::string& key,
                 const std::string& message, std::size_t limit) {
  bool emit = false;
  bool announce = false;
  {
    const std::scoped_lock lock(g_limits_mutex);
    LimitState& state = g_limits[key];
    if (state.emitted < limit) {
      ++state.emitted;
      emit = true;
      announce = state.emitted == limit;
    } else {
      ++state.suppressed;
    }
  }
  // Emission happens outside the limiter lock (log_message takes its
  // own) so a slow stderr never serializes unrelated keys.
  if (emit) log_message(level, message);
  if (announce)
    log_message(level,
                "[" + key + "] limit of " + std::to_string(limit) +
                    " messages reached; further messages suppressed");
  return emit;
}

std::size_t log_suppressed(const std::string& key) {
  const std::scoped_lock lock(g_limits_mutex);
  const auto found = g_limits.find(key);
  return found == g_limits.end() ? 0 : found->second.suppressed;
}

void reset_log_limits() {
  const std::scoped_lock lock(g_limits_mutex);
  g_limits.clear();
}

}  // namespace bfsim::util
