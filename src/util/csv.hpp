// bfsim -- CSV emission for machine-readable experiment output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bfsim::util {

/// Escape a single CSV field per RFC 4180 (quote when the field contains
/// a comma, quote, or newline; double embedded quotes).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Streams rows of fields as RFC-4180 CSV. The header, if set, is written
/// on the first row() call.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Write one row. Writes the header first if present and not yet written.
  void row(const std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  std::ostream& out_;
  std::vector<std::string> header_;
  bool header_written_ = false;
  std::size_t rows_ = 0;
};

}  // namespace bfsim::util
