#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/format.hpp"

namespace bfsim::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  r.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(r));
}

void Table::add_rule() { pending_rule_ = true; }

std::string Table::str() const {
  // Column widths from header + all rows.
  std::size_t ncols = header_.size();
  for (const Row& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = std::max(width[c], header_[c].size());
  for (const Row& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      width[c] = std::max(width[c], r.cells[c].size());

  const auto align_of = [&](std::size_t c) {
    if (c < align_.size()) return align_[c];
    return c == 0 ? Align::Left : Align::Right;
  };
  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      if (c != 0) line += "  ";
      line += align_of(c) == Align::Left ? pad_right(cell, width[c])
                                         : pad_left(cell, width[c]);
    }
    // Trim trailing spaces so output diffs cleanly.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line;
  };

  std::size_t total = ncols >= 1 ? 2 * (ncols - 1) : 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c];
  const std::string rule(total, '-');

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n' << std::string(title_.size(), '=') << '\n';
  if (!header_.empty()) out << render_cells(header_) << '\n' << rule << '\n';
  for (const Row& r : rows_) {
    if (r.rule_before) out << rule << '\n';
    out << render_cells(r.cells) << '\n';
  }
  return out.str();
}

}  // namespace bfsim::util
