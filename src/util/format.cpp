#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bfsim::util {

std::string format_duration(std::int64_t seconds) {
  std::string sign;
  if (seconds < 0) {
    sign = "-";
    seconds = -seconds;
  }
  const std::int64_t days = seconds / 86400;
  const std::int64_t hours = (seconds % 86400) / 3600;
  const std::int64_t minutes = (seconds % 3600) / 60;
  const std::int64_t secs = seconds % 60;
  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld",
                  static_cast<long long>(days), static_cast<long long>(hours),
                  static_cast<long long>(minutes), static_cast<long long>(secs));
  } else {
    std::snprintf(buf, sizeof buf, "%02lld:%02lld:%02lld",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes), static_cast<long long>(secs));
  }
  return sign + buf;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double ratio, int decimals) {
  return format_fixed(ratio * 100.0, decimals) + "%";
}

std::string format_signed_percent(double ratio, int decimals) {
  const double pct = ratio * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, pct);
  return buf;
}

std::string format_count(std::int64_t value) {
  std::string digits = std::to_string(std::llabs(value));
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return value < 0 ? "-" + out : out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace bfsim::util
