// bfsim -- leveled logging to stderr with a global threshold.
//
// The simulator itself never logs on hot paths; logging exists for the
// experiment harness and examples (progress, warnings about workloads).
#pragma once

#include <sstream>
#include <string>

namespace bfsim::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line to stderr as "[level] message" when enabled.
void log_message(LogLevel level, const std::string& message);

/// Rate-limited emission for messages that can repeat thousands of
/// times (quarantined SWF records, sweep cell retries): the first
/// `limit` messages sharing `key` are emitted normally, the moment the
/// limit is reached a single "[key] further messages suppressed" notice
/// follows, and everything after that is counted silently. Count-based
/// (not wall-clock) so tests and reruns see identical output. Returns
/// whether the message itself was emitted.
bool log_limited(LogLevel level, const std::string& key,
                 const std::string& message, std::size_t limit = 10);

/// How many messages for `key` were suppressed so far.
[[nodiscard]] std::size_t log_suppressed(const std::string& key);

/// Drop all rate-limiter state (per-key counts). Tests and long-lived
/// drivers call this between phases so limits apply per phase.
void reset_log_limits();

namespace detail {
/// Stream-style one-shot logger: builds the message, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() {
  return detail::LogLine{LogLevel::Debug};
}
[[nodiscard]] inline detail::LogLine log_info() {
  return detail::LogLine{LogLevel::Info};
}
[[nodiscard]] inline detail::LogLine log_warn() {
  return detail::LogLine{LogLevel::Warn};
}
[[nodiscard]] inline detail::LogLine log_error() {
  return detail::LogLine{LogLevel::Error};
}

}  // namespace bfsim::util
