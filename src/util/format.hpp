// bfsim -- formatting helpers for human-readable reports.
#pragma once

#include <cstdint>
#include <string>

namespace bfsim::util {

/// Format a duration given in seconds as a compact "1d 02:03:04" /
/// "02:03:04" string. Negative durations are prefixed with '-'.
[[nodiscard]] std::string format_duration(std::int64_t seconds);

/// Format a double with `decimals` digits after the point ("12.35").
[[nodiscard]] std::string format_fixed(double value, int decimals = 2);

/// Format a double as a percentage with `decimals` digits ("12.35%").
/// The input is a ratio: 0.1235 -> "12.35%".
[[nodiscard]] std::string format_percent(double ratio, int decimals = 2);

/// Format an integer with thousands separators ("1,234,567").
[[nodiscard]] std::string format_count(std::int64_t value);

/// Format a signed relative change as e.g. "+12.3%" / "-4.5%".
/// The input is a ratio: 0.123 -> "+12.3%".
[[nodiscard]] std::string format_signed_percent(double ratio, int decimals = 1);

/// Left/right-pad `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

}  // namespace bfsim::util
