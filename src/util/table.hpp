// bfsim -- minimal ASCII table builder used by the report / bench layer.
//
// The benchmark binaries print the paper's tables and figure series as
// aligned ASCII tables so results can be compared by eye and diffed in CI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bfsim::util {

/// Column alignment inside a Table.
enum class Align { Left, Right };

/// A simple row/column ASCII table with a title, a header row, optional
/// horizontal rules, and per-column alignment.
///
/// Usage:
///   Table t{"Fig. 1 -- overall slowdown"};
///   t.set_header({"policy", "slowdown", "turnaround"});
///   t.add_row({"EASY-SJF", "3.41", "8:12:00"});
///   std::cout << t.str();
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void set_header(std::vector<std::string> header);

  /// Default alignment is Right for every column except the first.
  void set_align(std::vector<Align> align) { align_ = std::move(align); }

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next added row.
  void add_rule();

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Render the table to a string (trailing newline included).
  [[nodiscard]] std::string str() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace bfsim::util
