#include "core/decision_core.hpp"

#include <algorithm>
#include <string>

#include "core/audit.hpp"
#include "core/priority.hpp"

namespace bfsim::core {

namespace {

std::string id_str(JobId id) { return std::to_string(id); }

}  // namespace

DecisionCore::DecisionCore(Scheduler& scheduler, ScheduleAuditor* auditor,
                           sim::RequeuePolicy requeue)
    : scheduler_(&scheduler), auditor_(auditor), requeue_(requeue) {}

void DecisionCore::reserve_jobs(std::size_t count) {
  phases_.reserve(std::min<std::size_t>(count, kMaxTrackedJobs));
}

void DecisionCore::check_time(Time now, const char* hook) {
  if (now < last_time_)
    throw DecisionError(std::string("DecisionCore::") + hook +
                        ": time ran backwards (" + std::to_string(now) +
                        " after " + std::to_string(last_time_) + ")");
  last_time_ = now;
}

JobPhase DecisionCore::phase_or_grow(JobId id) {
  if (id >= kMaxTrackedJobs)
    throw DecisionError("DecisionCore: job id " + id_str(id) +
                        " out of range");
  if (id >= phases_.size()) phases_.resize(id + 1, JobPhase::kUnseen);
  return phases_[id];
}

void DecisionCore::on_submit(const Job& job, Time now) {
  check_time(now, "on_submit");
  if (job.id == workload::kInvalidJob)
    throw DecisionError("DecisionCore::on_submit: invalid job id");
  if (phase_or_grow(job.id) != JobPhase::kUnseen)
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " submitted twice");
  if (job.estimate < 1 || job.procs < 1)
    throw DecisionError("DecisionCore::on_submit: malformed job " +
                        id_str(job.id));
  if (job.procs > machine_procs())
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " wider than the machine");
  if (job.submit != now)
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " submitted at t=" + std::to_string(now) +
                        " but carries submit=" + std::to_string(job.submit));
  phases_[job.id] = JobPhase::kQueued;
  ++stats_.events;
  ++queued_;
  if (auditor_ != nullptr) auditor_->on_submitted(job, now);
  pass_needed_ |= scheduler_->job_submitted(job, now);
}

void DecisionCore::on_finish(JobId id, Time now) {
  check_time(now, "on_finish");
  if (phase_or_grow(id) != JobPhase::kRunning)
    throw DecisionError("DecisionCore::on_finish: job " + id_str(id) +
                        " is not running");
  phases_[id] = JobPhase::kFinished;
  ++stats_.events;
  --running_;
  (void)running_jobs_.take(id);
  if (auditor_ != nullptr) auditor_->on_finished(id, now);
  pass_needed_ |= scheduler_->job_finished(id, now);
}

void DecisionCore::on_cancel(JobId id, Time now) {
  check_time(now, "on_cancel");
  const JobPhase phase = phase_or_grow(id);
  if (phase == JobPhase::kUnseen)
    throw DecisionError("DecisionCore::on_cancel: job " + id_str(id) +
                        " was never submitted");
  if (phase == JobPhase::kCancelled)
    throw DecisionError("DecisionCore::on_cancel: job " + id_str(id) +
                        " cancelled twice");
  ++stats_.events;
  if (phase == JobPhase::kQueued) {  // still waiting: withdraw for good
    phases_[id] = JobPhase::kCancelled;
    --queued_;
    if (auditor_ != nullptr) auditor_->on_cancelled(id, now);
    pass_needed_ |= scheduler_->job_cancelled(id, now);
  } else {
    // Cancelling a job that already started is a no-op for the
    // scheduler -- no hook runs. But the batch still advances the
    // clock, and clock-driven policies (XFactor ordering, selective
    // promotion) can surface a start from time alone, with no hook to
    // vouch that a pass is unnecessary. Run one.
    pass_needed_ = true;
  }
}

void DecisionCore::on_wake(Time now) {
  check_time(now, "on_wake");
  // The timer carries no payload; end_cycle asks the scheduler whether
  // its earliest reservation is in fact due now (it may have moved
  // since the timer was armed -- a stale wake is a no-op).
  ++stats_.wakeups;
}

Time DecisionCore::outage_repair_at(sim::OutageId id) const {
  const sim::Outage* outage = active_outage(id);
  return outage != nullptr ? outage->repair_at : sim::kNoTime;
}

const sim::Outage* DecisionCore::active_outage(sim::OutageId id) const {
  for (const sim::Outage& outage : active_outages_)
    if (outage.id == id) return &outage;
  return nullptr;
}

void DecisionCore::on_node_down(const sim::Outage& outage, Time now) {
  check_time(now, "on_node_down");
  // Pre-mutation validation: every check runs before the first kill so
  // a rejected outage leaves the whole core untouched and serviceable.
  const std::string tag = std::to_string(outage.id);
  if (outage.id >= kMaxTrackedOutages)
    throw DecisionError("DecisionCore::on_node_down: outage id " + tag +
                        " out of range");
  if (outage_known(outage.id))
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " delivered twice");
  if (outage.down_at != now)
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " delivered at t=" + std::to_string(now) +
                        " but carries down_at=" +
                        std::to_string(outage.down_at));
  if (outage.repair_at <= now)
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " repairs at-or-before its down instant");
  if (outage.procs < 0 || outage.bb < 0 || outage.procs + outage.bb < 1)
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " has malformed losses");
  if (outage.procs > machine_procs() - down_procs_)
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " takes more processors than the still-up machine");
  if (outage.bb > machine_burst_buffer() - down_bb_)
    throw DecisionError("DecisionCore::on_node_down: outage " + tag +
                        " takes more burst buffer than the still-up machine");

  if (killed_consumed_) {
    killed_ids_.clear();
    killed_consumed_ = false;
  }

  // Victim selection: the outage's demand must be free on both axes
  // before the scheduler learns of it. Deterministic order -- latest
  // start first (the least sunk work), larger id first on ties --
  // skipping jobs that contribute to no remaining deficit, so a
  // bb-only outage never kills a no-bb job.
  int busy_procs = 0;
  int busy_bb = 0;
  for (const RunningJob& rj : running_jobs_.jobs()) {
    busy_procs += rj.job.procs;
    busy_bb += rj.job.bb;
  }
  int need_procs = outage.procs - (machine_procs() - down_procs_ - busy_procs);
  int need_bb =
      outage.bb - (machine_burst_buffer() - down_bb_ - busy_bb);
  victim_scratch_.clear();
  if (need_procs > 0 || need_bb > 0) {
    victim_scratch_ = running_jobs_.jobs();
    std::sort(victim_scratch_.begin(), victim_scratch_.end(),
              [](const RunningJob& a, const RunningJob& b) {
                if (a.start != b.start) return a.start > b.start;
                return a.job.id > b.job.id;
              });
  }
  requeue_scratch_.clear();
  for (const RunningJob& victim : victim_scratch_) {
    if (need_procs <= 0 && need_bb <= 0) break;
    const bool helps = (need_procs > 0 && victim.job.procs > 0) ||
                       (need_bb > 0 && victim.job.bb > 0);
    if (!helps) continue;
    need_procs -= victim.job.procs;
    need_bb -= victim.job.bb;
    const JobId id = victim.job.id;
    if (auditor_ != nullptr) auditor_->on_killed(id, now);
    pass_needed_ |= scheduler_->job_killed(id, now);
    const RunningJob taken = running_jobs_.take(id);
    --running_;
    killed_ids_.push_back(id);
    ++stats_.kills;
    // The resubmitted job keeps its ORIGINAL submit time -- priority
    // ties replay exactly as before the outage -- while the estimate
    // follows the session's requeue policy.
    Job requeued = taken.job;
    if (requeue_ == sim::RequeuePolicy::kResubmitRemaining) {
      const Time elapsed = sim::saturating_sub(now, taken.start);
      requeued.estimate =
          std::max<Time>(1, sim::saturating_sub(requeued.estimate, elapsed));
    }
    requeue_scratch_.push_back(requeued);
  }
  // `need` always clears: the validated losses fit the still-up machine,
  // so killing every running job frees at least the demand on each axis.

  if (outage.id >= outage_phases_.size())
    outage_phases_.resize(outage.id + 1, 0);
  outage_phases_[outage.id] = 1;
  active_outages_.push_back(outage);
  down_procs_ += outage.procs;
  down_bb_ += outage.bb;
  ++stats_.outages;
  if (auditor_ != nullptr) auditor_->on_node_down(outage, now);
  pass_needed_ |= scheduler_->node_down(outage, now);

  // Re-enter the queue in current priority order so clock-dependent
  // policies (xfactor) see the victims in the same relative order a
  // fresh sort at `now` would produce.
  sort_by_priority(requeue_scratch_, scheduler_->config().priority, now);
  for (const Job& requeued : requeue_scratch_) {
    phases_[requeued.id] = JobPhase::kQueued;
    ++queued_;
    if (auditor_ != nullptr) auditor_->on_requeued(requeued, now);
    pass_needed_ |= scheduler_->job_submitted(requeued, now);
  }
}

void DecisionCore::on_node_up(sim::OutageId id, Time now) {
  check_time(now, "on_node_up");
  auto it = std::find_if(active_outages_.begin(), active_outages_.end(),
                         [id](const sim::Outage& o) { return o.id == id; });
  if (it == active_outages_.end())
    throw DecisionError("DecisionCore::on_node_up: outage " +
                        std::to_string(id) + " is not active");
  if (it->repair_at != now)
    throw DecisionError("DecisionCore::on_node_up: outage " +
                        std::to_string(id) + " repairs at t=" +
                        std::to_string(it->repair_at) + ", not t=" +
                        std::to_string(now));
  const sim::Outage outage = *it;
  active_outages_.erase(it);
  outage_phases_[id] = 2;
  down_procs_ -= outage.procs;
  down_bb_ -= outage.bb;
  ++stats_.repairs;
  if (auditor_ != nullptr) auditor_->on_node_up(outage, now);
  pass_needed_ |= scheduler_->node_up(outage, now);
}

CycleDecision DecisionCore::end_cycle(Time now) {
  check_time(now, "end_cycle");
  if (killed_consumed_) {
    // The previous cycle's killed span was handed out and this batch
    // produced no fresh kills (on_node_down would have dropped it).
    killed_ids_.clear();
    killed_consumed_ = false;
  }
  start_ids_.clear();
  Time wake = sim::kNoTime;
  bool ran = false;
  const auto run_pass = [&] {
    ++stats_.passes;
    ran = true;
    starts_.clear();
    scheduler_->select_starts(now, starts_);
    queued_ -= starts_.size();
    running_ += starts_.size();
    for (const Job& started : starts_) {
      if (auditor_ != nullptr) auditor_->on_started(started, now);
      // Scheduler-side invariant, not an input error: a committed start
      // of a job that is not queued means the policy itself broke, so
      // this is fatal (plain logic_error), unlike the pre-mutation
      // DecisionError contract checks.
      if (started.id >= phases_.size() ||
          phases_[started.id] != JobPhase::kQueued)
        throw std::logic_error("DecisionCore: job " + id_str(started.id) +
                               " started twice");
      phases_[started.id] = JobPhase::kRunning;
      running_jobs_.insert(
          started.id,
          RunningJob{started, now, sim::saturating_add(now, started.estimate)});
      start_ids_.push_back(started.id);
    }
  };
  if (pass_needed_) {
    // A hook already vouched for the pass; only the post-pass wake-up
    // matters (asking before would waste a query on a stale answer).
    run_pass();
    wake = scheduler_->next_wakeup();
  } else if ((wake = scheduler_->next_wakeup()) == now) {
    run_pass();
    wake = scheduler_->next_wakeup();
  } else {
    ++stats_.passes_skipped;
  }
  pass_needed_ = false;
  if (auditor_ != nullptr) auditor_->on_cycle_end(now);
  stats_.max_queue = std::max(stats_.max_queue, queued_);
  if (wake != sim::kNoTime && wake <= now)
    throw std::logic_error(
        "DecisionCore: scheduler reported an overdue wake-up at t=" +
        std::to_string(now));
  killed_consumed_ = true;
  return CycleDecision{
      .starts = std::span<const JobId>(start_ids_),
      .killed = std::span<const JobId>(killed_ids_),
      .next_wakeup = wake,
      .pass_ran = ran,
  };
}

}  // namespace bfsim::core
