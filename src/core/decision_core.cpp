#include "core/decision_core.hpp"

#include <algorithm>
#include <string>

#include "core/audit.hpp"

namespace bfsim::core {

namespace {

std::string id_str(JobId id) { return std::to_string(id); }

}  // namespace

DecisionCore::DecisionCore(Scheduler& scheduler, ScheduleAuditor* auditor)
    : scheduler_(&scheduler), auditor_(auditor) {}

void DecisionCore::reserve_jobs(std::size_t count) {
  phases_.reserve(std::min<std::size_t>(count, kMaxTrackedJobs));
}

void DecisionCore::check_time(Time now, const char* hook) {
  if (now < last_time_)
    throw DecisionError(std::string("DecisionCore::") + hook +
                        ": time ran backwards (" + std::to_string(now) +
                        " after " + std::to_string(last_time_) + ")");
  last_time_ = now;
}

JobPhase DecisionCore::phase_or_grow(JobId id) {
  if (id >= kMaxTrackedJobs)
    throw DecisionError("DecisionCore: job id " + id_str(id) +
                        " out of range");
  if (id >= phases_.size()) phases_.resize(id + 1, JobPhase::kUnseen);
  return phases_[id];
}

void DecisionCore::on_submit(const Job& job, Time now) {
  check_time(now, "on_submit");
  if (job.id == workload::kInvalidJob)
    throw DecisionError("DecisionCore::on_submit: invalid job id");
  if (phase_or_grow(job.id) != JobPhase::kUnseen)
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " submitted twice");
  if (job.estimate < 1 || job.procs < 1)
    throw DecisionError("DecisionCore::on_submit: malformed job " +
                        id_str(job.id));
  if (job.procs > machine_procs())
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " wider than the machine");
  if (job.submit != now)
    throw DecisionError("DecisionCore::on_submit: job " + id_str(job.id) +
                        " submitted at t=" + std::to_string(now) +
                        " but carries submit=" + std::to_string(job.submit));
  phases_[job.id] = JobPhase::kQueued;
  ++stats_.events;
  ++queued_;
  if (auditor_ != nullptr) auditor_->on_submitted(job, now);
  pass_needed_ |= scheduler_->job_submitted(job, now);
}

void DecisionCore::on_finish(JobId id, Time now) {
  check_time(now, "on_finish");
  if (phase_or_grow(id) != JobPhase::kRunning)
    throw DecisionError("DecisionCore::on_finish: job " + id_str(id) +
                        " is not running");
  phases_[id] = JobPhase::kFinished;
  ++stats_.events;
  --running_;
  if (auditor_ != nullptr) auditor_->on_finished(id, now);
  pass_needed_ |= scheduler_->job_finished(id, now);
}

void DecisionCore::on_cancel(JobId id, Time now) {
  check_time(now, "on_cancel");
  const JobPhase phase = phase_or_grow(id);
  if (phase == JobPhase::kUnseen)
    throw DecisionError("DecisionCore::on_cancel: job " + id_str(id) +
                        " was never submitted");
  if (phase == JobPhase::kCancelled)
    throw DecisionError("DecisionCore::on_cancel: job " + id_str(id) +
                        " cancelled twice");
  ++stats_.events;
  if (phase == JobPhase::kQueued) {  // still waiting: withdraw for good
    phases_[id] = JobPhase::kCancelled;
    --queued_;
    if (auditor_ != nullptr) auditor_->on_cancelled(id, now);
    pass_needed_ |= scheduler_->job_cancelled(id, now);
  } else {
    // Cancelling a job that already started is a no-op for the
    // scheduler -- no hook runs. But the batch still advances the
    // clock, and clock-driven policies (XFactor ordering, selective
    // promotion) can surface a start from time alone, with no hook to
    // vouch that a pass is unnecessary. Run one.
    pass_needed_ = true;
  }
}

void DecisionCore::on_wake(Time now) {
  check_time(now, "on_wake");
  // The timer carries no payload; end_cycle asks the scheduler whether
  // its earliest reservation is in fact due now (it may have moved
  // since the timer was armed -- a stale wake is a no-op).
  ++stats_.wakeups;
}

CycleDecision DecisionCore::end_cycle(Time now) {
  check_time(now, "end_cycle");
  start_ids_.clear();
  Time wake = sim::kNoTime;
  bool ran = false;
  const auto run_pass = [&] {
    ++stats_.passes;
    ran = true;
    starts_.clear();
    scheduler_->select_starts(now, starts_);
    queued_ -= starts_.size();
    running_ += starts_.size();
    for (const Job& started : starts_) {
      if (auditor_ != nullptr) auditor_->on_started(started, now);
      // Scheduler-side invariant, not an input error: a committed start
      // of a job that is not queued means the policy itself broke, so
      // this is fatal (plain logic_error), unlike the pre-mutation
      // DecisionError contract checks.
      if (started.id >= phases_.size() ||
          phases_[started.id] != JobPhase::kQueued)
        throw std::logic_error("DecisionCore: job " + id_str(started.id) +
                               " started twice");
      phases_[started.id] = JobPhase::kRunning;
      start_ids_.push_back(started.id);
    }
  };
  if (pass_needed_) {
    // A hook already vouched for the pass; only the post-pass wake-up
    // matters (asking before would waste a query on a stale answer).
    run_pass();
    wake = scheduler_->next_wakeup();
  } else if ((wake = scheduler_->next_wakeup()) == now) {
    run_pass();
    wake = scheduler_->next_wakeup();
  } else {
    ++stats_.passes_skipped;
  }
  pass_needed_ = false;
  if (auditor_ != nullptr) auditor_->on_cycle_end(now);
  stats_.max_queue = std::max(stats_.max_queue, queued_);
  if (wake != sim::kNoTime && wake <= now)
    throw std::logic_error(
        "DecisionCore: scheduler reported an overdue wake-up at t=" +
        std::to_string(now));
  return CycleDecision{
      .starts = std::span<const JobId>(start_ids_),
      .next_wakeup = wake,
      .pass_ran = ran,
  };
}

}  // namespace bfsim::core
