#include "core/audit.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace bfsim::core {

std::string AuditViolation::to_string() const {
  std::string out = "[" + invariant + "] t=" + std::to_string(when);
  if (job != workload::kInvalidJob) out += " job=" + std::to_string(job);
  out += " expected=" + std::to_string(expected) +
         " actual=" + std::to_string(actual) + ": " + detail;
  return out;
}

ScheduleAuditor::ScheduleAuditor(const Scheduler& scheduler,
                                 const AuditOptions& options)
    : scheduler_(&scheduler),
      options_(options),
      hooks_(scheduler.audit_hooks()),
      total_procs_(scheduler.config().procs),
      total_bb_(scheduler.config().burst_buffer) {
  if (options_.profile_check_stride < 1)
    throw std::invalid_argument(
        "ScheduleAuditor: profile_check_stride must be >= 1");
}

void ScheduleAuditor::record(AuditViolation violation) {
  violations_.push_back(std::move(violation));
  if (options_.fatal)
    throw std::logic_error("schedule audit: " +
                           violations_.back().to_string());
}

void ScheduleAuditor::on_submitted(const Job& job, Time now) {
  ++checks_;
  JobRecord rec;
  rec.submit = now;
  rec.estimate = job.estimate;
  rec.procs = job.procs;
  rec.bb = job.bb;
  jobs_.insert_or_assign(job.id, rec);
}

void ScheduleAuditor::on_cancelled(JobId id, Time now) {
  ++checks_;
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second.start != sim::kNoTime ||
      it->second.cancelled) {
    record({.invariant = "cancel-not-queued",
            .when = now,
            .job = id,
            .detail = "cancellation delivered for a job that is not "
                      "waiting in the queue"});
    return;
  }
  it->second.cancelled = true;
  if (id == pinned_head_) {
    pinned_head_ = workload::kInvalidJob;
    pinned_start_ = sim::kNoTime;
  }
}

void ScheduleAuditor::on_started(const Job& job, Time now) {
  const auto it = jobs_.find(job.id);
  if (it == jobs_.end()) {
    record({.invariant = "start-unknown-job",
            .when = now,
            .job = job.id,
            .detail = "job started without a preceding submission"});
    return;
  }
  JobRecord& rec = it->second;
  ++checks_;
  if (rec.start != sim::kNoTime) {
    record({.invariant = "double-start",
            .when = now,
            .job = job.id,
            .expected = rec.start,
            .actual = now,
            .detail = "job started a second time"});
    return;
  }
  ++checks_;
  if (rec.cancelled)
    record({.invariant = "start-after-cancel",
            .when = now,
            .job = job.id,
            .detail = "job started after it was withdrawn"});
  ++checks_;
  if (now < rec.submit)
    record({.invariant = "start-before-submit",
            .when = now,
            .job = job.id,
            .expected = rec.submit,
            .actual = now,
            .detail = "job started before its submission time"});
  ++checks_;
  if (busy_ + rec.procs > total_procs_ - down_)
    record({.invariant = "capacity",
            .when = now,
            .job = job.id,
            .expected = total_procs_ - down_,
            .actual = busy_ + rec.procs,
            .detail = "machine oversubscribed: " + std::to_string(busy_) +
                      " busy + " + std::to_string(rec.procs) + " started > " +
                      std::to_string(total_procs_ - down_) +
                      " available processors (" + std::to_string(down_) +
                      " down)"});
  ++checks_;
  if (busy_bb_ + rec.bb > total_bb_ - down_bb_)
    record({.invariant = "capacity-bb",
            .when = now,
            .job = job.id,
            .expected = total_bb_ - down_bb_,
            .actual = busy_bb_ + rec.bb,
            .detail = "burst buffer oversubscribed: " +
                      std::to_string(busy_bb_) + " busy + " +
                      std::to_string(rec.bb) + " started > " +
                      std::to_string(total_bb_ - down_bb_) +
                      " available GB (" + std::to_string(down_bb_) +
                      " down)"});
  if (hooks_.monotone_reservations &&
      rec.first_reservation != sim::kNoTime) {
    ++checks_;
    if (now > rec.first_reservation)
      record({.invariant = "guarantee-delayed",
              .when = now,
              .job = job.id,
              .expected = rec.first_reservation,
              .actual = now,
              .detail = "job started later than its first-assigned "
                        "reservation (conservative guarantee broken)"});
  }
  if (hooks_.head_guarantee && job.id == pinned_head_) {
    ++checks_;
    if (now > pinned_start_)
      record({.invariant = "head-guarantee-delayed",
              .when = now,
              .job = job.id,
              .expected = pinned_start_,
              .actual = now,
              .detail = "queue head started later than its pinned "
                        "reservation (EASY guarantee broken)"});
    pinned_head_ = workload::kInvalidJob;
    pinned_start_ = sim::kNoTime;
  }
  rec.start = now;
  rec.running = true;
  busy_ += rec.procs;
  busy_bb_ += rec.bb;
}

void ScheduleAuditor::on_finished(JobId id, Time now) {
  const auto it = jobs_.find(id);
  ++checks_;
  if (it == jobs_.end() || !it->second.running) {
    record({.invariant = "finish-not-running",
            .when = now,
            .job = id,
            .detail = "completion delivered for a job that is not running"});
    return;
  }
  JobRecord& rec = it->second;
  ++checks_;
  if (now <= rec.start)
    record({.invariant = "finish-before-start",
            .when = now,
            .job = id,
            .expected = sim::saturating_add(rec.start, 1),
            .actual = now,
            .detail = "job finished at-or-before its start"});
  ++checks_;
  if (now > sim::saturating_add(rec.start, rec.estimate))
    record({.invariant = "finish-past-limit",
            .when = now,
            .job = id,
            .expected = sim::saturating_add(rec.start, rec.estimate),
            .actual = now,
            .detail = "job ran past its wall-clock limit (estimate not "
                      "enforced)"});
  rec.running = false;
  rec.finished = true;
  busy_ -= rec.procs;
  busy_bb_ -= rec.bb;
}

void ScheduleAuditor::on_killed(JobId id, Time now) {
  const auto it = jobs_.find(id);
  ++checks_;
  if (it == jobs_.end() || !it->second.running) {
    record({.invariant = "kill-not-running",
            .when = now,
            .job = id,
            .detail = "kill delivered for a job that is not running"});
    return;
  }
  // No wall-clock-limit check: an outage may void a run at any instant
  // from its start onward. The voided run stops counting as a start, so
  // the job may start again after its requeue.
  JobRecord& rec = it->second;
  rec.running = false;
  rec.start = sim::kNoTime;
  rec.first_reservation = sim::kNoTime;
  rec.last_reservation = sim::kNoTime;
  busy_ -= rec.procs;
  busy_bb_ -= rec.bb;
}

void ScheduleAuditor::on_requeued(const Job& job, Time now) {
  const auto it = jobs_.find(job.id);
  ++checks_;
  if (it == jobs_.end() || it->second.running ||
      it->second.start != sim::kNoTime || it->second.finished ||
      it->second.cancelled) {
    record({.invariant = "requeue-not-killed",
            .when = now,
            .job = job.id,
            .detail = "requeue delivered for a job that was not killed"});
    return;
  }
  // The estimate may shrink under the resubmit-remaining policy; submit
  // stays the original arrival (start-before-submit keeps holding).
  JobRecord& rec = it->second;
  rec.estimate = job.estimate;
  rec.procs = job.procs;
  rec.bb = job.bb;
}

void ScheduleAuditor::on_node_down(const sim::Outage& outage, Time now) {
  // The decision core kills victims first, so by the time the downtime
  // registers its demand must already be free on both axes.
  ++checks_;
  if (busy_ + down_ + outage.procs > total_procs_ ||
      busy_bb_ + down_bb_ + outage.bb > total_bb_)
    record({.invariant = "outage-capacity",
            .when = now,
            .expected = total_procs_ - down_ - outage.procs,
            .actual = busy_,
            .detail = "outage " + std::to_string(outage.id) +
                      " registered while its capacity is still held by "
                      "running jobs (insufficient kills)"});
  down_ += outage.procs;
  down_bb_ += outage.bb;
  active_outages_.push_back(outage);
  // Force majeure: the degraded machine may make every pre-outage
  // guarantee physically impossible, so the monotone baselines restart
  // from the post-outage reservations (DESIGN.md section 15).
  // bfsim-lint: nondeterminism -- order-insensitive per-record reset
  for (auto& [id, rec] : jobs_) {
    rec.first_reservation = sim::kNoTime;
    rec.last_reservation = sim::kNoTime;
  }
  pinned_head_ = workload::kInvalidJob;
  pinned_start_ = sim::kNoTime;
}

void ScheduleAuditor::on_node_up(const sim::Outage& outage, Time now) {
  const auto it = std::find_if(
      active_outages_.begin(), active_outages_.end(),
      [&outage](const sim::Outage& o) { return o.id == outage.id; });
  ++checks_;
  if (it == active_outages_.end() || it->repair_at != now) {
    record({.invariant = "repair-unknown-outage",
            .when = now,
            .expected = it == active_outages_.end() ? sim::kNoTime
                                                    : it->repair_at,
            .actual = now,
            .detail = "repair delivered for outage " +
                      std::to_string(outage.id) +
                      " which is not active at this instant"});
    return;
  }
  down_ -= it->procs;
  down_bb_ -= it->bb;
  active_outages_.erase(it);
}

void ScheduleAuditor::check_reservations(Time now) {
  const std::vector<AuditReservation> reported =
      scheduler_->audit_reservations();
  if (hooks_.reservations) {
    for (const AuditReservation& res : reported) {
      const auto it = jobs_.find(res.id);
      ++checks_;
      if (it == jobs_.end() || it->second.start != sim::kNoTime ||
          it->second.cancelled) {
        record({.invariant = "reservation-unknown-job",
                .when = now,
                .job = res.id,
                .detail = "reservation reported for a job that is not "
                          "waiting in the queue"});
        continue;
      }
      JobRecord& rec = it->second;
      ++checks_;
      if (res.start < now)
        record({.invariant = "reservation-in-past",
                .when = now,
                .job = res.id,
                .expected = now,
                .actual = res.start,
                .detail = "guaranteed start lies in the past (missed "
                          "start / stale reservation)"});
      if (hooks_.monotone_reservations &&
          rec.last_reservation != sim::kNoTime) {
        ++checks_;
        if (res.start > rec.last_reservation)
          record({.invariant = "guarantee-delayed",
                  .when = now,
                  .job = res.id,
                  .expected = rec.last_reservation,
                  .actual = res.start,
                  .detail = "guaranteed start moved later (conservative "
                            "guarantee broken)"});
      }
      if (rec.first_reservation == sim::kNoTime)
        rec.first_reservation = res.start;
      rec.last_reservation = res.start;
    }
  }
  if (hooks_.head_guarantee) {
    // At most one pinned reservation: the queue head's. Losing the pin
    // (head started, was cancelled, or was displaced by a higher
    // priority arrival) voids the old commitment; keeping it for the
    // same job must never move it later.
    if (reported.empty()) {
      pinned_head_ = workload::kInvalidJob;
      pinned_start_ = sim::kNoTime;
    } else {
      const AuditReservation& head = reported.front();
      if (head.id == pinned_head_) {
        ++checks_;
        if (head.start > pinned_start_)
          record({.invariant = "head-guarantee-delayed",
                  .when = now,
                  .job = head.id,
                  .expected = pinned_start_,
                  .actual = head.start,
                  .detail = "pinned head reservation moved later (a "
                            "backfill delayed the queue head)"});
      }
      pinned_head_ = head.id;
      pinned_start_ = head.start;
    }
  }
}

void ScheduleAuditor::check_profile(Time now) {
  const MultiProfile* actual = scheduler_->audit_profile();
  if (actual == nullptr) return;
  ++checks_;
  if (actual->total_procs() != total_procs_) {
    record({.invariant = "profile-divergence",
            .when = now,
            .expected = total_procs_,
            .actual = actual->total_procs(),
            .detail = "profile machine size differs from the scheduler "
                      "configuration"});
    return;
  }
  ++checks_;
  if (actual->total_bb() != total_bb_) {
    record({.invariant = "profile-divergence",
            .when = now,
            .expected = total_bb_,
            .actual = actual->total_bb(),
            .detail = "profile burst-buffer capacity differs from the "
                      "scheduler configuration"});
    return;
  }
  // Rebuild the expected timeline from first principles: every running
  // job occupies [now, start + estimate) and every reported reservation
  // occupies [start, start + estimate). Past times are irrelevant (the
  // scheduler may keep stale history there); equality is required for
  // all t >= now. The end sums saturate exactly like the schedulers'
  // own (commit_start, profile windows): a reservation anchored behind
  // a near-kTimeMax estimate would otherwise wrap negative here and
  // silently vanish from the expected occupancy.
  MultiProfile expected{total_procs_, total_bb_};
  // Occupancy is a commutative sum, but the overflow diagnostic below
  // reports whichever reserve() trips first -- iterate the hash map in
  // job-id order so that report (and the audit transcript) is identical
  // across runs.
  std::vector<JobId> running_ids;
  // bfsim-lint: nondeterminism -- key collection for an id-sorted view
  for (const auto& [id, rec] : jobs_) {
    if (rec.running) running_ids.push_back(id);
  }
  std::sort(running_ids.begin(), running_ids.end());
  try {
    for (const JobId id : running_ids) {
      const JobRecord& rec = jobs_.at(id);
      const Time end = sim::saturating_add(rec.start, rec.estimate);
      if (end > now) expected.reserve(now, end, rec.procs, rec.bb);
    }
    for (const AuditReservation& res : scheduler_->audit_reservations()) {
      const Time begin = std::max(res.start, now);
      const Time end = sim::saturating_add(res.start, res.estimate);
      if (end > begin) expected.reserve(begin, end, res.procs, res.bb);
    }
    // Downtime occupies capacity exactly like a running job: every
    // profile-keeping scheduler reserves [down_at, repair_at) for each
    // outage, so the independent rebuild must too.
    for (const sim::Outage& outage : active_outages_)
      if (outage.repair_at > now)
        expected.reserve(now, outage.repair_at, outage.procs, outage.bb);
  } catch (const std::logic_error& error) {
    // The implied occupancy itself overflows the machine: the running +
    // reserved rectangles cannot coexist, which is its own violation.
    record({.invariant = "profile-divergence",
            .when = now,
            .detail = std::string{"running + reserved jobs overflow the "
                                  "machine: "} +
                      error.what()});
    return;
  }
  // Two piecewise-constant timelines are equal on [now, inf) iff they
  // agree at `now` and at every breakpoint >= now of either.
  auto diverges_at = [&](Time t) {
    ++checks_;
    const int want = expected.procs_free_at(t);
    const int got = actual->procs_free_at(t);
    if (want != got) {
      record({.invariant = "profile-divergence",
              .when = now,
              .expected = want,
              .actual = got,
              .detail = "availability profile free(" + std::to_string(t) +
                        ") disagrees with occupancy implied by running + "
                        "reserved jobs (stale breakpoint)"});
      return true;
    }
    ++checks_;
    const int want_bb = expected.bb_free_at(t);
    const int got_bb = actual->bb_free_at(t);
    if (want_bb != got_bb) {
      record({.invariant = "profile-divergence",
              .when = now,
              .expected = want_bb,
              .actual = got_bb,
              .detail = "availability profile burst-buffer free(" +
                        std::to_string(t) + ") disagrees with occupancy "
                        "implied by running + reserved jobs (stale "
                        "breakpoint)"});
      return true;
    }
    return false;
  };
  if (diverges_at(now)) return;
  for (const MultiProfile::Segment& seg : expected.segments())
    if (seg.begin >= now && diverges_at(seg.begin)) return;
  for (const MultiProfile::Segment& seg : actual->segments())
    if (seg.begin >= now && diverges_at(seg.begin)) return;
}

void ScheduleAuditor::on_cycle_end(Time now) {
  ++cycles_;
  if (hooks_.reservations || hooks_.head_guarantee) check_reservations(now);
  if (hooks_.profile &&
      cycles_ % static_cast<std::uint64_t>(options_.profile_check_stride) ==
          0)
    check_profile(now);
}

}  // namespace bfsim::core
