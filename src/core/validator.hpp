// bfsim -- schedule validity checking.
//
// Every simulated schedule can be checked against the physical rules of
// space sharing, independent of the scheduling policy that produced it:
// no job starts before it arrives, each runs for exactly
// min(runtime, estimate), and the machine is never oversubscribed.
// Policy-specific guarantees (e.g. conservative never delaying a
// reservation) are asserted inside the schedulers and in the test suite.
//
// Availability runs (sim/failure.hpp): a job requeued by an outage
// reports the start/end of its *completing* run. Under the full-restart
// policy that run still lasts exactly min(runtime, estimate); under
// checkpointed resume it lasts whatever work remained, so the duration
// check relaxes to [1, min(runtime, estimate)] for requeued jobs only.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/failure.hpp"

namespace bfsim::core {

struct ValidationReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Check `outcomes` (one per trace job, same order) against `trace` on a
/// `procs`-processor machine. Collects every violation found. `requeue`
/// only matters for outcomes with requeues > 0 (see the header note).
[[nodiscard]] ValidationReport validate_schedule(
    const Trace& trace, const std::vector<JobOutcome>& outcomes, int procs,
    sim::RequeuePolicy requeue = sim::RequeuePolicy::kResubmitFull);

/// Peak number of processors simultaneously busy in the schedule.
[[nodiscard]] int peak_usage(const std::vector<JobOutcome>& outcomes);

/// Machine utilization over [0, makespan]: busy processor-seconds divided
/// by procs x makespan. Returns 0 for empty schedules.
[[nodiscard]] double utilization(const std::vector<JobOutcome>& outcomes,
                                 int procs);

}  // namespace bfsim::core
