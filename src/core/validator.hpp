// bfsim -- schedule validity checking.
//
// Every simulated schedule can be checked against the physical rules of
// space sharing, independent of the scheduling policy that produced it:
// no job starts before it arrives, each runs for exactly
// min(runtime, estimate), and the machine is never oversubscribed.
// Policy-specific guarantees (e.g. conservative never delaying a
// reservation) are asserted inside the schedulers and in the test suite.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace bfsim::core {

struct ValidationReport {
  std::vector<std::string> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Check `outcomes` (one per trace job, same order) against `trace` on a
/// `procs`-processor machine. Collects every violation found.
[[nodiscard]] ValidationReport validate_schedule(
    const Trace& trace, const std::vector<JobOutcome>& outcomes, int procs);

/// Peak number of processors simultaneously busy in the schedule.
[[nodiscard]] int peak_usage(const std::vector<JobOutcome>& outcomes);

/// Machine utilization over [0, makespan]: busy processor-seconds divided
/// by procs x makespan. Returns 0 for empty schedules.
[[nodiscard]] double utilization(const std::vector<JobOutcome>& outcomes,
                                 int procs);

}  // namespace bfsim::core
