#include "core/easy_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace bfsim::core {

EasyScheduler::EasyScheduler(SchedulerConfig config) : SchedulerBase(config) {}

void EasyScheduler::job_submitted(const Job& job, Time) {
  if (job.procs > config_.procs)
    throw std::invalid_argument("job " + std::to_string(job.id) +
                                " wider than the machine");
  queue_.push_back(job);
}

void EasyScheduler::job_finished(JobId id, Time) { commit_finish(id); }

EasyScheduler::Shadow EasyScheduler::compute_shadow(const Job& head,
                                                    Time now) const {
  // Walk running jobs by estimated completion, accumulating processors
  // until the head fits. free_ + sum(running procs) == machine size >=
  // head.procs, so the walk always succeeds.
  std::vector<const RunningJob*> by_end;
  by_end.reserve(running_.size());
  for (const auto& [id, rj] : running_) by_end.push_back(&rj);
  std::sort(by_end.begin(), by_end.end(),
            [](const RunningJob* a, const RunningJob* b) {
              if (a->est_end != b->est_end) return a->est_end < b->est_end;
              return a->job.id < b->job.id;
            });
  int available = free_;
  for (std::size_t i = 0; i < by_end.size(); ++i) {
    available += by_end[i]->job.procs;
    if (available < head.procs) continue;
    const Time shadow = by_end[i]->est_end;
    // Include every other job ending at the same instant: they all free
    // their processors at the shadow time, so they all count toward the
    // extra processors available to backfilled jobs.
    for (std::size_t j = i + 1;
         j < by_end.size() && by_end[j]->est_end == shadow; ++j)
      available += by_end[j]->job.procs;
    return Shadow{std::max(shadow, now), available - head.procs};
  }
  throw std::logic_error("EasyScheduler: shadow walk failed (accounting bug)");
}

std::vector<Job> EasyScheduler::select_starts(Time now) {
  std::vector<Job> started;
  last_shadow_ = sim::kNoTime;
  for (;;) {
    sort_queue(now);
    if (queue_.empty()) return started;
    // Start the head (and re-enter: the next head may now fit too).
    if (queue_.front().procs <= free_) {
      started.push_back(commit_start(queue_.front().id, now));
      continue;
    }
    // Head blocked: pin its reservation, then run one backfill pass.
    const Job head = queue_.front();
    const Shadow shadow = compute_shadow(head, now);
    last_shadow_ = shadow.time;
    last_head_ = head;
    int extra = shadow.extra;
    std::size_t i = 1;
    while (i < queue_.size()) {
      const Job& job = queue_[i];
      if (job.procs <= free_) {
        const bool ends_by_shadow = now + job.estimate <= shadow.time;
        const bool within_extra = job.procs <= extra;
        if (ends_by_shadow || within_extra) {
          if (!ends_by_shadow) extra -= job.procs;
          started.push_back(commit_start(job.id, now));
          continue;  // queue_[i] now refers to the next job
        }
      }
      ++i;
    }
    return started;
  }
}

std::vector<AuditReservation> EasyScheduler::audit_reservations() const {
  if (last_shadow_ == sim::kNoTime) return {};
  return {{last_head_.id, last_shadow_, last_head_.estimate,
           last_head_.procs}};
}

std::string EasyScheduler::name() const {
  return "easy-" + to_string(config_.priority);
}

}  // namespace bfsim::core
