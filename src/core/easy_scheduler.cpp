#include "core/easy_scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace bfsim::core {

EasyScheduler::EasyScheduler(SchedulerConfig config) : SchedulerBase(config) {}

// Pass-needed rules rely on the invariant that after every executed pass
// no queued job is eligible: the head does not fit, and every backfill
// candidate fails against the head's shadow/extra budget (recomputing
// the shadow from the post-pass running set reproduces exactly the
// budget the pass left off with). With the head, the running set and
// free_ unchanged, previously failing candidates fail again -- so a
// non-fitting, non-head arrival provably cannot trigger a start. Under
// XFactor the head itself can change with the clock, so every event
// requests a pass while jobs wait.

bool EasyScheduler::job_submitted(const Job& job, Time now) {
  insert_queued(job, now);
  if (time_varying_priority()) return true;
  return fits_now(job) || queue_.front().id == job.id;
}

bool EasyScheduler::job_finished(JobId id, Time) {
  const RunningJob rj = commit_finish(id);
  const auto it = std::lower_bound(
      running_by_end_.begin(), running_by_end_.end(),
      RunningByEnd{rj.est_end, id, 0, 0},
      [](const RunningByEnd& a, const RunningByEnd& b) {
        if (a.est_end != b.est_end) return a.est_end < b.est_end;
        return a.id < b.id;
      });
  if (it == running_by_end_.end() || it->id != id)
    throw std::logic_error("EasyScheduler: finished job not in running order");
  running_by_end_.erase(it);
  return !queue_.empty();
}

bool EasyScheduler::job_cancelled(JobId id, Time) {
  const bool was_front = !queue_.empty() && queue_.front().id == id;
  (void)take_queued(id);
  if (queue_.empty()) return false;
  if (time_varying_priority()) return true;
  // Withdrawing the head re-pins the reservation on the next job, which
  // changes every backfill budget; a non-head job was not eligible and
  // constrained nobody.
  return was_front;
}

Job EasyScheduler::start_job(JobId id, Time now) {
  // commit_start saturates est_end the same way, so the by-end order
  // and the running map always agree on clamped far-future completions.
  const Job job = commit_start(id, now);
  const RunningByEnd entry{sim::saturating_add(now, job.estimate), id,
                           job.procs, job.bb};
  running_by_end_.insert(
      std::upper_bound(running_by_end_.begin(), running_by_end_.end(), entry,
                       [](const RunningByEnd& a, const RunningByEnd& b) {
                         if (a.est_end != b.est_end)
                           return a.est_end < b.est_end;
                         return a.id < b.id;
                       }),
      entry);
  return job;
}

EasyScheduler::Shadow EasyScheduler::compute_shadow(const Job& head,
                                                    Time now) const {
  // Walk capacity releases in time order -- running jobs free their
  // processors at their estimated completions, active outages return
  // theirs at repair time -- accumulating until the head fits on *both*
  // axes. free_ + sum(running procs) + sum(down procs) == machine size
  // >= head.procs (and likewise for the burst buffer, which trace
  // validation bounds by the machine), so the walk always succeeds.
  // Releases at one instant are folded as a group: they all free their
  // capacity at the shadow time, so they all count toward the extra
  // capacity available to backfilled jobs.
  int available = free_;
  int available_bb = free_bb_;
  std::size_t i = 0;  // running_by_end_ cursor (sorted by est_end)
  std::size_t k = 0;  // outages_ cursor (sorted by repair_at)
  while (i < running_by_end_.size() || k < outages_.size()) {
    Time release = sim::kTimeMax;
    if (i < running_by_end_.size()) release = running_by_end_[i].est_end;
    if (k < outages_.size())
      release = std::min(release, outages_[k].repair_at);
    while (i < running_by_end_.size() &&
           running_by_end_[i].est_end == release) {
      available += running_by_end_[i].procs;
      available_bb += running_by_end_[i].bb;
      ++i;
    }
    while (k < outages_.size() && outages_[k].repair_at == release) {
      available += outages_[k].procs;
      available_bb += outages_[k].bb;
      ++k;
    }
    if (available >= head.procs && available_bb >= head.bb)
      return Shadow{std::max(release, now), available - head.procs,
                    available_bb - head.bb};
  }
  throw std::logic_error("EasyScheduler: shadow walk failed (accounting bug)");
}

void EasyScheduler::select_starts(Time now, std::vector<Job>& out) {
  last_shadow_ = sim::kNoTime;
  ensure_sorted(now);
  for (;;) {
    if (queue_.empty()) return;
    // Start the head (and re-enter: the next head may now fit too).
    if (fits_now(queue_.front())) {
      out.push_back(start_job(queue_.front().id, now));
      continue;
    }
    // Head blocked: pin its reservation, then run one backfill pass. A
    // backfill must not delay the head on either axis: it either ends
    // by the shadow time or fits into the capacity left over (on both
    // axes) once the head starts there.
    const Job head = queue_.front();
    const Shadow shadow = compute_shadow(head, now);
    last_shadow_ = shadow.time;
    last_head_ = head;
    int extra = shadow.extra_procs;
    int extra_bb = shadow.extra_bb;
    std::size_t i = 1;
    while (i < queue_.size()) {
      const Job& job = queue_[i];
      if (fits_now(job)) {
        const bool ends_by_shadow =
            sim::saturating_add(now, job.estimate) <= shadow.time;
        const bool within_extra = job.procs <= extra && job.bb <= extra_bb;
        if (ends_by_shadow || within_extra) {
          if (!ends_by_shadow) {
            extra -= job.procs;
            extra_bb -= job.bb;
          }
          out.push_back(start_job(job.id, now));
          continue;  // queue_[i] now refers to the next job
        }
      }
      ++i;
    }
    return;
  }
}

std::vector<AuditReservation> EasyScheduler::audit_reservations() const {
  if (last_shadow_ == sim::kNoTime) return {};
  return {{last_head_.id, last_shadow_, last_head_.estimate,
           last_head_.procs, last_head_.bb}};
}

std::string EasyScheduler::name() const {
  return "easy-" + to_string(config_.priority);
}

}  // namespace bfsim::core
