// bfsim -- the runtime schedule-invariant auditor.
//
// A characterization study is only as good as the feasibility of every
// simulated schedule: a silent capacity overflow or a stale reservation
// produces plausible-looking metrics that are simply wrong. The
// ScheduleAuditor re-derives machine occupancy from the driver's event
// stream -- independently of the scheduler's own bookkeeping -- and
// checks, at every event:
//
//   * capacity      -- running jobs never exceed the machine, on any
//                      resource axis (processors and burst buffer);
//   * causality     -- no job starts before its submission, starts
//                      twice, finishes while not running, or runs past
//                      its wall-clock limit;
//   * conservative  -- a guaranteed start never moves later, and no job
//                      starts later than its first-assigned reservation;
//   * EASY          -- the queue head's pinned reservation is never
//                      delayed by a backfill while it stays at the head;
//   * profile       -- the scheduler's availability profile exactly
//                      equals the occupancy implied by running jobs plus
//                      reported reservations, checked independently on
//                      every resource axis (catching staleness at the
//                      moment of divergence, not at the final metrics).
//
// Which policy-specific checks apply is declared by the scheduler via
// Scheduler::audit_hooks(). The auditor is opt-in: the simulation driver
// attaches one when SimulationOptions::audit is set (fatal: the first
// violation throws), and bench binaries expose it behind --audit.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/multi_profile.hpp"
#include "core/scheduler.hpp"
#include "core/types.hpp"

namespace bfsim::core {

/// One detected invariant violation, with enough structure for tests to
/// assert on the exact failure (not just a message).
struct AuditViolation {
  /// Stable machine-readable tag: "capacity", "capacity-bb",
  /// "start-before-submit",
  /// "start-after-cancel", "double-start", "start-unknown-job",
  /// "finish-not-running", "finish-before-start", "finish-past-limit",
  /// "cancel-not-queued", "reservation-unknown-job",
  /// "reservation-in-past", "guarantee-delayed",
  /// "head-guarantee-delayed", "profile-divergence", "kill-not-running",
  /// "requeue-not-killed", "outage-capacity", "repair-unknown-outage".
  std::string invariant;
  Time when = 0;                      ///< event time of the violation
  JobId job = workload::kInvalidJob;  ///< offending job, if any
  std::int64_t expected = 0;          ///< invariant-specific bound
  std::int64_t actual = 0;            ///< observed value
  std::string detail;                 ///< human-readable diagnostic

  [[nodiscard]] std::string to_string() const;
};

struct AuditOptions {
  /// Throw std::logic_error at the first violation (how tests run).
  /// When false, violations accumulate and the run continues -- the mode
  /// the auditor's own mutation tests use.
  bool fatal = true;
  /// Run the (relatively costly) profile-consistency cross-check every
  /// Nth event cycle; 1 = every cycle. The per-event checks always run.
  int profile_check_stride = 1;
};

/// Observes one simulation run of one scheduler. The driver owns the
/// call discipline: on_submitted/on_cancelled/on_finished per event,
/// on_started per job the scheduler launched, then on_cycle_end after
/// each same-time batch has been fully scheduled.
class ScheduleAuditor {
 public:
  explicit ScheduleAuditor(const Scheduler& scheduler,
                           const AuditOptions& options = {});

  void on_submitted(const Job& job, Time now);
  void on_cancelled(JobId id, Time now);
  void on_finished(JobId id, Time now);
  void on_started(const Job& job, Time now);
  void on_cycle_end(Time now);

  // Availability events (core/decision_core.hpp's outage discipline:
  // every victim's on_killed precedes the on_node_down that caused it,
  // and each victim's on_requeued follows it).
  /// A running job's current run is voided by an outage. The job may
  /// legally start again later (after on_requeued).
  void on_killed(JobId id, Time now);
  /// A killed job re-enters the queue, possibly with a policy-adjusted
  /// estimate; its original submit time rides along in `job`.
  void on_requeued(const Job& job, Time now);
  /// Capacity leaves service until the matching on_node_up. Verifies the
  /// kills already freed the outage's demand, then audits all later
  /// capacity against the degraded machine. Also resets every monotone
  /// guarantee baseline: an outage legally delays guarantees (force
  /// majeure), so pre-outage reservations stop binding.
  void on_node_down(const sim::Outage& outage, Time now);
  void on_node_up(const sim::Outage& outage, Time now);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  /// Total number of individual invariant checks performed (diagnostics:
  /// an auditor that checked nothing proves nothing).
  [[nodiscard]] std::uint64_t checks() const { return checks_; }

 private:
  /// Everything the auditor knows about one job, built from events only.
  struct JobRecord {
    Time submit = sim::kNoTime;
    Time estimate = 0;
    int procs = 0;
    int bb = 0;
    Time start = sim::kNoTime;       ///< kNoTime while queued
    Time first_reservation = sim::kNoTime;
    Time last_reservation = sim::kNoTime;
    bool running = false;
    bool finished = false;
    bool cancelled = false;
  };

  void record(AuditViolation violation);
  void check_reservations(Time now);
  void check_profile(Time now);

  const Scheduler* scheduler_;
  AuditOptions options_;
  AuditHooks hooks_;
  int total_procs_;
  int total_bb_;
  int busy_ = 0;  ///< processors held by running jobs (auditor's count)
  int busy_bb_ = 0;  ///< burst-buffer GB held by running jobs
  int down_ = 0;  ///< processors lost to active outages (auditor's count)
  int down_bb_ = 0;  ///< burst-buffer GB lost to active outages
  std::vector<sim::Outage> active_outages_;  ///< few at a time; linear scan
  std::unordered_map<JobId, JobRecord> jobs_;
  /// EASY: the head job currently holding the single pinned reservation.
  JobId pinned_head_ = workload::kInvalidJob;
  Time pinned_start_ = sim::kNoTime;
  std::uint64_t cycles_ = 0;
  std::uint64_t checks_ = 0;
  std::vector<AuditViolation> violations_;
};

}  // namespace bfsim::core
